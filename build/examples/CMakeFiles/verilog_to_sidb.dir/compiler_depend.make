# Empty compiler generated dependencies file for verilog_to_sidb.
# This may be replaced when dependencies are built.
