file(REMOVE_RECURSE
  "CMakeFiles/verilog_to_sidb.dir/verilog_to_sidb.cpp.o"
  "CMakeFiles/verilog_to_sidb.dir/verilog_to_sidb.cpp.o.d"
  "verilog_to_sidb"
  "verilog_to_sidb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_to_sidb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
