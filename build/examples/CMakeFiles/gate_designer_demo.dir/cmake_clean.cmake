file(REMOVE_RECURSE
  "CMakeFiles/gate_designer_demo.dir/gate_designer_demo.cpp.o"
  "CMakeFiles/gate_designer_demo.dir/gate_designer_demo.cpp.o.d"
  "gate_designer_demo"
  "gate_designer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_designer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
