# Empty compiler generated dependencies file for gate_designer_demo.
# This may be replaced when dependencies are built.
