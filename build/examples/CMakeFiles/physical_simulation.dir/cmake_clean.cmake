file(REMOVE_RECURSE
  "CMakeFiles/physical_simulation.dir/physical_simulation.cpp.o"
  "CMakeFiles/physical_simulation.dir/physical_simulation.cpp.o.d"
  "physical_simulation"
  "physical_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
