# Empty dependencies file for physical_simulation.
# This may be replaced when dependencies are built.
