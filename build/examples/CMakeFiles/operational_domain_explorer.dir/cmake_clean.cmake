file(REMOVE_RECURSE
  "CMakeFiles/operational_domain_explorer.dir/operational_domain_explorer.cpp.o"
  "CMakeFiles/operational_domain_explorer.dir/operational_domain_explorer.cpp.o.d"
  "operational_domain_explorer"
  "operational_domain_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operational_domain_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
