# Empty dependencies file for operational_domain_explorer.
# This may be replaced when dependencies are built.
