# Empty dependencies file for fig4_supertile.
# This may be replaced when dependencies are built.
