file(REMOVE_RECURSE
  "CMakeFiles/fig4_supertile.dir/fig4_supertile.cpp.o"
  "CMakeFiles/fig4_supertile.dir/fig4_supertile.cpp.o.d"
  "fig4_supertile"
  "fig4_supertile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_supertile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
