# Empty dependencies file for table1_layouts.
# This may be replaced when dependencies are built.
