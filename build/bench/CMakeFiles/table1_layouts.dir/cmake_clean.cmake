file(REMOVE_RECURSE
  "CMakeFiles/table1_layouts.dir/table1_layouts.cpp.o"
  "CMakeFiles/table1_layouts.dir/table1_layouts.cpp.o.d"
  "table1_layouts"
  "table1_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
