file(REMOVE_RECURSE
  "CMakeFiles/ablation_xag_vs_aig.dir/ablation_xag_vs_aig.cpp.o"
  "CMakeFiles/ablation_xag_vs_aig.dir/ablation_xag_vs_aig.cpp.o.d"
  "ablation_xag_vs_aig"
  "ablation_xag_vs_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xag_vs_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
