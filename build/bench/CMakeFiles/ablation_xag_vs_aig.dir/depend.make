# Empty dependencies file for ablation_xag_vs_aig.
# This may be replaced when dependencies are built.
