# Empty compiler generated dependencies file for fig6_par_check.
# This may be replaced when dependencies are built.
