file(REMOVE_RECURSE
  "CMakeFiles/fig6_par_check.dir/fig6_par_check.cpp.o"
  "CMakeFiles/fig6_par_check.dir/fig6_par_check.cpp.o.d"
  "fig6_par_check"
  "fig6_par_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_par_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
