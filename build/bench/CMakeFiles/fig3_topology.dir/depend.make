# Empty dependencies file for fig3_topology.
# This may be replaced when dependencies are built.
