file(REMOVE_RECURSE
  "CMakeFiles/fig3_topology.dir/fig3_topology.cpp.o"
  "CMakeFiles/fig3_topology.dir/fig3_topology.cpp.o.d"
  "fig3_topology"
  "fig3_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
