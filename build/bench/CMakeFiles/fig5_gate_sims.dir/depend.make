# Empty dependencies file for fig5_gate_sims.
# This may be replaced when dependencies are built.
