file(REMOVE_RECURSE
  "CMakeFiles/fig5_gate_sims.dir/fig5_gate_sims.cpp.o"
  "CMakeFiles/fig5_gate_sims.dir/fig5_gate_sims.cpp.o.d"
  "fig5_gate_sims"
  "fig5_gate_sims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gate_sims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
