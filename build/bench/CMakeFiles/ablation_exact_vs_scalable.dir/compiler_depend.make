# Empty compiler generated dependencies file for ablation_exact_vs_scalable.
# This may be replaced when dependencies are built.
