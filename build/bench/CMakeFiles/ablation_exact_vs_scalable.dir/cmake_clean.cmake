file(REMOVE_RECURSE
  "CMakeFiles/ablation_exact_vs_scalable.dir/ablation_exact_vs_scalable.cpp.o"
  "CMakeFiles/ablation_exact_vs_scalable.dir/ablation_exact_vs_scalable.cpp.o.d"
  "ablation_exact_vs_scalable"
  "ablation_exact_vs_scalable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exact_vs_scalable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
