# Empty dependencies file for fig1_or_gate.
# This may be replaced when dependencies are built.
