file(REMOVE_RECURSE
  "CMakeFiles/fig1_or_gate.dir/fig1_or_gate.cpp.o"
  "CMakeFiles/fig1_or_gate.dir/fig1_or_gate.cpp.o.d"
  "fig1_or_gate"
  "fig1_or_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_or_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
