file(REMOVE_RECURSE
  "CMakeFiles/fig2_clocking.dir/fig2_clocking.cpp.o"
  "CMakeFiles/fig2_clocking.dir/fig2_clocking.cpp.o.d"
  "fig2_clocking"
  "fig2_clocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_clocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
