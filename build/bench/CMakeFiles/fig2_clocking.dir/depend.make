# Empty dependencies file for fig2_clocking.
# This may be replaced when dependencies are built.
