
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/benchmarks.cpp" "src/logic/CMakeFiles/bestagon_logic.dir/benchmarks.cpp.o" "gcc" "src/logic/CMakeFiles/bestagon_logic.dir/benchmarks.cpp.o.d"
  "/root/repo/src/logic/cuts.cpp" "src/logic/CMakeFiles/bestagon_logic.dir/cuts.cpp.o" "gcc" "src/logic/CMakeFiles/bestagon_logic.dir/cuts.cpp.o.d"
  "/root/repo/src/logic/exact_synthesis.cpp" "src/logic/CMakeFiles/bestagon_logic.dir/exact_synthesis.cpp.o" "gcc" "src/logic/CMakeFiles/bestagon_logic.dir/exact_synthesis.cpp.o.d"
  "/root/repo/src/logic/network.cpp" "src/logic/CMakeFiles/bestagon_logic.dir/network.cpp.o" "gcc" "src/logic/CMakeFiles/bestagon_logic.dir/network.cpp.o.d"
  "/root/repo/src/logic/npn.cpp" "src/logic/CMakeFiles/bestagon_logic.dir/npn.cpp.o" "gcc" "src/logic/CMakeFiles/bestagon_logic.dir/npn.cpp.o.d"
  "/root/repo/src/logic/rewriting.cpp" "src/logic/CMakeFiles/bestagon_logic.dir/rewriting.cpp.o" "gcc" "src/logic/CMakeFiles/bestagon_logic.dir/rewriting.cpp.o.d"
  "/root/repo/src/logic/tech_mapping.cpp" "src/logic/CMakeFiles/bestagon_logic.dir/tech_mapping.cpp.o" "gcc" "src/logic/CMakeFiles/bestagon_logic.dir/tech_mapping.cpp.o.d"
  "/root/repo/src/logic/truth_table.cpp" "src/logic/CMakeFiles/bestagon_logic.dir/truth_table.cpp.o" "gcc" "src/logic/CMakeFiles/bestagon_logic.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sat/CMakeFiles/bestagon_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
