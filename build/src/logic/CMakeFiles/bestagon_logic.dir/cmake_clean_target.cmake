file(REMOVE_RECURSE
  "libbestagon_logic.a"
)
