# Empty dependencies file for bestagon_logic.
# This may be replaced when dependencies are built.
