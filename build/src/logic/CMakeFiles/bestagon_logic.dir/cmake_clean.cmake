file(REMOVE_RECURSE
  "CMakeFiles/bestagon_logic.dir/benchmarks.cpp.o"
  "CMakeFiles/bestagon_logic.dir/benchmarks.cpp.o.d"
  "CMakeFiles/bestagon_logic.dir/cuts.cpp.o"
  "CMakeFiles/bestagon_logic.dir/cuts.cpp.o.d"
  "CMakeFiles/bestagon_logic.dir/exact_synthesis.cpp.o"
  "CMakeFiles/bestagon_logic.dir/exact_synthesis.cpp.o.d"
  "CMakeFiles/bestagon_logic.dir/network.cpp.o"
  "CMakeFiles/bestagon_logic.dir/network.cpp.o.d"
  "CMakeFiles/bestagon_logic.dir/npn.cpp.o"
  "CMakeFiles/bestagon_logic.dir/npn.cpp.o.d"
  "CMakeFiles/bestagon_logic.dir/rewriting.cpp.o"
  "CMakeFiles/bestagon_logic.dir/rewriting.cpp.o.d"
  "CMakeFiles/bestagon_logic.dir/tech_mapping.cpp.o"
  "CMakeFiles/bestagon_logic.dir/tech_mapping.cpp.o.d"
  "CMakeFiles/bestagon_logic.dir/truth_table.cpp.o"
  "CMakeFiles/bestagon_logic.dir/truth_table.cpp.o.d"
  "libbestagon_logic.a"
  "libbestagon_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bestagon_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
