file(REMOVE_RECURSE
  "CMakeFiles/bestagon_core.dir/design_flow.cpp.o"
  "CMakeFiles/bestagon_core.dir/design_flow.cpp.o.d"
  "libbestagon_core.a"
  "libbestagon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bestagon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
