# Empty dependencies file for bestagon_core.
# This may be replaced when dependencies are built.
