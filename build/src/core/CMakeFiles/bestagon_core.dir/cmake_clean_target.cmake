file(REMOVE_RECURSE
  "libbestagon_core.a"
)
