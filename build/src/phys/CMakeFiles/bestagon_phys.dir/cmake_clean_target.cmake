file(REMOVE_RECURSE
  "libbestagon_phys.a"
)
