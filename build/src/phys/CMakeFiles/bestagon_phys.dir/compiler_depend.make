# Empty compiler generated dependencies file for bestagon_phys.
# This may be replaced when dependencies are built.
