
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/exhaustive.cpp" "src/phys/CMakeFiles/bestagon_phys.dir/exhaustive.cpp.o" "gcc" "src/phys/CMakeFiles/bestagon_phys.dir/exhaustive.cpp.o.d"
  "/root/repo/src/phys/gate_designer.cpp" "src/phys/CMakeFiles/bestagon_phys.dir/gate_designer.cpp.o" "gcc" "src/phys/CMakeFiles/bestagon_phys.dir/gate_designer.cpp.o.d"
  "/root/repo/src/phys/model.cpp" "src/phys/CMakeFiles/bestagon_phys.dir/model.cpp.o" "gcc" "src/phys/CMakeFiles/bestagon_phys.dir/model.cpp.o.d"
  "/root/repo/src/phys/operational.cpp" "src/phys/CMakeFiles/bestagon_phys.dir/operational.cpp.o" "gcc" "src/phys/CMakeFiles/bestagon_phys.dir/operational.cpp.o.d"
  "/root/repo/src/phys/operational_domain.cpp" "src/phys/CMakeFiles/bestagon_phys.dir/operational_domain.cpp.o" "gcc" "src/phys/CMakeFiles/bestagon_phys.dir/operational_domain.cpp.o.d"
  "/root/repo/src/phys/simanneal.cpp" "src/phys/CMakeFiles/bestagon_phys.dir/simanneal.cpp.o" "gcc" "src/phys/CMakeFiles/bestagon_phys.dir/simanneal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/bestagon_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/bestagon_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
