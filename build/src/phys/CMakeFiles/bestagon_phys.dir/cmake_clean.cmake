file(REMOVE_RECURSE
  "CMakeFiles/bestagon_phys.dir/exhaustive.cpp.o"
  "CMakeFiles/bestagon_phys.dir/exhaustive.cpp.o.d"
  "CMakeFiles/bestagon_phys.dir/gate_designer.cpp.o"
  "CMakeFiles/bestagon_phys.dir/gate_designer.cpp.o.d"
  "CMakeFiles/bestagon_phys.dir/model.cpp.o"
  "CMakeFiles/bestagon_phys.dir/model.cpp.o.d"
  "CMakeFiles/bestagon_phys.dir/operational.cpp.o"
  "CMakeFiles/bestagon_phys.dir/operational.cpp.o.d"
  "CMakeFiles/bestagon_phys.dir/operational_domain.cpp.o"
  "CMakeFiles/bestagon_phys.dir/operational_domain.cpp.o.d"
  "CMakeFiles/bestagon_phys.dir/simanneal.cpp.o"
  "CMakeFiles/bestagon_phys.dir/simanneal.cpp.o.d"
  "libbestagon_phys.a"
  "libbestagon_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bestagon_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
