file(REMOVE_RECURSE
  "libbestagon_sat.a"
)
