# Empty compiler generated dependencies file for bestagon_sat.
# This may be replaced when dependencies are built.
