file(REMOVE_RECURSE
  "CMakeFiles/bestagon_sat.dir/dimacs.cpp.o"
  "CMakeFiles/bestagon_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/bestagon_sat.dir/encodings.cpp.o"
  "CMakeFiles/bestagon_sat.dir/encodings.cpp.o.d"
  "CMakeFiles/bestagon_sat.dir/solver.cpp.o"
  "CMakeFiles/bestagon_sat.dir/solver.cpp.o.d"
  "libbestagon_sat.a"
  "libbestagon_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bestagon_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
