file(REMOVE_RECURSE
  "CMakeFiles/bestagon_io.dir/bench_reader.cpp.o"
  "CMakeFiles/bestagon_io.dir/bench_reader.cpp.o.d"
  "CMakeFiles/bestagon_io.dir/dot_writer.cpp.o"
  "CMakeFiles/bestagon_io.dir/dot_writer.cpp.o.d"
  "CMakeFiles/bestagon_io.dir/render.cpp.o"
  "CMakeFiles/bestagon_io.dir/render.cpp.o.d"
  "CMakeFiles/bestagon_io.dir/sqd_writer.cpp.o"
  "CMakeFiles/bestagon_io.dir/sqd_writer.cpp.o.d"
  "CMakeFiles/bestagon_io.dir/svg_writer.cpp.o"
  "CMakeFiles/bestagon_io.dir/svg_writer.cpp.o.d"
  "CMakeFiles/bestagon_io.dir/verilog.cpp.o"
  "CMakeFiles/bestagon_io.dir/verilog.cpp.o.d"
  "libbestagon_io.a"
  "libbestagon_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bestagon_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
