file(REMOVE_RECURSE
  "libbestagon_io.a"
)
