
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/bench_reader.cpp" "src/io/CMakeFiles/bestagon_io.dir/bench_reader.cpp.o" "gcc" "src/io/CMakeFiles/bestagon_io.dir/bench_reader.cpp.o.d"
  "/root/repo/src/io/dot_writer.cpp" "src/io/CMakeFiles/bestagon_io.dir/dot_writer.cpp.o" "gcc" "src/io/CMakeFiles/bestagon_io.dir/dot_writer.cpp.o.d"
  "/root/repo/src/io/render.cpp" "src/io/CMakeFiles/bestagon_io.dir/render.cpp.o" "gcc" "src/io/CMakeFiles/bestagon_io.dir/render.cpp.o.d"
  "/root/repo/src/io/sqd_writer.cpp" "src/io/CMakeFiles/bestagon_io.dir/sqd_writer.cpp.o" "gcc" "src/io/CMakeFiles/bestagon_io.dir/sqd_writer.cpp.o.d"
  "/root/repo/src/io/svg_writer.cpp" "src/io/CMakeFiles/bestagon_io.dir/svg_writer.cpp.o" "gcc" "src/io/CMakeFiles/bestagon_io.dir/svg_writer.cpp.o.d"
  "/root/repo/src/io/verilog.cpp" "src/io/CMakeFiles/bestagon_io.dir/verilog.cpp.o" "gcc" "src/io/CMakeFiles/bestagon_io.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/bestagon_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/bestagon_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/bestagon_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/bestagon_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
