# Empty compiler generated dependencies file for bestagon_io.
# This may be replaced when dependencies are built.
