
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/apply_gate_library.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/apply_gate_library.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/apply_gate_library.cpp.o.d"
  "/root/repo/src/layout/bestagon_library.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/bestagon_library.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/bestagon_library.cpp.o.d"
  "/root/repo/src/layout/clocking.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/clocking.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/clocking.cpp.o.d"
  "/root/repo/src/layout/design_rules.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/design_rules.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/design_rules.cpp.o.d"
  "/root/repo/src/layout/equivalence_checking.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/equivalence_checking.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/equivalence_checking.cpp.o.d"
  "/root/repo/src/layout/exact_physical_design.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/exact_physical_design.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/exact_physical_design.cpp.o.d"
  "/root/repo/src/layout/gate_level_layout.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/gate_level_layout.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/gate_level_layout.cpp.o.d"
  "/root/repo/src/layout/scalable_physical_design.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/scalable_physical_design.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/scalable_physical_design.cpp.o.d"
  "/root/repo/src/layout/supertile.cpp" "src/layout/CMakeFiles/bestagon_layout.dir/supertile.cpp.o" "gcc" "src/layout/CMakeFiles/bestagon_layout.dir/supertile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/bestagon_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/bestagon_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/bestagon_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
