file(REMOVE_RECURSE
  "CMakeFiles/bestagon_layout.dir/apply_gate_library.cpp.o"
  "CMakeFiles/bestagon_layout.dir/apply_gate_library.cpp.o.d"
  "CMakeFiles/bestagon_layout.dir/bestagon_library.cpp.o"
  "CMakeFiles/bestagon_layout.dir/bestagon_library.cpp.o.d"
  "CMakeFiles/bestagon_layout.dir/clocking.cpp.o"
  "CMakeFiles/bestagon_layout.dir/clocking.cpp.o.d"
  "CMakeFiles/bestagon_layout.dir/design_rules.cpp.o"
  "CMakeFiles/bestagon_layout.dir/design_rules.cpp.o.d"
  "CMakeFiles/bestagon_layout.dir/equivalence_checking.cpp.o"
  "CMakeFiles/bestagon_layout.dir/equivalence_checking.cpp.o.d"
  "CMakeFiles/bestagon_layout.dir/exact_physical_design.cpp.o"
  "CMakeFiles/bestagon_layout.dir/exact_physical_design.cpp.o.d"
  "CMakeFiles/bestagon_layout.dir/gate_level_layout.cpp.o"
  "CMakeFiles/bestagon_layout.dir/gate_level_layout.cpp.o.d"
  "CMakeFiles/bestagon_layout.dir/scalable_physical_design.cpp.o"
  "CMakeFiles/bestagon_layout.dir/scalable_physical_design.cpp.o.d"
  "CMakeFiles/bestagon_layout.dir/supertile.cpp.o"
  "CMakeFiles/bestagon_layout.dir/supertile.cpp.o.d"
  "libbestagon_layout.a"
  "libbestagon_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bestagon_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
