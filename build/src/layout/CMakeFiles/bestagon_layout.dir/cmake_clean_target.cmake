file(REMOVE_RECURSE
  "libbestagon_layout.a"
)
