# Empty dependencies file for bestagon_layout.
# This may be replaced when dependencies are built.
