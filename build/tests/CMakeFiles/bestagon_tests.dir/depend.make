# Empty dependencies file for bestagon_tests.
# This may be replaced when dependencies are built.
