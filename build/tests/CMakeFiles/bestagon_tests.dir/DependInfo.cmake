
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apply_gate_library.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_apply_gate_library.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_apply_gate_library.cpp.o.d"
  "/root/repo/tests/test_bench_reader.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_bench_reader.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_bench_reader.cpp.o.d"
  "/root/repo/tests/test_benchmarks.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_benchmarks.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_benchmarks.cpp.o.d"
  "/root/repo/tests/test_bestagon_library.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_bestagon_library.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_bestagon_library.cpp.o.d"
  "/root/repo/tests/test_clocking.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_clocking.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_clocking.cpp.o.d"
  "/root/repo/tests/test_coordinates.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_coordinates.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_coordinates.cpp.o.d"
  "/root/repo/tests/test_cuts.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_cuts.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_cuts.cpp.o.d"
  "/root/repo/tests/test_design_flow.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_design_flow.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_design_flow.cpp.o.d"
  "/root/repo/tests/test_design_rules.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_design_rules.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_design_rules.cpp.o.d"
  "/root/repo/tests/test_dimacs.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_dimacs.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_dimacs.cpp.o.d"
  "/root/repo/tests/test_encodings.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_encodings.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_encodings.cpp.o.d"
  "/root/repo/tests/test_equivalence_checking.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_equivalence_checking.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_equivalence_checking.cpp.o.d"
  "/root/repo/tests/test_exact_physical_design.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_exact_physical_design.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_exact_physical_design.cpp.o.d"
  "/root/repo/tests/test_exact_synthesis.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_exact_synthesis.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_exact_synthesis.cpp.o.d"
  "/root/repo/tests/test_gate_level_layout.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_gate_level_layout.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_gate_level_layout.cpp.o.d"
  "/root/repo/tests/test_ground_state.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_ground_state.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_ground_state.cpp.o.d"
  "/root/repo/tests/test_lattice.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_lattice.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_lattice.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_npn.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_npn.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_npn.cpp.o.d"
  "/root/repo/tests/test_operational.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_operational.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_operational.cpp.o.d"
  "/root/repo/tests/test_operational_domain.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_operational_domain.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_operational_domain.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rewriting.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_rewriting.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_rewriting.cpp.o.d"
  "/root/repo/tests/test_sat_solver.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_sat_solver.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_sat_solver.cpp.o.d"
  "/root/repo/tests/test_scalable_physical_design.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_scalable_physical_design.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_scalable_physical_design.cpp.o.d"
  "/root/repo/tests/test_supertile.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_supertile.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_supertile.cpp.o.d"
  "/root/repo/tests/test_tech_mapping.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_tech_mapping.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_tech_mapping.cpp.o.d"
  "/root/repo/tests/test_tile_composition.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_tile_composition.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_tile_composition.cpp.o.d"
  "/root/repo/tests/test_truth_table.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_truth_table.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_truth_table.cpp.o.d"
  "/root/repo/tests/test_verilog.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_verilog.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_verilog.cpp.o.d"
  "/root/repo/tests/test_verilog_files.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_verilog_files.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_verilog_files.cpp.o.d"
  "/root/repo/tests/test_writers.cpp" "tests/CMakeFiles/bestagon_tests.dir/test_writers.cpp.o" "gcc" "tests/CMakeFiles/bestagon_tests.dir/test_writers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bestagon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/bestagon_io.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/bestagon_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/bestagon_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/bestagon_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/bestagon_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
