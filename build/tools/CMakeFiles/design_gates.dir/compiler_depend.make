# Empty compiler generated dependencies file for design_gates.
# This may be replaced when dependencies are built.
