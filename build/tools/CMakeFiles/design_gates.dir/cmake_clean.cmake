file(REMOVE_RECURSE
  "CMakeFiles/design_gates.dir/design_gates.cpp.o"
  "CMakeFiles/design_gates.dir/design_gates.cpp.o.d"
  "design_gates"
  "design_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
