/// \file verilog_to_sidb.cpp
/// \brief End-to-end scenario: read a gate-level Verilog file (or a built-in
///        demo if none is given), run the flow, and emit fabrication-ready
///        design files (.sqd for SiQAD, .svg for inspection).

#include "core/design_flow.hpp"
#include "core/run_control.hpp"
#include "io/artifacts.hpp"
#include "io/sqd_writer.hpp"
#include "io/svg_writer.hpp"
#include "io/verilog.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace
{

constexpr const char* demo = R"(
// 4-bit odd-parity checker (the paper's par_check running example)
module par_check(a, b, c, d, ok);
  input a, b, c, d;
  output ok;
  assign ok = ~((a ^ b) ^ (c ^ d));
endmodule
)";

}  // namespace

int main(int argc, char** argv)
{
    using namespace bestagon;

    // usage: verilog_to_sidb [design.v] [output-dir]
    std::string text = demo;
    std::string name = "par_check";
    if (argc > 1)
    {
        std::ifstream in{argv[1]};
        if (!in)
        {
            std::printf("cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
        name = argv[1];
    }
    const std::string out_dir = io::artifact_dir(argc > 2 ? argv[2] : "");

    // first Ctrl-C winds the flow down cooperatively (partial artifacts and
    // the diagnostics table are still emitted); a second Ctrl-C hard-exits
    core::FlowOptions options;
    options.stop = core::install_sigint_stop();

    const auto result = core::run_design_flow_verilog(text, options);

    // emit whatever artifacts the (possibly cut) run produced
    if (result.sidb.has_value())
    {
        std::ofstream sqd{io::artifact_path("design.sqd", out_dir)};
        io::write_sqd(sqd, *result.sidb, name);
        std::ofstream dots{io::artifact_path("design_dots.svg", out_dir)};
        io::write_svg(dots, *result.sidb);
    }
    if (result.layout.has_value())
    {
        std::ofstream svg{io::artifact_path("design.svg", out_dir)};
        io::write_svg(svg, *result.layout);
    }

    if (!result.success())
    {
        std::printf("flow %s for %s\n",
                    core::sigint_received() ? "interrupted — partial results" : "failed",
                    name.c_str());
        std::printf("%s", result.diagnostics.table().c_str());
        if (result.sidb.has_value() || result.layout.has_value())
        {
            std::printf("partial artifacts written to %s/\n", out_dir.c_str());
        }
        return 1;
    }

    std::printf("%s: %u x %u tiles, %zu SiDBs, verified %s\n", name.c_str(),
                result.layout->width(), result.layout->height(), result.sidb->num_sidbs(),
                result.equivalence == layout::EquivalenceResult::equivalent ? "equivalent" : "NO");
    std::printf("%s", result.diagnostics.table().c_str());
    std::printf("wrote %s/design.sqd (open in SiQAD), design.svg, design_dots.svg\n",
                out_dir.c_str());
    return 0;
}
