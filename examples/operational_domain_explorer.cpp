/// \file operational_domain_explorer.cpp
/// \brief The paper's "future work" extension: operational-domain evaluation.
///        Sweeps (eps_r, lambda_TF) and prints an ASCII map of where the
///        vertical-wire tile stays operational.

#include "core/run_control.hpp"
#include "layout/bestagon_library.hpp"
#include "phys/operational_domain.hpp"

#include <cstdio>

using namespace bestagon;

int main()
{
    // first Ctrl-C stops the sweep cooperatively (the partial map is still
    // printed, un-swept points as '?'); a second Ctrl-C hard-exits
    core::RunBudget run;
    run.token = core::install_sigint_stop();

    const auto& lib = layout::BestagonLibrary::instance();
    const auto* wire = lib.lookup(logic::GateType::buf, layout::Port::nw, std::nullopt,
                                  layout::Port::sw, std::nullopt);

    phys::SimulationParameters base;
    base.mu_minus = -0.32;

    phys::DomainSweep sweep;
    sweep.axes = phys::DomainAxes::epsilon_r_vs_lambda_tf;
    sweep.x_min = 3.0;   // eps_r
    sweep.x_max = 9.0;
    sweep.x_steps = 13;
    sweep.y_min = 2.0;   // lambda_TF in nm
    sweep.y_max = 8.0;
    sweep.y_steps = 13;

    std::printf("operational domain of the BDL wire tile (mu = -0.32 eV)\n");
    std::printf("x: eps_r in [%.1f, %.1f], y: lambda_TF in [%.1f, %.1f] nm\n\n", sweep.x_min,
                sweep.x_max, sweep.y_min, sweep.y_max);

    const auto domain =
        phys::compute_operational_domain(wire->design, base, sweep, phys::Engine::exhaustive, run);

    for (unsigned j = sweep.y_steps; j-- > 0;)
    {
        std::printf("lambda=%4.1f | ", sweep.y_min + (sweep.y_max - sweep.y_min) * j /
                                           (sweep.y_steps - 1));
        for (unsigned i = 0; i < sweep.x_steps; ++i)
        {
            const auto& p = domain.points[j * sweep.x_steps + i];
            std::printf("%c ", !p.evaluated ? '?' : (p.operational ? '#' : '.'));
        }
        std::printf("\n");
    }
    if (domain.cancelled)
    {
        std::printf("\ninterrupted — partial map ('?' = not evaluated)\n");
    }
    std::printf("             ");
    for (unsigned i = 0; i < sweep.x_steps; ++i)
    {
        std::printf("--");
    }
    std::printf("\n             eps_r %.1f ... %.1f\n", sweep.x_min, sweep.x_max);
    std::printf("\ncoverage: %.1f %% of the swept grid is operational "
                "('#' = all patterns correct)\n",
                100.0 * domain.coverage());
    std::printf("the paper's calibrated point (eps_r=5.6, lambda_TF=5 nm) lies inside the "
                "domain.\n");
    return 0;
}
