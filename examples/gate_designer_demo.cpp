/// \file gate_designer_demo.cpp
/// \brief Demonstrates the automatic gate designer (the stand-in for the
///        paper's RL agent [28]): starting from a bare two-input skeleton
///        with empty canvas, it searches canvas SiDB placements until the
///        tile implements OR, validated by exhaustive ground-state checks.

#include "io/artifacts.hpp"
#include "io/sqd_writer.hpp"
#include "layout/bestagon_library.hpp"
#include "phys/gate_designer.hpp"

#include <cstdio>
#include <fstream>

using namespace bestagon;
using phys::SiDBSite;

int main(int argc, char** argv)
{
    const std::string out_dir = io::artifact_dir(argc > 1 ? argv[1] : "");
    // skeleton: the OR tile from the library with its canvas dots removed
    // (wires, port pairs, drivers and perturbers stay)
    const auto& lib = layout::BestagonLibrary::instance();
    const auto* reference = lib.lookup(logic::GateType::or2, layout::Port::nw, layout::Port::ne,
                                       layout::Port::se, std::nullopt);
    phys::GateDesign skeleton = reference->design;
    skeleton.sites.resize(skeleton.sites.size() - 1);  // drop the designed canvas dot

    // candidate canvas positions in the tile center
    std::vector<SiDBSite> candidates;
    for (int n = 24; n <= 38; ++n)
    {
        for (int m = 9; m <= 13; ++m)
        {
            candidates.push_back({n, m, 0});
            candidates.push_back({n, m, 1});
        }
    }

    phys::SimulationParameters params;  // mu = -0.32 eV (Fig. 5 parameters)
    phys::DesignerOptions options;
    options.min_canvas_dots = 1;
    options.max_canvas_dots = 4;
    options.max_iterations = 5000;

    std::printf("searching canvas placements for an OR tile (%zu candidates)...\n",
                candidates.size());
    const auto result = phys::design_gate(skeleton, candidates, options, params);
    if (!result.has_value())
    {
        std::printf("no design found within %u iterations — rerun with a larger budget\n",
                    options.max_iterations);
        return 1;
    }

    std::printf("found an operational OR design after %u iterations; canvas dots:\n",
                result->iterations_used);
    for (const auto& s : result->canvas)
    {
        std::printf("  (%d, %d, %d)\n", s.n, s.m, s.l);
    }

    const auto check = phys::check_operational(result->design, params, phys::Engine::exhaustive);
    std::printf("operational check: %llu / %llu patterns correct\n",
                static_cast<unsigned long long>(check.patterns_correct),
                static_cast<unsigned long long>(check.patterns_total));

    std::ofstream sqd{io::artifact_path("designed_or.sqd", out_dir)};
    io::write_sqd(sqd, result->design);
    std::printf("wrote %s/designed_or.sqd for inspection in SiQAD\n", out_dir.c_str());
    return check.operational ? 0 : 1;
}
