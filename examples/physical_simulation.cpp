/// \file physical_simulation.cpp
/// \brief Shows the physical simulation substrate directly: a BDL wire is
///        driven by near/far input perturbers (the paper's refined input
///        methodology) and the ground-state charge configurations are
///        printed for both logic states — the textual analogue of Fig. 1c.

#include "io/render.hpp"
#include "layout/bestagon_library.hpp"
#include "phys/exhaustive.hpp"
#include "phys/operational.hpp"
#include "phys/simanneal.hpp"

#include <cstdio>

using namespace bestagon;

int main()
{
    const auto& lib = layout::BestagonLibrary::instance();
    const auto* wire = lib.lookup(logic::GateType::buf, layout::Port::nw, std::nullopt,
                                  layout::Port::sw, std::nullopt);

    phys::SimulationParameters params;
    params.mu_minus = -0.28;  // the Fig. 1c parameter point

    std::printf("BDL wire, %zu SiDBs, mu=-0.28 eV, eps_r=%.1f, lambda_TF=%.1f nm\n\n",
                wire->design.sites.size(), params.epsilon_r, params.lambda_tf);

    for (std::uint64_t pattern = 0; pattern < 2; ++pattern)
    {
        const auto exact = phys::simulate_gate_pattern(wire->design, pattern, params,
                                                       phys::Engine::exhaustive);
        const auto annealed = phys::simulate_gate_pattern(wire->design, pattern, params,
                                                          phys::Engine::simanneal);
        std::printf("input %llu (perturber %s):\n", static_cast<unsigned long long>(pattern),
                    pattern == 1 ? "near" : "far");
        std::printf("  exhaustive ground state: F = %.5f eV (degeneracy %llu)\n",
                    exact.ground_state.grand_potential,
                    static_cast<unsigned long long>(exact.ground_state.degeneracy));
        std::printf("  SimAnneal ground state:  F = %.5f eV (%s)\n",
                    annealed.ground_state.grand_potential,
                    std::abs(annealed.ground_state.grand_potential -
                             exact.ground_state.grand_potential) < 1e-9
                        ? "matches the exact engine"
                        : "MISMATCH");
        std::printf("  output reads %s\n\n", exact.output_states[0] == phys::PairState::one ? "1"
                                             : exact.output_states[0] == phys::PairState::zero
                                                 ? "0"
                                                 : "undefined");
        std::printf("%s\n", io::render_charges(exact.sites, exact.ground_state.config).c_str());
    }
    return 0;
}
