/// \file quickstart.cpp
/// \brief Quickstart: build a 2:1 multiplexer, run the complete Bestagon
///        design flow, and inspect every artifact it produces.

#include "core/design_flow.hpp"
#include "io/render.hpp"
#include "logic/network.hpp"

#include <cstdio>

int main()
{
    using namespace bestagon;

    // 1. describe the logic: f = s ? b : a
    logic::LogicNetwork mux;
    const auto a = mux.create_pi("a");
    const auto b = mux.create_pi("b");
    const auto s = mux.create_pi("s");
    const auto f = mux.create_or(mux.create_and(a, mux.create_not(s)), mux.create_and(b, s));
    mux.create_po(f, "f");

    // 2. run the full flow: rewrite -> map -> exact P&R -> verify ->
    //    super-tiles -> dot-accurate SiDB layout
    const auto result = core::run_design_flow(mux);
    if (!result.success())
    {
        std::printf("flow failed\n");
        return 1;
    }

    // 3. inspect the artifacts
    std::printf("mapped network: %zu gates, depth %u\n", result.mapped.num_gates(),
                result.mapped.depth());
    std::printf("layout (%s engine):\n%s\n", result.engine_used.c_str(),
                io::render_layout(*result.layout).c_str());
    std::printf("formally equivalent: %s\n",
                result.equivalence == layout::EquivalenceResult::equivalent ? "yes" : "NO");
    std::printf("design rules:        %s\n", result.drc.clean() ? "clean" : "violated");
    std::printf("super-tiles:         %u bands of %u rows (electrode pitch %.1f nm)\n",
                result.supertiles->num_bands(), result.supertiles->expansion_factor,
                result.supertiles->electrode_pitch_nm(layout::ElectrodeTechnology{}));
    std::printf("SiDBs to fabricate:  %zu dots on %.1f nm^2\n", result.sidb->num_sidbs(),
                layout::logical_area_nm2(*result.layout));
    return 0;
}
