/// \file test_clause_allocator.cpp
/// \brief Unit tests for the bump-pointer clause arena: reference stability,
///        metadata round-trips, relocation/forwarding, and — through the
///        solver — garbage collection that preserves watch invariants and
///        produces bit-identical solve traces.

#include "sat/clause_allocator.hpp"
#include "sat/dimacs.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "testing/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace
{

using namespace bestagon;
using sat::ClauseAllocator;
using sat::ClauseRef;
using sat::Lit;

std::vector<Lit> make_lits(std::initializer_list<int> dimacs)
{
    std::vector<Lit> out;
    for (const int l : dimacs)
    {
        out.push_back(Lit{std::abs(l) - 1, l < 0});
    }
    return out;
}

TEST(ClauseAllocator, RoundTripsLiteralsAndMetadata)
{
    ClauseAllocator ca;
    const auto lits = make_lits({1, -2, 3, -4});
    const auto cr = ca.alloc(lits, /*learnt=*/true);

    auto view = ca.view(cr);
    ASSERT_EQ(view.size(), 4U);
    EXPECT_TRUE(view.learnt());
    EXPECT_FALSE(view.deleted());
    EXPECT_FALSE(view.relocated());
    for (std::size_t i = 0; i < lits.size(); ++i)
    {
        EXPECT_EQ(view.lit(i), lits[i]);
    }

    view.set_lbd(7);
    view.set_activity(3.5F);
    EXPECT_EQ(ca.view(cr).lbd(), 7U);
    EXPECT_FLOAT_EQ(ca.view(cr).activity(), 3.5F);

    const auto problem = ca.alloc(make_lits({5, 6}), /*learnt=*/false);
    EXPECT_FALSE(ca.view(problem).learnt());
    EXPECT_EQ(ca.num_clauses(), 2U);
}

TEST(ClauseAllocator, RefsStayValidAcrossArenaGrowth)
{
    ClauseAllocator ca;
    std::vector<ClauseRef> refs;
    std::vector<std::vector<Lit>> expected;
    for (int i = 0; i < 5000; ++i)
    {
        std::vector<Lit> lits;
        const int len = 1 + (i % 7);
        for (int j = 0; j < len; ++j)
        {
            lits.push_back(Lit{i * 7 + j, (i + j) % 2 == 1});
        }
        refs.push_back(ca.alloc(lits, i % 3 == 0));
        expected.push_back(std::move(lits));
    }
    // the arena's backing vector has certainly reallocated by now; every ref
    // (a word index, not a pointer) must still address its clause
    for (std::size_t i = 0; i < refs.size(); ++i)
    {
        const auto view = ca.view(refs[i]);
        ASSERT_EQ(view.size(), expected[i].size()) << "clause " << i;
        EXPECT_EQ(view.lits(), expected[i]) << "clause " << i;
        EXPECT_EQ(view.learnt(), i % 3 == 0) << "clause " << i;
    }
}

TEST(ClauseAllocator, FreeAccountsWastedWords)
{
    ClauseAllocator ca;
    const auto a = ca.alloc(make_lits({1, 2, 3}), false);
    const auto b = ca.alloc(make_lits({4, 5}), false);
    EXPECT_EQ(ca.wasted_words(), 0U);

    ca.free_clause(a);
    EXPECT_TRUE(ca.view(a).deleted());
    EXPECT_GT(ca.wasted_words(), 0U);
    const auto wasted_after_a = ca.wasted_words();

    ca.free_clause(b);
    EXPECT_GT(ca.wasted_words(), wasted_after_a);
    EXPECT_EQ(ca.num_clauses(), 0U);
}

TEST(ClauseAllocator, RelocForwardsAndPreservesMetadata)
{
    ClauseAllocator from;
    ClauseAllocator to;
    const auto lits = make_lits({-1, 2, -3});
    const auto cr = from.alloc(lits, /*learnt=*/true);
    from.view(cr).set_lbd(2);
    from.view(cr).set_activity(1.25F);

    const auto nr = from.reloc(cr, to);
    EXPECT_TRUE(from.view(cr).relocated());
    // relocating again must return the same forwarded target
    EXPECT_EQ(from.reloc(cr, to), nr);

    const auto moved = to.view(nr);
    EXPECT_EQ(moved.lits(), lits);
    EXPECT_TRUE(moved.learnt());
    EXPECT_EQ(moved.lbd(), 2U);
    EXPECT_FLOAT_EQ(moved.activity(), 1.25F);
    EXPECT_FALSE(moved.relocated());
}

/// A seeded uniform random 3-SAT instance near the phase transition, hard
/// enough to trigger learnt-clause reduction (the precondition for garbage
/// collection to move anything). Hand-rolled rather than testkit::random_cnf
/// because mixed clause lengths would admit conflicting unit clauses that
/// abort the load before any search happens.
sat::Cnf hard_instance()
{
    testkit::Rng rng{0xa11'0c47};
    constexpr unsigned num_vars = 120;
    constexpr unsigned num_clauses = static_cast<unsigned>(num_vars * 4.2);
    sat::Cnf cnf;
    cnf.num_vars = num_vars;
    while (cnf.clauses.size() < num_clauses)
    {
        std::vector<int> clause;
        while (clause.size() < 3)
        {
            const int var = 1 + static_cast<int>(rng.below(num_vars));
            const auto clashes = [var](int l) { return std::abs(l) == var; };
            if (std::none_of(clause.begin(), clause.end(), clashes))
            {
                clause.push_back(rng.chance(0.5) ? var : -var);
            }
        }
        cnf.clauses.push_back(std::move(clause));
    }
    return cnf;
}

TEST(ClauseAllocator, GarbageCollectionPreservesSolvingState)
{
    sat::Solver solver;
    ASSERT_TRUE(sat::load_into_solver(solver, hard_instance()));
    const auto first = solver.solve();
    ASSERT_NE(first, sat::Result::unknown);

    const auto stats_before = solver.stats();
    solver.garbage_collect();
    EXPECT_EQ(solver.clause_arena().wasted_words(), 0U);

    // the collected solver must still answer, and incrementally: watches,
    // reasons and the learnt database all survived compaction
    const auto second = solver.solve();
    EXPECT_EQ(second, first);
    EXPECT_GE(solver.stats().conflicts, stats_before.conflicts);
}

/// PHP(pigeons, holes) as a Cnf: exponentially hard for resolution, so the
/// solver piles up far more than the 1000-learnt reduce_db floor and clause
/// deletion (hence garbage collection) is guaranteed to run.
sat::Cnf php_cnf(int pigeons, int holes)
{
    const auto var = [&](int p, int h) { return p * holes + h + 1; };
    sat::Cnf cnf;
    cnf.num_vars = pigeons * holes;
    for (int p = 0; p < pigeons; ++p)
    {
        std::vector<int> somewhere;
        for (int h = 0; h < holes; ++h)
        {
            somewhere.push_back(var(p, h));
        }
        cnf.clauses.push_back(std::move(somewhere));
    }
    for (int h = 0; h < holes; ++h)
    {
        for (int p = 0; p < pigeons; ++p)
        {
            for (int q = p + 1; q < pigeons; ++q)
            {
                cnf.clauses.push_back({-var(p, h), -var(q, h)});
            }
        }
    }
    return cnf;
}

TEST(ClauseAllocator, CompactionIsDeterministic)
{
    // three solvers, three GC policies: never collect, collect at the default
    // waste threshold, collect after every reduction. Identical proofs,
    // statistics and models = nothing in the search keys on arena addresses.
    const auto cnf = php_cnf(9, 8);

    struct Run
    {
        sat::Result result;
        sat::DratProof proof;
        sat::SolverStats stats;
        std::vector<bool> model;
    };
    const auto run_with = [&cnf](double gc_fraction) {
        sat::Solver solver;
        solver.set_gc_wasted_fraction(gc_fraction);
        sat::MemoryProofTracer tracer;
        solver.set_proof_tracer(&tracer);
        EXPECT_TRUE(sat::load_into_solver(solver, cnf));
        Run run;
        run.result = solver.solve();
        run.proof = tracer.take_proof();
        run.stats = solver.stats();
        if (run.result == sat::Result::satisfiable)
        {
            for (sat::Var v = 0; v < solver.num_vars(); ++v)
            {
                run.model.push_back(solver.model_value(v));
            }
        }
        return run;
    };

    const auto never = run_with(1e18);
    const auto standard = run_with(0.25);
    const auto always = run_with(0.0);

    ASSERT_NE(never.result, sat::Result::unknown);
    // the instance must actually have exercised clause deletion + GC,
    // otherwise this test compares three identical no-op runs
    ASSERT_GT(always.stats.deleted_clauses, 0U)
        << "instance too easy: reduce_db never ran, GC untested";

    for (const auto* other : {&standard, &always})
    {
        EXPECT_EQ(other->result, never.result);
        EXPECT_EQ(other->stats.conflicts, never.stats.conflicts);
        EXPECT_EQ(other->stats.decisions, never.stats.decisions);
        EXPECT_EQ(other->stats.propagations, never.stats.propagations);
        EXPECT_EQ(other->stats.restarts, never.stats.restarts);
        EXPECT_EQ(other->stats.learnt_clauses, never.stats.learnt_clauses);
        EXPECT_EQ(other->model, never.model);
        EXPECT_TRUE(other->proof.steps == never.proof.steps) << "DRAT trace diverged under GC";
    }
}

}  // namespace
