#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace
{

using namespace bestagon::core;

TEST(ThreadPool, ResolveThreadCount)
{
    EXPECT_GE(resolve_thread_count(0), 1U);  // 0 = hardware concurrency, at least 1
    EXPECT_EQ(resolve_thread_count(1), 1U);
    EXPECT_EQ(resolve_thread_count(7), 7U);
    EXPECT_EQ(resolve_thread_count(100000), 256U);  // sanity cap
}

TEST(ThreadPool, DeriveSeedIsDeterministicAndDistinct)
{
    // same (base, index) -> same seed; distinct indices -> distinct streams
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i)
    {
        EXPECT_EQ(derive_seed(0x5eed, i), derive_seed(0x5eed, i));
        seeds.insert(derive_seed(0x5eed, i));
    }
    EXPECT_EQ(seeds.size(), 1000U);
    EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce)
{
    for (const unsigned threads : {1U, 2U, 4U, 8U})
    {
        constexpr std::size_t count = 10000;
        std::vector<std::atomic<int>> hits(count);
        parallel_for(threads, count, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < count; ++i)
        {
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads << " threads";
        }
    }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingleItem)
{
    std::atomic<int> calls{0};
    parallel_for(4, 0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    parallel_for(4, 1, [&](std::size_t i) {
        EXPECT_EQ(i, 0U);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    EXPECT_THROW(parallel_for(4, 100,
                              [&](std::size_t i) {
                                  if (i == 42)
                                  {
                                      throw std::runtime_error{"item 42 failed"};
                                  }
                              }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedParallelForCompletesWithoutDeadlock)
{
    constexpr std::size_t outer = 16;
    constexpr std::size_t inner = 64;
    std::vector<std::atomic<int>> hits(outer * inner);
    parallel_for(4, outer, [&](std::size_t i) {
        parallel_for(4, inner, [&](std::size_t j) { ++hits[i * inner + j]; });
    });
    for (std::size_t k = 0; k < outer * inner; ++k)
    {
        ASSERT_EQ(hits[k].load(), 1);
    }
}

TEST(ThreadPool, SharedPoolExercisesRealConcurrencyEvenOnSmallMachines)
{
    EXPECT_GE(ThreadPool::shared().size(), 4U);
    EXPECT_FALSE(ThreadPool::inside_worker());  // the test runner is not a pool worker
}

TEST(ThreadPool, ResultsAreIndependentOfThreadCount)
{
    // identical index-addressed outputs for every worker count
    constexpr std::size_t count = 512;
    const auto run = [&](unsigned threads) {
        std::vector<std::uint64_t> out(count);
        parallel_for(threads, count, [&](std::size_t i) { out[i] = derive_seed(99, i); });
        return out;
    };
    const auto serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(4));
    EXPECT_EQ(serial, run(16));
}

}  // namespace
