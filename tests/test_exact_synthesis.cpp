#include "logic/exact_synthesis.hpp"

#include <gtest/gtest.h>

#include <random>

namespace
{

using namespace bestagon::logic;

TEST(ExactSynthesis, ConstantFunctions)
{
    const auto net0 = exact_synthesize(TruthTable::constant(2, false));
    ASSERT_TRUE(net0.has_value());
    EXPECT_TRUE(net0->simulate()[0].is_const0());
    const auto net1 = exact_synthesize(TruthTable::constant(3, true));
    ASSERT_TRUE(net1.has_value());
    EXPECT_TRUE(net1->simulate()[0].is_const1());
}

TEST(ExactSynthesis, Projections)
{
    const auto net = exact_synthesize(TruthTable::nth_var(3, 1));
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->simulate()[0], TruthTable::nth_var(3, 1));
    EXPECT_EQ(count_two_input_gates(*net), 0U);

    const auto neg = exact_synthesize(~TruthTable::nth_var(2, 0));
    ASSERT_TRUE(neg.has_value());
    EXPECT_EQ(neg->simulate()[0], ~TruthTable::nth_var(2, 0));
}

TEST(ExactSynthesis, SingleGateFunctions)
{
    for (const char* bits : {"1000", "1110", "0110", "0111", "0001", "1001"})
    {
        const auto f = TruthTable::from_binary(bits);
        const auto net = exact_synthesize(f);
        ASSERT_TRUE(net.has_value()) << bits;
        EXPECT_EQ(net->simulate()[0], f) << bits;
        EXPECT_EQ(count_two_input_gates(*net), 1U) << bits;
    }
}

TEST(ExactSynthesis, Xor3NeedsTwoGates)
{
    const auto f = TruthTable::nth_var(3, 0) ^ TruthTable::nth_var(3, 1) ^ TruthTable::nth_var(3, 2);
    const auto net = exact_synthesize(f);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->simulate()[0], f);
    EXPECT_EQ(count_two_input_gates(*net), 2U);
}

TEST(ExactSynthesis, DeclineIsCertifiedMinimality)
{
    // XOR3 needs two gates: capping at one must yield a *certified* decline —
    // the r = 1 refutation carries a checked DRAT proof, no budget involved
    const auto f = TruthTable::nth_var(3, 0) ^ TruthTable::nth_var(3, 1) ^ TruthTable::nth_var(3, 2);
    SynthesisStats stats;
    const auto net = exact_synthesize(f, 1, 50000, &stats, /*certify_unsat=*/true);
    EXPECT_FALSE(net.has_value());
    EXPECT_EQ(stats.unsat_steps, 1U);
    EXPECT_EQ(stats.unknown_steps, 0U);
    EXPECT_EQ(stats.proofs_checked, 1U);
    EXPECT_EQ(stats.proof_failures, 0U);
    EXPECT_TRUE(stats.decline_is_certified());
}

TEST(ExactSynthesis, BudgetExhaustionIsNotCertified)
{
    // a 1-conflict budget cannot refute anything non-trivial: the decline
    // must be flagged as unknown, not as a minimality proof
    const auto f = TruthTable::nth_var(3, 0) ^ TruthTable::nth_var(3, 1) ^ TruthTable::nth_var(3, 2);
    SynthesisStats stats;
    const auto net = exact_synthesize(f, 1, 1, &stats, /*certify_unsat=*/true);
    EXPECT_FALSE(net.has_value());
    EXPECT_GT(stats.unknown_steps, 0U);
    EXPECT_FALSE(stats.decline_is_certified());
}

TEST(ExactSynthesis, MajorityNeedsFourGates)
{
    TruthTable f{3};
    for (unsigned t = 0; t < 8; ++t)
    {
        f.set_bit(t, __builtin_popcount(t) >= 2);
    }
    const auto net = exact_synthesize(f);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->simulate()[0], f);
    // MAJ = ((a^b) & (a^c)) ^ a is optimal in the XAG cost model
    EXPECT_EQ(count_two_input_gates(*net), 4U);
}

/// Property: synthesized networks always realize the requested function.
TEST(ExactSynthesis, RandomFunctionsAreRealizedCorrectly)
{
    std::mt19937 rng{2024};
    for (int iter = 0; iter < 20; ++iter)
    {
        const unsigned n = 2 + rng() % 2;
        TruthTable f{n};
        for (std::uint64_t t = 0; t < f.num_bits(); ++t)
        {
            f.set_bit(t, (rng() & 1U) != 0);
        }
        const auto net = exact_synthesize(f);
        ASSERT_TRUE(net.has_value());
        EXPECT_EQ(net->simulate()[0], f);
    }
}

TEST(NpnDatabase, CachesResults)
{
    NpnDatabase db;
    const auto canon = TruthTable::from_binary("1000");
    const auto* first = db.lookup(canon);
    ASSERT_NE(first, nullptr);
    const auto* second = db.lookup(canon);
    EXPECT_EQ(first, second);  // cached pointer identity
    EXPECT_EQ(db.num_entries(), 1U);
}

TEST(NpnDatabase, ImplementationsAreMinimal)
{
    NpnDatabase db;
    const auto* impl = db.lookup(TruthTable::from_binary("0110"));
    ASSERT_NE(impl, nullptr);
    EXPECT_EQ(count_two_input_gates(*impl), 1U);
}

}  // namespace
