// Ordering-invariance regression tests for the unordered-container audit
// (see DESIGN.md §12). The logic pipeline uses unordered_map/unordered_set
// internally (strash tables, cut signatures, NPN memos, equivalence-checker
// maps); these tests build the same function with permuted node-creation
// orders — which permutes NodeIds and therefore every hash distribution —
// and assert the observable results are identical. If container iteration
// order ever leaks into a result, these tests (and lint check D2) catch it.

#include "layout/equivalence_checking.hpp"
#include "logic/cuts.hpp"
#include "logic/exact_synthesis.hpp"
#include "logic/network.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace
{

using namespace bestagon::logic;

// f = (a & b) ^ (c | d), g = !(b | c) — built with the independent internal
// gates created in natural order...
LogicNetwork build_natural()
{
    LogicNetwork n;
    const auto a = n.create_pi("a");
    const auto b = n.create_pi("b");
    const auto c = n.create_pi("c");
    const auto d = n.create_pi("d");
    const auto ab = n.create_and(a, b);
    const auto cd = n.create_or(c, d);
    const auto bc = n.create_or(b, c);
    n.create_po(n.create_xor(ab, cd), "f");
    n.create_po(n.create_not(bc), "g");
    return n;
}

// ... and with the same gates created in reverse, interleaved with dead
// nodes. PI and PO order (the variable/output order) is identical; only the
// NodeIds of the internal gates differ.
LogicNetwork build_permuted()
{
    LogicNetwork n;
    const auto a = n.create_pi("a");
    const auto b = n.create_pi("b");
    const auto c = n.create_pi("c");
    const auto d = n.create_pi("d");
    const auto bc = n.create_or(b, c);
    static_cast<void>(n.create_and(a, d));  // dead
    const auto cd = n.create_or(c, d);
    const auto ab = n.create_and(b, a);  // commuted fanins
    static_cast<void>(n.create_xor(c, d));  // dead
    const auto g = n.create_not(bc);
    const auto f = n.create_xor(ab, cd);
    n.create_po(f, "f");
    n.create_po(g, "g");
    return n;
}

std::vector<TruthTable> po_tables(const LogicNetwork& n)
{
    return n.simulate();
}

TEST(OrderingInvariance, SimulationAgreesAcrossCreationOrders)
{
    const auto tables_a = po_tables(build_natural());
    const auto tables_b = po_tables(build_permuted());
    ASSERT_EQ(tables_a.size(), tables_b.size());
    for (std::size_t i = 0; i < tables_a.size(); ++i)
    {
        EXPECT_EQ(tables_a[i].to_hex(), tables_b[i].to_hex()) << "PO " << i;
    }
}

TEST(OrderingInvariance, StrashIsInvariantToCreationOrder)
{
    const auto a = strash(sweep(build_natural()));
    const auto b = strash(sweep(build_permuted()));
    EXPECT_EQ(a.num_gates(), b.num_gates());
    EXPECT_TRUE(functionally_equivalent(a, b));
    const auto ta = po_tables(a);
    const auto tb = po_tables(b);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i)
    {
        EXPECT_EQ(ta[i].to_hex(), tb[i].to_hex()) << "PO " << i;
    }
}

TEST(OrderingInvariance, CutFunctionsAreCreationOrderInvariant)
{
    // the PO cone functions computed through cut enumeration (unordered
    // signature sets inside) must match across the two builds
    const auto a = strash(sweep(build_natural()));
    const auto b = strash(sweep(build_permuted()));
    const CutEnumeration cuts_a{a};
    const CutEnumeration cuts_b{b};
    ASSERT_EQ(a.pos().size(), b.pos().size());
    for (std::size_t i = 0; i < a.pos().size(); ++i)
    {
        const auto root_a = a.node(a.pos()[i]).fanin[0];
        const auto root_b = b.node(b.pos()[i]).fanin[0];
        const auto f_a = compute_cut_function(a, root_a, a.pis());
        const auto f_b = compute_cut_function(b, root_b, b.pis());
        EXPECT_EQ(f_a.to_hex(), f_b.to_hex()) << "PO " << i;
    }
}

TEST(OrderingInvariance, RewritePreservesFunctionForEitherOrder)
{
    NpnDatabase db;
    const auto a = rewrite(strash(sweep(build_natural())), db);
    const auto b = rewrite(strash(sweep(build_permuted())), db);
    EXPECT_TRUE(functionally_equivalent(a, build_natural()));
    EXPECT_TRUE(functionally_equivalent(b, build_natural()));
    EXPECT_EQ(a.num_gates(), b.num_gates())
        << "rewriting must choose the same replacements regardless of NodeId numbering";
}

TEST(OrderingInvariance, TechMappingIsInvariantToCreationOrder)
{
    const auto a = map_to_bestagon(build_natural());
    const auto b = map_to_bestagon(build_permuted());
    EXPECT_EQ(a.num_gates(), b.num_gates());
    const auto ta = po_tables(a);
    const auto tb = po_tables(b);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i)
    {
        EXPECT_EQ(ta[i].to_hex(), tb[i].to_hex()) << "PO " << i;
    }
}

TEST(OrderingInvariance, EquivalenceVerdictAgreesAcrossCreationOrders)
{
    using bestagon::layout::EquivalenceResult;
    using bestagon::layout::check_equivalence;
    const auto a = build_natural();
    const auto b = build_permuted();
    EXPECT_EQ(check_equivalence(a, b), EquivalenceResult::equivalent);
    EXPECT_EQ(check_equivalence(map_to_bestagon(a), map_to_bestagon(b)),
              EquivalenceResult::equivalent);

    // a genuinely different function must be rejected no matter which build
    // it is compared against; repeating the identical check must reproduce
    // the identical counterexample bit-for-bit
    LogicNetwork other;
    {
        const auto pa = other.create_pi("a");
        const auto pb = other.create_pi("b");
        const auto pc = other.create_pi("c");
        const auto pd = other.create_pi("d");
        other.create_po(other.create_and(other.create_and(pa, pb), other.create_and(pc, pd)),
                        "f");
        other.create_po(other.create_not(pb), "g");
    }
    bestagon::layout::EquivalenceStats stats_1;
    bestagon::layout::EquivalenceStats stats_2;
    EXPECT_EQ(check_equivalence(a, other, &stats_1), EquivalenceResult::not_equivalent);
    EXPECT_EQ(check_equivalence(b, other), EquivalenceResult::not_equivalent);
    EXPECT_EQ(check_equivalence(a, other, &stats_2), EquivalenceResult::not_equivalent);
    EXPECT_EQ(stats_1.counterexample, stats_2.counterexample)
        << "repeating the same check must reproduce the same counterexample";
}

TEST(OrderingInvariance, RepeatedRunsAreBitIdentical)
{
    // the same input network processed twice must give byte-equal outcomes
    const auto base = build_natural();
    const auto m1 = map_to_bestagon(base);
    const auto m2 = map_to_bestagon(base);
    ASSERT_EQ(m1.size(), m2.size());
    for (LogicNetwork::NodeId id = 0; id < m1.size(); ++id)
    {
        EXPECT_EQ(m1.node(id).type, m2.node(id).type);
        EXPECT_EQ(m1.node(id).fanin, m2.node(id).fanin);
    }
}

}  // namespace
