#include "layout/gate_level_layout.hpp"

#include "logic/network.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::layout;
using bestagon::logic::GateType;
using bestagon::logic::LogicNetwork;

/// Builds the xor2 reference: PIs at (0,0) and (1,0), XOR at (1,1), PO (1,2).
struct XorFixture
{
    LogicNetwork net;
    GateLevelLayout layout{2, 3};

    XorFixture()
    {
        const auto a = net.create_pi("a");
        const auto b = net.create_pi("b");
        const auto x = net.create_xor(a, b);
        const auto f = net.create_po(x, "f");

        Occupant pa;
        pa.type = GateType::pi;
        pa.node = a;
        pa.label = "a";
        pa.out_a = Port::se;
        EXPECT_TRUE(layout.add_occupant({0, 0}, pa));

        Occupant pb;
        pb.type = GateType::pi;
        pb.node = b;
        pb.label = "b";
        pb.out_a = Port::sw;
        EXPECT_TRUE(layout.add_occupant({1, 0}, pb));

        Occupant gx;
        gx.type = GateType::xor2;
        gx.node = x;
        gx.in_a = Port::nw;
        gx.in_b = Port::ne;
        gx.out_a = Port::sw;
        EXPECT_TRUE(layout.add_occupant({0, 1}, gx));

        Occupant pf;
        pf.type = GateType::po;
        pf.node = f;
        pf.label = "f";
        pf.in_a = Port::ne;
        EXPECT_TRUE(layout.add_occupant({0, 2}, pf));
    }
};

TEST(GateLevelLayout, DimensionsAndBounds)
{
    GateLevelLayout l{3, 4};
    EXPECT_EQ(l.width(), 3U);
    EXPECT_EQ(l.height(), 4U);
    EXPECT_EQ(l.area(), 12U);
    EXPECT_TRUE(l.in_bounds({2, 3}));
    EXPECT_FALSE(l.in_bounds({3, 0}));
    EXPECT_FALSE(l.in_bounds({0, -1}));
}

TEST(GateLevelLayout, RejectsPiOutsideTopRow)
{
    GateLevelLayout l{2, 3};
    Occupant pi;
    pi.type = GateType::pi;
    pi.out_a = Port::sw;
    std::string err;
    EXPECT_FALSE(l.add_occupant({0, 1}, pi, &err));
    EXPECT_FALSE(err.empty());
}

TEST(GateLevelLayout, RejectsPoOutsideBottomRow)
{
    GateLevelLayout l{2, 3};
    Occupant po;
    po.type = GateType::po;
    po.in_a = Port::nw;
    EXPECT_FALSE(l.add_occupant({0, 0}, po));
}

TEST(GateLevelLayout, RejectsGateSharingTile)
{
    GateLevelLayout l{2, 3};
    Occupant g;
    g.type = GateType::and2;
    g.in_a = Port::nw;
    g.in_b = Port::ne;
    g.out_a = Port::sw;
    EXPECT_TRUE(l.add_occupant({0, 1}, g));
    Occupant w;
    w.type = GateType::buf;
    w.in_a = Port::nw;
    w.out_a = Port::se;
    EXPECT_FALSE(l.add_occupant({0, 1}, w));
}

TEST(GateLevelLayout, AllowsTwoWiresWithDisjointPorts)
{
    GateLevelLayout l{2, 3};
    Occupant w1;
    w1.type = GateType::buf;
    w1.in_a = Port::nw;
    w1.out_a = Port::se;
    Occupant w2;
    w2.type = GateType::buf;
    w2.in_a = Port::ne;
    w2.out_a = Port::sw;
    EXPECT_TRUE(l.add_occupant({0, 1}, w1));
    EXPECT_TRUE(l.add_occupant({0, 1}, w2));
    EXPECT_EQ(l.num_crossing_tiles(), 1U);

    // a third occupant must be rejected
    Occupant w3;
    w3.type = GateType::buf;
    w3.in_a = Port::nw;
    w3.out_a = Port::sw;
    EXPECT_FALSE(l.add_occupant({0, 1}, w3));
}

TEST(GateLevelLayout, RejectsPortConflictBetweenWires)
{
    GateLevelLayout l{2, 3};
    Occupant w1;
    w1.type = GateType::buf;
    w1.in_a = Port::nw;
    w1.out_a = Port::se;
    Occupant w2;
    w2.type = GateType::buf;
    w2.in_a = Port::nw;  // conflicts with w1
    w2.out_a = Port::sw;
    EXPECT_TRUE(l.add_occupant({0, 1}, w1));
    EXPECT_FALSE(l.add_occupant({0, 1}, w2));
}

TEST(GateLevelLayout, Statistics)
{
    const XorFixture fx;
    EXPECT_EQ(fx.layout.num_occupied_tiles(), 4U);
    EXPECT_EQ(fx.layout.num_gate_tiles(), 1U);
    EXPECT_EQ(fx.layout.num_wire_segments(), 0U);
}

TEST(GateLevelLayout, ExtractNetworkReconstructsFunction)
{
    const XorFixture fx;
    const auto extracted = fx.layout.extract_network(fx.net);
    EXPECT_TRUE(bestagon::logic::functionally_equivalent(fx.net, extracted));
}

TEST(GateLevelLayout, ExtractDetectsDanglingInputs)
{
    LogicNetwork net;
    const auto a = net.create_pi("a");
    const auto f = net.create_po(net.create_buf(a), "f");
    static_cast<void>(f);

    GateLevelLayout l{1, 2};
    Occupant po;
    po.type = GateType::po;
    po.node = net.pos()[0];
    po.in_a = Port::ne;  // nothing drives this
    ASSERT_TRUE(l.add_occupant({0, 1}, po));
    EXPECT_THROW(static_cast<void>(l.extract_network(net)), std::runtime_error);
}

TEST(GateLevelLayout, ZoneFollowsScheme)
{
    GateLevelLayout l{2, 6};
    EXPECT_EQ(l.zone({0, 0}), 0U);
    EXPECT_EQ(l.zone({1, 5}), 1U);
}

}  // namespace
