#include "layout/exact_physical_design.hpp"

#include "layout/apply_gate_library.hpp"
#include "layout/defect_map.hpp"
#include "layout/design_rules.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"
#include "phys/defect.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using namespace bestagon::layout;

logic::LogicNetwork mapped_benchmark(const std::string& name)
{
    const auto* bm = logic::find_benchmark(name);
    logic::NpnDatabase db;
    return logic::map_to_bestagon(logic::rewrite(logic::to_xag(bm->build()), db));
}

TEST(ExactPD, MinimumHeightIsCriticalPathPlusOne)
{
    logic::LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    n.create_po(n.create_xor(a, b));
    // PI (row 0) -> gate (row 1) -> PO (row 2)
    EXPECT_EQ(minimum_height(n), 3U);
}

TEST(ExactPD, Xor2MatchesPaperAspectRatio)
{
    const auto mapped = mapped_benchmark("xor2");
    const auto layout = exact_physical_design(mapped);
    ASSERT_TRUE(layout.has_value());
    EXPECT_EQ(layout->width(), 2U);
    EXPECT_EQ(layout->height(), 3U);  // paper Table 1: 2x3
}

TEST(ExactPD, RejectsNonCompliantNetworks)
{
    logic::LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto x = n.create_and(a, b);
    n.create_po(x);
    n.create_po(x);  // fan-out 2 without fanout node
    EXPECT_THROW(static_cast<void>(exact_physical_design(n)), std::invalid_argument);
}

TEST(ExactPD, InfeasibleSizeLimitsReturnNullopt)
{
    const auto mapped = mapped_benchmark("c17");
    ExactPDOptions opt;
    opt.max_width = 2;
    opt.max_height = 4;  // too small for c17
    ExactPDStats stats;
    const auto layout = exact_physical_design(mapped, opt, &stats);
    EXPECT_FALSE(layout.has_value());
    // c17 has 5 PIs, so no candidate size even exists under max_width = 2
    EXPECT_FALSE(stats.message.empty());
}

/// 2-PI network whose depth constraints pin four gates to one row: at the
/// minimal height and width <= 3 every aspect ratio is genuinely refuted.
logic::LogicNetwork congestion_network()
{
    logic::LogicNetwork n;
    const auto a = n.create_pi("a");
    const auto b = n.create_pi("b");
    const auto fa = n.create_fanout(a);
    const auto fb = n.create_fanout(b);
    const auto fa1 = n.create_fanout(fa);
    const auto fa2 = n.create_fanout(fa);
    const auto fb1 = n.create_fanout(fb);
    const auto fb2 = n.create_fanout(fb);
    const auto x1 = n.create_xor(fa1, fb1);
    const auto x2 = n.create_and(fa1, fb2);
    const auto x3 = n.create_or(fa2, fb1);
    const auto x4 = n.create_nand(fa2, fb2);
    const auto y1 = n.create_xor(x1, x2);
    const auto y2 = n.create_xor(x3, x4);
    n.create_po(n.create_xor(y1, y2), "f");
    return n;
}

TEST(ExactPD, CertifiesEveryUnsatSize)
{
    const auto n = congestion_network();
    ExactPDOptions opt;
    opt.max_width = 3;
    opt.max_height = minimum_height(n);
    opt.certify_unsat = true;
    ExactPDStats stats;
    const auto layout = exact_physical_design(n, opt, &stats);
    EXPECT_FALSE(layout.has_value());
    EXPECT_FALSE(stats.budget_exhausted);
    EXPECT_GT(stats.sizes_tried, 0U);
    EXPECT_EQ(stats.proofs_checked, stats.sizes_tried);  // every decline certified
    EXPECT_EQ(stats.proof_failures, 0U);
}

/// The fresh-per-size reference lane (incremental = false) must certify its
/// refuted sizes exactly like the persistent-solver lane does.
TEST(ExactPD, FreshLaneCertifiesEveryUnsatSize)
{
    const auto n = congestion_network();
    ExactPDOptions opt;
    opt.incremental = false;
    opt.max_width = 3;
    opt.max_height = minimum_height(n);
    opt.certify_unsat = true;
    ExactPDStats stats;
    const auto layout = exact_physical_design(n, opt, &stats);
    EXPECT_FALSE(layout.has_value());
    EXPECT_FALSE(stats.budget_exhausted);
    EXPECT_GT(stats.sizes_tried, 0U);
    EXPECT_EQ(stats.proofs_checked, stats.sizes_tried);
    EXPECT_EQ(stats.proof_failures, 0U);
    EXPECT_EQ(stats.grid_generations, 0U);  // no persistent grid on this lane
}

TEST(ExactPD, RecordsPerSizeVerdictsAndGridGenerations)
{
    const auto n = congestion_network();
    ExactPDOptions opt;
    opt.max_width = 3;
    opt.max_height = minimum_height(n);
    ExactPDStats stats;
    const auto layout = exact_physical_design(n, opt, &stats);
    ASSERT_FALSE(layout.has_value());
    ASSERT_EQ(stats.size_verdicts.size(), stats.sizes_tried);
    for (const auto& v : stats.size_verdicts)
    {
        EXPECT_EQ(v.result, sat::Result::unsatisfiable)
            << v.size.width << "x" << v.size.height << " was not refuted";
    }
    // widths 2 and 3 at the single feasible height: the union grid grew once
    // per width step of the ladder
    EXPECT_GE(stats.grid_generations, 2U);
}

/// A starved conflict budget cuts sizes mid-ladder: the run must latch
/// budget_exhausted (suppressing any infeasibility diagnosis), keep walking
/// the remaining ratios, and record the unknown verdicts it collected.
TEST(ExactPD, BudgetExhaustionMidLadderIsLatchedAndDiagnosisSkipped)
{
    const auto n = congestion_network();
    ExactPDOptions opt;
    opt.max_width = 3;
    opt.max_height = minimum_height(n);
    opt.conflicts_per_size = 1;
    opt.diagnose_infeasibility = true;
    ExactPDStats stats;
    const auto layout = exact_physical_design(n, opt, &stats);
    EXPECT_FALSE(layout.has_value());
    EXPECT_TRUE(stats.budget_exhausted);
    EXPECT_TRUE(stats.refuting_groups.empty());  // a truncated decline proves nothing
    bool saw_unknown = false;
    for (const auto& v : stats.size_verdicts)
    {
        saw_unknown = saw_unknown || v.result == sat::Result::unknown;
    }
    EXPECT_TRUE(saw_unknown);
}

TEST(ExactPD, PreTrippedTokenCancelsBeforeAnySolve)
{
    const auto n = congestion_network();
    core::StopSource source;
    source.request_stop();
    ExactPDOptions opt;
    opt.run.token = source.token();
    ExactPDStats stats;
    const auto layout = exact_physical_design(n, opt, &stats);
    EXPECT_FALSE(layout.has_value());
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(stats.sizes_tried, 0U);
    EXPECT_EQ(stats.message, "cancelled");
}

TEST(ExactPD, ZeroTimeBudgetExhaustsBeforeAnySolve)
{
    const auto n = congestion_network();
    ExactPDOptions opt;
    opt.time_budget_ms = 0;
    ExactPDStats stats;
    const auto layout = exact_physical_design(n, opt, &stats);
    EXPECT_FALSE(layout.has_value());
    EXPECT_TRUE(stats.budget_exhausted);
    EXPECT_EQ(stats.sizes_tried, 0U);
    EXPECT_EQ(stats.message, "time budget exhausted");
}

/// Both ladder lanes must agree on defect avoidance: same feasibility and
/// the same area-minimal size when a corner tile is blocked.
TEST(ExactPD, DefectAvoidanceMatchesBetweenLanes)
{
    const auto mapped = mapped_benchmark("xor2");
    phys::SurfaceDefect corner;
    corner.site = tile_origin({0, 0});
    corner.kind = phys::DefectKind::structural;
    corner.charge = 0.0;
    corner.exclusion_radius_nm = 1.0;

    ExactPDOptions inc_opt;
    inc_opt.defects.add(corner);
    inc_opt.incremental = true;
    const auto inc = exact_physical_design(mapped, inc_opt);

    ExactPDOptions fresh_opt = inc_opt;
    fresh_opt.incremental = false;
    const auto fresh = exact_physical_design(mapped, fresh_opt);

    ASSERT_TRUE(inc.has_value());
    ASSERT_TRUE(fresh.has_value());
    EXPECT_EQ(inc->width(), fresh->width());
    EXPECT_EQ(inc->height(), fresh->height());
    for (const auto& tile : inc->all_tiles())
    {
        if (!inc->is_empty(tile))
        {
            EXPECT_FALSE(tile_blocked(tile, inc_opt.defects));
        }
    }
}

TEST(ExactPD, DiagnosesRefutingConstraintGroups)
{
    const auto n = congestion_network();
    ExactPDOptions opt;
    opt.max_width = 2;
    opt.max_height = minimum_height(n);
    opt.diagnose_infeasibility = true;
    ExactPDStats stats;
    const auto layout = exact_physical_design(n, opt, &stats);
    ASSERT_FALSE(layout.has_value());
    // four gates pinned to a two-tile row: placement + tile exclusivity
    // refute the instance; routing and capacity are not needed
    ASSERT_FALSE(stats.refuting_groups.empty());
    EXPECT_EQ(stats.refuting_groups,
              (std::vector<std::string>{"exclusivity", "placement"}));
}

TEST(ExactPD, NoDiagnosisWhenLayoutExists)
{
    const auto mapped = mapped_benchmark("xor2");
    ExactPDOptions opt;
    opt.certify_unsat = true;
    opt.diagnose_infeasibility = true;
    ExactPDStats stats;
    const auto layout = exact_physical_design(mapped, opt, &stats);
    ASSERT_TRUE(layout.has_value());
    EXPECT_TRUE(stats.refuting_groups.empty());
    EXPECT_EQ(stats.proof_failures, 0U);
}

/// Property suite over benchmarks small enough for fast exact solving:
/// layouts are functionally correct, DRC-clean and respect the documented
/// aspect-ratio scale of the paper's Table 1.
class ExactPDBenchmark : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ExactPDBenchmark, ProducesCorrectAndCleanLayouts)
{
    const auto* bm = logic::find_benchmark(GetParam());
    const auto spec = bm->build();
    const auto mapped = mapped_benchmark(GetParam());
    ExactPDOptions opt;
    opt.time_budget_ms = 60000;
    const auto layout = exact_physical_design(mapped, opt);
    ASSERT_TRUE(layout.has_value());

    // functional correctness via extraction
    const auto extracted = layout->extract_network(mapped);
    EXPECT_TRUE(logic::functionally_equivalent(spec, extracted));

    // design rules
    const auto drc = check_design_rules(*layout);
    EXPECT_TRUE(drc.clean()) << (drc.violations.empty() ? "" : drc.violations.front().message);

    // area stays within 1.5x of the paper's Table 1 (netlists are partially
    // reconstructed, so exact equality is not guaranteed)
    EXPECT_LE(layout->area(), bm->paper.area_tiles * 3 / 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(SmallAndMedium, ExactPDBenchmark,
                         ::testing::Values("xor2", "xnor2", "par_gen", "mux21", "par_check",
                                           "xor5_r1", "majority", "c17"));

TEST(ExactPD, PlacesAllNodesExactlyOnce)
{
    const auto mapped = mapped_benchmark("mux21");
    const auto layout = exact_physical_design(mapped);
    ASSERT_TRUE(layout.has_value());
    std::size_t placed = 0;
    for (const auto& t : layout->all_tiles())
    {
        for (const auto& occ : layout->occupants(t))
        {
            if (!occ.is_wire())
            {
                ++placed;
            }
        }
    }
    std::size_t expected = 0;
    for (const auto id : mapped.topological_order())
    {
        static_cast<void>(id);
        ++expected;
    }
    EXPECT_EQ(placed, expected);
}

}  // namespace
