#include "phys/operational.hpp"

#include "phys/gate_designer.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::phys;
using bestagon::logic::TruthTable;

/// The validated vertical BDL wire in tile-local coordinates.
GateDesign vertical_wire()
{
    GateDesign d;
    d.name = "wire";
    for (int k = 0; k < 6; ++k)
    {
        const int m = 1 + 4 * k;
        d.sites.push_back({15, m, 0});
        d.sites.push_back({15, m + 1, 0});
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.output_pairs.push_back({{15, 21, 0}, {15, 22, 0}});
    d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
    d.output_perturbers.push_back({15, 25, 1});
    d.functions.push_back(TruthTable::from_binary("10"));
    return d;
}

TEST(Operational, InstanceSitesSelectPerturbersByPattern)
{
    const auto d = vertical_wire();
    const auto s0 = d.instance_sites(0);
    const auto s1 = d.instance_sites(1);
    EXPECT_EQ(s0.size(), d.sites.size() + 2);  // driver + output perturber
    // pattern 0 places the far perturber, pattern 1 the near one
    EXPECT_NE(std::find(s0.begin(), s0.end(), d.drivers[0].far_site), s0.end());
    EXPECT_NE(std::find(s1.begin(), s1.end(), d.drivers[0].near_site), s1.end());
}

TEST(Operational, ReadPairStates)
{
    const BDLPair pair{{0, 0, 0}, {0, 1, 0}};
    const std::vector<SiDBSite> sites{{0, 0, 0}, {0, 1, 0}};
    EXPECT_EQ(read_pair(pair, sites, {1, 0}), PairState::zero);
    EXPECT_EQ(read_pair(pair, sites, {0, 1}), PairState::one);
    EXPECT_EQ(read_pair(pair, sites, {1, 1}), PairState::undefined);
    EXPECT_EQ(read_pair(pair, sites, {0, 0}), PairState::undefined);
}

/// The paper's central physical claim at gate level: BDL wires transmit
/// logic states through Coulombic pressure from near/far input perturbers.
TEST(Operational, VerticalWireIsOperationalAtBothMuValues)
{
    for (const double mu : {-0.32, -0.28})
    {
        SimulationParameters p;
        p.mu_minus = mu;
        const auto result = check_operational(vertical_wire(), p, Engine::exhaustive);
        EXPECT_TRUE(result.operational) << "mu = " << mu;
        EXPECT_EQ(result.patterns_correct, 2U);
    }
}

TEST(Operational, WireAlsoPassesWithSimAnneal)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    const auto result = check_operational(vertical_wire(), p, Engine::simanneal);
    EXPECT_TRUE(result.operational);
}

TEST(Operational, BrokenWireIsDetected)
{
    auto d = vertical_wire();
    // remove the middle pairs: the chain can no longer transmit
    d.sites.erase(d.sites.begin() + 4, d.sites.begin() + 10);
    SimulationParameters p;
    p.mu_minus = -0.32;
    const auto result = check_operational(d, p, Engine::exhaustive);
    EXPECT_FALSE(result.operational);
}

TEST(GateDesigner, FindsTrivialCompletionOfAWire)
{
    // skeleton: wire with the third pair removed; candidates contain the
    // missing sites, so the designer must reconstruct a working wire
    auto skeleton = vertical_wire();
    skeleton.sites.erase(skeleton.sites.begin() + 4, skeleton.sites.begin() + 6);
    std::vector<SiDBSite> candidates;
    for (int m = 8; m <= 11; ++m)
    {
        for (int l = 0; l < 2; ++l)
        {
            candidates.push_back({15, m, l});
        }
    }
    SimulationParameters p;
    p.mu_minus = -0.32;
    DesignerOptions opt;
    opt.min_canvas_dots = 1;
    opt.max_canvas_dots = 2;
    opt.max_iterations = 2000;
    const auto result = design_gate(skeleton, candidates, opt, p);
    ASSERT_TRUE(result.has_value());
    const auto check = check_operational(result->design, p, Engine::exhaustive);
    EXPECT_TRUE(check.operational);
}

TEST(GateDesigner, FiltersCollidingCandidates)
{
    const auto skeleton = vertical_wire();
    // all candidates collide with existing sites -> no design possible
    const std::vector<SiDBSite> candidates(skeleton.sites.begin(), skeleton.sites.begin() + 3);
    SimulationParameters p;
    DesignerOptions opt;
    opt.max_iterations = 10;
    EXPECT_EQ(design_gate(skeleton, candidates, opt, p), std::nullopt);
}

}  // namespace
