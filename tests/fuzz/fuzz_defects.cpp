/// \file fuzz_defects.cpp
/// \brief Differential fuzzing of the defect-aware simulation path: the
///        defect oracle across seeds and operating points, and the .sqd
///        reader against mutated / garbage documents (which must record
///        errors, never throw).

#include "io/sqd_reader.hpp"
#include "io/sqd_writer.hpp"
#include "phys/defect.hpp"
#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace
{

using namespace bestagon;
using bestagon::logic::TruthTable;

/// The validated vertical BDL wire in tile-local coordinates.
phys::GateDesign vertical_wire()
{
    phys::GateDesign d;
    d.name = "wire";
    for (int k = 0; k < 6; ++k)
    {
        const int m = 1 + 4 * k;
        d.sites.push_back({15, m, 0});
        d.sites.push_back({15, m + 1, 0});
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.output_pairs.push_back({{15, 21, 0}, {15, 22, 0}});
    d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
    d.output_perturbers.push_back({15, 25, 1});
    d.functions.push_back(TruthTable::from_binary("10"));
    return d;
}

TEST(FuzzDefects, DefectDifferentialAcrossSeedsAndOperatingPoints)
{
    const auto budget = testkit::fuzz_budget(0x6d0'0010, 12);
    const auto design = vertical_wire();
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        const auto seed = testkit::case_seed(budget.base_seed, i);
        phys::SimulationParameters params;
        params.mu_minus = (i % 2 == 0) ? -0.32 : -0.28;  // both paper operating points
        const auto verdict = testkit::defect_differential(design, params, seed);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("defects", budget.base_seed, i);
    }
}

/// The .sqd reader's whole contract is "record, don't throw": any mutation
/// of a well-formed document — and any outright garbage — must come back as
/// SqdContents with errors, never as an exception.
TEST(FuzzDefects, SqdReaderNeverThrowsOnMutatedDocuments)
{
    const auto budget = testkit::fuzz_budget(0x6d0'0011, 200);
    const auto design = vertical_wire();

    phys::DefectSurface surface;
    const phys::DefectRegion region{-10, 40, -10, 40};
    phys::DefectSampleParams sample_params;
    sample_params.density_per_nm2 = 0.02;
    for (const auto& d : sample_defect_surface(region, sample_params, 7).defects())
    {
        surface.add(d);
    }
    std::ostringstream out;
    io::write_sqd(out, design, surface);
    const std::string pristine = out.str();

    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        std::string doc = pristine;
        const unsigned mutations = 1 + static_cast<unsigned>(rng.below(8));
        for (unsigned m = 0; m < mutations; ++m)
        {
            const auto pos = static_cast<std::size_t>(rng.below(doc.size()));
            switch (rng.below(3))
            {
                case 0:  // overwrite with a random byte
                    doc[pos] = static_cast<char>(rng.below(256));
                    break;
                case 1:  // delete a span
                    doc.erase(pos, 1 + static_cast<std::size_t>(rng.below(16)));
                    break;
                default:  // duplicate a span (unbalances open/close tags)
                    doc.insert(pos, doc.substr(pos, 1 + static_cast<std::size_t>(rng.below(16))));
                    break;
            }
            if (doc.empty())
            {
                doc = "x";
            }
        }
        std::istringstream in{doc};
        io::SqdContents contents;
        ASSERT_NO_THROW(contents = io::read_sqd(in))
            << testkit::reproducer("sqd-mutate", budget.base_seed, i);
        // defects that did parse must have survived DefectSurface validation
        for (const auto& d : contents.defects.defects())
        {
            ASSERT_GE(d.exclusion_radius_nm, 0.0)
                << testkit::reproducer("sqd-mutate", budget.base_seed, i);
        }
    }
}

/// Mutation coverage: an engine that drops the defect background must be
/// detected by the oracle.
TEST(FuzzDefects, OracleCatchesIgnoredDefectPotentials)
{
    const auto verdict =
        testkit::defect_differential(vertical_wire(), phys::SimulationParameters{}, 0xbad5eed,
                                     1e-12, testkit::DefectFault::ignore_defect_potentials);
    ASSERT_FALSE(verdict.ok) << "oracle missed a kernel that ignores defect potentials";
    EXPECT_NE(verdict.detail.find("v_"), std::string::npos) << verdict.detail;
}

}  // namespace
