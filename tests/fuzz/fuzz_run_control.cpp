/// \file fuzz_run_control.cpp
/// \brief Fault-injected run control across the whole design flow: random
///        networks run under random cancellation / deadline scenarios, and
///        the run_control_differential oracle checks that a cut run never
///        throws, returns within a small multiple of its budget, and keeps
///        artifacts consistent with the per-stage diagnostics.

#include "core/run_control.hpp"
#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace
{

using namespace bestagon;

testkit::XagOptions small_networks()
{
    testkit::XagOptions options;
    options.max_pis = 4;
    options.min_gates = 2;
    options.max_gates = 10;
    options.max_pos = 2;
    return options;
}

core::FlowOptions budgeted_flow_options()
{
    core::FlowOptions options;
    options.exact_options.max_width = 8;
    options.exact_options.max_height = 12;
    options.exact_options.conflicts_per_size = 20000;
    options.exact_options.time_budget_ms = 10000;
    return options;
}

/// The run-control scenarios the fuzzer rotates through.
enum class Scenario : unsigned
{
    pre_cancelled,     ///< the token tripped before the flow started
    concurrent_stop,   ///< a watchdog thread trips the token mid-flow
    tiny_deadline,     ///< a 0..40 ms global deadline
    stage_budgets,     ///< unlimited overall, tiny per-stage budgets
    count
};

TEST(FuzzRunControl, CutRunsStayWellFormed)
{
    const auto budget = testkit::fuzz_budget(0x2c0'0001, 16);
    unsigned interruptions = 0;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        const auto spec = testkit::random_network(rng, small_networks());
        auto options = budgeted_flow_options();
        options.validate_gates = rng.chance(0.5);
        options.validation_engine =
            rng.chance(0.5) ? phys::Engine::exhaustive : phys::Engine::simanneal;
        options.validation_retries = static_cast<unsigned>(rng.below(3));

        core::StopSource source;
        std::thread watchdog;
        const auto scenario = static_cast<Scenario>(i % static_cast<unsigned>(Scenario::count));
        switch (scenario)
        {
            case Scenario::pre_cancelled:
                source.request_stop();
                options.stop = source.token();
                break;
            case Scenario::concurrent_stop:
            {
                options.stop = source.token();
                const auto delay_ms = rng.below(30);
                watchdog = std::thread{[&source, delay_ms]() {
                    std::this_thread::sleep_for(std::chrono::milliseconds{delay_ms});
                    source.request_stop();
                }};
                break;
            }
            case Scenario::tiny_deadline:
                options.deadline_ms = static_cast<std::int64_t>(rng.below(41));
                break;
            case Scenario::stage_budgets:
                options.exact_options.time_budget_ms = static_cast<std::int64_t>(rng.below(10));
                options.equivalence_budget_ms = static_cast<std::int64_t>(rng.below(10));
                options.validation_budget_ms = static_cast<std::int64_t>(rng.below(10));
                break;
            case Scenario::count: break;
        }

        testkit::RunControlOracleStats stats;
        const auto verdict = testkit::run_control_differential(spec, options, 2000, &stats);
        if (watchdog.joinable())
        {
            watchdog.join();
        }
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("run-control", budget.base_seed, i);
        interruptions += stats.interrupted ? 1 : 0;
    }
    // the scenarios must actually exercise the cut paths, not only complete
    EXPECT_GT(interruptions, 0U) << "no scenario ever interrupted the flow";
}

TEST(FuzzRunControl, UncontrolledRunsAlsoSatisfyTheOracle)
{
    // the invariants hold with no stop or deadline configured, too — and the
    // flow must then produce a layout for every network the engines accept
    const auto budget = testkit::fuzz_budget(0x2c0'0002, 8);
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        const auto spec = testkit::random_network(rng, small_networks());
        testkit::RunControlOracleStats stats;
        const auto verdict =
            testkit::run_control_differential(spec, budgeted_flow_options(), 2000, &stats);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("run-control-plain", budget.base_seed, i);
        EXPECT_FALSE(stats.interrupted)
            << testkit::reproducer("run-control-plain", budget.base_seed, i);
    }
}

/// Mutation coverage: the oracle must notice a flow that forgets its stage
/// accounting, and one that claims equivalence without a layout.
TEST(FuzzRunControl, OracleCatchesDroppedDiagnostics)
{
    testkit::Rng rng{testkit::case_seed(0x2c0'0003, 0)};
    const auto spec = testkit::random_network(rng, small_networks());
    const auto verdict = testkit::run_control_differential(
        spec, budgeted_flow_options(), 2000, nullptr, testkit::RunControlFault::drop_diagnostics);
    ASSERT_FALSE(verdict.ok) << "oracle missed a flow with no stage diagnostics";
    EXPECT_NE(verdict.detail.find("no stage diagnostics"), std::string::npos) << verdict.detail;
}

TEST(FuzzRunControl, OracleCatchesForgedSuccess)
{
    testkit::Rng rng{testkit::case_seed(0x2c0'0004, 0)};
    const auto spec = testkit::random_network(rng, small_networks());
    const auto verdict = testkit::run_control_differential(
        spec, budgeted_flow_options(), 2000, nullptr, testkit::RunControlFault::forge_success);
    ASSERT_FALSE(verdict.ok) << "oracle missed an equivalent verdict without a layout";
    // either consistency check may fire first: "equivalent verdict without a
    // layout" or "derived artifacts exist without a gate-level layout"
    EXPECT_NE(verdict.detail.find("without a"), std::string::npos) << verdict.detail;
}

}  // namespace
