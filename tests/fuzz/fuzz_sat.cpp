/// \file fuzz_sat.cpp
/// \brief Differential fuzzing of the CDCL solver against brute-force model
///        enumeration, plus mutation coverage of the oracle itself.

#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;

TEST(FuzzSat, CdclAgreesWithBruteForceOnRandomCnfs)
{
    const auto budget = testkit::fuzz_budget(0x5a7'0001, 150);
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        const auto cnf = testkit::random_cnf(rng);
        const auto verdict = testkit::sat_differential(cnf);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("sat", budget.base_seed, i);
    }
}

TEST(FuzzSat, DenseSmallCnfsExerciseTheUnsatPath)
{
    const auto budget = testkit::fuzz_budget(0x5a7'0002, 80);
    testkit::CnfOptions options;
    options.min_vars = 3;
    options.max_vars = 8;
    options.max_clause_len = 3;
    options.clause_ratio_min = 4.0;  // beyond the 3-SAT threshold: mostly UNSAT
    options.clause_ratio_max = 8.0;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        const auto verdict = testkit::sat_differential(testkit::random_cnf(rng, options));
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("sat-unsat", budget.base_seed, i);
    }
}

/// Mutation coverage: a solver that misreports SAT<->UNSAT must be caught on
/// every random instance, and the failure must carry a replayable seed.
TEST(FuzzSat, OracleCatchesFlippedResults)
{
    const auto budget = testkit::fuzz_budget(0x5a7'0003, 20);
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        testkit::CnfOptions options;
        options.max_vars = 12;  // keep the UNSAT->brute-force sweep instant
        const auto cnf = testkit::random_cnf(rng, options);
        const auto verdict =
            testkit::sat_differential(cnf, 20, testkit::SatFault::flip_reported_result);
        ASSERT_FALSE(verdict.ok) << "oracle missed a flipped SAT/UNSAT answer\n"
                                 << testkit::reproducer("sat-mutation", budget.base_seed, i);
        const auto repro = testkit::reproducer("sat-mutation", budget.base_seed, i);
        EXPECT_NE(repro.find("[bestagon-repro]"), std::string::npos);
        EXPECT_NE(repro.find("BESTAGON_FUZZ_SEED=0x"), std::string::npos);
    }
}

TEST(FuzzSat, OracleCatchesCorruptedModels)
{
    // var 1 is forced true; corrupting the model flips it and must be caught
    sat::Cnf cnf;
    cnf.num_vars = 1;
    cnf.clauses = {{1}};
    const auto verdict = testkit::sat_differential(cnf, 20, testkit::SatFault::corrupt_model);
    ASSERT_FALSE(verdict.ok);
    EXPECT_NE(verdict.detail.find("violates clause"), std::string::npos);
}

}  // namespace
