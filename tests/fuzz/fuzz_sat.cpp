/// \file fuzz_sat.cpp
/// \brief Differential fuzzing of the CDCL solver against brute-force model
///        enumeration, plus mutation coverage of the oracle itself.

#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;

TEST(FuzzSat, CdclAgreesWithBruteForceOnRandomCnfs)
{
    const auto budget = testkit::fuzz_budget(0x5a7'0001, 150);
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        const auto cnf = testkit::random_cnf(rng);
        const auto verdict = testkit::sat_differential(cnf);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("sat", budget.base_seed, i);
    }
}

TEST(FuzzSat, DenseSmallCnfsExerciseTheUnsatPath)
{
    const auto budget = testkit::fuzz_budget(0x5a7'0002, 80);
    testkit::CnfOptions options;
    options.min_vars = 3;
    options.max_vars = 8;
    options.max_clause_len = 3;
    options.clause_ratio_min = 4.0;  // beyond the 3-SAT threshold: mostly UNSAT
    options.clause_ratio_max = 8.0;
    unsigned unsat_seen = 0;
    unsigned certified = 0;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        testkit::SatOracleStats stats;
        const auto verdict = testkit::sat_differential(testkit::random_cnf(rng, options), 20,
                                                       testkit::SatFault::none, &stats);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("sat-unsat", budget.base_seed, i);
        unsat_seen += stats.unsat ? 1 : 0;
        certified += stats.proof_checked ? 1 : 0;
    }
    // every UNSAT answer must have been DRAT-certified, and the dense regime
    // must actually have produced UNSAT instances for that to mean anything
    EXPECT_GT(unsat_seen, 0U) << "dense regime produced no UNSAT instances";
    EXPECT_EQ(certified, unsat_seen);
}

/// Mutation coverage: a solver that misreports SAT<->UNSAT must be caught on
/// every random instance, and the failure must carry a replayable seed.
TEST(FuzzSat, OracleCatchesFlippedResults)
{
    const auto budget = testkit::fuzz_budget(0x5a7'0003, 20);
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        testkit::CnfOptions options;
        options.max_vars = 12;  // keep the UNSAT->brute-force sweep instant
        const auto cnf = testkit::random_cnf(rng, options);
        const auto verdict =
            testkit::sat_differential(cnf, 20, testkit::SatFault::flip_reported_result);
        ASSERT_FALSE(verdict.ok) << "oracle missed a flipped SAT/UNSAT answer\n"
                                 << testkit::reproducer("sat-mutation", budget.base_seed, i);
        const auto repro = testkit::reproducer("sat-mutation", budget.base_seed, i);
        EXPECT_NE(repro.find("[bestagon-repro]"), std::string::npos);
        EXPECT_NE(repro.find("BESTAGON_FUZZ_SEED=0x"), std::string::npos);
    }
}

/// Fault injection on the proof channel: a solver whose learnt clauses are
/// dropped from the DRAT stream must be rejected by the checker. PHP(3,2)
/// has no unit clauses, so the formula alone can never propagate to conflict
/// and the gutted proof's empty clause is provably not RUP.
TEST(FuzzSat, OracleRejectsDroppedProofLemmas)
{
    sat::Cnf php;  // pigeons 1..3, holes 1..2; var = 2*(pigeon-1) + hole
    php.num_vars = 6;
    php.clauses = {{1, 2}, {3, 4}, {5, 6},              // each pigeon in a hole
                   {-1, -3}, {-1, -5}, {-3, -5},        // hole 1 at most once
                   {-2, -4}, {-2, -6}, {-4, -6}};       // hole 2 at most once
    testkit::SatOracleStats stats;
    const auto verdict =
        testkit::sat_differential(php, 20, testkit::SatFault::drop_proof_lemmas, &stats);
    ASSERT_FALSE(verdict.ok) << "checker accepted a proof stripped of its lemmas";
    EXPECT_TRUE(stats.unsat);
    EXPECT_FALSE(stats.proof_checked);
    EXPECT_NE(verdict.detail.find("DRAT certification"), std::string::npos) << verdict.detail;

    // the same instance certifies cleanly when the proof is left intact
    const auto clean = testkit::sat_differential(php, 20, testkit::SatFault::none, &stats);
    EXPECT_TRUE(clean.ok) << clean.detail;
    EXPECT_TRUE(stats.proof_checked);
}

TEST(FuzzSat, OracleCatchesCorruptedModels)
{
    // var 1 is forced true; corrupting the model flips it and must be caught
    sat::Cnf cnf;
    cnf.num_vars = 1;
    cnf.clauses = {{1}};
    const auto verdict = testkit::sat_differential(cnf, 20, testkit::SatFault::corrupt_model);
    ASSERT_FALSE(verdict.ok);
    EXPECT_NE(verdict.detail.find("violates clause"), std::string::npos);
}

/// Mutation coverage for the preprocessing lane's model path: when the
/// backend skips the reconstruction stack, eliminated variables keep whatever
/// value the inner solver defaulted them to, and some original clause breaks.
TEST(FuzzSat, OracleCatchesSkippedModelReconstruction)
{
    // vars: x=1, a=2, b=3, c=4. (-a) strengthens the long clauses, then BVE
    // eliminates a, b and c; the inner solver sees a nearly empty formula and
    // defaults every eliminated variable, so only reconstruction can restore
    // a model of (x v a v b) — exactly what the injected fault withholds.
    sat::Cnf cnf;
    cnf.num_vars = 4;
    cnf.clauses = {{1, 2, 3}, {-1, 2, 4}, {-2}};

    testkit::SatOracleStats stats;
    const auto clean = testkit::sat_differential(cnf, 20, testkit::SatFault::none, &stats);
    ASSERT_TRUE(clean.ok) << clean.detail;
    ASSERT_GT(stats.vars_eliminated, 0U)
        << "instance did not exercise variable elimination — the fault would be vacuous";

    const auto verdict =
        testkit::sat_differential(cnf, 20, testkit::SatFault::skip_model_reconstruction);
    ASSERT_FALSE(verdict.ok) << "oracle missed an unreconstructed model";
    EXPECT_NE(verdict.detail.find("violates clause"), std::string::npos) << verdict.detail;
}

/// Mutation coverage for the preprocessing lane's proof path: the
/// preprocessor derives this refutation entirely by strengthening, so a
/// proof stream missing those derivations can never reach the empty clause.
TEST(FuzzSat, OracleRejectsDroppedEliminatedClauseProof)
{
    sat::Cnf cnf;  // (x v p)(-x v p) -> (p); with (-p v q)(-p v -q) -> UNSAT
    cnf.num_vars = 3;
    cnf.clauses = {{1, 2}, {-1, 2}, {-2, 3}, {-2, -3}};

    testkit::SatOracleStats stats;
    const auto clean = testkit::sat_differential(cnf, 20, testkit::SatFault::none, &stats);
    ASSERT_TRUE(clean.ok) << clean.detail;
    EXPECT_TRUE(stats.unsat);
    EXPECT_TRUE(stats.preprocessed_proof_checked);

    const auto verdict =
        testkit::sat_differential(cnf, 20, testkit::SatFault::drop_eliminated_clause_proof);
    ASSERT_FALSE(verdict.ok) << "checker accepted a proof missing the preprocessor's derivations";
    EXPECT_NE(verdict.detail.find("DRAT certification"), std::string::npos) << verdict.detail;
}

}  // namespace
