/// \file fuzz_frontend.cpp
/// \brief Differential fuzzing of the logic front end: cut rewriting and
///        technology mapping must preserve functionality on random networks
///        (checked by 64-pattern random simulation, exhaustive when small).

#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;

TEST(FuzzFrontend, RewriteAndMappingPreserveRandomXags)
{
    const auto budget = testkit::fuzz_budget(0xf0e'0001, 25);
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        const auto seed = testkit::case_seed(budget.base_seed, i);
        testkit::Rng rng{seed};
        const auto net = testkit::random_network(rng);
        const auto verdict = testkit::frontend_differential(net, seed);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("frontend", budget.base_seed, i);
    }
}

TEST(FuzzFrontend, AllGateTypesSurviveTheFrontEnd)
{
    const auto budget = testkit::fuzz_budget(0xf0e'0002, 25);
    testkit::XagOptions options;
    options.xag_gates_only = false;  // exercise OR/NAND/NOR/XNOR folding too
    options.max_pis = 6;
    options.max_gates = 20;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        const auto seed = testkit::case_seed(budget.base_seed, i);
        testkit::Rng rng{seed};
        const auto net = testkit::random_network(rng, options);
        const auto verdict = testkit::frontend_differential(net, seed);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("frontend-allgates", budget.base_seed, i);
    }
}

/// Mutation coverage: a mapping step that drops an inverter (modeled by an
/// inverted output) must be caught by random simulation on every case —
/// an inverted output diverges on all patterns.
TEST(FuzzFrontend, OracleCatchesDroppedInverters)
{
    const auto budget = testkit::fuzz_budget(0xf0e'0003, 10);
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        const auto seed = testkit::case_seed(budget.base_seed, i);
        testkit::Rng rng{seed};
        const auto net = testkit::random_network(rng);
        const auto verdict = testkit::frontend_differential(
            net, seed, 64, testkit::FrontendFault::invert_mapped_output);
        ASSERT_FALSE(verdict.ok) << "oracle missed an inverted mapped output\n"
                                 << testkit::reproducer("frontend-mutation", budget.base_seed, i);
        EXPECT_NE(verdict.detail.find("diverges"), std::string::npos) << verdict.detail;
    }
}

}  // namespace
