/// \file fuzz_incremental_pnr.cpp
/// \brief Differential fuzzing of the incremental (one persistent solver
///        across the aspect-ratio ladder) vs. the fresh-encoding-per-size
///        exact P&R lane: identical per-size verdicts, identical first
///        feasible size, SAT-miter-checked layouts, and a DRAT certificate
///        for every refuted ratio in both lanes.

#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;

layout::ExactPDOptions budgeted_exact_options()
{
    layout::ExactPDOptions options;
    options.max_width = 8;
    options.max_height = 12;
    options.conflicts_per_size = 50000;
    options.time_budget_ms = 20000;
    return options;
}

testkit::XagOptions small_networks()
{
    testkit::XagOptions options;
    options.max_pis = 3;
    options.min_gates = 2;
    options.max_gates = 6;
    options.max_pos = 2;
    return options;
}

TEST(FuzzIncrementalPnr, IncrementalLaneMatchesFreshLane)
{
    const auto budget = testkit::fuzz_budget(0x9d0'0003, 8);
    unsigned layouts_found = 0;
    unsigned sizes_compared = 0;
    unsigned multi_generation_runs = 0;
    unsigned proofs_checked = 0;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        const auto spec = testkit::random_network(rng, small_networks());
        testkit::IncrementalPnrStats stats;
        const auto verdict =
            testkit::incremental_pnr_differential(spec, budgeted_exact_options(), &stats);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("incremental-pnr", budget.base_seed, i);
        layouts_found += stats.found_layout ? 1 : 0;
        sizes_compared += stats.sizes_compared;
        multi_generation_runs += stats.grid_generations > 1 ? 1 : 0;
        proofs_checked += stats.proofs_checked;
    }
    // the differential is only meaningful if its interesting regimes occur
    EXPECT_GT(layouts_found, 0U) << "no generated network was ever placed by both lanes";
    EXPECT_GT(sizes_compared, 0U) << "no per-size verdicts were ever cross-checked";
    EXPECT_GT(multi_generation_runs, 0U)
        << "the persistent solver's grid never grew twice — the incremental machinery "
           "(activation literals, re-emitted completeness) went unexercised";
    EXPECT_GT(proofs_checked, 0U) << "no refuted size was ever certified";
}

/// A congested 2-PI network whose depth constraints pin four gates to one
/// row: the narrow ladder sizes are genuinely refuted before a wider one
/// fits, so the persistent encoding provably goes through several grid
/// generations and certifies several rejected ratios along the way.
logic::LogicNetwork congested_network()
{
    logic::LogicNetwork spec;
    const auto a = spec.create_pi("a");
    const auto b = spec.create_pi("b");
    const auto fa = spec.create_fanout(a);
    const auto fb = spec.create_fanout(b);
    const auto fa1 = spec.create_fanout(fa);
    const auto fa2 = spec.create_fanout(fa);
    const auto fb1 = spec.create_fanout(fb);
    const auto fb2 = spec.create_fanout(fb);
    const auto x1 = spec.create_xor(fa1, fb1);
    const auto x2 = spec.create_and(fa1, fb2);
    const auto x3 = spec.create_or(fa2, fb1);
    const auto x4 = spec.create_nand(fa2, fb2);
    const auto y1 = spec.create_xor(x1, x2);
    const auto y2 = spec.create_xor(x3, x4);
    spec.create_po(spec.create_xor(y1, y2), "f");
    return spec;
}

TEST(FuzzIncrementalPnr, PersistentSolverCertifiesRefutedRatios)
{
    testkit::IncrementalPnrStats stats;
    const auto verdict =
        testkit::incremental_pnr_differential(congested_network(), budgeted_exact_options(), &stats);
    ASSERT_TRUE(verdict.ok) << verdict.detail;
    EXPECT_TRUE(stats.found_layout);
    EXPECT_GT(stats.grid_generations, 1U);
    EXPECT_GT(stats.proofs_checked, 0U);
}

/// Mutation coverage: solving under a stale activation literal (the classic
/// incremental-encoding bug — the newest generation's completeness clauses
/// never asserted) must be caught by the verdict-parity check.
TEST(FuzzIncrementalPnr, OracleCatchesStaleActivationLiteral)
{
    testkit::IncrementalPnrStats stats;
    const auto verdict = testkit::incremental_pnr_differential(
        congested_network(), budgeted_exact_options(), &stats,
        testkit::IncrementalPnrFault::leak_stale_activation);
    ASSERT_GT(stats.grid_generations, 1U)
        << "fault never had a chance to act — pick a network whose smallest sizes are refuted";
    ASSERT_FALSE(verdict.ok) << "oracle missed a stale activation literal";
    EXPECT_EQ(verdict.detail.find("mutation coverage"), std::string::npos)
        << "the fault went undetected by the differential itself: " << verdict.detail;
}

}  // namespace
