/// \file fuzz_ground_state.cpp
/// \brief Differential fuzzing of the ground-state engines (exact, simanneal,
///        quicksim) against the exhaustive reference on random small SiDB
///        canvases.

#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;

phys::SimAnnealParameters anneal_for_fuzzing(std::uint64_t seed)
{
    phys::SimAnnealParameters params;
    params.num_instances = 24;  // generous effort: a miss IS a divergence
    params.seed = seed;
    return params;
}

TEST(FuzzGroundState, SimannealMatchesExhaustiveOnRandomCanvases)
{
    const auto budget = testkit::fuzz_budget(0x6d0'0001, 40);
    const phys::SimulationParameters sim_params{};
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        const auto seed = testkit::case_seed(budget.base_seed, i);
        testkit::Rng rng{seed};
        const auto canvas = testkit::random_sidb_canvas(rng);
        const auto verdict = testkit::ground_state_differential(canvas, sim_params,
                                                                anneal_for_fuzzing(seed));
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("ground-state", budget.base_seed, i);
    }
}

TEST(FuzzGroundState, SparseCanvasesAtTheSecondCalibrationPoint)
{
    const auto budget = testkit::fuzz_budget(0x6d0'0002, 20);
    phys::SimulationParameters sim_params;
    sim_params.mu_minus = -0.28;  // the paper's second operating point
    testkit::CanvasOptions options;
    options.max_dots = 8;
    options.max_column = 20;
    options.max_dimer_row = 10;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        const auto seed = testkit::case_seed(budget.base_seed, i);
        testkit::Rng rng{seed};
        const auto canvas = testkit::random_sidb_canvas(rng, options);
        const auto verdict = testkit::ground_state_differential(canvas, sim_params,
                                                                anneal_for_fuzzing(seed));
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("ground-state-sparse", budget.base_seed, i);
    }
}

/// Mutation coverage: corrupting a heuristic's configuration, the reference
/// minimum, or the exact engine's population window must all be detected.
TEST(FuzzGroundState, OracleCatchesSeededMutations)
{
    const std::vector<phys::SiDBSite> canvas{{0, 0, 0}, {4, 1, 0}, {8, 2, 1}};
    const phys::SimulationParameters sim_params{};

    const auto corrupted = testkit::ground_state_differential(
        canvas, sim_params, anneal_for_fuzzing(0xbad5eed), 1e-6,
        testkit::GroundStateFault::corrupt_anneal_config);
    ASSERT_FALSE(corrupted.ok) << "oracle missed a corrupted annealing configuration";

    const auto shifted = testkit::ground_state_differential(
        canvas, sim_params, anneal_for_fuzzing(0xbad5eed), 1e-6,
        testkit::GroundStateFault::shift_exact_energy);
    ASSERT_FALSE(shifted.ok) << "oracle missed a misreported exhaustive minimum";
    EXPECT_NE(shifted.detail.find("not bit-identical"), std::string::npos) << shifted.detail;

    const auto shrunk = testkit::ground_state_differential(
        canvas, sim_params, anneal_for_fuzzing(0xbad5eed), 1e-6,
        testkit::GroundStateFault::shrink_exact_population_window);
    ASSERT_FALSE(shrunk.ok) << "oracle missed an unsound exact-engine population window";
    EXPECT_NE(shrunk.detail.find("exact engine"), std::string::npos) << shrunk.detail;

    const auto quicksim = testkit::ground_state_differential(
        canvas, sim_params, anneal_for_fuzzing(0xbad5eed), 1e-6,
        testkit::GroundStateFault::corrupt_quicksim_config);
    ASSERT_FALSE(quicksim.ok) << "oracle missed a corrupted quicksim configuration";
    EXPECT_NE(quicksim.detail.find("quicksim"), std::string::npos) << quicksim.detail;
}

}  // namespace
