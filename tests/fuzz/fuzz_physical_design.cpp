/// \file fuzz_physical_design.cpp
/// \brief Differential fuzzing of the exact vs. scalable placement & routing
///        engines: every produced layout must pass SAT equivalence checking
///        against the specification, and the exact engine may never lose on
///        area inside its own search bounds.

#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;

layout::ExactPDOptions budgeted_exact_options()
{
    layout::ExactPDOptions options;
    options.max_width = 8;
    options.max_height = 12;
    options.conflicts_per_size = 50000;
    options.time_budget_ms = 20000;
    return options;
}

testkit::XagOptions small_networks()
{
    testkit::XagOptions options;
    options.max_pis = 3;
    options.min_gates = 2;
    options.max_gates = 6;
    options.max_pos = 2;
    return options;
}

TEST(FuzzPhysicalDesign, BothEnginesImplementTheSpecification)
{
    const auto budget = testkit::fuzz_budget(0x9d0'0001, 8);
    unsigned exact_runs = 0;
    unsigned scalable_runs = 0;
    unsigned proofs_checked = 0;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        const auto spec = testkit::random_network(rng, small_networks());
        testkit::PdOracleStats stats;
        const auto verdict =
            testkit::physical_design_differential(spec, budgeted_exact_options(), &stats);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("physical-design", budget.base_seed, i);
        EXPECT_EQ(stats.proof_failures, 0U)
            << testkit::reproducer("physical-design", budget.base_seed, i);
        exact_runs += stats.exact_ran ? 1 : 0;
        scalable_runs += stats.scalable_ran ? 1 : 0;
        proofs_checked += stats.proofs_checked;
    }
    // both engines must actually participate in the differential check
    // (either may decline individual cases: budget expiry / march failure)
    EXPECT_GT(exact_runs, 0U) << "exact engine never completed within its budget";
    EXPECT_GT(scalable_runs, 0U) << "scalable engine declined every generated network";
    // the ascending-area search refutes smaller sizes before finding a layout;
    // every such UNSAT verdict must have been DRAT-certified along the way
    EXPECT_GT(proofs_checked, 0U) << "no refuted size was ever certified";
}

TEST(FuzzPhysicalDesign, ScalableEngineSurvivesWiderNetworks)
{
    // beyond the exact engine's practical reach: scalable-only, but every
    // layout still has to satisfy the SAT miter
    const auto budget = testkit::fuzz_budget(0x9d0'0002, 12);
    testkit::XagOptions options;
    options.max_pis = 5;
    options.min_gates = 6;
    options.max_gates = 18;
    options.max_pos = 3;
    layout::ExactPDOptions no_exact;
    no_exact.max_width = 1;  // unsatisfiable bounds: skips the exact engine
    no_exact.max_height = 1;
    no_exact.conflicts_per_size = 100;
    no_exact.time_budget_ms = 100;
    unsigned scalable_runs = 0;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        testkit::Rng rng{testkit::case_seed(budget.base_seed, i)};
        const auto spec = testkit::random_network(rng, options);
        testkit::PdOracleStats stats;
        const auto verdict = testkit::physical_design_differential(spec, no_exact, &stats);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("physical-design-wide", budget.base_seed, i);
        scalable_runs += stats.scalable_ran ? 1 : 0;
    }
    EXPECT_GT(scalable_runs, 0U) << "scalable engine declined every generated network";
}

/// Mutation coverage: an engine that realizes the wrong function (modeled by
/// a specification with one inverted output) must fail the SAT miter.
TEST(FuzzPhysicalDesign, OracleCatchesWrongFunction)
{
    logic::LogicNetwork spec;
    const auto a = spec.create_pi("a");
    const auto b = spec.create_pi("b");
    spec.create_po(spec.create_xor(a, b), "f");
    const auto verdict = testkit::physical_design_differential(
        spec, budgeted_exact_options(), nullptr, testkit::PdFault::invert_spec_output);
    ASSERT_FALSE(verdict.ok) << "oracle missed a functionally wrong layout";
    EXPECT_NE(verdict.detail.find("NOT equivalent"), std::string::npos) << verdict.detail;
}

}  // namespace
