/// \file fuzz_charge_state.cpp
/// \brief Differential fuzzing of the incremental charge-state kernel: cached
///        local potentials vs. fresh naive sums under random committed move
///        sequences, and the kernel-backed engines vs. pre-refactor naive
///        reference implementations.

#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;

phys::SimAnnealParameters anneal_for_fuzzing(std::uint64_t seed)
{
    phys::SimAnnealParameters params;
    params.num_instances = 8;  // trajectory fidelity is per instance; 8 streams suffice
    params.seed = seed;
    return params;
}

TEST(FuzzChargeState, CacheMatchesNaiveOnRandomMoveSequences)
{
    const auto budget = testkit::fuzz_budget(0xcace'0001, 30);
    const phys::SimulationParameters sim_params{};
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        const auto seed = testkit::case_seed(budget.base_seed, i);
        testkit::Rng rng{seed};
        const auto canvas = testkit::random_sidb_canvas(rng);
        const auto verdict = testkit::charge_state_differential(canvas, sim_params,
                                                                anneal_for_fuzzing(seed), seed);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("charge-state", budget.base_seed, i);
    }
}

TEST(FuzzChargeState, SparseCanvasesAtTheSecondCalibrationPoint)
{
    const auto budget = testkit::fuzz_budget(0xcace'0002, 15);
    phys::SimulationParameters sim_params;
    sim_params.mu_minus = -0.28;  // the paper's second operating point
    testkit::CanvasOptions options;
    options.max_dots = 10;
    options.max_column = 20;
    options.max_dimer_row = 10;
    for (std::uint64_t i = 0; i < budget.iterations; ++i)
    {
        const auto seed = testkit::case_seed(budget.base_seed, i);
        testkit::Rng rng{seed};
        const auto canvas = testkit::random_sidb_canvas(rng, options);
        const auto verdict = testkit::charge_state_differential(canvas, sim_params,
                                                                anneal_for_fuzzing(seed), seed);
        ASSERT_TRUE(verdict.ok) << verdict.detail << '\n'
                                << testkit::reproducer("charge-state-sparse", budget.base_seed, i);
    }
}

/// Mutation coverage: a commit that updates the configuration but skips the
/// cache update must be detected by the very next cache comparison.
TEST(FuzzChargeState, OracleCatchesSkippedCacheUpdate)
{
    const std::vector<phys::SiDBSite> canvas{{0, 0, 0}, {4, 1, 0}, {8, 2, 1}, {2, 3, 0}};
    const phys::SimulationParameters sim_params{};

    const auto mutant = testkit::charge_state_differential(
        canvas, sim_params, anneal_for_fuzzing(0xbad5eed), 0xbad5eed, 64, 1e-12,
        testkit::ChargeStateFault::skip_cache_update);
    ASSERT_FALSE(mutant.ok) << "oracle missed a skipped cache update";
    EXPECT_NE(mutant.detail.find("drifted"), std::string::npos) << mutant.detail;
}

}  // namespace
