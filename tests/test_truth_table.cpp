#include "logic/truth_table.hpp"

#include <gtest/gtest.h>

#include <random>

namespace
{

using bestagon::logic::TruthTable;

TEST(TruthTable, ConstantsAndProjections)
{
    const auto c0 = TruthTable::constant(3, false);
    const auto c1 = TruthTable::constant(3, true);
    EXPECT_TRUE(c0.is_const0());
    EXPECT_TRUE(c1.is_const1());
    EXPECT_EQ(c1.count_ones(), 8U);

    const auto x0 = TruthTable::nth_var(3, 0);
    for (std::uint64_t t = 0; t < 8; ++t)
    {
        EXPECT_EQ(x0.get_bit(t), (t & 1) != 0);
    }
    unsigned var = 99;
    bool comp = false;
    EXPECT_TRUE(x0.is_projection(var, comp));
    EXPECT_EQ(var, 0U);
    EXPECT_FALSE(comp);
    EXPECT_TRUE((~x0).is_projection(var, comp));
    EXPECT_TRUE(comp);
}

TEST(TruthTable, BinaryStringRoundTrip)
{
    const auto tt = TruthTable::from_binary("0110");
    EXPECT_EQ(tt.num_vars(), 2U);
    EXPECT_EQ(tt.to_binary(), "0110");
    EXPECT_FALSE(tt.get_bit(0));
    EXPECT_TRUE(tt.get_bit(1));
    EXPECT_TRUE(tt.get_bit(2));
    EXPECT_FALSE(tt.get_bit(3));
}

TEST(TruthTable, HexRoundTrip)
{
    const auto tt = TruthTable::from_hex(4, "cafe");
    EXPECT_EQ(tt.to_hex(), "cafe");
    const auto tt2 = TruthTable::from_hex(2, "8");
    EXPECT_EQ(tt2.to_binary(), "1000");  // AND
}

TEST(TruthTable, BitwiseOperations)
{
    const auto a = TruthTable::nth_var(2, 0);
    const auto b = TruthTable::nth_var(2, 1);
    EXPECT_EQ((a & b).to_binary(), "1000");
    EXPECT_EQ((a | b).to_binary(), "1110");
    EXPECT_EQ((a ^ b).to_binary(), "0110");
    EXPECT_EQ((~(a & b)).to_binary(), "0111");
}

TEST(TruthTable, FlipVarIsInvolution)
{
    std::mt19937 rng{99};
    for (int iter = 0; iter < 50; ++iter)
    {
        const unsigned n = 1 + rng() % 4;
        TruthTable f{n};
        for (std::uint64_t t = 0; t < f.num_bits(); ++t)
        {
            f.set_bit(t, (rng() & 1U) != 0);
        }
        for (unsigned v = 0; v < n; ++v)
        {
            EXPECT_EQ(f.flip_var(v).flip_var(v), f);
        }
    }
}

TEST(TruthTable, PermuteVarsIdentityAndSwap)
{
    const auto a = TruthTable::nth_var(3, 0);
    EXPECT_EQ(a.permute_vars({0, 1, 2}), a);
    // swapping variables 0 and 1 turns projection x0 into x1
    EXPECT_EQ(a.permute_vars({1, 0, 2}), TruthTable::nth_var(3, 1));
}

TEST(TruthTable, PermutationComposesCorrectly)
{
    std::mt19937 rng{7};
    TruthTable f{3};
    for (std::uint64_t t = 0; t < 8; ++t)
    {
        f.set_bit(t, (rng() & 1U) != 0);
    }
    // applying a permutation and its inverse restores f
    const std::vector<unsigned> perm{2, 0, 1};
    std::vector<unsigned> inverse(3);
    for (unsigned i = 0; i < 3; ++i)
    {
        inverse[perm[i]] = i;
    }
    EXPECT_EQ(f.permute_vars(perm).permute_vars(inverse), f);
}

TEST(TruthTable, DependsOn)
{
    const auto a = TruthTable::nth_var(3, 0);
    const auto b = TruthTable::nth_var(3, 1);
    const auto f = a ^ b;
    EXPECT_TRUE(f.depends_on(0));
    EXPECT_TRUE(f.depends_on(1));
    EXPECT_FALSE(f.depends_on(2));
}

TEST(TruthTable, ExtendIgnoresNewVariables)
{
    const auto f = TruthTable::from_binary("0110");
    const auto g = f.extend_to(3);
    EXPECT_EQ(g.num_vars(), 3U);
    for (std::uint64_t t = 0; t < 8; ++t)
    {
        EXPECT_EQ(g.get_bit(t), f.get_bit(t & 3));
    }
}

TEST(TruthTable, LargeTables)
{
    // 7-variable tables exercise the multi-word path
    const auto a = TruthTable::nth_var(7, 6);
    const auto b = TruthTable::nth_var(7, 0);
    const auto f = a ^ b;
    EXPECT_EQ(f.count_ones(), 64U);
    EXPECT_TRUE(f.depends_on(6));
    EXPECT_EQ(f.flip_var(6), ~f);
}

TEST(TruthTable, CompareIsTotalOrder)
{
    const auto a = TruthTable::from_binary("0001");
    const auto b = TruthTable::from_binary("0010");
    EXPECT_LT(a.compare(b), 0);
    EXPECT_GT(b.compare(a), 0);
    EXPECT_EQ(a.compare(a), 0);
}

}  // namespace
