#include "layout/aspect_ratio_ladder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace
{

using bestagon::layout::AspectRatio;
using bestagon::layout::AspectRatioLadder;

std::vector<AspectRatio> drain(AspectRatioLadder& ladder)
{
    std::vector<AspectRatio> sizes;
    AspectRatio size;
    while (ladder.next(size))
    {
        sizes.push_back(size);
    }
    return sizes;
}

TEST(AspectRatioLadder, StreamsAscendingAreaWithHeightTiebreak)
{
    AspectRatioLadder ladder{2, 4, 3, 5};
    const auto sizes = drain(ladder);
    ASSERT_EQ(sizes.size(), 9U);  // 3 widths x 3 heights

    // the lazy stream must equal the materialized sort by (area, height)
    std::vector<AspectRatio> expected;
    for (unsigned w = 2; w <= 4; ++w)
    {
        for (unsigned h = 3; h <= 5; ++h)
        {
            expected.push_back({w, h});
        }
    }
    std::sort(expected.begin(), expected.end(), [](AspectRatio a, AspectRatio b) {
        return a.area() != b.area() ? a.area() < b.area() : a.height < b.height;
    });
    EXPECT_EQ(sizes, expected);
    EXPECT_EQ(ladder.skipped(), 0U);
}

TEST(AspectRatioLadder, DegenerateBoundsYieldEmptyStream)
{
    AspectRatioLadder none{5, 4, 1, 10};
    AspectRatio size;
    EXPECT_FALSE(none.next(size));

    AspectRatioLadder flat{1, 3, 7, 6};
    EXPECT_FALSE(flat.next(size));
}

TEST(AspectRatioLadder, RefutedSizeDominatesSmallerCandidates)
{
    AspectRatioLadder ladder{2, 4, 2, 4};
    // refuting (3, 3) covers every (w <= 3, h <= 3) candidate
    ladder.record_refuted({3, 3});
    const auto sizes = drain(ladder);
    for (const auto& s : sizes)
    {
        EXPECT_FALSE(s.width <= 3 && s.height <= 3)
            << s.width << "x" << s.height << " is dominated by the refuted 3x3";
    }
    // 2x2, 2x3, 3x2, 3x3 pruned from the 3x3 grid of candidates
    EXPECT_EQ(sizes.size(), 5U);
    EXPECT_EQ(ladder.skipped(), 4U);
}

TEST(AspectRatioLadder, RefutedCornersStayParetoMaximal)
{
    AspectRatioLadder ladder{1, 8, 1, 8};
    ladder.record_refuted({2, 5});
    ladder.record_refuted({5, 2});
    ladder.record_refuted({1, 3});  // dominated by (2, 5): must be absorbed
    EXPECT_TRUE(ladder.refuted_covers({1, 3}));
    EXPECT_TRUE(ladder.refuted_covers({2, 5}));
    EXPECT_TRUE(ladder.refuted_covers({5, 2}));
    EXPECT_TRUE(ladder.refuted_covers({4, 1}));
    EXPECT_FALSE(ladder.refuted_covers({3, 3}));
    EXPECT_FALSE(ladder.refuted_covers({6, 2}));
    EXPECT_FALSE(ladder.refuted_covers({2, 6}));

    // a later, larger refutation subsumes an earlier corner
    ladder.record_refuted({5, 5});
    EXPECT_TRUE(ladder.refuted_covers({5, 5}));
    EXPECT_TRUE(ladder.refuted_covers({2, 5}));
    EXPECT_FALSE(ladder.refuted_covers({6, 1}));
}

/// Under the pure ascending-area order a refutation recorded in stream order
/// never prunes anything (dominated sizes were streamed earlier) — the
/// safety-net property documented in the header.
TEST(AspectRatioLadder, InOrderRefutationsAreInert)
{
    AspectRatioLadder pruned{2, 4, 3, 5};
    AspectRatioLadder plain{2, 4, 3, 5};
    std::vector<AspectRatio> streamed;
    AspectRatio size;
    while (pruned.next(size))
    {
        streamed.push_back(size);
        pruned.record_refuted(size);  // refute everything, in stream order
    }
    EXPECT_EQ(streamed, drain(plain));
    EXPECT_EQ(pruned.skipped(), 0U);
}

}  // namespace
