/// \file test_ground_state_engines.cpp
/// \brief Tier-1 coverage of the PR-6 ground-state engines: the
///        population-bounded exact engine (bit-identical to exhaustive, far
///        past its size ceiling), the QuickSim heuristic, the degeneracy
///        lower bound of the stochastic engines, and the common
///        engine-selection surface (SimulationParameters::engine /
///        find_ground_state). Structure mirrors test_charge_state.cpp:
///        edge cases first (n = 0, n = 1, forced populations, cancellation),
///        then differential properties on random canvases.

#include "core/run_control.hpp"
#include "phys/exhaustive.hpp"
#include "phys/ground_state.hpp"
#include "phys/ground_state_exact.hpp"
#include "phys/operational.hpp"
#include "phys/quicksim.hpp"
#include "phys/simanneal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <random>

namespace
{

using namespace bestagon::phys;
using bestagon::core::Deadline;
using bestagon::core::RunBudget;
using bestagon::core::StopSource;
using bestagon::logic::TruthTable;

/// A RunBudget whose token already requested a stop.
RunBudget tripped_budget()
{
    static StopSource source;  // outlives the budgets handed out
    source.request_stop();
    return RunBudget{source.token(), {}};
}

std::vector<SiDBSite> random_sites(unsigned n, std::mt19937& rng)
{
    std::vector<SiDBSite> sites;
    while (sites.size() < n)
    {
        const SiDBSite s{static_cast<int>(rng() % 20), static_cast<int>(rng() % 10),
                         static_cast<int>(rng() % 2)};
        if (std::find(sites.begin(), sites.end(), s) == sites.end())
        {
            sites.push_back(s);
        }
    }
    return sites;
}

/// Dense random canvas in a box scaling with sqrt(n) — past ~36 sites the
/// exhaustive engine's energy-only pruning stops converging in reasonable
/// time while the population window still collapses the search.
std::vector<SiDBSite> dense_canvas(std::size_t n, std::uint64_t salt)
{
    std::mt19937_64 rng{0xca11'ab1eULL + salt};
    const int cols = static_cast<int>(8 * std::sqrt(static_cast<double>(n)));
    const int rows = static_cast<int>(4 * std::sqrt(static_cast<double>(n)));
    std::vector<SiDBSite> sites;
    while (sites.size() < n)
    {
        const SiDBSite s{static_cast<int>(rng() % static_cast<unsigned>(cols)),
                         static_cast<int>(rng() % static_cast<unsigned>(rows)),
                         static_cast<int>(rng() % 2)};
        if (std::find(sites.begin(), sites.end(), s) == sites.end())
        {
            sites.push_back(s);
        }
    }
    return sites;
}

/// The validated vertical BDL wire (tile-local coordinates), as in
/// test_operational.cpp — the smallest member of the Bestagon gate set.
GateDesign vertical_wire()
{
    GateDesign d;
    d.name = "wire";
    for (int k = 0; k < 6; ++k)
    {
        const int m = 1 + 4 * k;
        d.sites.push_back({15, m, 0});
        d.sites.push_back({15, m + 1, 0});
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.output_pairs.push_back({{15, 21, 0}, {15, 22, 0}});
    d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
    d.output_perturbers.push_back({15, 25, 1});
    d.functions.push_back(TruthTable::from_binary("10"));
    return d;
}

// --- exact engine -----------------------------------------------------------

TEST(ExactEngine, EmptySystem)
{
    const SiDBSystem sys{{}, SimulationParameters{}};
    const auto gs = exact_ground_state(sys);
    EXPECT_TRUE(gs.complete);
    EXPECT_FALSE(gs.cancelled);
    EXPECT_TRUE(gs.config.empty());
    EXPECT_EQ(gs.grand_potential, 0.0);
    EXPECT_EQ(gs.degeneracy, 1U);
}

TEST(ExactEngine, SingleSite)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    const SiDBSystem sys{{{0, 0, 0}}, p};
    const auto gs = exact_ground_state(sys);
    EXPECT_TRUE(gs.complete);
    EXPECT_EQ(gs.config, (ChargeConfig{1}));
    EXPECT_NEAR(gs.grand_potential, -0.32, 1e-12);
    EXPECT_EQ(gs.degeneracy, 1U);
}

/// The tentpole contract: identical configuration, bit-identical energy and
/// identical degeneracy count vs. the legacy exhaustive engine, at both of
/// the paper's operating points.
TEST(ExactEngine, BitIdenticalToExhaustiveOnRandomCanvases)
{
    std::mt19937 rng{424242};
    for (const double mu : {-0.32, -0.28})
    {
        SimulationParameters p;
        p.mu_minus = mu;
        for (int iter = 0; iter < 15; ++iter)
        {
            const auto sites = random_sites(4 + rng() % 9, rng);
            const SiDBSystem sys{sites, p};
            const auto reference = exhaustive_ground_state(sys);
            const auto exact = exact_ground_state(sys);
            ASSERT_TRUE(reference.complete);
            ASSERT_TRUE(exact.complete);
            EXPECT_EQ(exact.config, reference.config) << "mu " << mu << " iter " << iter;
            EXPECT_EQ(exact.grand_potential, reference.grand_potential)
                << "mu " << mu << " iter " << iter;
            EXPECT_EQ(exact.degeneracy, reference.degeneracy) << "mu " << mu << " iter " << iter;
        }
    }
}

/// Window soundness: every population-stable configuration respects the
/// forced site statuses and the population bounds (checked by brute-force
/// enumeration on small canvases).
TEST(ExactEngine, PopulationWindowIsSoundOnSmallCanvases)
{
    std::mt19937 rng{55555};
    SimulationParameters p;
    p.mu_minus = -0.32;
    for (int iter = 0; iter < 20; ++iter)
    {
        const auto sites = random_sites(3 + rng() % 8, rng);
        const SiDBSystem sys{sites, p};
        const auto window = compute_population_window(sys);
        const std::size_t n = sys.size();
        ASSERT_EQ(window.status.size(), n);
        ASSERT_LE(window.min_charges, window.max_charges);
        for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask)
        {
            ChargeConfig cfg(n, 0);
            std::size_t charges = 0;
            for (std::size_t i = 0; i < n; ++i)
            {
                cfg[i] = ((mask >> i) & 1ULL) != 0 ? 1 : 0;
                charges += cfg[i];
            }
            if (!sys.population_stable(cfg))
            {
                continue;
            }
            EXPECT_GE(charges, window.min_charges) << "iter " << iter << " mask " << mask;
            EXPECT_LE(charges, window.max_charges) << "iter " << iter << " mask " << mask;
            for (std::size_t i = 0; i < n; ++i)
            {
                if (window.status[i] == site_forced_negative)
                {
                    EXPECT_EQ(cfg[i], 1) << "iter " << iter << " mask " << mask << " site " << i;
                }
                else if (window.status[i] == site_forced_neutral)
                {
                    EXPECT_EQ(cfg[i], 0) << "iter " << iter << " mask " << mask << " site " << i;
                }
            }
        }
    }
}

/// Isolated far-apart sites are all forced negative: the window collapses to
/// a single population and the search space to a single configuration, so a
/// 45-site canvas (far past the exhaustive ceiling) is instant.
TEST(ExactEngine, AllSitesForcedNegative)
{
    std::vector<SiDBSite> sites;
    for (int k = 0; k < 45; ++k)
    {
        sites.push_back({40 * k, 0, 0});  // ~15 nm apart: negligible coupling
    }
    const SiDBSystem sys{sites, SimulationParameters{}};
    const auto window = compute_population_window(sys);
    EXPECT_EQ(window.min_charges, 45U);
    EXPECT_EQ(window.max_charges, 45U);
    for (const auto status : window.status)
    {
        EXPECT_EQ(status, site_forced_negative);
    }
    const auto gs = exact_ground_state(sys);
    EXPECT_TRUE(gs.complete);
    EXPECT_EQ(gs.config, ChargeConfig(45, 1));
    EXPECT_EQ(gs.degeneracy, 1U);
}

TEST(ExactEngine, CancelledMidSearch)
{
    const SiDBSystem sys{dense_canvas(40, 4), SimulationParameters{}};
    const auto gs = exact_ground_state(sys, tripped_budget());
    EXPECT_FALSE(gs.complete);
    EXPECT_TRUE(gs.cancelled);
    // the quenched seed keeps the partial result physically valid
    ASSERT_EQ(gs.config.size(), sys.size());
    EXPECT_TRUE(sys.physically_valid(gs.config));
}

/// The headline separation: a dense 40-site canvas the exact engine finishes
/// but the exhaustive engine cannot within the same wall-clock budget. The
/// budget is calibrated from the exact engine's measured completion time, so
/// the assertion holds across build configurations (Release, ASan, ...).
TEST(ExactEngine, CompletesWhereExhaustiveExhaustsBudget)
{
    const SiDBSystem sys{dense_canvas(40, 4), SimulationParameters{}};

    const auto start = std::chrono::steady_clock::now();
    const auto exact = exact_ground_state(sys);
    const auto exact_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    ASSERT_TRUE(exact.complete);
    EXPECT_TRUE(sys.physically_valid(exact.config));

    // the exhaustive engine gets twice the budget the exact engine needed
    // (locally it needs over 15x — the margin absorbs scheduler noise)
    const auto budget_ms = std::max<std::int64_t>(2 * exact_ms, 200);
    const RunBudget budget{{}, Deadline::in_ms(budget_ms)};
    const auto exhaustive = exhaustive_ground_state(sys, budget);
    EXPECT_FALSE(exhaustive.complete);
    EXPECT_TRUE(exhaustive.cancelled);
    // the budgeted best-so-far never beats the certified minimum
    EXPECT_GE(exhaustive.grand_potential, exact.grand_potential - 1e-9);
}

// --- quicksim ---------------------------------------------------------------

TEST(QuickSim, EmptySystem)
{
    const SiDBSystem sys{{}, SimulationParameters{}};
    const auto gs = quicksim_ground_state(sys);
    EXPECT_EQ(gs.grand_potential, 0.0);
    EXPECT_TRUE(gs.config.empty());
    EXPECT_FALSE(gs.complete);
}

TEST(QuickSim, SingleSite)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    const SiDBSystem sys{{{0, 0, 0}}, p};
    const auto gs = quicksim_ground_state(sys);
    EXPECT_EQ(gs.config, (ChargeConfig{1}));
    EXPECT_NEAR(gs.grand_potential, -0.32, 1e-12);
    EXPECT_FALSE(gs.complete);
}

TEST(QuickSim, ZeroInstances)
{
    QuickSimParameters qp;
    qp.num_instances = 0;
    const SiDBSystem sys{{{0, 0, 0}, {4, 2, 0}}, SimulationParameters{}};
    const auto gs = quicksim_ground_state(sys, qp);
    EXPECT_TRUE(gs.config.empty());
    EXPECT_EQ(gs.grand_potential, std::numeric_limits<double>::infinity());
    EXPECT_EQ(gs.electrostatic, 0.0);
}

TEST(QuickSim, FindsGroundStateOfSmallSystems)
{
    std::mt19937 rng{2718};
    SimulationParameters p;
    p.mu_minus = -0.32;
    for (int iter = 0; iter < 10; ++iter)
    {
        const auto sites = random_sites(5 + rng() % 5, rng);
        const SiDBSystem sys{sites, p};
        const auto exact = exact_ground_state(sys);
        QuickSimParameters qp;
        qp.seed = 3000 + static_cast<std::uint64_t>(iter);
        const auto heuristic = quicksim_ground_state(sys, qp);
        EXPECT_TRUE(sys.physically_valid(heuristic.config));
        EXPECT_NEAR(heuristic.grand_potential, exact.grand_potential, 1e-9) << "iter " << iter;
        EXPECT_FALSE(heuristic.complete);
    }
}

TEST(QuickSim, ThreadCountInvariance)
{
    SimulationParameters p;
    p.mu_minus = -0.28;
    std::mt19937 rng{99};
    const SiDBSystem sys{random_sites(9, rng), p};
    QuickSimParameters serial;
    serial.num_threads = 1;
    QuickSimParameters parallel;
    parallel.num_threads = 4;
    const auto a = quicksim_ground_state(sys, serial);
    const auto b = quicksim_ground_state(sys, parallel);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.grand_potential, b.grand_potential);
    EXPECT_EQ(a.degeneracy, b.degeneracy);
}

TEST(QuickSim, CancelledMidSearch)
{
    const SiDBSystem sys{dense_canvas(30, 1), SimulationParameters{}};
    const auto gs = quicksim_ground_state(sys, {}, tripped_budget());
    EXPECT_TRUE(gs.cancelled);
    EXPECT_FALSE(gs.complete);
}

// --- stochastic degeneracy lower bound --------------------------------------

/// A bistable BDL pair has true degeneracy 2; every instance of a stochastic
/// engine lands on one of the two minima, so the distinct-configuration
/// count must reach exactly 2 (the hardcoded-1 regression) and never exceed
/// the exhaustive count.
TEST(SimAnneal, DegeneracyIsDistinctConfigurationLowerBound)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    const SiDBSystem sys{{{0, 0, 0}, {1, 0, 0}}, p};
    const auto reference = exhaustive_ground_state(sys);
    ASSERT_EQ(reference.degeneracy, 2U);

    const auto annealed = simulated_annealing(sys);
    EXPECT_NEAR(annealed.grand_potential, reference.grand_potential, 1e-9);
    EXPECT_EQ(annealed.degeneracy, 2U);  // 16 instances: both minima visited

    // quicksim's deterministic physics-informed seeding can steer every
    // instance to the same minimum: a lower bound, never an overcount
    const auto quicksim = quicksim_ground_state(sys);
    EXPECT_NEAR(quicksim.grand_potential, reference.grand_potential, 1e-9);
    EXPECT_GE(quicksim.degeneracy, 1U);
    EXPECT_LE(quicksim.degeneracy, reference.degeneracy);
}

// --- engine selection surface -----------------------------------------------

TEST(EngineSelection, ResolveEngine)
{
    SimulationParameters p;  // default: Engine::exact
    EXPECT_EQ(resolve_engine(Engine::automatic, p), Engine::exact);
    EXPECT_EQ(resolve_engine(Engine::exhaustive, p), Engine::exhaustive);
    EXPECT_EQ(resolve_engine(Engine::simanneal, p), Engine::simanneal);

    p.engine = Engine::quicksim;
    EXPECT_EQ(resolve_engine(Engine::automatic, p), Engine::quicksim);
    EXPECT_EQ(resolve_engine(Engine::exact, p), Engine::exact);  // explicit wins

    p.engine = Engine::automatic;  // never-set guard falls back to the default
    EXPECT_EQ(resolve_engine(Engine::automatic, p), Engine::exact);

    EXPECT_TRUE(stochastic_engine(Engine::simanneal));
    EXPECT_TRUE(stochastic_engine(Engine::quicksim));
    EXPECT_FALSE(stochastic_engine(Engine::exhaustive));
    EXPECT_FALSE(stochastic_engine(Engine::exact));
}

/// find_ground_state must dispatch to the very engine entry points, with the
/// stochastic engines seeded from SimulationParameters::anneal_seed.
TEST(EngineSelection, FindGroundStateMatchesDirectEngineCalls)
{
    std::mt19937 rng{7777};
    SimulationParameters p;
    p.mu_minus = -0.32;
    const SiDBSystem sys{random_sites(8, rng), p};

    const auto exact = find_ground_state(sys);  // default: automatic -> exact
    const auto exact_direct = exact_ground_state(sys);
    EXPECT_EQ(exact.config, exact_direct.config);
    EXPECT_EQ(exact.grand_potential, exact_direct.grand_potential);
    EXPECT_EQ(exact.degeneracy, exact_direct.degeneracy);
    EXPECT_TRUE(exact.complete);

    const auto exhaustive = find_ground_state(sys, Engine::exhaustive);
    const auto exhaustive_direct = exhaustive_ground_state(sys);
    EXPECT_EQ(exhaustive.config, exhaustive_direct.config);
    EXPECT_EQ(exhaustive.grand_potential, exhaustive_direct.grand_potential);

    SimAnnealParameters sp;
    sp.num_threads = p.num_threads;
    sp.seed = p.anneal_seed;
    const auto annealed = find_ground_state(sys, Engine::simanneal);
    const auto annealed_direct = simulated_annealing(sys, sp);
    EXPECT_EQ(annealed.config, annealed_direct.config);
    EXPECT_EQ(annealed.grand_potential, annealed_direct.grand_potential);

    QuickSimParameters qp;
    qp.num_threads = p.num_threads;
    qp.seed = p.anneal_seed;
    const auto quick = find_ground_state(sys, Engine::quicksim);
    const auto quick_direct = quicksim_ground_state(sys, qp);
    EXPECT_EQ(quick.config, quick_direct.config);
    EXPECT_EQ(quick.grand_potential, quick_direct.grand_potential);
}

/// The default-engine change must not move any operational verdict: the
/// default (automatic -> exact) check must reproduce the exhaustive check's
/// verdicts AND per-pattern ground states exactly on a Bestagon tile.
TEST(EngineSelection, CheckOperationalDefaultMatchesExhaustive)
{
    const auto design = vertical_wire();
    for (const double mu : {-0.32, -0.28})
    {
        SimulationParameters p;
        p.mu_minus = mu;
        const auto via_default = check_operational(design, p);
        const auto via_exhaustive = check_operational(design, p, Engine::exhaustive);
        EXPECT_TRUE(via_default.operational);
        EXPECT_EQ(via_default.operational, via_exhaustive.operational);
        EXPECT_EQ(via_default.patterns_correct, via_exhaustive.patterns_correct);
        ASSERT_EQ(via_default.details.size(), via_exhaustive.details.size());
        for (std::size_t i = 0; i < via_default.details.size(); ++i)
        {
            EXPECT_EQ(via_default.details[i].ground_state.config,
                      via_exhaustive.details[i].ground_state.config);
            EXPECT_EQ(via_default.details[i].ground_state.grand_potential,
                      via_exhaustive.details[i].ground_state.grand_potential);
            EXPECT_EQ(via_default.details[i].correct, via_exhaustive.details[i].correct);
        }
    }
}

}  // namespace
