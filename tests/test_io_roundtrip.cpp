/// \file test_io_roundtrip.cpp
/// \brief Direct coverage of src/io/dot_writer and src/io/render (previously
///        only touched indirectly through whole-flow tests): structural
///        round-trips of the DOT graph, and empty-layout / single-tile edge
///        cases of the ASCII renderer.

#include "io/dot_writer.hpp"
#include "io/render.hpp"

#include "layout/gate_level_layout.hpp"
#include "logic/benchmarks.hpp"
#include "logic/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

namespace
{

using namespace bestagon;

/// Minimal structural parse of DOT output: declared node ids and edges.
struct ParsedDot
{
    std::set<std::string> nodes;
    std::vector<std::pair<std::string, std::string>> edges;
};

ParsedDot parse_dot(const std::string& text)
{
    ParsedDot parsed;
    std::istringstream in{text};
    std::string line;
    while (std::getline(in, line))
    {
        const auto arrow = line.find(" -> ");
        if (arrow != std::string::npos)
        {
            const auto from_start = line.find_first_not_of(' ');
            const auto semi = line.find(';', arrow);
            parsed.edges.emplace_back(line.substr(from_start, arrow - from_start),
                                      line.substr(arrow + 4, semi - arrow - 4));
        }
        else if (const auto bracket = line.find(" ["); bracket != std::string::npos)
        {
            const auto start = line.find_first_not_of(' ');
            parsed.nodes.insert(line.substr(start, bracket - start));
        }
    }
    return parsed;
}

TEST(DotWriter, RoundTripsEveryNodeAndEdge)
{
    logic::LogicNetwork net;
    const auto a = net.create_pi("a");
    const auto b = net.create_pi("b");
    const auto c = net.create_pi("c");
    const auto g1 = net.create_and(a, b);
    const auto g2 = net.create_xor(g1, c);
    const auto g3 = net.create_maj(a, b, c);
    net.create_po(g2, "f");
    net.create_po(g3, "g");

    std::ostringstream out;
    io::write_dot(out, net);
    const auto parsed = parse_dot(out.str());

    // one declaration per live node, one edge per fanin reference
    EXPECT_EQ(parsed.nodes.size(), net.size());
    std::size_t expected_edges = 0;
    for (std::uint32_t id = 0; id < net.size(); ++id)
    {
        expected_edges += logic::gate_arity(net.type_of(id));
    }
    EXPECT_EQ(parsed.edges.size(), expected_edges);
    // every edge endpoint refers to a declared node
    for (const auto& [from, to] : parsed.edges)
    {
        EXPECT_TRUE(parsed.nodes.count(from)) << from;
        EXPECT_TRUE(parsed.nodes.count(to)) << to;
    }
}

TEST(DotWriter, AllGateTypeNamesAppear)
{
    logic::LogicNetwork net;
    const auto a = net.create_pi("a");
    const auto b = net.create_pi("b");
    const auto f = net.create_fanout(a);
    const auto n1 = net.create_nand(f, b);
    const auto n2 = net.create_nor(f, b);
    const auto n3 = net.create_xnor(n1, n2);
    const auto n4 = net.create_or(n3, net.create_not(b));
    net.create_po(net.create_buf(n4), "f");

    std::ostringstream out;
    io::write_dot(out, net);
    const auto text = out.str();
    for (const char* name : {"fanout", "nand", "nor", "xnor", "or", "inv", "buf", "pi", "po"})
    {
        EXPECT_NE(text.find(name), std::string::npos) << name;
    }
}

TEST(DotWriter, EmptyNetworkIsAValidGraph)
{
    std::ostringstream out;
    io::write_dot(out, logic::LogicNetwork{});
    const auto text = out.str();
    EXPECT_NE(text.find("digraph network {"), std::string::npos);
    EXPECT_NE(text.find("}"), std::string::npos);
    EXPECT_EQ(text.find("->"), std::string::npos);
}

TEST(Render, EmptyLayoutShowsDimensionsAndClocks)
{
    const layout::GateLevelLayout empty{3, 2};
    const auto text = io::render_layout(empty);
    EXPECT_NE(text.find("3 x 2 hexagonal layout"), std::string::npos);
    EXPECT_NE(text.find("(clock 0)"), std::string::npos);
    EXPECT_NE(text.find("(clock 1)"), std::string::npos);
    EXPECT_EQ(text.find('['), std::string::npos);  // no occupants, no cells
    // header plus one line per row
    EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')), 1U + 2U);
}

TEST(Render, SingleTileLayout)
{
    layout::GateLevelLayout single{1, 1};
    layout::Occupant occ;
    occ.type = logic::GateType::pi;
    occ.label = "a";
    occ.out_a = layout::Port::se;
    ASSERT_TRUE(single.add_occupant(layout::HexCoord{0, 0}, occ));
    const auto text = io::render_layout(single);
    EXPECT_NE(text.find("1 x 1 hexagonal layout"), std::string::npos);
    EXPECT_NE(text.find("[PI a"), std::string::npos);
}

TEST(Render, CrossingTileRendersAsX)
{
    layout::GateLevelLayout crossing{1, 1};
    layout::Occupant w1;
    w1.type = logic::GateType::buf;
    w1.in_a = layout::Port::nw;
    w1.out_a = layout::Port::se;
    layout::Occupant w2;
    w2.type = logic::GateType::buf;
    w2.in_a = layout::Port::ne;
    w2.out_a = layout::Port::sw;
    std::string error;
    ASSERT_TRUE(crossing.add_occupant(layout::HexCoord{0, 0}, w1, &error)) << error;
    ASSERT_TRUE(crossing.add_occupant(layout::HexCoord{0, 0}, w2, &error)) << error;
    const auto text = io::render_layout(crossing);
    EXPECT_NE(text.find("[x/"), std::string::npos);
}

TEST(Render, ChargesHandleEmptyAndMixedConfigs)
{
    EXPECT_EQ(io::render_charges({}, {}), "");
    const std::vector<phys::SiDBSite> sites{{0, 0, 0}, {-3, 2, 1}};
    const auto text = io::render_charges(sites, {0, 1});
    EXPECT_NE(text.find("(0,0,0) DB0"), std::string::npos);
    EXPECT_NE(text.find("(-3,2,1) DB-"), std::string::npos);
}

TEST(Render, OddRowsAreShiftedHalfATile)
{
    layout::GateLevelLayout layout{2, 4};
    for (std::int32_t y = 0; y < 4; ++y)
    {
        layout::Occupant occ;  // anchor each row at x = 0 to make the shift visible
        // border I/O rule: PIs may only sit in the top row — wires anywhere
        occ.type = y == 0 ? logic::GateType::pi : logic::GateType::buf;
        occ.label = std::to_string(y);
        occ.out_a = layout::Port::se;
        ASSERT_TRUE(layout.add_occupant(layout::HexCoord{0, y}, occ));
    }
    const auto text = io::render_layout(layout);
    std::istringstream in{text};
    std::string header;
    std::getline(in, header);
    std::string row;
    for (int y = 0; std::getline(in, row); ++y)
    {
        const bool shifted = row.rfind("    ", 0) == 0;
        EXPECT_EQ(shifted, (y % 2) == 1) << "row " << y;
    }
}

}  // namespace
