#include "phys/model.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::phys;

TEST(Model, ScreenedCoulombValues)
{
    SimulationParameters p;  // eps_r = 5.6, lambda = 5 nm
    // V(1 nm) = 1.44 / 5.6 * exp(-0.2) eV
    EXPECT_NEAR(screened_coulomb(1.0, p), 1.43996448 / 5.6 * std::exp(-0.2), 1e-9);
    // screening strictly decreases the interaction
    EXPECT_LT(screened_coulomb(2.0, p), screened_coulomb(1.0, p) / 2.0);
}

TEST(Model, PotentialMatrixIsSymmetric)
{
    SimulationParameters p;
    const SiDBSystem sys{{{0, 0, 0}, {3, 1, 0}, {5, 4, 1}}, p};
    for (std::size_t i = 0; i < sys.size(); ++i)
    {
        EXPECT_DOUBLE_EQ(sys.potential(i, i), 0.0);
        for (std::size_t j = 0; j < sys.size(); ++j)
        {
            EXPECT_DOUBLE_EQ(sys.potential(i, j), sys.potential(j, i));
        }
    }
}

TEST(Model, IsolatedDbPrefersNegative)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    const SiDBSystem sys{{{0, 0, 0}}, p};
    // F(charged) = mu < 0 = F(neutral): the charged state wins and both
    // single-site configurations are population stable accordingly
    EXPECT_LT(sys.grand_potential({1}), sys.grand_potential({0}));
    EXPECT_TRUE(sys.population_stable({1}));
    EXPECT_FALSE(sys.population_stable({0}));
}

TEST(Model, ClosePairSharesOneElectron)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    // 1 column apart: V ~ 0.62 eV >> |mu|: double occupation is unstable
    const SiDBSystem sys{{{0, 0, 0}, {1, 0, 0}}, p};
    EXPECT_FALSE(sys.population_stable({1, 1}));
    EXPECT_TRUE(sys.population_stable({1, 0}));
    EXPECT_TRUE(sys.population_stable({0, 1}));
    EXPECT_LT(sys.grand_potential({1, 0}), sys.grand_potential({1, 1}));
}

TEST(Model, DistantPairHoldsTwoElectrons)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    // 40 columns apart (~15 nm): interaction is negligible
    const SiDBSystem sys{{{0, 0, 0}, {40, 0, 0}}, p};
    EXPECT_TRUE(sys.population_stable({1, 1}));
    EXPECT_LT(sys.grand_potential({1, 1}), sys.grand_potential({1, 0}));
}

TEST(Model, EnergyAndGrandPotentialRelation)
{
    SimulationParameters p;
    const SiDBSystem sys{{{0, 0, 0}, {10, 0, 0}, {20, 0, 0}}, p};
    const ChargeConfig cfg{1, 0, 1};
    EXPECT_NEAR(sys.grand_potential(cfg), sys.electrostatic_energy(cfg) + 2 * p.mu_minus, 1e-12);
}

TEST(Model, LocalPotentialSumsPairwiseTerms)
{
    SimulationParameters p;
    const SiDBSystem sys{{{0, 0, 0}, {5, 0, 0}, {10, 0, 0}}, p};
    const ChargeConfig cfg{0, 1, 1};
    EXPECT_NEAR(sys.local_potential(cfg, 0), sys.potential(0, 1) + sys.potential(0, 2), 1e-12);
    EXPECT_NEAR(sys.local_potential(cfg, 1), sys.potential(1, 2), 1e-12);
}

TEST(Model, ConfigurationStabilityDetectsBeneficialHop)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    // three sites in a line; both electrons crowded on the left pair
    const SiDBSystem sys{{{0, 0, 0}, {2, 0, 0}, {20, 0, 0}}, p};
    EXPECT_FALSE(sys.configuration_stable({1, 1, 0}));  // hop to the far site helps
    EXPECT_TRUE(sys.configuration_stable({1, 0, 1}));
}

TEST(Model, QuenchReachesValidConfiguration)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    const SiDBSystem sys{{{0, 0, 0}, {2, 0, 0}, {10, 0, 0}, {12, 0, 0}}, p};
    ChargeConfig cfg{1, 1, 1, 1};
    sys.quench(cfg);
    EXPECT_TRUE(sys.physically_valid(cfg));
    ChargeConfig cfg2{0, 0, 0, 0};
    sys.quench(cfg2);
    EXPECT_TRUE(sys.physically_valid(cfg2));
}

}  // namespace
