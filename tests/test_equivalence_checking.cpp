#include "layout/equivalence_checking.hpp"

#include "layout/exact_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using namespace bestagon::layout;

TEST(EquivalenceChecking, IdenticalNetworksAreEquivalent)
{
    const auto net = logic::find_benchmark("c17")->build();
    EXPECT_EQ(check_equivalence(net, net), EquivalenceResult::equivalent);
}

TEST(EquivalenceChecking, DeMorganVariantsAreEquivalent)
{
    logic::LogicNetwork n1;
    {
        const auto a = n1.create_pi();
        const auto b = n1.create_pi();
        n1.create_po(n1.create_nor(a, b));
    }
    logic::LogicNetwork n2;
    {
        const auto a = n2.create_pi();
        const auto b = n2.create_pi();
        n2.create_po(n2.create_and(n2.create_not(a), n2.create_not(b)));
    }
    EXPECT_EQ(check_equivalence(n1, n2), EquivalenceResult::equivalent);
}

TEST(EquivalenceChecking, DetectsDifferenceWithCounterexample)
{
    logic::LogicNetwork n1;
    {
        const auto a = n1.create_pi();
        const auto b = n1.create_pi();
        n1.create_po(n1.create_and(a, b));
    }
    logic::LogicNetwork n2;
    {
        const auto a = n2.create_pi();
        const auto b = n2.create_pi();
        n2.create_po(n2.create_or(a, b));
    }
    EquivalenceStats stats;
    EXPECT_EQ(check_equivalence(n1, n2, &stats), EquivalenceResult::not_equivalent);
    // the counterexample must actually distinguish the networks
    const auto v1 = n1.simulate_pattern(stats.counterexample);
    const auto v2 = n2.simulate_pattern(stats.counterexample);
    EXPECT_NE(v1, v2);
}

TEST(EquivalenceChecking, InterfaceMismatchIsNotEquivalent)
{
    logic::LogicNetwork n1;
    n1.create_po(n1.create_pi());
    logic::LogicNetwork n2;
    const auto a = n2.create_pi();
    static_cast<void>(n2.create_pi());
    n2.create_po(a);
    EXPECT_EQ(check_equivalence(n1, n2), EquivalenceResult::not_equivalent);
}

TEST(EquivalenceChecking, MitersMaj)
{
    logic::LogicNetwork n1;
    {
        const auto a = n1.create_pi();
        const auto b = n1.create_pi();
        const auto c = n1.create_pi();
        n1.create_po(n1.create_maj(a, b, c));
    }
    logic::LogicNetwork n2;
    {
        const auto a = n2.create_pi();
        const auto b = n2.create_pi();
        const auto c = n2.create_pi();
        const auto ab = n2.create_and(a, b);
        const auto ac = n2.create_and(a, c);
        const auto bc = n2.create_and(b, c);
        n2.create_po(n2.create_or(n2.create_or(ab, ac), bc));
    }
    EXPECT_EQ(check_equivalence(n1, n2), EquivalenceResult::equivalent);
}

TEST(EquivalenceChecking, EmptyNetworksAreEquivalent)
{
    // zero PIs and zero POs: the miter is vacuously UNSAT
    const logic::LogicNetwork n1;
    const logic::LogicNetwork n2;
    EXPECT_EQ(check_equivalence(n1, n2), EquivalenceResult::equivalent);
}

TEST(EquivalenceChecking, ConstantOutputsAreCompared)
{
    // no PIs: equivalence degenerates to comparing the constants themselves
    logic::LogicNetwork true1;
    true1.create_po(true1.create_const(true));
    logic::LogicNetwork true2;
    true2.create_po(true2.create_const(true));
    logic::LogicNetwork false1;
    false1.create_po(false1.create_const(false));
    EXPECT_EQ(check_equivalence(true1, true2), EquivalenceResult::equivalent);
    EXPECT_EQ(check_equivalence(true1, false1), EquivalenceResult::not_equivalent);
}

TEST(EquivalenceChecking, ConstantVersusDegenerateGateNetwork)
{
    // x XOR x == 0: structurally different from a constant-0 network but
    // functionally identical on the shared input
    logic::LogicNetwork spec;
    const auto a1 = spec.create_pi();
    static_cast<void>(a1);
    spec.create_po(spec.create_const(false));
    logic::LogicNetwork impl;
    const auto a2 = impl.create_pi();
    impl.create_po(impl.create_xor(a2, a2));
    EXPECT_EQ(check_equivalence(spec, impl), EquivalenceResult::equivalent);
}

TEST(EquivalenceChecking, EmptyLayoutIsNotEquivalentToRealSpec)
{
    logic::LogicNetwork spec;
    const auto a = spec.create_pi();
    const auto b = spec.create_pi();
    spec.create_po(spec.create_and(a, b));
    const GateLevelLayout empty{3, 3};
    EXPECT_EQ(check_layout_equivalence(spec, empty), EquivalenceResult::not_equivalent);
}

TEST(EquivalenceChecking, SingleTileLayoutMatchesTrivialSpec)
{
    // a 1x1 layout cannot host PI -> PO (two rows needed); a 1x2 wire-only
    // pass-through is the smallest meaningful layout
    logic::LogicNetwork spec;
    spec.create_po(spec.create_pi("a"), "f");
    GateLevelLayout layout{1, 2};
    Occupant pi;
    pi.type = logic::GateType::pi;
    pi.node = 0;
    pi.out_a = Port::se;
    ASSERT_TRUE(layout.add_occupant({0, 0}, pi));
    Occupant po;
    po.type = logic::GateType::po;
    po.node = 1;
    po.in_a = Port::nw;
    ASSERT_TRUE(layout.add_occupant({0, 1}, po));
    EXPECT_EQ(check_layout_equivalence(spec, layout), EquivalenceResult::equivalent);
}

/// Flow step (5): check layouts produced by exact physical design.
class LayoutEquivalence : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LayoutEquivalence, LayoutImplementsSpecification)
{
    const auto* bm = logic::find_benchmark(GetParam());
    logic::NpnDatabase db;
    const auto mapped = logic::map_to_bestagon(logic::rewrite(logic::to_xag(bm->build()), db));
    const auto layout = exact_physical_design(mapped);
    ASSERT_TRUE(layout.has_value());
    EXPECT_EQ(check_layout_equivalence(mapped, *layout), EquivalenceResult::equivalent);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, LayoutEquivalence,
                         ::testing::Values("xor2", "par_gen", "mux21", "par_check", "c17"));

}  // namespace
