#include "logic/benchmarks.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace
{

using namespace bestagon::logic;

TEST(Benchmarks, FourteenTableOneEntries)
{
    EXPECT_EQ(table1_benchmarks().size(), 14U);
}

TEST(Benchmarks, LookupByName)
{
    EXPECT_NE(find_benchmark("c17"), nullptr);
    EXPECT_EQ(find_benchmark("does_not_exist"), nullptr);
}

TEST(Benchmarks, Xor2Function)
{
    const auto net = find_benchmark("xor2")->build();
    EXPECT_EQ(net.simulate()[0].to_binary(), "0110");
}

TEST(Benchmarks, ParityFunctions)
{
    const auto gen = find_benchmark("par_gen")->build().simulate()[0];
    for (unsigned t = 0; t < 8; ++t)
    {
        EXPECT_EQ(gen.get_bit(t), (std::popcount(t) & 1) != 0);
    }
    // par_check reports 1 when the 4-bit word (3 data + parity) is consistent
    const auto check = find_benchmark("par_check")->build().simulate()[0];
    for (unsigned t = 0; t < 16; ++t)
    {
        EXPECT_EQ(check.get_bit(t), (std::popcount(t) & 1) == 0);
    }
}

TEST(Benchmarks, MuxFunction)
{
    const auto f = find_benchmark("mux21")->build().simulate()[0];
    // inputs: a (bit0), b (bit1), s (bit2)
    for (unsigned t = 0; t < 8; ++t)
    {
        const bool a = (t & 1) != 0, b = (t & 2) != 0, s = (t & 4) != 0;
        EXPECT_EQ(f.get_bit(t), s ? b : a);
    }
}

TEST(Benchmarks, BothXor5VariantsComputeParity)
{
    const auto a = find_benchmark("xor5_r1")->build();
    const auto b = find_benchmark("xor5_majority")->build();
    EXPECT_TRUE(functionally_equivalent(a, b));
    const auto f = a.simulate()[0];
    for (unsigned t = 0; t < 32; ++t)
    {
        EXPECT_EQ(f.get_bit(t), (std::popcount(t) & 1) != 0);
    }
}

TEST(Benchmarks, MajorityFunctions)
{
    const auto m3 = find_benchmark("majority")->build().simulate()[0];
    for (unsigned t = 0; t < 8; ++t)
    {
        EXPECT_EQ(m3.get_bit(t), std::popcount(t) >= 2);
    }
    const auto m5 = find_benchmark("majority_5_r1")->build().simulate()[0];
    for (unsigned t = 0; t < 32; ++t)
    {
        EXPECT_EQ(m5.get_bit(t), std::popcount(t) >= 3);
    }
}

TEST(Benchmarks, C17MatchesNandNetlist)
{
    const auto net = find_benchmark("c17")->build();
    EXPECT_EQ(net.num_pis(), 5U);
    EXPECT_EQ(net.num_pos(), 2U);
    EXPECT_EQ(net.num_gates_of(GateType::nand2), 6U);
    // reference evaluation of the ISCAS-85 netlist
    const auto tts = net.simulate();
    for (unsigned t = 0; t < 32; ++t)
    {
        const bool i1 = t & 1, i2 = t & 2, i3 = t & 4, i6 = t & 8, i7 = t & 16;
        const bool n10 = !(i1 && i3);
        const bool n11 = !(i3 && i6);
        const bool n16 = !(i2 && n11);
        const bool n19 = !(n11 && i7);
        EXPECT_EQ(tts[0].get_bit(t), !(n10 && n16));
        EXPECT_EQ(tts[1].get_bit(t), !(n16 && n19));
    }
}

TEST(Benchmarks, Cm82aIsATwoStageAdder)
{
    const auto tts = find_benchmark("cm82a_5")->build().simulate();
    ASSERT_EQ(tts.size(), 3U);
    for (unsigned t = 0; t < 32; ++t)
    {
        const bool a = t & 1, b = t & 2, c = t & 4, d = t & 8, e = t & 16;
        const bool s1 = a ^ b ^ c;
        const bool c1 = (a && b) || (a && c) || (b && c);
        const bool s2 = c1 ^ d ^ e;
        const bool c2 = (c1 && d) || (c1 && e) || (d && e);
        EXPECT_EQ(tts[0].get_bit(t), s1);
        EXPECT_EQ(tts[1].get_bit(t), s2);
        EXPECT_EQ(tts[2].get_bit(t), c2);
    }
}

TEST(Benchmarks, InterfaceSizesMatchTable1Sources)
{
    struct Expected
    {
        const char* name;
        unsigned pis;
        unsigned pos;
    };
    for (const auto& e : {Expected{"xor2", 2, 1}, {"xnor2", 2, 1}, {"par_gen", 3, 1},
                          {"mux21", 3, 1}, {"par_check", 4, 1}, {"xor5_r1", 5, 1},
                          {"xor5_majority", 5, 1}, {"t", 5, 2}, {"t_5", 5, 2}, {"c17", 5, 2},
                          {"majority", 3, 1}, {"majority_5_r1", 5, 1}, {"cm82a_5", 5, 3},
                          {"newtag", 8, 1}})
    {
        const auto net = find_benchmark(e.name)->build();
        EXPECT_EQ(net.num_pis(), e.pis) << e.name;
        EXPECT_EQ(net.num_pos(), e.pos) << e.name;
    }
}

TEST(Benchmarks, PaperReferenceRowsArePresent)
{
    const auto* pc = find_benchmark("par_check");
    EXPECT_EQ(pc->paper.width, 4U);
    EXPECT_EQ(pc->paper.height, 7U);
    EXPECT_EQ(pc->paper.area_tiles, 28U);
    EXPECT_EQ(pc->paper.sidbs, 284U);
    EXPECT_NEAR(pc->paper.area_nm2, 11312.68, 1e-2);
}

}  // namespace
