/// \file test_run_control.cpp
/// \brief Run-control primitives (StopToken / Deadline / RunBudget /
///        FlowDiagnostics) and their cooperative threading through the
///        solver, the physical-simulation engines and the design flow:
///        budgets cut promptly, cancelled runs stay well-formed, exhausted
///        exact budgets degrade to the scalable engine, and unlimited
///        budgets leave every result bit-identical.

#include "core/design_flow.hpp"
#include "core/run_control.hpp"
#include "layout/bestagon_library.hpp"
#include "logic/benchmarks.hpp"
#include "phys/exhaustive.hpp"
#include "phys/gate_designer.hpp"
#include "phys/operational.hpp"
#include "phys/operational_domain.hpp"
#include "phys/simanneal.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "testing/oracles.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace
{

using namespace bestagon;
using core::Deadline;
using core::FlowOptions;
using core::RunBudget;
using core::StageStatus;
using core::StopSource;
using core::StopToken;

std::int64_t elapsed_ms(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/// A RunBudget whose token already requested a stop.
RunBudget tripped_budget()
{
    StopSource source;
    source.request_stop();
    return RunBudget{source.token(), {}};
}

/// The pigeonhole principle PHP(pigeons, holes): UNSAT when pigeons > holes,
/// with exponential-size resolution refutations — a CDCL solver needs far
/// more than a few milliseconds on PHP(12, 11).
sat::Cnf pigeonhole(unsigned pigeons, unsigned holes)
{
    sat::Cnf cnf;
    cnf.num_vars = static_cast<int>(pigeons * holes);
    const auto var = [holes](unsigned p, unsigned h) {
        return static_cast<int>(p * holes + h + 1);
    };
    for (unsigned p = 0; p < pigeons; ++p)
    {
        std::vector<int> clause;
        for (unsigned h = 0; h < holes; ++h)
        {
            clause.push_back(var(p, h));
        }
        cnf.clauses.push_back(std::move(clause));
    }
    for (unsigned h = 0; h < holes; ++h)
    {
        for (unsigned p1 = 0; p1 < pigeons; ++p1)
        {
            for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
            {
                cnf.clauses.push_back({-var(p1, h), -var(p2, h)});
            }
        }
    }
    return cnf;
}

// --- primitives ------------------------------------------------------------

TEST(RunControl, DefaultTokenNeverStops)
{
    const StopToken token;
    EXPECT_FALSE(token.stop_possible());
    EXPECT_FALSE(token.stop_requested());

    StopSource source;
    const StopToken attached = source.token();
    const StopToken copy = attached;
    EXPECT_TRUE(attached.stop_possible());
    EXPECT_FALSE(attached.stop_requested());
    source.request_stop();
    EXPECT_TRUE(attached.stop_requested());
    EXPECT_TRUE(copy.stop_requested()) << "copies share the channel";
    source.request_stop();  // idempotent
    EXPECT_TRUE(source.stop_requested());
}

TEST(RunControl, DeadlineBasics)
{
    EXPECT_TRUE(Deadline{}.unlimited());
    EXPECT_TRUE(Deadline::in_ms(-1).unlimited());
    EXPECT_FALSE(Deadline{}.expired());
    EXPECT_EQ(Deadline{}.remaining_ms(), Deadline::unlimited_ms);

    const auto now = Deadline::in_ms(0);
    EXPECT_FALSE(now.unlimited());
    EXPECT_TRUE(now.expired());
    EXPECT_EQ(now.remaining_ms(), 0);

    const auto later = Deadline::in_ms(60000);
    EXPECT_FALSE(later.expired());
    EXPECT_GT(later.remaining_ms(), 0);
    EXPECT_LE(later.remaining_ms(), 60000);
}

TEST(RunControl, SoonerComposesDeadlines)
{
    const auto near = Deadline::in_ms(0);
    const auto far = Deadline::in_ms(60000);
    EXPECT_TRUE(Deadline::sooner(near, far).expired());
    EXPECT_TRUE(Deadline::sooner(far, near).expired());
    // unlimited is the identity
    EXPECT_TRUE(Deadline::sooner(Deadline{}, near).expired());
    EXPECT_FALSE(Deadline::sooner(far, Deadline{}).expired());
    EXPECT_TRUE(Deadline::sooner(Deadline{}, Deadline{}).unlimited());
}

TEST(RunControl, RunBudgetComposition)
{
    const RunBudget unlimited;
    EXPECT_FALSE(unlimited.limited());
    EXPECT_FALSE(unlimited.stopped());

    StopSource source;
    RunBudget with_token{source.token(), {}};
    EXPECT_TRUE(with_token.limited());
    EXPECT_FALSE(with_token.stopped());
    source.request_stop();
    EXPECT_TRUE(with_token.stopped());

    // clipping: ms < 0 leaves the deadline untouched, 0 stops immediately
    EXPECT_FALSE(unlimited.clipped_ms(-1).limited());
    EXPECT_TRUE(unlimited.clipped_ms(0).stopped());
    EXPECT_FALSE(unlimited.clipped_ms(60000).stopped());
    EXPECT_TRUE(unlimited.clipped_ms(60000).limited());
}

TEST(RunControl, StageStatusNames)
{
    EXPECT_STREQ(core::to_string(StageStatus::completed), "completed");
    EXPECT_STREQ(core::to_string(StageStatus::degraded), "degraded");
    EXPECT_STREQ(core::to_string(StageStatus::timed_out), "timed_out");
    EXPECT_STREQ(core::to_string(StageStatus::cancelled), "cancelled");
    EXPECT_STREQ(core::to_string(StageStatus::failed), "failed");
    EXPECT_STREQ(core::to_string(StageStatus::skipped), "skipped");
}

TEST(RunControl, DiagnosticsQueries)
{
    core::FlowDiagnostics diag;
    diag.stages.push_back({"to_xag", StageStatus::completed, 1, 0, ""});
    diag.stages.push_back({"physical_design", StageStatus::degraded, 40, 0, "fallback"});
    EXPECT_FALSE(diag.all_completed()) << "degraded counts as not completed";
    EXPECT_EQ(diag.first_cut(), nullptr) << "degraded stages are usable, not cut";
    EXPECT_FALSE(diag.interrupted());
    ASSERT_NE(diag.find("to_xag"), nullptr);
    EXPECT_EQ(diag.find("nonexistent"), nullptr);

    diag.stages.push_back({"equivalence", StageStatus::timed_out, 12, 0, "cut"});
    EXPECT_TRUE(diag.interrupted());
    ASSERT_NE(diag.first_cut(), nullptr);
    EXPECT_EQ(diag.first_cut()->stage, "equivalence");

    const auto table = diag.table();
    EXPECT_NE(table.find("physical_design"), std::string::npos);
    EXPECT_NE(table.find("degraded"), std::string::npos);
    EXPECT_NE(table.find("timed_out"), std::string::npos);
}

// --- solver budgets (satellite: prompt time-budget enforcement) -------------

TEST(RunControl, SolverHonorsSmallTimeBudgetOnHardInstance)
{
    // PHP(12, 11) takes a CDCL solver minutes; a 10 ms budget must surface
    // as `unknown` promptly, not after the next 256-conflict block
    sat::Solver solver;
    ASSERT_TRUE(sat::load_into_solver(solver, pigeonhole(12, 11)));
    solver.set_time_budget_ms(10);
    const auto start = std::chrono::steady_clock::now();
    const auto result = solver.solve();
    const auto ms = elapsed_ms(start);
    EXPECT_EQ(result, sat::Result::unknown);
    EXPECT_LT(ms, 2000) << "a 10 ms budget took " << ms << " ms to take effect";
}

TEST(RunControl, SolverTimeCheckStrideIsConfigurable)
{
    sat::Solver solver;
    ASSERT_TRUE(sat::load_into_solver(solver, pigeonhole(12, 11)));
    solver.set_time_budget_ms(5);
    solver.set_time_check_stride(16);  // poll the clock every 16 decisions
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(solver.solve(), sat::Result::unknown);
    EXPECT_LT(elapsed_ms(start), 2000);
}

TEST(RunControl, SolverStopTokenPreempts)
{
    sat::Solver solver;
    ASSERT_TRUE(sat::load_into_solver(solver, pigeonhole(12, 11)));
    StopSource source;
    source.request_stop();
    solver.set_stop_token(source.token());
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(solver.solve(), sat::Result::unknown);
    EXPECT_LT(elapsed_ms(start), 2000);
}

TEST(RunControl, SolverDeadlinePreempts)
{
    sat::Solver solver;
    ASSERT_TRUE(sat::load_into_solver(solver, pigeonhole(12, 11)));
    solver.set_deadline(Deadline::in_ms(10));
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(solver.solve(), sat::Result::unknown);
    EXPECT_LT(elapsed_ms(start), 2000);
}

// --- flow degradation (satellite: deterministic fallback test) --------------

TEST(RunControl, ExhaustedExactBudgetDegradesToScalable)
{
    // a zero conflict budget is deterministically exhausted on the first
    // aspect ratio: the flow must fall back to the scalable engine and say so
    FlowOptions options;
    options.engine = core::PhysicalDesignEngine::exact_with_fallback;
    options.exact_options.conflicts_per_size = 0;
    const auto result =
        core::run_design_flow(logic::find_benchmark("xor2")->build(), options);

    EXPECT_TRUE(result.pd_stats.budget_exhausted);
    EXPECT_EQ(result.engine_used, "scalable");
    ASSERT_TRUE(result.layout.has_value());
    EXPECT_EQ(result.equivalence, layout::EquivalenceResult::equivalent);
    EXPECT_TRUE(result.success()) << "a degraded flow still succeeds end to end";

    const auto* pd = result.diagnostics.find("physical_design");
    ASSERT_NE(pd, nullptr);
    EXPECT_EQ(pd->status, StageStatus::degraded);
    EXPECT_NE(pd->detail.find("fallback"), std::string::npos) << pd->detail;
    EXPECT_EQ(result.diagnostics.first_cut(), nullptr)
        << "degradation is not an interruption";
}

TEST(RunControl, PreCancelledFlowIsWellFormed)
{
    StopSource source;
    source.request_stop();
    FlowOptions options;
    options.stop = source.token();
    const auto result =
        core::run_design_flow(logic::find_benchmark("xor2")->build(), options);

    EXPECT_FALSE(result.success());
    EXPECT_FALSE(result.layout.has_value()) << "cancellation must not trigger the fallback";
    ASSERT_NE(result.diagnostics.find("to_xag"), nullptr);
    EXPECT_EQ(result.diagnostics.find("to_xag")->status, StageStatus::completed);
    const auto* cut = result.diagnostics.first_cut();
    ASSERT_NE(cut, nullptr);
    EXPECT_EQ(cut->stage, "physical_design");
    EXPECT_EQ(cut->status, StageStatus::cancelled);
}

TEST(RunControl, ZeroDeadlineStillEmitsPartialArtifacts)
{
    // an already-expired deadline: exact P&R degrades to the scalable
    // fallback (which only honors the token), equivalence reports unknown,
    // and the cheap artifact stages still produce the layout files
    FlowOptions options;
    options.deadline_ms = 0;
    const auto result =
        core::run_design_flow(logic::find_benchmark("xor2")->build(), options);

    ASSERT_TRUE(result.layout.has_value());
    EXPECT_EQ(result.engine_used, "scalable");
    EXPECT_TRUE(result.sidb.has_value()) << "artifact stages run even after the cut";
    EXPECT_EQ(result.equivalence, layout::EquivalenceResult::unknown);
    EXPECT_FALSE(result.success());

    const auto* pd = result.diagnostics.find("physical_design");
    ASSERT_NE(pd, nullptr);
    EXPECT_EQ(pd->status, StageStatus::degraded);
    const auto* eq = result.diagnostics.find("equivalence");
    ASSERT_NE(eq, nullptr);
    EXPECT_EQ(eq->status, StageStatus::timed_out);
    ASSERT_NE(result.diagnostics.first_cut(), nullptr);
    EXPECT_EQ(result.diagnostics.first_cut()->stage, "equivalence");
}

TEST(RunControl, ZeroDeadlineSkipsGateValidationWithRecord)
{
    FlowOptions options;
    options.deadline_ms = 0;
    options.validate_gates = true;
    const auto result =
        core::run_design_flow(logic::find_benchmark("xor2")->build(), options);
    const auto* val = result.diagnostics.find("gate_validation");
    ASSERT_NE(val, nullptr) << "the skip itself must be recorded";
    EXPECT_EQ(val->status, StageStatus::skipped);
    EXPECT_NE(val->detail.find("deadline"), std::string::npos) << val->detail;
    EXPECT_TRUE(result.gate_validation.empty());
}

TEST(RunControl, ValidationRetriesAreBoundedAndRecorded)
{
    FlowOptions options;
    options.validate_gates = true;
    options.validation_engine = phys::Engine::simanneal;
    options.validation_retries = 2;
    options.sim_params.num_threads = 2;
    const auto result =
        core::run_design_flow(logic::find_benchmark("xor2")->build(), options);
    ASSERT_TRUE(result.success());
    const auto* val = result.diagnostics.find("gate_validation");
    ASSERT_NE(val, nullptr);
    EXPECT_EQ(val->status, StageStatus::completed);
    for (const auto& v : result.gate_validation)
    {
        EXPECT_TRUE(v.evaluated);
        EXPECT_LE(v.retries, options.validation_retries) << v.name;
    }
}

TEST(RunControl, UnlimitedDeadlineIsBitIdenticalToNoDeadline)
{
    const auto spec = logic::find_benchmark("xor2")->build();
    const auto plain = core::run_design_flow(spec);
    FlowOptions options;
    options.deadline_ms = std::int64_t{1} << 40;  // limited, but never expires
    const auto budgeted = core::run_design_flow(spec, options);

    ASSERT_TRUE(plain.success());
    ASSERT_TRUE(budgeted.success());
    EXPECT_EQ(plain.engine_used, budgeted.engine_used);
    EXPECT_EQ(plain.layout->width(), budgeted.layout->width());
    EXPECT_EQ(plain.layout->height(), budgeted.layout->height());
    EXPECT_EQ(plain.sidb->num_sidbs(), budgeted.sidb->num_sidbs());
    EXPECT_EQ(plain.equivalence, budgeted.equivalence);
    ASSERT_EQ(plain.diagnostics.stages.size(), budgeted.diagnostics.stages.size());
    for (std::size_t i = 0; i < plain.diagnostics.stages.size(); ++i)
    {
        EXPECT_EQ(plain.diagnostics.stages[i].status, budgeted.diagnostics.stages[i].status)
            << plain.diagnostics.stages[i].stage;
    }
}

// --- parser robustness (satellite: no raw parser exceptions) ----------------

TEST(RunControl, MalformedVerilogDoesNotThrow)
{
    const auto result = core::run_design_flow_verilog("module broken(a, b\n  asign q = ;");
    EXPECT_FALSE(result.success());
    EXPECT_FALSE(result.layout.has_value());
    ASSERT_EQ(result.diagnostics.stages.size(), 1U);
    EXPECT_EQ(result.diagnostics.stages[0].stage, "parse");
    EXPECT_EQ(result.diagnostics.stages[0].status, StageStatus::failed);
    EXPECT_EQ(result.diagnostics.stages[0].detail.rfind("verilog: ", 0), 0U)
        << result.diagnostics.stages[0].detail;
}

TEST(RunControl, MalformedBenchDoesNotThrow)
{
    const auto result = core::run_design_flow_bench("INPUT(a\nG1 = NONSENSE(a)\n");
    EXPECT_FALSE(result.success());
    ASSERT_EQ(result.diagnostics.stages.size(), 1U);
    EXPECT_EQ(result.diagnostics.stages[0].stage, "parse");
    EXPECT_EQ(result.diagnostics.stages[0].status, StageStatus::failed);
    EXPECT_EQ(result.diagnostics.stages[0].detail.rfind("bench: ", 0), 0U)
        << result.diagnostics.stages[0].detail;
}

TEST(RunControl, WellFormedVerilogRecordsParseStage)
{
    const auto result = core::run_design_flow_verilog(R"(
        module half(a, b, s);
          input a, b;
          output s;
          assign s = a ^ b;
        endmodule
    )");
    ASSERT_TRUE(result.success());
    ASSERT_FALSE(result.diagnostics.stages.empty());
    EXPECT_EQ(result.diagnostics.stages.front().stage, "parse");
    EXPECT_EQ(result.diagnostics.stages.front().status, StageStatus::completed);
}

// --- physical-simulation engines -------------------------------------------

TEST(RunControl, SimannealCancellationStaysWellFormed)
{
    phys::SimulationParameters params;
    params.mu_minus = -0.32;
    std::vector<phys::SiDBSite> sites;
    for (int n = 0; n < 8; ++n)
    {
        sites.push_back({3 * n, (n % 3) * 2, n % 2});
    }
    const phys::SiDBSystem system{sites, params};

    const auto cancelled = phys::simulated_annealing(system, {}, tripped_budget());
    EXPECT_TRUE(cancelled.cancelled);

    // an unlimited budget is bit-identical to the plain call
    const auto plain = phys::simulated_annealing(system);
    const auto unlimited = phys::simulated_annealing(system, {}, RunBudget{});
    EXPECT_FALSE(unlimited.cancelled);
    EXPECT_EQ(plain.grand_potential, unlimited.grand_potential);
    EXPECT_EQ(plain.config, unlimited.config);
}

TEST(RunControl, ExhaustiveCancellationReportsIncomplete)
{
    phys::SimulationParameters params;
    params.mu_minus = -0.32;
    std::vector<phys::SiDBSite> sites;
    for (int n = 0; n < 18; ++n)  // large enough to guarantee a poll
    {
        sites.push_back({4 * n, 0, 0});
    }
    const phys::SiDBSystem system{sites, params};
    const auto result = phys::exhaustive_ground_state(system, tripped_budget());
    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.complete);

    const auto unlimited = phys::exhaustive_ground_state(system);
    EXPECT_TRUE(unlimited.complete);
    EXPECT_FALSE(unlimited.cancelled);
}

TEST(RunControl, OperationalCheckCancellationKeepsPatternIndices)
{
    const auto& lib = layout::BestagonLibrary::instance();
    const auto* wire = lib.lookup(logic::GateType::buf, layout::Port::nw, std::nullopt,
                                  layout::Port::sw, std::nullopt);
    ASSERT_NE(wire, nullptr);
    phys::SimulationParameters params;
    params.mu_minus = -0.32;
    const auto result =
        phys::check_operational(wire->design, params, phys::Engine::exhaustive, tripped_budget());
    EXPECT_TRUE(result.cancelled);
    EXPECT_FALSE(result.operational) << "unevaluated patterns must count against operivity";
    for (std::size_t p = 0; p < result.details.size(); ++p)
    {
        EXPECT_EQ(result.details[p].pattern, p) << "skipped slots keep their pattern index";
        EXPECT_FALSE(result.details[p].evaluated);
    }
}

TEST(RunControl, OperationalDomainCancellationKeepsCoordinates)
{
    const auto& lib = layout::BestagonLibrary::instance();
    const auto* wire = lib.lookup(logic::GateType::buf, layout::Port::nw, std::nullopt,
                                  layout::Port::sw, std::nullopt);
    ASSERT_NE(wire, nullptr);
    phys::SimulationParameters base;
    base.mu_minus = -0.32;
    phys::DomainSweep sweep;
    sweep.axes = phys::DomainAxes::epsilon_r_vs_lambda_tf;
    sweep.x_min = 4.0;
    sweep.x_max = 6.0;
    sweep.x_steps = 3;
    sweep.y_min = 4.0;
    sweep.y_max = 6.0;
    sweep.y_steps = 3;
    const auto domain = phys::compute_operational_domain(wire->design, base, sweep,
                                                         phys::Engine::exhaustive, tripped_budget());
    EXPECT_TRUE(domain.cancelled);
    ASSERT_EQ(domain.points.size(), 9U);
    for (const auto& p : domain.points)
    {
        EXPECT_FALSE(p.evaluated);
        EXPECT_FALSE(p.operational);
        EXPECT_GE(p.x, sweep.x_min);
        EXPECT_LE(p.x, sweep.x_max);
    }
    EXPECT_EQ(domain.coverage(), 0.0);
}

TEST(RunControl, GateDesignerHonorsCancellation)
{
    // a pre-tripped token must abort the stochastic search before any
    // simulation work, retries included
    phys::GateDesign d;
    d.name = "wire";
    for (const int m : {1, 2, 5, 6})
    {
        d.sites.push_back({15, m, 0});
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.output_pairs.push_back({{15, 5, 0}, {15, 6, 0}});
    d.functions.push_back(logic::TruthTable::from_binary("10"));
    std::vector<phys::SiDBSite> candidates = {{10, 3, 0}, {11, 3, 0}, {12, 3, 1}};
    phys::DesignerOptions options;
    options.max_iterations = 1000000;
    options.max_retries = 5;
    StopSource source;
    source.request_stop();
    options.run.token = source.token();
    phys::SimulationParameters params;
    params.mu_minus = -0.32;
    const auto start = std::chrono::steady_clock::now();
    const auto result = phys::design_gate(d, candidates, options, params);
    EXPECT_FALSE(result.has_value());
    EXPECT_LT(elapsed_ms(start), 5000);
}

// --- the end-to-end invariant oracle ----------------------------------------

TEST(RunControl, ConcurrentStopMidFlowSatisfiesTheOracle)
{
    StopSource source;
    FlowOptions options;
    options.stop = source.token();
    options.validate_gates = true;
    std::thread watchdog{[&source]() {
        std::this_thread::sleep_for(std::chrono::milliseconds{15});
        source.request_stop();
    }};
    const auto verdict = testkit::run_control_differential(
        logic::find_benchmark("par_gen")->build(), options);
    watchdog.join();
    EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(RunControl, DeadlineBoundedFlowSatisfiesTheOracle)
{
    FlowOptions options;
    options.deadline_ms = 25;
    options.validate_gates = true;
    testkit::RunControlOracleStats stats;
    const auto verdict = testkit::run_control_differential(
        logic::find_benchmark("par_gen")->build(), options, 2000, &stats);
    EXPECT_TRUE(verdict.ok) << verdict.detail;
    EXPECT_LE(stats.wall_ms, 2 * options.deadline_ms + 2000);
}

}  // namespace
