/// \file test_charge_state.cpp
/// \brief Unit tests of the incremental charge-state kernel and the
///        pattern-invariant gate-instance potential cache.

#include "phys/charge_state.hpp"
#include "phys/operational.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace
{

using namespace bestagon::phys;
using bestagon::logic::TruthTable;

std::vector<SiDBSite> triangle_canvas()
{
    return {{0, 0, 0}, {4, 1, 0}, {8, 2, 1}};
}

TEST(ChargeState, FreshCacheIsBitIdenticalToNaiveLocalPotential)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    const ChargeConfig config{1, 0, 1};
    const ChargeState state{system, config};
    for (std::size_t i = 0; i < system.size(); ++i)
    {
        EXPECT_EQ(state.local_potential(i), system.local_potential(config, i)) << "site " << i;
    }
    EXPECT_EQ(state.num_charges(), 2U);
}

TEST(ChargeState, DeltaFlipMatchesFreshEvaluation)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    const ChargeConfig config{1, 0, 1};
    const ChargeState state{system, config};
    for (std::size_t i = 0; i < system.size(); ++i)
    {
        const double v = system.local_potential(config, i);
        const double expected = config[i] == 0 ? (params.mu_minus + v) : -(params.mu_minus + v);
        EXPECT_EQ(state.delta_flip(i), expected) << "site " << i;
    }
}

TEST(ChargeState, DeltaHopMatchesFreshEvaluation)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    const ChargeConfig config{1, 0, 1};
    const ChargeState state{system, config};
    const double expected =
        system.local_potential(config, 1) - system.local_potential(config, 0) - system.potential(0, 1);
    EXPECT_EQ(state.delta_hop(0, 1), expected);
}

TEST(ChargeState, CommitFlipAppliesDeltaAndUpdatesCache)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    ChargeState state{system, ChargeConfig{1, 0, 1}};
    const double f_before = system.grand_potential(state.config());
    const double delta = state.delta_flip(1);
    state.commit_flip(1);
    EXPECT_EQ(state.charge(1), 1U);
    EXPECT_EQ(state.num_charges(), 3U);
    const double f_after = system.grand_potential(state.config());
    EXPECT_NEAR(f_after - f_before, delta, 1e-12);
    for (std::size_t i = 0; i < system.size(); ++i)
    {
        EXPECT_NEAR(state.local_potential(i), system.local_potential(state.config(), i), 1e-12);
    }
}

TEST(ChargeState, CommitHopMovesChargeAndUpdatesCache)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    ChargeState state{system, ChargeConfig{1, 0, 0}};
    const double delta = state.delta_hop(0, 2);
    const double f_before = system.grand_potential(state.config());
    state.commit_hop(0, 2);
    EXPECT_EQ(state.charge(0), 0U);
    EXPECT_EQ(state.charge(2), 1U);
    EXPECT_EQ(state.num_charges(), 1U);
    EXPECT_NEAR(system.grand_potential(state.config()) - f_before, delta, 1e-12);
    for (std::size_t i = 0; i < system.size(); ++i)
    {
        EXPECT_NEAR(state.local_potential(i), system.local_potential(state.config(), i), 1e-12);
    }
}

TEST(ChargeState, RebuildRestoresBitExactAgreement)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    ChargeState state{system};
    // a few commits introduce (at most ulp-level) incremental drift
    state.commit_flip(0);
    state.commit_flip(2);
    state.commit_hop(0, 1);
    state.commit_flip(0);
    state.rebuild();
    for (std::size_t i = 0; i < system.size(); ++i)
    {
        EXPECT_EQ(state.local_potential(i), system.local_potential(state.config(), i)) << i;
    }
}

TEST(ChargeState, CachedEnergiesMatchNaivePairwiseSums)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    const ChargeConfig config{1, 1, 1};
    const ChargeState state{system, config};
    EXPECT_NEAR(state.electrostatic_energy(), system.electrostatic_energy(config), 1e-12);
    EXPECT_NEAR(state.grand_potential(), system.grand_potential(config), 1e-12);
}

TEST(ChargeState, QuenchProducesPhysicallyValidConfiguration)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    ChargeState state{system, ChargeConfig{1, 1, 1}};
    state.quench();
    EXPECT_TRUE(state.physically_valid());
    EXPECT_TRUE(system.physically_valid(state.config()));
}

TEST(ChargeState, StabilityChecksAgreeWithSystemChecks)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    for (std::uint8_t bits = 0; bits < 8; ++bits)
    {
        const ChargeConfig config{static_cast<std::uint8_t>(bits & 1),
                                  static_cast<std::uint8_t>((bits >> 1) & 1),
                                  static_cast<std::uint8_t>((bits >> 2) & 1)};
        const ChargeState state{system, config};
        EXPECT_EQ(state.population_stable(), system.population_stable(config)) << int(bits);
        EXPECT_EQ(state.configuration_stable(), system.configuration_stable(config)) << int(bits);
    }
}

TEST(ChargeState, SizeMismatchThrowsInsteadOfCorruptingTheCache)
{
    const SimulationParameters params{};
    const SiDBSystem system{triangle_canvas(), params};
    // adopting constructor: a config of the wrong length must be rejected in
    // every build mode, not only under NDEBUG-off asserts
    EXPECT_THROW((ChargeState{system, ChargeConfig{1, 0}}), std::invalid_argument);
    EXPECT_THROW((ChargeState{system, ChargeConfig{1, 0, 1, 0}}), std::invalid_argument);

    ChargeState state{system, ChargeConfig{1, 0, 1}};
    EXPECT_THROW(state.assign(ChargeConfig{1}), std::invalid_argument);
    EXPECT_THROW(state.assign(ChargeConfig{}), std::invalid_argument);
    // the failed assign must leave the kernel untouched
    EXPECT_EQ(state.config(), (ChargeConfig{1, 0, 1}));
    EXPECT_EQ(state.num_charges(), 2U);
}

TEST(ChargeState, ToleranceKnobsLiveInSimulationParameters)
{
    const SimulationParameters defaults{};
    EXPECT_DOUBLE_EQ(defaults.stability_tolerance, 1e-9);
    EXPECT_DOUBLE_EQ(defaults.energy_tolerance, 1e-6);
}

/// The two-driver OR-like design used across the operational tests.
GateDesign two_input_design()
{
    GateDesign d;
    d.name = "or2";
    for (int k = 0; k < 3; ++k)
    {
        const int m = 1 + 4 * k;
        d.sites.push_back({15, m, 0});
        d.sites.push_back({15, m + 1, 0});
        d.sites.push_back({45, m, 0});
        d.sites.push_back({45, m + 1, 0});
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.input_pairs.push_back({{45, 1, 0}, {45, 2, 0}});
    d.output_pairs.push_back({{15, 9, 0}, {15, 10, 0}});
    d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
    d.drivers.push_back({{45, -3, 0}, {45, -2, 0}});
    d.output_perturbers.push_back({15, 13, 1});
    d.functions.push_back(TruthTable::from_binary("1110"));
    return d;
}

TEST(GateInstanceCache, InstantiateIsBitIdenticalToNaiveConstruction)
{
    const auto design = two_input_design();
    const SimulationParameters params{};
    const GateInstanceCache cache{design, params};
    for (std::uint64_t pattern = 0; pattern < 4; ++pattern)
    {
        const auto cached = cache.instantiate(pattern);
        const SiDBSystem naive{design.instance_sites(pattern), params};
        ASSERT_EQ(cached.size(), naive.size()) << "pattern " << pattern;
        EXPECT_EQ(cached.sites(), naive.sites()) << "pattern " << pattern;
        for (std::size_t i = 0; i < naive.size(); ++i)
        {
            for (std::size_t j = 0; j < naive.size(); ++j)
            {
                ASSERT_EQ(cached.potential(i, j), naive.potential(i, j))
                    << "pattern " << pattern << " entry (" << i << ", " << j << ")";
            }
        }
    }
}

TEST(GateInstanceCache, CachedPatternSimulationMatchesNaivePath)
{
    const auto design = two_input_design();
    SimulationParameters params;
    params.num_threads = 1;
    const GateInstanceCache cache{design, params};
    for (std::uint64_t pattern = 0; pattern < 4; ++pattern)
    {
        const auto cached = simulate_gate_pattern(cache, pattern, Engine::exhaustive);
        const auto direct = simulate_gate_pattern(design, pattern, params, Engine::exhaustive);
        EXPECT_EQ(cached.ground_state.config, direct.ground_state.config) << pattern;
        EXPECT_EQ(cached.ground_state.grand_potential, direct.ground_state.grand_potential)
            << pattern;
        EXPECT_EQ(cached.correct, direct.correct) << pattern;
        EXPECT_EQ(cached.sites, direct.sites) << pattern;
    }
}

TEST(GateInstanceCache, ResolvesOutputPairIndicesOnce)
{
    const auto design = two_input_design();
    const GateInstanceCache cache{design, SimulationParameters{}};
    ASSERT_TRUE(cache.output_pair_error(0).empty()) << cache.output_pair_error(0);
    // site 6 is the output zero site, 7 the one site (third column-15 pair)
    ChargeConfig config(cache.num_sites(), 0);
    const auto sites = design.instance_sites(0);
    for (std::size_t i = 0; i < sites.size(); ++i)
    {
        if (sites[i] == design.output_pairs[0].one_site)
        {
            config[i] = 1;
        }
    }
    EXPECT_EQ(cache.read_output(0, config), PairState::one);
}

TEST(GateInstanceCache, RecordsUnresolvableOutputPair)
{
    auto design = two_input_design();
    design.output_pairs[0].one_site = {59, 23, 1};  // not among the instance sites
    const GateInstanceCache cache{design, SimulationParameters{}};
    EXPECT_FALSE(cache.output_pair_error(0).empty());
    const ChargeConfig config(cache.num_sites(), 0);
    EXPECT_EQ(cache.read_output(0, config), PairState::undefined);
}

TEST(ReadPair, ReturnsUndefinedWithRecordedErrorInsteadOfAsserting)
{
    const std::vector<SiDBSite> sites{{0, 0, 0}, {4, 0, 0}};
    const ChargeConfig config{1, 0};
    const BDLPair missing{{9, 9, 0}, {4, 0, 0}};
    std::string error;
    EXPECT_EQ(read_pair(missing, sites, config, &error), PairState::undefined);
    EXPECT_NE(error.find("not among the instance sites"), std::string::npos) << error;

    const BDLPair present{{0, 0, 0}, {4, 0, 0}};
    EXPECT_EQ(read_pair(present, sites, config), PairState::zero);
}

TEST(GateDesign, InstanceSitesBufferOverloadMatchesAndReusesCapacity)
{
    const auto design = two_input_design();
    std::vector<SiDBSite> buffer;
    design.instance_sites(2, buffer);
    EXPECT_EQ(buffer, design.instance_sites(2));
    const auto* data_before = buffer.data();
    design.instance_sites(1, buffer);  // same instance size: capacity must be reused
    EXPECT_EQ(buffer, design.instance_sites(1));
    EXPECT_EQ(buffer.data(), data_before);
}

}  // namespace
