/// \file test_sat_preprocessor.cpp
/// \brief Unit tests for the SatELite-style preprocessor: bounded variable
///        elimination with hand-checked model reconstruction, subsumption and
///        self-subsuming resolution, frozen/assumption variables, unsat cores
///        over guard literals, proof continuity, and degenerate clause edges.

#include "sat/backend.hpp"
#include "sat/dimacs.hpp"
#include "sat/preprocessor.hpp"
#include "sat/proof.hpp"
#include "sat/proof_check.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace
{

using namespace bestagon;
using sat::LBool;
using sat::Lit;
using sat::neg;
using sat::pos;
using sat::Preprocessor;
using sat::PreprocessingBackend;
using sat::Var;

std::vector<Lit> make_lits(std::initializer_list<int> dimacs)
{
    std::vector<Lit> out;
    for (const int l : dimacs)
    {
        out.push_back(Lit{std::abs(l) - 1, l < 0});
    }
    return out;
}

TEST(SatPreprocessor, BveResolvesAndReconstructsForcedValue)
{
    // vars: x=1, a=2, b=3, c=4. (-a) strengthens both long clauses, then BVE
    // eliminates x with the single resolvent (b v c). a, b, c are frozen so
    // the elimination order is forced and the reconstruction is hand-checkable.
    Preprocessor prep{{}};
    prep.set_num_vars(4);
    prep.freeze(Var{1});
    prep.freeze(Var{2});
    prep.freeze(Var{3});
    ASSERT_TRUE(prep.add_clause(make_lits({1, 2, 3})));
    ASSERT_TRUE(prep.add_clause(make_lits({-1, 2, 4})));
    ASSERT_TRUE(prep.add_clause(make_lits({-2})));
    prep.preprocess({}, {});

    EXPECT_FALSE(prep.contradiction());
    EXPECT_TRUE(prep.eliminated(Var{0}));
    EXPECT_FALSE(prep.eliminated(Var{1}));
    EXPECT_FALSE(prep.eliminated(Var{2}));
    EXPECT_FALSE(prep.eliminated(Var{3}));
    EXPECT_EQ(prep.stats().vars_eliminated, 1U);

    // with a=F, b=F, c=T the surviving clauses hold; the eliminated parent
    // (x v b) [after strengthening] forces x = true — hand-checked:
    // (x v a v b) needs x, (-x v a v c) is satisfied by c
    std::vector<LBool> model{LBool::undef, LBool::false_, LBool::false_, LBool::true_};
    prep.extend_model(model);
    EXPECT_EQ(model[0], LBool::true_);

    // the mirror case: b=T satisfies the positive parent, so x is free (the
    // negative parent is satisfied by c) and reconstruction must not flip
    // the frozen values
    std::vector<LBool> model2{LBool::undef, LBool::false_, LBool::true_, LBool::true_};
    prep.extend_model(model2);
    EXPECT_EQ(model2[1], LBool::false_);
    EXPECT_EQ(model2[2], LBool::true_);
    EXPECT_EQ(model2[3], LBool::true_);
    EXPECT_NE(model2[0], LBool::undef);
}

TEST(SatPreprocessor, PureLiteralsEliminateWithoutResolvents)
{
    Preprocessor prep{{}};
    prep.set_num_vars(3);
    // x=1 occurs only positively — pure; its clauses vanish regardless of the
    // occurrence limit. b and c are frozen so x is the only candidate (an
    // unfrozen b would be pure too and could vanish first, leaving x
    // unconstrained rather than eliminated).
    prep.freeze(Var{1});
    prep.freeze(Var{2});
    ASSERT_TRUE(prep.add_clause(make_lits({1, 2})));
    ASSERT_TRUE(prep.add_clause(make_lits({1, 3})));
    prep.preprocess({}, {});
    EXPECT_TRUE(prep.eliminated(Var{0}));
    EXPECT_FALSE(prep.contradiction());

    std::vector<LBool> model{LBool::undef, LBool::false_, LBool::false_};
    prep.extend_model(model);
    EXPECT_EQ(model[0], LBool::true_);  // both parents demanded x
}

TEST(SatPreprocessor, SubsumptionRemovesSupersets)
{
    sat::PreprocessorOptions options;
    options.enable_bve = false;  // isolate the subsumption engine
    Preprocessor prep{options};
    prep.set_num_vars(3);
    ASSERT_TRUE(prep.add_clause(make_lits({1, 2})));
    ASSERT_TRUE(prep.add_clause(make_lits({1, 2, 3})));
    prep.preprocess({}, {});

    EXPECT_EQ(prep.stats().clauses_subsumed, 1U);
    const auto clauses = prep.clauses();
    ASSERT_EQ(clauses.size(), 1U);
    EXPECT_EQ(clauses[0], make_lits({1, 2}));
}

TEST(SatPreprocessor, SelfSubsumingResolutionStrengthens)
{
    sat::PreprocessorOptions options;
    options.enable_bve = false;
    Preprocessor prep{options};
    prep.set_num_vars(3);
    // (a v b) resolved with (-a v b v c) on a strengthens the latter to (b v c)
    ASSERT_TRUE(prep.add_clause(make_lits({1, 2})));
    ASSERT_TRUE(prep.add_clause(make_lits({-1, 2, 3})));
    prep.preprocess({}, {});

    EXPECT_GE(prep.stats().clauses_strengthened, 1U);
    const auto clauses = prep.clauses();
    ASSERT_EQ(clauses.size(), 2U);
    EXPECT_EQ(clauses[1], make_lits({2, 3}));
}

TEST(SatPreprocessor, DegenerateClauseEdges)
{
    {
        // tautologies are dropped on input
        Preprocessor prep{{}};
        prep.set_num_vars(2);
        prep.freeze(Var{0});
        prep.freeze(Var{1});
        ASSERT_TRUE(prep.add_clause(make_lits({1, -1, 2})));
        prep.preprocess({}, {});
        EXPECT_EQ(prep.num_clauses(), 0U);
        EXPECT_FALSE(prep.contradiction());
    }
    {
        // duplicate literals are deduplicated, units survive when frozen
        Preprocessor prep{{}};
        prep.set_num_vars(1);
        prep.freeze(Var{0});
        ASSERT_TRUE(prep.add_clause(make_lits({1, 1})));
        prep.preprocess({}, {});
        const auto clauses = prep.clauses();
        ASSERT_EQ(clauses.size(), 1U);
        EXPECT_EQ(clauses[0], make_lits({1}));
    }
    {
        // the empty clause is an immediate contradiction
        Preprocessor prep{{}};
        prep.set_num_vars(1);
        EXPECT_FALSE(prep.add_clause({}));
        EXPECT_TRUE(prep.contradiction());
    }
}

TEST(SatPreprocessor, FrozenVariablesAreNeverEliminated)
{
    Preprocessor prep{{}};
    prep.set_num_vars(2);
    prep.freeze(Var{0});
    // x=1 is pure here and would otherwise vanish
    ASSERT_TRUE(prep.add_clause(make_lits({1, 2})));
    prep.preprocess({}, {});
    EXPECT_FALSE(prep.eliminated(Var{0}));
    EXPECT_TRUE(prep.frozen(Var{0}));
}

TEST(SatPreprocessor, AssumptionVarsSurviveAndCoresMapToGuards)
{
    // guard-group pattern: g1 guards x, g2 guards -x. Assuming both guards
    // must yield UNSAT with a core naming exactly the guards — even though
    // preprocessing runs in between, because assumption variables are frozen.
    sat::PreprocessorOptions options;
    options.backend_min_clauses = 0;  // force preprocessing despite the tiny formula
    PreprocessingBackend backend{options};
    const Var g1 = backend.new_var();
    const Var g2 = backend.new_var();
    const Var x = backend.new_var();
    backend.add_clause(std::vector<Lit>{neg(g1), pos(x)});
    backend.add_clause(std::vector<Lit>{neg(g2), neg(x)});

    const std::vector<Lit> both{pos(g1), pos(g2)};
    ASSERT_EQ(backend.solve(both), sat::Result::unsatisfiable);
    const auto& core = backend.final_conflict();
    EXPECT_EQ(core.size(), 2U);
    for (const auto l : core)
    {
        EXPECT_TRUE(l == pos(g1) || l == pos(g2)) << "core literal is not a guard";
    }

    // each guard alone is satisfiable, and the reconstructed model respects
    // the guarded constraint
    ASSERT_EQ(backend.solve({pos(g1)}), sat::Result::satisfiable);
    EXPECT_TRUE(backend.model_value(x));
    ASSERT_EQ(backend.solve({pos(g2)}), sat::Result::satisfiable);
    EXPECT_FALSE(backend.model_value(x));
}

TEST(SatPreprocessor, PreprocessorCanDeriveUnsatAlone)
{
    // strengthening cascades to the empty clause without any CDCL search:
    // (x v p)(-x v p) -> (p); (p)(-p v q)(-p v -q) -> (q)(-q) -> {}
    Preprocessor prep{{}};
    prep.set_num_vars(3);
    ASSERT_TRUE(prep.add_clause(make_lits({1, 2})));
    ASSERT_TRUE(prep.add_clause(make_lits({-1, 2})));
    ASSERT_TRUE(prep.add_clause(make_lits({-2, 3})));
    ASSERT_TRUE(prep.add_clause(make_lits({-2, -3})));
    prep.preprocess({}, {});
    EXPECT_TRUE(prep.contradiction());
}

TEST(SatPreprocessor, ProofStaysCheckableThroughPreprocessing)
{
    // the full pipeline on the same instance: every preprocessor derivation
    // is streamed to the tracer, so the refutation certifies against the
    // ORIGINAL formula
    sat::PreprocessorOptions options;
    options.backend_min_clauses = 0;  // force preprocessing despite the tiny formula
    PreprocessingBackend backend{options};
    sat::MemoryProofTracer tracer;
    backend.set_proof_tracer(&tracer);
    sat::Cnf cnf;
    cnf.num_vars = 3;
    cnf.clauses = {{1, 2}, {-1, 2}, {-2, 3}, {-2, -3}};
    ASSERT_TRUE(sat::load_into_solver(backend, cnf));
    ASSERT_EQ(backend.solve(), sat::Result::unsatisfiable);

    const auto check = sat::check_drat_proof(sat::to_cnf(backend.root_clauses()), tracer.proof());
    EXPECT_TRUE(check.valid) << check.error;
}

TEST(SatPreprocessor, BackendRebuildsAfterNewClauses)
{
    // incremental use: clauses added after a solve stream into the live
    // inner solver, and the verdict tracks the grown formula
    PreprocessingBackend backend{};
    const Var a = backend.new_var();
    const Var b = backend.new_var();
    backend.add_clause(std::vector<Lit>{pos(a), pos(b)});
    ASSERT_EQ(backend.solve(), sat::Result::satisfiable);

    backend.add_clause(std::vector<Lit>{neg(a)});
    backend.add_clause(std::vector<Lit>{neg(b)});
    ASSERT_EQ(backend.solve(), sat::Result::unsatisfiable);
}

TEST(SatPreprocessor, MonotoneGrowthStreamsWithoutRebuild)
{
    // the incremental contract: growing the formula with fresh variables and
    // clauses over non-eliminated variables must NOT re-preprocess — one
    // rebuild for the first solve, then the inner solver persists
    sat::PreprocessorOptions options;
    options.backend_min_clauses = 0;
    PreprocessingBackend backend{options};
    const Var a = backend.new_var();
    const Var b = backend.new_var();
    backend.freeze(a);
    backend.freeze(b);
    backend.add_clause(std::vector<Lit>{pos(a), pos(b)});
    ASSERT_EQ(backend.solve(), sat::Result::satisfiable);
    EXPECT_EQ(backend.rebuild_count(), 1U);

    const Var c = backend.new_var();
    backend.add_clause(std::vector<Lit>{neg(a), pos(c)});
    backend.add_clause(std::vector<Lit>{neg(b), pos(c)});
    ASSERT_EQ(backend.solve(), sat::Result::satisfiable);
    EXPECT_EQ(backend.rebuild_count(), 1U);
    EXPECT_TRUE(backend.model_value(c));  // (a v b) forces c through the new clauses

    // assumptions over a post-rebuild variable work too
    const Var d = backend.new_var();
    backend.add_clause(std::vector<Lit>{neg(d), neg(c)});
    ASSERT_EQ(backend.solve({pos(d)}), sat::Result::unsatisfiable);
    EXPECT_EQ(backend.rebuild_count(), 1U);
}

TEST(SatPreprocessor, ClauseTouchingEliminatedVarForcesRebuild)
{
    // same instance as BveResolvesAndReconstructsForcedValue: x (Var 0) gets
    // BVE-eliminated on the first solve. A later clause naming x cannot
    // stream into the simplified inner formula — it must force a rebuild,
    // after which the verdict reflects the grown formula.
    sat::PreprocessorOptions options;
    options.backend_min_clauses = 0;
    PreprocessingBackend backend{options};
    const Var x = backend.new_var();
    const Var a = backend.new_var();
    const Var b = backend.new_var();
    const Var c = backend.new_var();
    backend.freeze(a);
    backend.freeze(b);
    backend.freeze(c);
    backend.add_clause(std::vector<Lit>{pos(x), pos(a), pos(b)});
    backend.add_clause(std::vector<Lit>{neg(x), pos(a), pos(c)});
    backend.add_clause(std::vector<Lit>{neg(a)});
    ASSERT_EQ(backend.solve(), sat::Result::satisfiable);
    EXPECT_EQ(backend.rebuild_count(), 1U);

    backend.add_clause(std::vector<Lit>{neg(x)});
    backend.add_clause(std::vector<Lit>{neg(b)});
    ASSERT_EQ(backend.solve(), sat::Result::unsatisfiable);  // (x v a v b) with a, b, x all false
    EXPECT_EQ(backend.rebuild_count(), 2U);
}

TEST(SatPreprocessor, ProofStaysCheckableAcrossMonotoneGrowth)
{
    // certification through the persistent solver: lemmas learned before the
    // formula grew must stay valid proof steps when the refutation is checked
    // against the GROWN original formula (root clauses only strengthen unit
    // propagation, deletions are traced)
    sat::PreprocessorOptions options;
    options.backend_min_clauses = 0;
    PreprocessingBackend backend{options};
    sat::MemoryProofTracer tracer;
    backend.set_proof_tracer(&tracer);
    sat::Cnf cnf;
    cnf.num_vars = 3;
    cnf.clauses = {{1, 2}, {-1, 2}, {-2, 3}};
    ASSERT_TRUE(sat::load_into_solver(backend, cnf));
    backend.freeze(Var{2});  // 3 is pure; keep it so the growth clause streams
    ASSERT_EQ(backend.solve(), sat::Result::satisfiable);
    EXPECT_EQ(backend.rebuild_count(), 1U);

    backend.add_clause(std::vector<Lit>{Lit{2, true}});  // -3: closes the chain
    ASSERT_EQ(backend.solve(), sat::Result::unsatisfiable);
    EXPECT_EQ(backend.rebuild_count(), 1U);

    const auto check = sat::check_drat_proof(sat::to_cnf(backend.root_clauses()), tracer.proof());
    EXPECT_TRUE(check.valid) << check.error;
}

}  // namespace
