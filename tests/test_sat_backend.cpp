/// \file test_sat_backend.cpp
/// \brief Tests for the pluggable solver backends: environment-based
///        selection, the preprocessing backend's budget discipline, and the
///        IPASIR facade loading the repository's own solver as a shared
///        library (a self-test of both sides of the C interface).

#include "sat/backend.hpp"
#include "sat/ipasir_backend.hpp"
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

namespace
{

using namespace bestagon;
using sat::BackendKind;
using sat::Lit;
using sat::neg;
using sat::pos;
using sat::Var;

[[nodiscard]] std::int64_t now_ms()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
}

/// Pigeonhole principle PHP(pigeons, holes): UNSAT when pigeons > holes and
/// exponentially hard for resolution — the standard budget-latch workload.
void add_php(sat::SatBackend& solver, int pigeons, int holes)
{
    const auto var = [&](int p, int h) { return Var{p * holes + h}; };
    while (solver.num_vars() < pigeons * holes)
    {
        solver.new_var();
    }
    for (int p = 0; p < pigeons; ++p)
    {
        std::vector<Lit> somewhere;
        for (int h = 0; h < holes; ++h)
        {
            somewhere.push_back(pos(var(p, h)));
        }
        solver.add_clause(std::move(somewhere));
    }
    for (int h = 0; h < holes; ++h)
    {
        for (int p = 0; p < pigeons; ++p)
        {
            for (int q = p + 1; q < pigeons; ++q)
            {
                solver.add_clause(neg(var(p, h)), neg(var(q, h)));
            }
        }
    }
}

/// RAII guard scoping an environment variable to one test.
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_{name}
    {
        const char* old = std::getenv(name);
        had_old_ = old != nullptr;
        old_ = had_old_ ? old : "";
        if (value != nullptr)
        {
            ::setenv(name, value, 1);
        }
        else
        {
            ::unsetenv(name);
        }
    }
    ~ScopedEnv()
    {
        if (had_old_)
        {
            ::setenv(name_.c_str(), old_.c_str(), 1);
        }
        else
        {
            ::unsetenv(name_.c_str());
        }
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;
    ScopedEnv(ScopedEnv&&) = delete;
    ScopedEnv& operator=(ScopedEnv&&) = delete;

  private:
    std::string name_;
    std::string old_;
    bool had_old_{false};
};

TEST(SatBackend, EnvSelectionParsesAllForms)
{
    {
        const ScopedEnv env{"BESTAGON_SAT_BACKEND", nullptr};
        sat::BackendSelection fallback;
        fallback.kind = BackendKind::internal;
        EXPECT_EQ(sat::backend_selection_from_env(fallback).kind, BackendKind::internal);
    }
    {
        const ScopedEnv env{"BESTAGON_SAT_BACKEND", "internal"};
        EXPECT_EQ(sat::backend_selection_from_env({}).kind, BackendKind::internal);
    }
    {
        const ScopedEnv env{"BESTAGON_SAT_BACKEND", "preprocess"};
        EXPECT_EQ(sat::backend_selection_from_env({}).kind, BackendKind::internal_preprocessed);
    }
    {
        const ScopedEnv env{"BESTAGON_SAT_BACKEND", "ipasir:/some/lib.so"};
        const auto selection = sat::backend_selection_from_env({});
        EXPECT_EQ(selection.kind, BackendKind::ipasir);
        EXPECT_EQ(selection.ipasir_library, "/some/lib.so");
    }
    {
        // unknown values leave the fallback untouched
        const ScopedEnv env{"BESTAGON_SAT_BACKEND", "bogus"};
        sat::BackendSelection fallback;
        fallback.kind = BackendKind::internal_preprocessed;
        EXPECT_EQ(sat::backend_selection_from_env(fallback).kind,
                  BackendKind::internal_preprocessed);
    }
}

TEST(SatBackend, FactoryResolvesDefaultKind)
{
    const ScopedEnv env{"BESTAGON_SAT_BACKEND", nullptr};
    // the default kind applies when the selection is automatic and no env
    // override is present; both resulting backends must agree on a verdict
    for (const auto kind : {BackendKind::internal, BackendKind::internal_preprocessed})
    {
        const auto backend = sat::make_sat_backend({}, kind);
        const Var a = backend->new_var();
        const Var b = backend->new_var();
        backend->add_clause(pos(a), pos(b));
        backend->add_clause(neg(a));
        ASSERT_EQ(backend->solve(), sat::Result::satisfiable);
        EXPECT_FALSE(backend->model_value(a));
        EXPECT_TRUE(backend->model_value(b));
    }
}

TEST(SatBackend, PreprocessingBackendHonorsTinyTimeBudget)
{
    // the PHP(12,11) latch workload through the NEW delegation path: the
    // preprocessor spends part of the budget, the inner solve inherits only
    // the remainder, and the per-decision countdown must keep polling the
    // clock across restarts — a 10 ms budget must not turn into seconds
    sat::PreprocessingBackend backend{};
    add_php(backend, 12, 11);
    backend.set_time_budget_ms(10);
    backend.set_time_check_stride(16);

    const auto start = now_ms();
    const auto result = backend.solve();
    const auto wall = now_ms() - start;
    EXPECT_EQ(result, sat::Result::unknown);
    EXPECT_LT(wall, 2000) << "time budget latch failed through the preprocessing backend";
}

TEST(SatBackend, IpasirFacadeSelfTest)
{
    // BESTAGON_IPASIR_LIB points at our own solver built as a shared object;
    // loading it through the dlopen facade exercises both halves of the
    // IPASIR surface with no external dependency
    sat::IpasirBackend backend{BESTAGON_IPASIR_LIB};
    EXPECT_EQ(backend.signature(), "bestagon-cdcl");

    const Var a = backend.new_var();
    const Var b = backend.new_var();
    const Var c = backend.new_var();
    backend.add_clause(pos(a), pos(b));
    backend.add_clause(neg(a), pos(c));

    ASSERT_EQ(backend.solve(), sat::Result::satisfiable);
    // the model must satisfy the clauses through the DIMACS literal mapping
    const bool va = backend.model_value(a);
    const bool vb = backend.model_value(b);
    const bool vc = backend.model_value(c);
    EXPECT_TRUE(va || vb);
    EXPECT_TRUE(!va || vc);

    // assumption-based UNSAT with a failed-assumption core
    ASSERT_EQ(backend.solve({neg(a), neg(b)}), sat::Result::unsatisfiable);
    const auto& core = backend.final_conflict();
    EXPECT_FALSE(core.empty());
    for (const auto l : core)
    {
        EXPECT_TRUE(l == neg(a) || l == neg(b));
    }

    // the instance stays usable incrementally after an UNSAT-under-assumptions
    ASSERT_EQ(backend.solve(), sat::Result::satisfiable);
}

TEST(SatBackend, IpasirFacadeHonorsTimeBudgetViaTerminate)
{
    sat::IpasirBackend backend{BESTAGON_IPASIR_LIB};
    add_php(backend, 12, 11);
    backend.set_time_budget_ms(10);

    const auto start = now_ms();
    const auto result = backend.solve();
    const auto wall = now_ms() - start;
    EXPECT_EQ(result, sat::Result::unknown);
    EXPECT_LT(wall, 2000) << "ipasir_set_terminate did not stop the search";
}

TEST(SatBackend, MakeBackendBuildsIpasirFromSelection)
{
    sat::BackendSelection selection;
    selection.kind = BackendKind::ipasir;
    selection.ipasir_library = BESTAGON_IPASIR_LIB;
    const auto backend = sat::make_sat_backend(selection);
    const Var a = backend->new_var();
    backend->add_clause(pos(a));
    ASSERT_EQ(backend->solve(), sat::Result::satisfiable);
    EXPECT_TRUE(backend->model_value(a));
    EXPECT_FALSE(backend->supports_proof_tracing());
}

TEST(SatBackend, MissingIpasirLibraryThrows)
{
    EXPECT_THROW(sat::IpasirBackend{"/nonexistent/solver.so"}, std::runtime_error);
}

}  // namespace
