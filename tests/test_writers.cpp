#include "io/dot_writer.hpp"
#include "io/render.hpp"
#include "io/sqd_writer.hpp"
#include "io/svg_writer.hpp"

#include "core/design_flow.hpp"
#include "logic/benchmarks.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace
{

using namespace bestagon;

core::FlowResult small_flow()
{
    return core::run_design_flow(logic::find_benchmark("xor2")->build());
}

TEST(SqdWriter, ProducesWellFormedXml)
{
    const auto flow = small_flow();
    ASSERT_TRUE(flow.sidb.has_value());
    std::ostringstream out;
    io::write_sqd(out, *flow.sidb, "xor2");
    const auto text = out.str();
    EXPECT_NE(text.find("<?xml version=\"1.0\""), std::string::npos);
    EXPECT_NE(text.find("<siqad>"), std::string::npos);
    EXPECT_NE(text.find("</siqad>"), std::string::npos);
    // one dbdot element per SiDB
    std::size_t count = 0;
    for (std::size_t pos = text.find("<dbdot>"); pos != std::string::npos;
         pos = text.find("<dbdot>", pos + 1))
    {
        ++count;
    }
    EXPECT_EQ(count, flow.sidb->num_sidbs());
}

TEST(SqdWriter, GateDesignIncludesPerturbers)
{
    const auto& lib = layout::BestagonLibrary::instance();
    const auto* wire = lib.lookup(logic::GateType::buf, layout::Port::nw, std::nullopt,
                                  layout::Port::sw, std::nullopt);
    ASSERT_NE(wire, nullptr);
    std::ostringstream out;
    io::write_sqd(out, wire->design);
    std::size_t count = 0;
    const auto text = out.str();
    for (std::size_t pos = text.find("<dbdot>"); pos != std::string::npos;
         pos = text.find("<dbdot>", pos + 1))
    {
        ++count;
    }
    EXPECT_EQ(count, wire->design.sites.size() + 2);  // + driver + output perturber
}

TEST(SvgWriter, TileViewContainsHexagonsAndLabels)
{
    const auto flow = small_flow();
    ASSERT_TRUE(flow.layout.has_value());
    std::ostringstream out;
    io::write_svg(out, *flow.layout);
    const auto text = out.str();
    EXPECT_NE(text.find("<svg"), std::string::npos);
    EXPECT_NE(text.find("<polygon"), std::string::npos);
    EXPECT_NE(text.find("xor"), std::string::npos);
}

TEST(SvgWriter, DotViewContainsOneCirclePerSidb)
{
    const auto flow = small_flow();
    ASSERT_TRUE(flow.sidb.has_value());
    std::ostringstream out;
    io::write_svg(out, *flow.sidb);
    const auto text = out.str();
    std::size_t count = 0;
    for (std::size_t pos = text.find("<circle"); pos != std::string::npos;
         pos = text.find("<circle", pos + 1))
    {
        ++count;
    }
    EXPECT_EQ(count, flow.sidb->num_sidbs());
}

TEST(Render, LayoutAsciiShowsDimensionsAndGates)
{
    const auto flow = small_flow();
    const auto text = io::render_layout(*flow.layout);
    EXPECT_NE(text.find("2 x 3"), std::string::npos);
    EXPECT_NE(text.find("xor"), std::string::npos);
    EXPECT_NE(text.find("PI"), std::string::npos);
    EXPECT_NE(text.find("PO"), std::string::npos);
}

TEST(Render, ChargesListEverySite)
{
    const std::vector<phys::SiDBSite> sites{{0, 0, 0}, {1, 2, 1}};
    const auto text = io::render_charges(sites, {1, 0});
    EXPECT_NE(text.find("(0,0,0) DB-"), std::string::npos);
    EXPECT_NE(text.find("(1,2,1) DB0"), std::string::npos);
}

TEST(DotWriter, EmitsGraph)
{
    const auto net = logic::find_benchmark("c17")->build();
    std::ostringstream out;
    io::write_dot(out, net);
    const auto text = out.str();
    EXPECT_NE(text.find("digraph network"), std::string::npos);
    EXPECT_NE(text.find("nand"), std::string::npos);
    EXPECT_NE(text.find("->"), std::string::npos);
}

}  // namespace
