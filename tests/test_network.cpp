#include "logic/network.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::logic;

TEST(Network, BuildAndSimulateXor)
{
    LogicNetwork n;
    const auto a = n.create_pi("a");
    const auto b = n.create_pi("b");
    n.create_po(n.create_xor(a, b), "f");
    const auto tts = n.simulate();
    ASSERT_EQ(tts.size(), 1U);
    EXPECT_EQ(tts[0].to_binary(), "0110");
}

TEST(Network, SimulatePatternMatchesTruthTable)
{
    LogicNetwork n;
    const auto a = n.create_pi("a");
    const auto b = n.create_pi("b");
    const auto c = n.create_pi("c");
    n.create_po(n.create_maj(a, b, c), "m");
    n.create_po(n.create_nand(a, c), "n");
    const auto tts = n.simulate();
    for (std::uint64_t p = 0; p < 8; ++p)
    {
        const auto vals = n.simulate_pattern(p);
        EXPECT_EQ(vals[0], tts[0].get_bit(p));
        EXPECT_EQ(vals[1], tts[1].get_bit(p));
    }
}

TEST(Network, GateCountsAndDepth)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto x = n.create_and(a, b);
    const auto y = n.create_not(x);
    n.create_po(y);
    EXPECT_EQ(n.num_gates(), 2U);
    EXPECT_EQ(n.num_gates_of(GateType::and2), 1U);
    EXPECT_EQ(n.depth(), 2U);
}

TEST(Network, FanoutCounts)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto x = n.create_not(a);
    n.create_po(n.create_and(x, a));
    n.create_po(x);
    const auto counts = n.fanout_counts();
    EXPECT_EQ(counts[a], 2U);  // feeds the inverter and the AND
    EXPECT_EQ(counts[x], 2U);  // feeds the AND and a PO
}

TEST(Network, ConstantsAreCached)
{
    LogicNetwork n;
    EXPECT_EQ(n.create_const(false), n.create_const(false));
    EXPECT_EQ(n.create_const(true), n.create_const(true));
    EXPECT_NE(n.create_const(false), n.create_const(true));
}

TEST(Network, TopologicalOrderRespectsDependencies)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto x = n.create_or(a, b);
    n.create_po(x);
    const auto order = n.topological_order();
    std::vector<std::size_t> position(n.size());
    for (std::size_t i = 0; i < order.size(); ++i)
    {
        position[order[i]] = i;
    }
    EXPECT_LT(position[a], position[x]);
    EXPECT_LT(position[b], position[x]);
}

TEST(Network, IsXag)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    n.create_po(n.create_xor(n.create_and(a, b), n.create_not(a)));
    EXPECT_TRUE(n.is_xag());
    LogicNetwork m;
    const auto c = m.create_pi();
    const auto d = m.create_pi();
    m.create_po(m.create_or(c, d));
    EXPECT_FALSE(m.is_xag());
}

TEST(Network, BestagonComplianceDetectsFanoutViolations)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto x = n.create_and(a, b);
    n.create_po(x);
    n.create_po(x);  // x drives two consumers without a fanout node
    std::string why;
    EXPECT_FALSE(n.is_bestagon_compliant(&why));
    EXPECT_FALSE(why.empty());
}

TEST(Network, BestagonComplianceAcceptsFanoutNodes)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto f = n.create_fanout(a);
    n.create_po(f);
    n.create_po(f);
    EXPECT_TRUE(n.is_bestagon_compliant());
}

TEST(Network, BestagonComplianceRejectsMajority)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto c = n.create_pi();
    n.create_po(n.create_maj(a, b, c));
    EXPECT_FALSE(n.is_bestagon_compliant());
}

TEST(Network, FunctionalEquivalence)
{
    LogicNetwork n1;
    {
        const auto a = n1.create_pi();
        const auto b = n1.create_pi();
        n1.create_po(n1.create_nand(a, b));
    }
    LogicNetwork n2;
    {
        const auto a = n2.create_pi();
        const auto b = n2.create_pi();
        n2.create_po(n2.create_not(n2.create_and(a, b)));
    }
    EXPECT_TRUE(functionally_equivalent(n1, n2));
    LogicNetwork n3;
    {
        const auto a = n3.create_pi();
        const auto b = n3.create_pi();
        n3.create_po(n3.create_and(a, b));
    }
    EXPECT_FALSE(functionally_equivalent(n1, n3));
}

TEST(Network, GateArityValidation)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    EXPECT_THROW(static_cast<void>(n.create_gate(GateType::and2, {a})), std::invalid_argument);
}

TEST(Network, EvaluateGateCoversAllTypes)
{
    EXPECT_TRUE(evaluate_gate(GateType::nand2, {false, true, false}));
    EXPECT_FALSE(evaluate_gate(GateType::nor2, {false, true, false}));
    EXPECT_TRUE(evaluate_gate(GateType::xnor2, {true, true, false}));
    EXPECT_TRUE(evaluate_gate(GateType::maj3, {true, false, true}));
    EXPECT_TRUE(evaluate_gate(GateType::inv, {false, false, false}));
    EXPECT_TRUE(evaluate_gate(GateType::const1, {false, false, false}));
}

}  // namespace
