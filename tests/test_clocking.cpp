#include "layout/clocking.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::layout;

TEST(Clocking, RowColumnarZones)
{
    for (int y = 0; y < 8; ++y)
    {
        for (int x = 0; x < 4; ++x)
        {
            EXPECT_EQ(clock_zone(ClockingScheme::row_columnar, HexCoord{x, y}),
                      static_cast<unsigned>(y % 4));
        }
    }
}

TEST(Clocking, TwoDDWaveZones)
{
    EXPECT_EQ(clock_zone(ClockingScheme::two_d_d_wave, HexCoord{0, 0}), 0U);
    EXPECT_EQ(clock_zone(ClockingScheme::two_d_d_wave, HexCoord{1, 0}), 1U);
    EXPECT_EQ(clock_zone(ClockingScheme::two_d_d_wave, HexCoord{1, 1}), 2U);
    EXPECT_EQ(clock_zone(ClockingScheme::two_d_d_wave, HexCoord{2, 2}), 0U);
}

TEST(Clocking, UsePatternIsFourPeriodic)
{
    for (int y = 0; y < 4; ++y)
    {
        for (int x = 0; x < 4; ++x)
        {
            EXPECT_EQ(clock_zone(ClockingScheme::use, HexCoord{x, y}),
                      clock_zone(ClockingScheme::use, HexCoord{x + 4, y + 4}));
        }
    }
}

TEST(Clocking, UseEveryZoneAppearsInEveryRow)
{
    for (int y = 0; y < 4; ++y)
    {
        unsigned seen = 0;
        for (int x = 0; x < 4; ++x)
        {
            seen |= 1U << clock_zone(ClockingScheme::use, HexCoord{x, y});
        }
        EXPECT_EQ(seen, 0xFU);
    }
}

/// The paper's central clocking property: under the row-based Columnar
/// scheme every downward hexagonal step enters the successor phase.
TEST(Clocking, RowColumnarIsFeedForward)
{
    EXPECT_TRUE(is_feed_forward(ClockingScheme::row_columnar));
    for (int y = 0; y < 8; ++y)
    {
        for (int x = 0; x < 8; ++x)
        {
            const HexCoord c{x, y};
            EXPECT_TRUE(feeds_next_phase(ClockingScheme::row_columnar, c, neighbor(c, Port::sw)));
            EXPECT_TRUE(feeds_next_phase(ClockingScheme::row_columnar, c, neighbor(c, Port::se)));
        }
    }
}

TEST(Clocking, ColumnarIsNotFeedForwardOnHexRows)
{
    // a vertical step keeps the column -> same zone, not the successor
    EXPECT_FALSE(feeds_next_phase(ClockingScheme::columnar, HexCoord{2, 0}, HexCoord{2, 1}));
}

TEST(Clocking, NegativeCoordinatesAreHandled)
{
    EXPECT_EQ(clock_zone(ClockingScheme::row_columnar, HexCoord{0, -1}), 3U);
    EXPECT_EQ(clock_zone(ClockingScheme::two_d_d_wave, HexCoord{-1, -2}), 1U);
}

TEST(Clocking, SchemeNames)
{
    EXPECT_STREQ(clocking_scheme_name(ClockingScheme::row_columnar), "RowColumnar");
    EXPECT_STREQ(clocking_scheme_name(ClockingScheme::use), "USE");
}

}  // namespace
