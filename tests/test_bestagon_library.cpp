#include "layout/bestagon_library.hpp"

#include <gtest/gtest.h>

#include <set>

namespace
{

using namespace bestagon;
using namespace bestagon::layout;
using logic::GateType;

TEST(BestagonLibrary, OffersAllWireVariants)
{
    const auto& lib = BestagonLibrary::instance();
    EXPECT_NE(lib.lookup(GateType::buf, Port::nw, std::nullopt, Port::sw, std::nullopt), nullptr);
    EXPECT_NE(lib.lookup(GateType::buf, Port::ne, std::nullopt, Port::se, std::nullopt), nullptr);
    EXPECT_NE(lib.lookup(GateType::buf, Port::nw, std::nullopt, Port::se, std::nullopt), nullptr);
    EXPECT_NE(lib.lookup(GateType::buf, Port::ne, std::nullopt, Port::sw, std::nullopt), nullptr);
}

TEST(BestagonLibrary, OffersAllTwoInputGatesBothOutputs)
{
    const auto& lib = BestagonLibrary::instance();
    for (const auto type : {GateType::and2, GateType::or2, GateType::nand2, GateType::nor2,
                            GateType::xor2, GateType::xnor2})
    {
        EXPECT_NE(lib.lookup(type, Port::nw, Port::ne, Port::se, std::nullopt), nullptr)
            << gate_type_name(type);
        EXPECT_NE(lib.lookup(type, Port::nw, Port::ne, Port::sw, std::nullopt), nullptr)
            << gate_type_name(type);
    }
}

TEST(BestagonLibrary, LookupIsCommutativeInInputPorts)
{
    const auto& lib = BestagonLibrary::instance();
    EXPECT_EQ(lib.lookup(GateType::and2, Port::nw, Port::ne, Port::se, std::nullopt),
              lib.lookup(GateType::and2, Port::ne, Port::nw, Port::se, std::nullopt));
}

TEST(BestagonLibrary, UnknownCombinationsReturnNull)
{
    const auto& lib = BestagonLibrary::instance();
    // gates never output upward
    EXPECT_EQ(lib.lookup(GateType::and2, Port::nw, Port::ne, Port::nw, std::nullopt), nullptr);
    EXPECT_EQ(lib.lookup(GateType::maj3, Port::nw, Port::ne, Port::se, std::nullopt), nullptr);
}

TEST(BestagonLibrary, AllSitesLieInsideTheTile)
{
    const auto& lib = BestagonLibrary::instance();
    for (const auto& g : lib.all())
    {
        for (const auto& s : g.design.sites)
        {
            EXPECT_GE(s.n, 0) << g.design.name;
            EXPECT_LE(s.n, tile_columns) << g.design.name;
            EXPECT_GE(s.m, 0) << g.design.name;
            EXPECT_LT(s.m, tile_rows) << g.design.name;
        }
    }
}

TEST(BestagonLibrary, NoDuplicateSitesWithinATile)
{
    const auto& lib = BestagonLibrary::instance();
    for (const auto& g : lib.all())
    {
        std::set<std::tuple<int, int, int>> seen;
        for (const auto& s : g.design.sites)
        {
            EXPECT_TRUE(seen.insert({s.n, s.m, s.l}).second)
                << g.design.name << " duplicates (" << s.n << "," << s.m << "," << s.l << ")";
        }
    }
}

TEST(BestagonLibrary, MirrorIsAnInvolution)
{
    const auto& lib = BestagonLibrary::instance();
    const auto* wire = lib.lookup(GateType::buf, Port::nw, std::nullopt, Port::sw, std::nullopt);
    ASSERT_NE(wire, nullptr);
    const auto twice = mirror_design(mirror_design(wire->design));
    EXPECT_EQ(twice.sites, wire->design.sites);
}

TEST(BestagonLibrary, PortPairsSitAtTheConventionalPositions)
{
    const auto& lib = BestagonLibrary::instance();
    for (const auto& g : lib.all())
    {
        for (const auto& p : g.design.input_pairs)
        {
            EXPECT_TRUE(p.zero_site.n == 15 || p.zero_site.n == 45) << g.design.name;
            EXPECT_EQ(p.zero_site.m, 1) << g.design.name;
            EXPECT_EQ(p.one_site.m, 2) << g.design.name;
        }
        for (const auto& p : g.design.output_pairs)
        {
            EXPECT_TRUE(p.zero_site.n == 15 || p.zero_site.n == 45) << g.design.name;
            EXPECT_EQ(p.zero_site.m, 21) << g.design.name;
            EXPECT_EQ(p.one_site.m, 22) << g.design.name;
        }
    }
}

TEST(BestagonLibrary, CrossingServesTwoSignals)
{
    const auto& cross = BestagonLibrary::instance().crossing();
    EXPECT_EQ(cross.design.input_pairs.size(), 2U);
    EXPECT_EQ(cross.design.output_pairs.size(), 2U);
    EXPECT_EQ(cross.design.functions.size(), 2U);
    // SW output follows the NE input and vice versa
    EXPECT_EQ(cross.design.functions[0].to_binary(), "1100");
    EXPECT_EQ(cross.design.functions[1].to_binary(), "1010");
}

TEST(BestagonLibrary, ValidatedDesignsCoverWiresAndBasicGates)
{
    const auto& lib = BestagonLibrary::instance();
    unsigned validated = 0;
    for (const auto& g : lib.all())
    {
        if (g.simulation_validated)
        {
            ++validated;
        }
    }
    // at least the four wire variants, PI/PO tiles, OR and AND
    EXPECT_GE(validated, 10U);
}

}  // namespace
