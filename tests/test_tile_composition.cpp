/// \file test_tile_composition.cpp
/// \brief Cross-tile physics: validated library tiles must keep working when
///        cascaded across tile boundaries — the property that makes the
///        tile-based design flow physically meaningful.

#include "layout/apply_gate_library.hpp"
#include "layout/bestagon_library.hpp"
#include "phys/operational.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using namespace bestagon::layout;
using phys::GateDesign;
using phys::SiDBSite;

/// Translates all coordinates of a design by whole tiles.
GateDesign translate(const GateDesign& d, int dn, int dm)
{
    GateDesign out = d;
    for (auto& s : out.sites)
    {
        s = s.translated(dn, dm);
    }
    for (auto& p : out.input_pairs)
    {
        p.zero_site = p.zero_site.translated(dn, dm);
        p.one_site = p.one_site.translated(dn, dm);
    }
    for (auto& p : out.output_pairs)
    {
        p.zero_site = p.zero_site.translated(dn, dm);
        p.one_site = p.one_site.translated(dn, dm);
    }
    for (auto& drv : out.drivers)
    {
        drv.far_site = drv.far_site.translated(dn, dm);
        drv.near_site = drv.near_site.translated(dn, dm);
    }
    for (auto& s : out.output_perturbers)
    {
        s = s.translated(dn, dm);
    }
    return out;
}

TEST(TileComposition, TwoCascadedWireTilesTransmit)
{
    const auto& lib = BestagonLibrary::instance();
    const auto* wire = lib.lookup(logic::GateType::buf, Port::nw, std::nullopt, Port::sw,
                                  std::nullopt);
    ASSERT_NE(wire, nullptr);

    // an SW exit feeds the SW neighbor's NE port (odd-r offset geometry), so
    // the downstream tile hosts the mirrored NE->SE wire; the SW neighbor of
    // (0,0) is (-1,1) with lattice origin (-60 + 30, +24)
    const auto* lower_wire =
        lib.lookup(logic::GateType::buf, Port::ne, std::nullopt, Port::se, std::nullopt);
    ASSERT_NE(lower_wire, nullptr);
    const auto upper = wire->design;
    const auto lower = translate(lower_wire->design, -tile_columns / 2, tile_rows);

    GateDesign chain;
    chain.name = "wire+wire";
    chain.sites = upper.sites;
    chain.sites.insert(chain.sites.end(), lower.sites.begin(), lower.sites.end());
    chain.input_pairs = upper.input_pairs;
    chain.drivers = upper.drivers;
    chain.output_pairs = lower.output_pairs;
    chain.output_perturbers = lower.output_perturbers;
    chain.functions.push_back(logic::TruthTable::from_binary("10"));

    // the upper wire exits at column 15 = the lower tile's NE port column
    ASSERT_EQ(chain.input_pairs[0].zero_site.n, 15);
    ASSERT_EQ(chain.output_pairs[0].zero_site.n, 45 - tile_columns / 2);

    phys::SimulationParameters params;
    params.mu_minus = -0.32;
    const auto result = phys::check_operational(chain, params, phys::Engine::exhaustive);
    EXPECT_TRUE(result.operational);
}

TEST(TileComposition, OrGateDrivesADownstreamWire)
{
    const auto& lib = BestagonLibrary::instance();
    const auto* or_gate = lib.lookup(logic::GateType::or2, Port::nw, Port::ne, Port::se,
                                     std::nullopt);
    const auto* wire = lib.lookup(logic::GateType::buf, Port::nw, std::nullopt, Port::sw,
                                  std::nullopt);
    ASSERT_NE(or_gate, nullptr);
    ASSERT_NE(wire, nullptr);

    // OR at tile (0,0) exits SE toward tile (0,1); in lattice coordinates the
    // SE neighbor's origin is (+30 columns, +24 rows) and its NW port column
    // (local 15) aligns with the OR's SE output column (local 45)
    const auto downstream = translate(wire->design, tile_columns / 2, tile_rows);

    GateDesign cascade;
    cascade.name = "or+wire";
    cascade.sites = or_gate->design.sites;
    cascade.sites.insert(cascade.sites.end(), downstream.sites.begin(), downstream.sites.end());
    cascade.input_pairs = or_gate->design.input_pairs;
    cascade.drivers = or_gate->design.drivers;
    cascade.output_pairs = downstream.output_pairs;
    cascade.output_perturbers = downstream.output_perturbers;
    cascade.functions.push_back(logic::TruthTable::from_binary("1110"));

    phys::SimulationParameters params;
    params.mu_minus = -0.32;
    const auto result = phys::check_operational(cascade, params, phys::Engine::exhaustive);
    // cross-tile gate->wire coupling is marginal for one input pattern: the
    // near/far perturber emulation used during gate design omits the rest of
    // the upstream tile's charges, so the cascaded OR currently reaches 3/4
    // patterns (recorded in EXPERIMENTS.md as an open physical-tuning item)
    EXPECT_GE(result.patterns_correct, 3U)
        << result.patterns_correct << "/" << result.patterns_total << " patterns";
}

}  // namespace
