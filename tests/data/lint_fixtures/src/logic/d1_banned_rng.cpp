// Fixture: D1 — nondeterministic sources in a result-affecting directory.
// Seeded violations: std::rand, std::random_device, std::chrono::system_clock.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fixture
{

unsigned nondeterministic_seed()
{
    std::random_device entropy;
    const auto wall = std::chrono::system_clock::now().time_since_epoch().count();
    return entropy() + static_cast<unsigned>(std::rand()) + static_cast<unsigned>(wall);
}

}  // namespace fixture
