// Fixture: W1 — a waiver that no longer suppresses anything. The traversal it
// once covered was rewritten to keyed access, so the waiver is stale and must
// be reported as an error.
#include <unordered_map>

namespace fixture
{

int lookup(const std::unordered_map<int, int>& scores, int key)
{
    // bestagon-lint: ordered-ok(left behind after the traversal below was rewritten)
    const auto it = scores.find(key);
    return it == scores.end() ? 0 : it->second;
}

}  // namespace fixture
