// Fixture: W3 — an unknown waiver tag (typo of ordered-ok). Must be reported
// so misspelled waivers fail loudly instead of silently not suppressing.
#include <unordered_map>

namespace fixture
{

int count_all(const std::unordered_map<int, int>& scores)
{
    // bestagon-lint: orderd-ok(typo in the tag name)
    return static_cast<int>(scores.size());
}

}  // namespace fixture
