// Fixture: waiver round-trip — an unordered traversal that cannot affect any
// result, suppressed by an ordered-ok waiver with a reason. Must produce zero
// active diagnostics, one waived diagnostic and no stale-waiver error.
#include <unordered_map>

namespace fixture
{

int commutative_sum(const std::unordered_map<int, int>& scores)
{
    int total = 0;
    // bestagon-lint: ordered-ok(accumulating a commutative integer sum; iteration order cannot reach the result)
    for (const auto& [key, value] : scores)
    {
        total += value;
    }
    return total;
}

}  // namespace fixture
