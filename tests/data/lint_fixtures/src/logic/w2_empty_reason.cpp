// Fixture: W2 — a waiver without a reason. Reasons are mandatory; the bare
// tag must be rejected and must NOT suppress the diagnostic underneath it.
#include <unordered_map>

namespace fixture
{

int sum_values(const std::unordered_map<int, int>& scores)
{
    int total = 0;
    // bestagon-lint: ordered-ok()
    for (const auto& [key, value] : scores)
    {
        total += value;
    }
    return total;
}

}  // namespace fixture
