// Fixture: D2 — iteration over unordered containers in a result-affecting
// directory. Seeded violations: a range-for over an unordered_map and an
// explicit .begin() traversal of an unordered_set.
#include <unordered_map>
#include <unordered_set>

namespace fixture
{

int sum_values(const std::unordered_map<int, int>& scores)
{
    int total = 0;
    for (const auto& [key, value] : scores)
    {
        total += value;
    }
    return total;
}

int first_element(const std::unordered_set<int>& pool)
{
    const auto it = pool.begin();
    return *it;
}

}  // namespace fixture
