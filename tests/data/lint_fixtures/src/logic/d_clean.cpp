// Fixture: clean determinism usage — unordered containers with keyed access
// only, plus a deterministic <random> engine with a fixed seed. Must produce
// zero diagnostics.
#include <random>
#include <unordered_map>
#include <vector>

namespace fixture
{

int lookup(const std::unordered_map<int, int>& scores, int key)
{
    const auto it = scores.find(key);
    return it == scores.end() ? 0 : it->second;
}

std::vector<int> present_keys(const std::unordered_map<int, int>& scores, int max_key)
{
    std::vector<int> keys;
    for (int k = 0; k < max_key; ++k)
    {
        if (scores.count(k) != 0)
        {
            keys.push_back(k);
        }
    }
    return keys;
}

int seeded_draw(std::uint64_t seed)
{
    std::mt19937_64 rng{seed};
    return static_cast<int>(rng() & 0xFF);
}

}  // namespace fixture
