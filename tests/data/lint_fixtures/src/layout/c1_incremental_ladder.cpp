// Fixture: C1 — the incremental-ladder-loop shape. A ladder walk over one
// persistent solver accepts a run budget but never polls it between solves:
// each solve_size call can burn a full conflict budget, so an unpolled walk
// ignores cancellation for the whole ladder. Seeded violation: the while
// loop below (exactly one diagnostic expected).
namespace fixture
{

struct RunBudget
{
    bool stopped() const;
};

struct AspectRatio
{
    unsigned width{0};
    unsigned height{0};
};

struct Ladder
{
    bool next(AspectRatio& out);
    void record_refuted(AspectRatio size);
};

struct PersistentEncoding
{
    int solve_size(AspectRatio size, long conflict_budget);
};

int run_ladder(PersistentEncoding& encoding, Ladder& ladder, const RunBudget& run)
{
    int found = 0;
    int attempts = 0;
    AspectRatio size;
    while (ladder.next(size))
    {
        ++attempts;
        const int verdict = encoding.solve_size(size, 300000);
        if (verdict > 0)
        {
            ++found;
        }
        if (verdict < 0)
        {
            ladder.record_refuted(size);
        }
    }
    return found + attempts;
}

}  // namespace fixture
