// Fixture: clean incremental-ladder loop — the walk polls its budget at the
// top of every iteration, so cancellation takes effect between solves (the
// shape src/layout/exact_physical_design.cpp's run_incremental_ladder and
// run_fresh_ladder follow). Must produce zero diagnostics.
namespace fixture
{

struct RunBudget
{
    bool stopped() const;
};

struct AspectRatio
{
    unsigned width{0};
    unsigned height{0};
};

struct Ladder
{
    bool next(AspectRatio& out);
    void record_refuted(AspectRatio size);
};

struct PersistentEncoding
{
    int solve_size(AspectRatio size, long conflict_budget);
};

int run_ladder(PersistentEncoding& encoding, Ladder& ladder, const RunBudget& run)
{
    int found = 0;
    AspectRatio size;
    while (ladder.next(size))
    {
        if (run.stopped())
        {
            return found;
        }
        const int verdict = encoding.solve_size(size, 300000);
        if (verdict > 0)
        {
            ++found;
        }
        if (verdict < 0)
        {
            ladder.record_refuted(size);
        }
    }
    return found;
}

}  // namespace fixture
