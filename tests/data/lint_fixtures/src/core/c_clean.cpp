// Fixture: clean cancellation — the engine loop polls its budget and the
// strided countdown latches a fired budget by writing 0. Must produce zero
// diagnostics.
namespace fixture
{

struct RunBudget
{
    bool stopped() const;
};

struct Budget
{
    long check_stride{256};
    bool expired() const;
};

int engine_step(int state);

int run_engine(int iterations, const RunBudget& run)
{
    int acc = 0;
    for (int i = 0; i < iterations; ++i)
    {
        if (run.stopped())
        {
            break;
        }
        for (int j = 0; j < 1024; ++j)
        {
            acc ^= engine_step(acc + i + j);
        }
    }
    return acc;
}

struct Engine
{
    long poll_countdown{0};
    bool fired{false};

    bool should_stop(const Budget& budget)
    {
        if (fired)
        {
            return true;
        }
        if (--poll_countdown <= 0)
        {
            if (budget.expired())
            {
                fired = true;
                poll_countdown = 0;
                return true;
            }
            poll_countdown = budget.check_stride;
        }
        return false;
    }
};

}  // namespace fixture
