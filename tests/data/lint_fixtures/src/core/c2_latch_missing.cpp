// Fixture: C2 — a strided countdown whose reset always reloads the stride.
// Once the budget fires, nothing writes 0 into the countdown, so a fired
// budget is forgotten on the next reset (the PR-4 budget-latch bug class).
namespace fixture
{

struct Budget
{
    long check_stride{256};
    bool expired() const;
};

struct Engine
{
    long poll_countdown{0};

    bool should_stop(const Budget& budget)
    {
        if (--poll_countdown <= 0)
        {
            poll_countdown = budget.check_stride;
            return budget.expired();
        }
        return false;
    }
};

}  // namespace fixture
