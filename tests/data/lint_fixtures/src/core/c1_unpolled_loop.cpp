// Fixture: C1 — a function that accepts a run budget but never polls it
// inside its engine loop. Seeded violation: the outer iteration loop.
namespace fixture
{

struct RunBudget
{
    bool stopped() const;
};

int engine_step(int state);

int run_engine(int iterations, const RunBudget& run)
{
    int acc = 0;
    for (int i = 0; i < iterations; ++i)
    {
        for (int j = 0; j < 1024; ++j)
        {
            acc ^= engine_step(acc + i + j);
        }
    }
    return acc;
}

}  // namespace fixture
