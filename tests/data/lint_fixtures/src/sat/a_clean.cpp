// Fixture: clean arena usage — handles are consumed before any may-allocate
// call and re-fetched afterwards. Must produce zero diagnostics.
namespace fixture
{

struct ClauseView
{
    int size() const;
    int operator[](int i) const;
};

struct Arena
{
    ClauseView view(unsigned ref);
    unsigned alloc(int num_lits);
};

int refetched_read(Arena& arena, unsigned ref)
{
    const auto clause = arena.view(ref);
    const int first = clause[0];
    const unsigned fresh = arena.alloc(3);
    const auto refetched = arena.view(ref);
    return first + refetched[0] + static_cast<int>(fresh);
}

}  // namespace fixture
