// Fixture: A1 — an arena clause handle held across a may-allocate call. The
// alloc can grow the arena and move its storage, leaving the handle dangling.
namespace fixture
{

struct ClauseView
{
    int size() const;
    int operator[](int i) const;
};

struct Arena
{
    ClauseView view(unsigned ref);
    unsigned alloc(int num_lits);
};

int dangling_read(Arena& arena, unsigned ref)
{
    const auto clause = arena.view(ref);
    const unsigned fresh = arena.alloc(3);
    return clause[0] + static_cast<int>(fresh);
}

}  // namespace fixture
