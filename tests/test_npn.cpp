#include "logic/npn.hpp"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

namespace
{

using namespace bestagon::logic;

TruthTable random_tt(unsigned n, std::mt19937& rng)
{
    TruthTable f{n};
    for (std::uint64_t t = 0; t < f.num_bits(); ++t)
    {
        f.set_bit(t, (rng() & 1U) != 0);
    }
    return f;
}

/// Property: the stored transform maps the canonical form back to f.
TEST(Npn, TransformRoundTrip)
{
    std::mt19937 rng{42};
    for (int iter = 0; iter < 300; ++iter)
    {
        const unsigned n = 1 + rng() % 4;
        const auto f = random_tt(n, rng);
        const auto canon = canonize_npn(f);
        EXPECT_EQ(apply_npn_transform(canon.canonical, canon.transform), f);
    }
}

/// Property: NPN-equivalent functions share one canonical representative.
TEST(Npn, EquivalentFunctionsShareRepresentative)
{
    std::mt19937 rng{4242};
    for (int iter = 0; iter < 100; ++iter)
    {
        const unsigned n = 2 + rng() % 2;
        const auto f = random_tt(n, rng);
        // random transform of f
        NpnTransform t;
        t.perm.resize(n);
        for (unsigned i = 0; i < n; ++i)
        {
            t.perm[i] = i;
        }
        std::shuffle(t.perm.begin(), t.perm.end(), rng);
        t.input_flips = rng() % (1U << n);
        t.output_negated = (rng() & 1U) != 0;
        const auto g = apply_npn_transform(f, t);

        EXPECT_EQ(canonize_npn(f).canonical, canonize_npn(g).canonical);
    }
}

TEST(Npn, CanonicalIsIdempotent)
{
    std::mt19937 rng{5};
    for (int iter = 0; iter < 100; ++iter)
    {
        const auto f = random_tt(3, rng);
        const auto canon = canonize_npn(f).canonical;
        EXPECT_EQ(canonize_npn(canon).canonical, canon);
    }
}

TEST(Npn, TwoVariableClassCount)
{
    // there are exactly 4 NPN classes of 2-variable functions
    std::unordered_set<std::string> classes;
    for (unsigned bits = 0; bits < 16; ++bits)
    {
        TruthTable f{2};
        for (unsigned t = 0; t < 4; ++t)
        {
            f.set_bit(t, ((bits >> t) & 1U) != 0);
        }
        classes.insert(canonize_npn(f).canonical.to_binary());
    }
    EXPECT_EQ(classes.size(), 4U);
}

TEST(Npn, ThreeVariableClassCount)
{
    // there are exactly 14 NPN classes of 3-variable functions
    std::unordered_set<std::string> classes;
    for (unsigned bits = 0; bits < 256; ++bits)
    {
        TruthTable f{3};
        for (unsigned t = 0; t < 8; ++t)
        {
            f.set_bit(t, ((bits >> t) & 1U) != 0);
        }
        classes.insert(canonize_npn(f).canonical.to_binary());
    }
    EXPECT_EQ(classes.size(), 14U);
}

TEST(Npn, RejectsTooManyVariables)
{
    EXPECT_THROW(static_cast<void>(canonize_npn(TruthTable{5})), std::invalid_argument);
}

}  // namespace
