#include "io/verilog.hpp"

#include "logic/benchmarks.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace
{

using namespace bestagon;

/// The shipped benchmarks/*.v files must parse and match the built-in
/// netlists functionally.
class VerilogFileTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(VerilogFileTest, FileMatchesBuiltinNetlist)
{
    const auto* bm = logic::find_benchmark(GetParam());
    ASSERT_NE(bm, nullptr);
    std::ifstream in{std::string{BESTAGON_BENCHMARK_DIR} + "/" + GetParam() + ".v"};
    ASSERT_TRUE(in.good()) << "missing benchmark file for " << GetParam();
    const auto net = io::read_verilog(in);
    EXPECT_TRUE(logic::functionally_equivalent(bm->build(), net));
}

INSTANTIATE_TEST_SUITE_P(Shipped, VerilogFileTest,
                         ::testing::Values("xor2", "xnor2", "par_gen", "mux21", "par_check",
                                           "xor5_r1", "xor5_majority", "t", "t_5", "c17",
                                           "majority", "majority_5_r1", "cm82a_5", "newtag"));

}  // namespace
