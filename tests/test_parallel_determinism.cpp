/// \file test_parallel_determinism.cpp
/// \brief Regression tests for the parallel physical-simulation layer: every
///        fan-out point must produce bit-identical results at 1 thread vs N
///        threads and across repeated runs with the same seed.

#include "phys/defect_sweep.hpp"
#include "phys/gate_designer.hpp"
#include "phys/operational_domain.hpp"
#include "phys/simanneal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace
{

using namespace bestagon::phys;
using bestagon::logic::TruthTable;

/// The validated vertical BDL wire in tile-local coordinates.
GateDesign vertical_wire()
{
    GateDesign d;
    d.name = "wire";
    for (int k = 0; k < 6; ++k)
    {
        const int m = 1 + 4 * k;
        d.sites.push_back({15, m, 0});
        d.sites.push_back({15, m + 1, 0});
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.output_pairs.push_back({{15, 21, 0}, {15, 22, 0}});
    d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
    d.output_perturbers.push_back({15, 25, 1});
    d.functions.push_back(TruthTable::from_binary("10"));
    return d;
}

void expect_identical(const OperationalResult& a, const OperationalResult& b)
{
    ASSERT_EQ(a.patterns_total, b.patterns_total);
    EXPECT_EQ(a.patterns_correct, b.patterns_correct);
    EXPECT_EQ(a.operational, b.operational);
    ASSERT_EQ(a.details.size(), b.details.size());
    for (std::size_t p = 0; p < a.details.size(); ++p)
    {
        EXPECT_EQ(a.details[p].pattern, b.details[p].pattern);
        EXPECT_EQ(a.details[p].correct, b.details[p].correct);
        EXPECT_EQ(a.details[p].output_states, b.details[p].output_states);
        // bit-identical, not merely close
        EXPECT_EQ(a.details[p].ground_state.config, b.details[p].ground_state.config);
        EXPECT_EQ(a.details[p].ground_state.grand_potential,
                  b.details[p].ground_state.grand_potential);
        EXPECT_EQ(a.details[p].ground_state.electrostatic, b.details[p].ground_state.electrostatic);
    }
}

TEST(ParallelDeterminism, CheckOperationalMatchesSerial)
{
    const auto design = vertical_wire();
    for (const auto engine : {Engine::exhaustive, Engine::simanneal, Engine::quicksim, Engine::exact})
    {
        SimulationParameters serial;
        serial.num_threads = 1;
        const auto reference = check_operational(design, serial, engine);
        for (const unsigned threads : {2U, 4U, 8U})
        {
            SimulationParameters parallel = serial;
            parallel.num_threads = threads;
            expect_identical(reference, check_operational(design, parallel, engine));
        }
        // repeated runs are stable too
        expect_identical(reference, check_operational(design, serial, engine));
    }
}

TEST(ParallelDeterminism, OperationalDomainMatchesSerial)
{
    const auto design = vertical_wire();
    DomainSweep sweep;
    sweep.axes = DomainAxes::epsilon_r_vs_lambda_tf;
    sweep.x_min = 3.0;
    sweep.x_max = 9.0;
    sweep.x_steps = 6;
    sweep.y_min = 2.0;
    sweep.y_max = 8.0;
    sweep.y_steps = 6;

    SimulationParameters serial;
    serial.num_threads = 1;
    const auto reference = compute_operational_domain(design, serial, sweep);
    EXPECT_EQ(reference.points.size(), 36U);

    for (const unsigned threads : {4U, 8U})
    {
        SimulationParameters parallel = serial;
        parallel.num_threads = threads;
        const auto domain = compute_operational_domain(design, parallel, sweep);
        EXPECT_EQ(domain.coverage(), reference.coverage());  // bit-identical
        ASSERT_EQ(domain.points.size(), reference.points.size());
        for (std::size_t k = 0; k < domain.points.size(); ++k)
        {
            EXPECT_EQ(domain.points[k].x, reference.points[k].x);
            EXPECT_EQ(domain.points[k].y, reference.points[k].y);
            EXPECT_EQ(domain.points[k].operational, reference.points[k].operational);
            EXPECT_EQ(domain.points[k].patterns_correct, reference.points[k].patterns_correct);
        }
    }
}

TEST(ParallelDeterminism, DesignGateMatchesSerial)
{
    // wire with the third pair removed; candidates contain the missing sites
    auto skeleton = vertical_wire();
    skeleton.sites.erase(skeleton.sites.begin() + 4, skeleton.sites.begin() + 6);
    std::vector<SiDBSite> candidates;
    for (int m = 8; m <= 11; ++m)
    {
        for (int l = 0; l < 2; ++l)
        {
            candidates.push_back({15, m, l});
        }
    }

    DesignerOptions options;
    options.min_canvas_dots = 1;
    options.max_canvas_dots = 2;
    options.max_iterations = 2000;
    options.num_restarts = 3;

    SimulationParameters serial;
    serial.num_threads = 1;
    DesignerOptions serial_options = options;
    serial_options.num_threads = 1;
    const auto reference = design_gate(skeleton, candidates, serial_options, serial);
    ASSERT_TRUE(reference.has_value());

    for (const unsigned threads : {2U, 4U})
    {
        SimulationParameters parallel = serial;
        parallel.num_threads = threads;
        DesignerOptions parallel_options = options;
        parallel_options.num_threads = threads;
        const auto result = design_gate(skeleton, candidates, parallel_options, parallel);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->canvas, reference->canvas);
        EXPECT_EQ(result->iterations_used, reference->iterations_used);
        EXPECT_EQ(result->restart_used, reference->restart_used);
        EXPECT_EQ(result->design.sites, reference->design.sites);
    }
}

TEST(ParallelDeterminism, DesignGateRestartZeroReproducesSingleRestartTrajectory)
{
    auto skeleton = vertical_wire();
    skeleton.sites.erase(skeleton.sites.begin() + 4, skeleton.sites.begin() + 6);
    std::vector<SiDBSite> candidates;
    for (int m = 8; m <= 11; ++m)
    {
        candidates.push_back({15, m, 0});
        candidates.push_back({15, m, 1});
    }
    SimulationParameters p;
    p.num_threads = 1;
    DesignerOptions one;
    one.min_canvas_dots = 1;
    one.max_canvas_dots = 2;
    one.max_iterations = 2000;
    one.num_restarts = 1;
    one.num_threads = 1;
    DesignerOptions many = one;
    many.num_restarts = 4;
    many.num_threads = 4;

    const auto a = design_gate(skeleton, candidates, one, p);
    const auto b = design_gate(skeleton, candidates, many, p);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    // restart 0 finds the same design in the same number of iterations, and
    // wins the deterministic lowest-index selection
    EXPECT_EQ(b->restart_used, 0U);
    EXPECT_EQ(b->canvas, a->canvas);
    EXPECT_EQ(b->iterations_used, a->iterations_used);
}

TEST(ParallelDeterminism, SimAnnealMatchesSerialForAnyThreadCount)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    // a 10-site BDL chain
    std::vector<SiDBSite> sites;
    for (int k = 0; k < 5; ++k)
    {
        const int m = 1 + 4 * k;
        sites.push_back({15, m, 0});
        sites.push_back({15, m + 1, 0});
    }
    const SiDBSystem sys{sites, p};

    SimAnnealParameters serial;
    serial.num_threads = 1;
    const auto reference = simulated_annealing(sys, serial);
    EXPECT_TRUE(sys.physically_valid(reference.config));

    for (const unsigned threads : {2U, 4U, 8U})
    {
        SimAnnealParameters parallel = serial;
        parallel.num_threads = threads;
        const auto result = simulated_annealing(sys, parallel);
        EXPECT_EQ(result.config, reference.config);
        EXPECT_EQ(result.grand_potential, reference.grand_potential);
        EXPECT_EQ(result.electrostatic, reference.electrostatic);
    }
    // and across repeated runs with the same seed
    const auto again = simulated_annealing(sys, serial);
    EXPECT_EQ(again.config, reference.config);
    EXPECT_EQ(again.grand_potential, reference.grand_potential);
}

TEST(ParallelDeterminism, SimAnnealZeroInstancesIsWellDefined)
{
    SimulationParameters p;
    const SiDBSystem sys{{{0, 0, 0}, {5, 3, 1}}, p};
    SimAnnealParameters params;
    params.num_instances = 0;  // used to evaluate the energy of an empty config
    const auto result = simulated_annealing(sys, params);
    EXPECT_TRUE(result.config.empty());
    EXPECT_TRUE(std::isinf(result.grand_potential));
    EXPECT_EQ(result.electrostatic, 0.0);
    EXPECT_FALSE(result.complete);
}

TEST(ParallelDeterminism, ExcessiveInputArityIsRejectedNotOverflowed)
{
    GateDesign d;
    d.name = "impossible";
    for (int i = 0; i < 64; ++i)
    {
        d.drivers.push_back({{i, -3, 0}, {i, -2, 0}});
    }
    SimulationParameters p;
    EXPECT_THROW((void)check_operational(d, p), std::invalid_argument);
    DesignerOptions options;
    EXPECT_THROW((void)design_gate(d, {{0, 50, 0}}, options, p), std::invalid_argument);
}

TEST(ParallelDeterminism, DefectYieldSweepMatchesSerialForAnyThreadCount)
{
    const auto design = vertical_wire();
    DefectSweepParams sweep;
    sweep.densities_per_nm2 = {0.002, 0.01, 0.03};
    sweep.samples = 12;
    sweep.num_threads = 1;
    const auto reference = defect_yield_sweep(design, SimulationParameters{}, sweep);
    ASSERT_FALSE(reference.cancelled);
    for (const unsigned threads : {2U, 4U, 8U})
    {
        sweep.num_threads = threads;
        const auto parallel = defect_yield_sweep(design, SimulationParameters{}, sweep);
        ASSERT_EQ(parallel.points.size(), reference.points.size());
        for (std::size_t k = 0; k < reference.points.size(); ++k)
        {
            EXPECT_EQ(parallel.points[k].density_per_nm2, reference.points[k].density_per_nm2);
            EXPECT_EQ(parallel.points[k].samples_evaluated,
                      reference.points[k].samples_evaluated);
            EXPECT_EQ(parallel.points[k].operational, reference.points[k].operational);
            EXPECT_EQ(parallel.points[k].blocked, reference.points[k].blocked);
        }
    }
    // the serialized curves are byte-identical too (the CLI's artifact)
    sweep.num_threads = 3;
    EXPECT_EQ(to_json(defect_yield_sweep(design, SimulationParameters{}, sweep)),
              to_json(reference));
}

}  // namespace
