#include "sat/proof_check.hpp"

#include "sat/dimacs.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <vector>

namespace
{

using namespace bestagon::sat;

/// Builds the pigeonhole principle PHP(n+1, n) in \p s.
void build_php(Solver& s, const int n)
{
    std::vector<std::vector<Var>> x(static_cast<std::size_t>(n + 1));
    for (auto& row : x)
    {
        for (int h = 0; h < n; ++h)
        {
            row.push_back(s.new_var());
        }
    }
    for (const auto& row : x)
    {
        std::vector<Lit> clause;
        for (const auto v : row)
        {
            clause.push_back(pos(v));
        }
        s.add_clause(clause);
    }
    for (int h = 0; h < n; ++h)
    {
        for (std::size_t p1 = 0; p1 < x.size(); ++p1)
        {
            for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
            {
                s.add_clause(neg(x[p1][static_cast<std::size_t>(h)]),
                             neg(x[p2][static_cast<std::size_t>(h)]));
            }
        }
    }
}

TEST(ProofCheck, PigeonholeRefutationCertifies)
{
    for (int n = 2; n <= 5; ++n)
    {
        Solver s;
        MemoryProofTracer tracer;
        s.set_proof_tracer(&tracer);
        build_php(s, n);
        ASSERT_EQ(s.solve(), Result::unsatisfiable) << "PHP(" << n + 1 << "," << n << ")";

        const auto cnf = to_cnf(s.root_clauses());
        const auto res = check_drat_proof(cnf, tracer.proof());
        EXPECT_TRUE(res.valid) << "n=" << n << ": " << res.error;
        EXPECT_GT(res.num_lemmas, 0U);
        EXPECT_GT(res.core_formula_clauses, 0U);
    }
}

TEST(ProofCheck, DroppedLearntClausesAreRejected)
{
    // fault injection: strip every learnt addition except the terminal empty
    // clause. Because the proof contains learnt lemmas, root-level unit
    // propagation over the formula alone cannot conflict, so the gutted
    // proof MUST be rejected.
    Solver s;
    MemoryProofTracer tracer;
    s.set_proof_tracer(&tracer);
    build_php(s, 4);
    ASSERT_EQ(s.solve(), Result::unsatisfiable);

    const auto full = tracer.proof();
    ASSERT_GT(full.num_additions(), 1U);

    DratProof gutted;
    gutted.steps.push_back({false, {}});  // keep only "add empty clause"

    const auto cnf = to_cnf(s.root_clauses());
    ASSERT_TRUE(check_drat_proof(cnf, full).valid);
    const auto res = check_drat_proof(cnf, gutted);
    EXPECT_FALSE(res.valid);
    EXPECT_FALSE(res.error.empty());
}

TEST(ProofCheck, DroppedSingleLemmaOnCraftedInstanceIsRejected)
{
    // x1..x4 with XOR-like constraints whose refutation needs real learning;
    // removing the first learnt lemma breaks the derivation chain.
    Solver s;
    MemoryProofTracer tracer;
    s.set_proof_tracer(&tracer);
    for (int i = 0; i < 4; ++i)
    {
        s.new_var();
    }
    // parity chain: x1 xor x2, x2 xor x3, x3 xor x4, x1 = x4 (contradiction)
    s.add_clause(pos(0), pos(1));
    s.add_clause(neg(0), neg(1));
    s.add_clause(pos(1), pos(2));
    s.add_clause(neg(1), neg(2));
    s.add_clause(pos(2), pos(3));
    s.add_clause(neg(2), neg(3));
    s.add_clause(pos(0), neg(3));
    s.add_clause(neg(0), pos(3));
    ASSERT_EQ(s.solve(), Result::unsatisfiable);

    const auto full = tracer.proof();
    const auto cnf = to_cnf(s.root_clauses());
    ASSERT_TRUE(check_drat_proof(cnf, full).valid);

    // dropping all additions but the last must fail; in this tiny instance
    // dropping just the first learnt lemma is also fatal
    DratProof faulty;
    bool skipped_one = false;
    for (const auto& step : full.steps)
    {
        if (!step.is_delete && !step.lits.empty() && !skipped_one)
        {
            skipped_one = true;
            continue;
        }
        faulty.steps.push_back(step);
    }
    ASSERT_TRUE(skipped_one);
    EXPECT_FALSE(check_drat_proof(cnf, faulty).valid);
}

TEST(ProofCheck, BogusLemmaRejectedInAllLemmasMode)
{
    Cnf cnf;
    cnf.num_vars = 2;
    cnf.clauses = {{1, 2}};
    DratProof proof;
    proof.steps.push_back({false, {1}});  // (x1) is not RUP w.r.t. (x1 v x2)
    const auto res = check_drat_proof(cnf, proof, ProofCheckMode::all_lemmas);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.error.find("not RUP"), std::string::npos) << res.error;
}

TEST(ProofCheck, MissingEmptyClauseRejected)
{
    Cnf cnf;
    cnf.num_vars = 2;
    cnf.clauses = {{1, 2}, {-1, 2}};
    DratProof proof;
    proof.steps.push_back({false, {2}});  // valid RUP lemma, but no refutation
    EXPECT_FALSE(check_drat_proof(cnf, proof).valid);
    EXPECT_TRUE(check_drat_proof(cnf, proof, ProofCheckMode::all_lemmas).valid);
}

TEST(ProofCheck, HandwrittenProofWithDeletionCertifies)
{
    // formula: (x) (-x y) (-y z) (-z); refutation: derive (y), drop a clause
    // that is no longer needed, then derive the empty clause
    Cnf cnf;
    cnf.num_vars = 3;
    cnf.clauses = {{1}, {-1, 2}, {-2, 3}, {-3}};
    DratProof proof;
    proof.steps.push_back({false, {2}});
    proof.steps.push_back({true, {-1, 2}});
    proof.steps.push_back({false, {}});
    const auto res = check_drat_proof(cnf, proof);
    EXPECT_TRUE(res.valid) << res.error;
}

TEST(ProofCheck, UsingDeletedClauseIsRejected)
{
    // deleting (x1) and then deriving (x2) by propagation over it must fail
    Cnf cnf;
    cnf.num_vars = 2;
    cnf.clauses = {{1}, {-1, 2}};
    DratProof proof;
    proof.steps.push_back({true, {1}});
    proof.steps.push_back({false, {2}});
    EXPECT_FALSE(check_drat_proof(cnf, proof, ProofCheckMode::all_lemmas).valid);
}

TEST(ProofCheck, EmptyFormulaClauseIsImmediateRefutation)
{
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.clauses = {{}};
    EXPECT_TRUE(check_drat_proof(cnf, DratProof{}).valid);
}

TEST(ProofCheck, SatisfiableFormulaWithoutProofRejected)
{
    Cnf cnf;
    cnf.num_vars = 1;
    cnf.clauses = {{1}};
    EXPECT_FALSE(check_drat_proof(cnf, DratProof{}).valid);
}

TEST(ProofCheck, RandomUnsatInstancesCertify)
{
    std::mt19937 rng{20260806};
    int unsat_seen = 0;
    for (int iter = 0; iter < 120; ++iter)
    {
        const int n = 4 + static_cast<int>(rng() % 5);
        const int m = 18 + static_cast<int>(rng() % 24);
        Solver s;
        MemoryProofTracer tracer;
        s.set_proof_tracer(&tracer);
        for (int i = 0; i < n; ++i)
        {
            s.new_var();
        }
        for (int i = 0; i < m; ++i)
        {
            std::vector<Lit> c;
            for (int j = 0; j < 3; ++j)
            {
                const auto v = static_cast<Var>(rng() % static_cast<unsigned>(n));
                c.push_back(Lit{v, (rng() & 1U) != 0});
            }
            s.add_clause(std::move(c));
        }
        if (s.solve() != Result::unsatisfiable)
        {
            continue;
        }
        ++unsat_seen;
        const auto res = check_drat_proof(to_cnf(s.root_clauses()), tracer.proof());
        ASSERT_TRUE(res.valid) << "iteration " << iter << ": " << res.error;
    }
    EXPECT_GT(unsat_seen, 10);  // the density makes UNSAT common
}

TEST(ProofCheck, StreamTracerMatchesMemoryTracer)
{
    Solver s1, s2;
    MemoryProofTracer mem;
    std::ostringstream out;
    StreamProofTracer stream{out};
    s1.set_proof_tracer(&mem);
    s2.set_proof_tracer(&stream);
    build_php(s1, 3);
    build_php(s2, 3);
    ASSERT_EQ(s1.solve(), Result::unsatisfiable);
    ASSERT_EQ(s2.solve(), Result::unsatisfiable);
    const auto parsed = read_drat(out.str());
    EXPECT_EQ(parsed.steps, mem.proof().steps);
}

TEST(ProofCheck, DratTextRoundTrip)
{
    DratProof proof;
    proof.steps.push_back({false, {1, -2, 3}});
    proof.steps.push_back({true, {-1, 4}});
    proof.steps.push_back({false, {}});
    std::ostringstream out;
    write_drat(out, proof);
    const auto back = read_drat(out.str());
    EXPECT_EQ(back.steps, proof.steps);
}

TEST(ProofCheck, DratParserRejectsGarbage)
{
    EXPECT_THROW(static_cast<void>(read_drat("1 2 x 0\n")), std::runtime_error);
    EXPECT_THROW(static_cast<void>(read_drat("12y 0\n")), std::runtime_error);
    EXPECT_THROW(static_cast<void>(read_drat("1 2")), std::runtime_error);
    EXPECT_THROW(static_cast<void>(read_drat("99999999999 0\n")), std::runtime_error);
    EXPECT_NO_THROW(static_cast<void>(read_drat("c comment\n1 2 0\nd 1 2 0\n")));
}

TEST(ProofCheck, NoTracingOverheadWithoutTracer)
{
    // with no tracer attached the solver must not record proof steps at all;
    // this is a behavioural proxy: attach-after-solve sees an empty proof
    Solver s;
    build_php(s, 3);
    ASSERT_EQ(s.solve(), Result::unsatisfiable);
    MemoryProofTracer tracer;
    s.set_proof_tracer(&tracer);
    EXPECT_TRUE(tracer.proof().empty());
}

TEST(SatSolverCore, FinalConflictListsFailedAssumptions)
{
    Solver s;
    const Var x = s.new_var(), y = s.new_var(), z = s.new_var();
    s.add_clause(neg(x), pos(y));  // x -> y
    ASSERT_EQ(s.solve({pos(x), neg(y), pos(z)}), Result::unsatisfiable);
    const auto& core = s.final_conflict();
    ASSERT_FALSE(core.empty());
    // the core must involve x and/or y, never the irrelevant z
    for (const auto l : core)
    {
        EXPECT_NE(l.var(), z);
    }
    // the core itself must be sufficient to refute
    EXPECT_EQ(s.solve(core), Result::unsatisfiable);
}

TEST(SatSolverCore, FinalConflictEmptyWhenFormulaUnsat)
{
    Solver s;
    const Var x = s.new_var();
    s.add_clause(pos(x));
    s.add_clause(neg(x));
    ASSERT_EQ(s.solve({pos(s.new_var())}), Result::unsatisfiable);
    EXPECT_TRUE(s.final_conflict().empty());
}

TEST(SatSolverCore, RootClausesPreserveSimplifiedUnits)
{
    // a clause that simplifies to a unit (or to empty) at add time must
    // still be reflected in the root snapshot, else certification would be
    // unsound
    Solver s;
    const Var x = s.new_var(), y = s.new_var();
    s.add_clause(pos(x));
    s.add_clause(neg(x), pos(y));   // becomes unit (y) after simplification? no: x unassigned until solve
    s.add_clause(neg(y));
    ASSERT_EQ(s.solve(), Result::unsatisfiable);

    // every recorded root clause must make the snapshot refutable
    Solver replay;
    const auto snapshot = s.root_clauses();
    bool ok = true;
    for (const auto& clause : snapshot)
    {
        for (const auto l : clause)
        {
            while (replay.num_vars() <= l.var())
            {
                static_cast<void>(replay.new_var());
            }
        }
        ok = replay.add_clause(clause) && ok;
    }
    EXPECT_TRUE(!ok || replay.solve() == Result::unsatisfiable);
}

TEST(SatSolverCore, RootClausesCaptureAddTimeConflict)
{
    Solver s;
    MemoryProofTracer tracer;
    s.set_proof_tracer(&tracer);
    const Var x = s.new_var();
    ASSERT_TRUE(s.add_clause(pos(x)));
    EXPECT_FALSE(s.add_clause(neg(x)));  // simplifies to empty at add time
    ASSERT_EQ(s.solve(), Result::unsatisfiable);
    const auto res = check_drat_proof(to_cnf(s.root_clauses()), tracer.proof());
    EXPECT_TRUE(res.valid) << res.error;
}

}  // namespace
