#include "layout/scalable_physical_design.hpp"

#include "layout/design_rules.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using namespace bestagon::layout;

logic::LogicNetwork mapped_benchmark(const std::string& name)
{
    const auto* bm = logic::find_benchmark(name);
    logic::NpnDatabase db;
    return logic::map_to_bestagon(logic::rewrite(logic::to_xag(bm->build()), db));
}

TEST(ScalablePD, RejectsNonCompliantNetworks)
{
    logic::LogicNetwork n;
    const auto a = n.create_pi();
    const auto x = n.create_not(a);
    n.create_po(x);
    n.create_po(x);
    EXPECT_THROW(static_cast<void>(scalable_physical_design(n)), std::invalid_argument);
}

/// The constructive marcher must succeed on these benchmarks and produce
/// correct, DRC-clean layouts (it may legitimately bail out on densely
/// reconvergent netlists; those fall back to exact PD in the flow).
class ScalablePDBenchmark : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ScalablePDBenchmark, ProducesCorrectLayouts)
{
    const auto spec = logic::find_benchmark(GetParam())->build();
    const auto mapped = mapped_benchmark(GetParam());
    const auto layout = scalable_physical_design(mapped);
    ASSERT_TRUE(layout.has_value());
    const auto extracted = layout->extract_network(mapped);
    EXPECT_TRUE(logic::functionally_equivalent(spec, extracted));
    const auto drc = check_design_rules(*layout);
    EXPECT_TRUE(drc.clean()) << (drc.violations.empty() ? "" : drc.violations.front().message);
}

INSTANTIATE_TEST_SUITE_P(KnownGood, ScalablePDBenchmark,
                         ::testing::Values("xor2", "xnor2", "par_gen", "par_check", "xor5_r1",
                                           "xor5_majority"));

TEST(ScalablePD, LayoutsAreLargerThanExactButBalanced)
{
    const auto mapped = mapped_benchmark("par_check");
    const auto layout = scalable_physical_design(mapped);
    ASSERT_TRUE(layout.has_value());
    // all POs are pinned to the final row, so every path is balanced
    for (const auto& t : layout->all_tiles())
    {
        for (const auto& occ : layout->occupants(t))
        {
            if (occ.type == bestagon::logic::GateType::po)
            {
                EXPECT_EQ(t.y, static_cast<std::int32_t>(layout->height()) - 1);
            }
        }
    }
}

TEST(ScalablePD, FailureIsGracefulOnHardNetworks)
{
    // densely reconvergent networks may defeat the marcher; the call must
    // return nullopt instead of throwing or looping
    const auto mapped = mapped_benchmark("cm82a_5");
    EXPECT_NO_THROW({
        const auto layout = scalable_physical_design(mapped);
        if (layout.has_value())
        {
            const auto extracted = layout->extract_network(mapped);
            EXPECT_TRUE(logic::functionally_equivalent(logic::find_benchmark("cm82a_5")->build(),
                                                       extracted));
        }
    });
}

}  // namespace
