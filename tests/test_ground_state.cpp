#include "phys/exhaustive.hpp"
#include "phys/simanneal.hpp"

#include <gtest/gtest.h>

#include <random>

namespace
{

using namespace bestagon::phys;

/// Brute-force reference: enumerate all configurations.
GroundStateResult brute_force(const SiDBSystem& sys)
{
    GroundStateResult best;
    best.grand_potential = std::numeric_limits<double>::infinity();
    const std::size_t n = sys.size();
    for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask)
    {
        ChargeConfig cfg(n, 0);
        for (std::size_t i = 0; i < n; ++i)
        {
            cfg[i] = ((mask >> i) & 1ULL) != 0 ? 1 : 0;
        }
        if (!sys.physically_valid(cfg))
        {
            continue;
        }
        const double f = sys.grand_potential(cfg);
        if (f < best.grand_potential)
        {
            best.grand_potential = f;
            best.config = cfg;
        }
    }
    return best;
}

std::vector<SiDBSite> random_sites(unsigned n, std::mt19937& rng)
{
    std::vector<SiDBSite> sites;
    while (sites.size() < n)
    {
        const SiDBSite s{static_cast<int>(rng() % 20), static_cast<int>(rng() % 10),
                         static_cast<int>(rng() % 2)};
        if (std::find(sites.begin(), sites.end(), s) == sites.end())
        {
            sites.push_back(s);
        }
    }
    return sites;
}

TEST(Exhaustive, SingleSite)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    const SiDBSystem sys{{{0, 0, 0}}, p};
    const auto gs = exhaustive_ground_state(sys);
    EXPECT_TRUE(gs.complete);
    EXPECT_EQ(gs.config, (ChargeConfig{1}));
    EXPECT_NEAR(gs.grand_potential, -0.32, 1e-12);
}

TEST(Exhaustive, BdlPairIsBistable)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    // adjacent columns (0.384 nm): V ~ 0.62 eV > |mu| forces single occupation
    const SiDBSystem sys{{{0, 0, 0}, {1, 0, 0}}, p};
    const auto gs = exhaustive_ground_state(sys);
    // exactly one electron, two degenerate positions
    EXPECT_EQ(gs.config[0] + gs.config[1], 1);
    EXPECT_EQ(gs.degeneracy, 2U);
}

TEST(Exhaustive, IsolatedWidePairIsDoublyOccupied)
{
    SimulationParameters p;
    p.mu_minus = -0.32;
    // at 0.768 nm, V ~ 0.287 eV < |mu|: an ISOLATED pair takes two electrons;
    // in-wire pairs stay singly occupied only thanks to neighbor repulsion
    const SiDBSystem sys{{{0, 0, 0}, {0, 1, 0}}, p};
    const auto gs = exhaustive_ground_state(sys);
    EXPECT_EQ(gs.config[0] + gs.config[1], 2);
}

/// Property: branch-and-bound agrees with brute force on random systems.
TEST(Exhaustive, AgreesWithBruteForce)
{
    std::mt19937 rng{31337};
    SimulationParameters p;
    p.mu_minus = -0.32;
    for (int iter = 0; iter < 30; ++iter)
    {
        const auto sites = random_sites(4 + rng() % 7, rng);
        const SiDBSystem sys{sites, p};
        const auto expected = brute_force(sys);
        const auto actual = exhaustive_ground_state(sys);
        ASSERT_TRUE(std::isfinite(expected.grand_potential));
        EXPECT_NEAR(actual.grand_potential, expected.grand_potential, 1e-9) << "iter " << iter;
        EXPECT_TRUE(sys.physically_valid(actual.config));
    }
}

TEST(Exhaustive, GroundStateIsAlwaysPhysicallyValid)
{
    std::mt19937 rng{777};
    SimulationParameters p;
    p.mu_minus = -0.28;
    for (int iter = 0; iter < 20; ++iter)
    {
        const auto sites = random_sites(6 + rng() % 6, rng);
        const SiDBSystem sys{sites, p};
        const auto gs = exhaustive_ground_state(sys);
        EXPECT_TRUE(sys.physically_valid(gs.config));
    }
}

TEST(SimAnneal, FindsGroundStateOfSmallSystems)
{
    std::mt19937 rng{2718};
    SimulationParameters p;
    p.mu_minus = -0.32;
    for (int iter = 0; iter < 10; ++iter)
    {
        const auto sites = random_sites(5 + rng() % 5, rng);
        const SiDBSystem sys{sites, p};
        const auto exact = exhaustive_ground_state(sys);
        SimAnnealParameters sp;
        sp.seed = 1000 + static_cast<std::uint64_t>(iter);
        const auto heuristic = simulated_annealing(sys, sp);
        EXPECT_TRUE(sys.physically_valid(heuristic.config));
        // the annealer must reach the exact ground state on these sizes
        EXPECT_NEAR(heuristic.grand_potential, exact.grand_potential, 1e-9) << "iter " << iter;
        EXPECT_FALSE(heuristic.complete);
    }
}

TEST(SimAnneal, EmptySystem)
{
    SimulationParameters p;
    const SiDBSystem sys{{}, p};
    const auto gs = simulated_annealing(sys);
    EXPECT_EQ(gs.grand_potential, 0.0);
    EXPECT_TRUE(gs.config.empty());
}

}  // namespace
