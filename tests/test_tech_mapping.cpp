#include "logic/tech_mapping.hpp"

#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::logic;

TEST(ToXag, DecomposesAllGateTypes)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto c = n.create_pi();
    n.create_po(n.create_or(a, b));
    n.create_po(n.create_nand(a, c));
    n.create_po(n.create_nor(b, c));
    n.create_po(n.create_xnor(a, b));
    n.create_po(n.create_maj(a, b, c));
    const auto xag = to_xag(n);
    EXPECT_TRUE(xag.is_xag());
    EXPECT_TRUE(functionally_equivalent(n, xag));
}

TEST(ToAig, RemovesXors)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    n.create_po(n.create_xor(a, b));
    const auto aig = to_aig(n);
    EXPECT_EQ(aig.num_gates_of(GateType::xor2), 0U);
    EXPECT_TRUE(functionally_equivalent(n, aig));
    // one XOR costs three ANDs in an AIG
    EXPECT_EQ(aig.num_gates_of(GateType::and2), 3U);
}

TEST(FoldInverters, AndOfInvertedInputsBecomesNor)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    n.create_po(n.create_and(n.create_not(a), n.create_not(b)));
    MappingStats stats;
    const auto folded = fold_inverters(n, &stats);
    EXPECT_TRUE(functionally_equivalent(n, folded));
    EXPECT_EQ(folded.num_gates_of(GateType::nor2), 1U);
    EXPECT_EQ(folded.num_gates_of(GateType::inv), 0U);
    EXPECT_EQ(stats.inverters_folded, 2U);
}

TEST(FoldInverters, InvertedAndBecomesNand)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    n.create_po(n.create_not(n.create_and(a, b)));
    const auto folded = fold_inverters(n, nullptr);
    EXPECT_TRUE(functionally_equivalent(n, folded));
    EXPECT_EQ(folded.num_gates_of(GateType::nand2), 1U);
}

TEST(FoldInverters, XorWithInvertedInputBecomesXnor)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    n.create_po(n.create_xor(n.create_not(a), b));
    const auto folded = fold_inverters(n, nullptr);
    EXPECT_TRUE(functionally_equivalent(n, folded));
    EXPECT_EQ(folded.num_gates_of(GateType::xnor2), 1U);
    EXPECT_EQ(folded.num_gates_of(GateType::inv), 0U);
}

TEST(FoldInverters, SharedInverterIsNotFolded)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto na = n.create_not(a);
    n.create_po(n.create_xor(na, b));
    n.create_po(na);  // the inverter has a second consumer
    const auto folded = fold_inverters(n, nullptr);
    EXPECT_TRUE(functionally_equivalent(n, folded));
    EXPECT_EQ(folded.num_gates_of(GateType::inv), 1U);
}

TEST(FanoutSubstitution, InsertsExplicitFanouts)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto x = n.create_and(a, b);
    n.create_po(n.create_not(x));
    n.create_po(x);
    MappingStats stats;
    const auto subst = fanout_substitution(n, &stats);
    EXPECT_TRUE(functionally_equivalent(n, subst));
    EXPECT_TRUE(subst.is_bestagon_compliant());
    EXPECT_EQ(stats.fanouts_inserted, 1U);
}

TEST(FanoutSubstitution, HighFanoutBuildsTree)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    for (int i = 0; i < 5; ++i)
    {
        n.create_po(n.create_buf(a));
    }
    const auto subst = fanout_substitution(strash(n), nullptr);
    EXPECT_TRUE(subst.is_bestagon_compliant());
    // 5 consumers need 4 fanout nodes
    EXPECT_EQ(subst.num_gates_of(GateType::fanout), 4U);
}

/// Property over the benchmark suite: mapping preserves function and yields
/// Bestagon-compliant networks.
class MappingBenchmarkTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MappingBenchmarkTest, MapsToCompliantNetwork)
{
    const auto* bm = find_benchmark(GetParam());
    ASSERT_NE(bm, nullptr);
    const auto net = bm->build();
    const auto mapped = map_to_bestagon(to_xag(net));
    EXPECT_TRUE(functionally_equivalent(net, mapped));
    std::string why;
    EXPECT_TRUE(mapped.is_bestagon_compliant(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, MappingBenchmarkTest,
                         ::testing::Values("xor2", "xnor2", "par_gen", "mux21", "par_check",
                                           "xor5_r1", "xor5_majority", "t", "t_5", "c17", "majority",
                                           "majority_5_r1", "cm82a_5", "newtag"));

}  // namespace
