#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <random>

namespace
{

using namespace bestagon::sat;

TEST(SatSolver, EmptyFormulaIsSatisfiable)
{
    Solver s;
    EXPECT_EQ(s.solve(), Result::satisfiable);
}

TEST(SatSolver, UnitClauseForcesValue)
{
    Solver s;
    const Var x = s.new_var();
    ASSERT_TRUE(s.add_clause(pos(x)));
    ASSERT_EQ(s.solve(), Result::satisfiable);
    EXPECT_TRUE(s.model_value(x));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat)
{
    Solver s;
    const Var x = s.new_var();
    ASSERT_TRUE(s.add_clause(pos(x)));
    EXPECT_FALSE(s.add_clause(neg(x)));
    EXPECT_EQ(s.solve(), Result::unsatisfiable);
}

TEST(SatSolver, SimplePropagationChain)
{
    Solver s;
    const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
    s.add_clause(pos(a));
    s.add_clause(neg(a), pos(b));
    s.add_clause(neg(b), pos(c));
    ASSERT_EQ(s.solve(), Result::satisfiable);
    EXPECT_TRUE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
    EXPECT_TRUE(s.model_value(c));
}

TEST(SatSolver, TautologicalClauseIgnored)
{
    Solver s;
    const Var x = s.new_var();
    ASSERT_TRUE(s.add_clause(std::vector<Lit>{pos(x), neg(x)}));
    EXPECT_EQ(s.solve(), Result::satisfiable);
}

TEST(SatSolver, DuplicateLiteralsDeduplicated)
{
    Solver s;
    const Var x = s.new_var(), y = s.new_var();
    ASSERT_TRUE(s.add_clause(std::vector<Lit>{pos(x), pos(x), pos(y)}));
    s.add_clause(neg(x));
    ASSERT_EQ(s.solve(), Result::satisfiable);
    EXPECT_TRUE(s.model_value(y));
}

TEST(SatSolver, PigeonholePrinciple)
{
    // n+1 pigeons into n holes is unsatisfiable
    for (int n = 2; n <= 5; ++n)
    {
        Solver s;
        std::vector<std::vector<Var>> x(static_cast<std::size_t>(n + 1));
        for (auto& row : x)
        {
            for (int h = 0; h < n; ++h)
            {
                row.push_back(s.new_var());
            }
        }
        for (const auto& row : x)
        {
            std::vector<Lit> clause;
            for (const auto v : row)
            {
                clause.push_back(pos(v));
            }
            s.add_clause(clause);
        }
        for (int h = 0; h < n; ++h)
        {
            for (std::size_t p1 = 0; p1 < x.size(); ++p1)
            {
                for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
                {
                    s.add_clause(neg(x[p1][static_cast<std::size_t>(h)]),
                                 neg(x[p2][static_cast<std::size_t>(h)]));
                }
            }
        }
        EXPECT_EQ(s.solve(), Result::unsatisfiable) << "PHP(" << n + 1 << "," << n << ")";
    }
}

TEST(SatSolver, AssumptionsAreRespected)
{
    Solver s;
    const Var x = s.new_var(), y = s.new_var();
    s.add_clause(neg(x), pos(y));  // x -> y
    ASSERT_EQ(s.solve({pos(x)}), Result::satisfiable);
    EXPECT_TRUE(s.model_value(y));
    EXPECT_EQ(s.solve({pos(x), neg(y)}), Result::unsatisfiable);
    // the solver must remain usable after an assumption failure
    EXPECT_EQ(s.solve({neg(x)}), Result::satisfiable);
    EXPECT_EQ(s.solve(), Result::satisfiable);
}

TEST(SatSolver, ConflictBudgetYieldsUnknown)
{
    // a hard instance with a tiny budget must return unknown, not hang
    Solver s;
    const int n = 8;
    std::vector<std::vector<Var>> x(static_cast<std::size_t>(n + 1));
    for (auto& row : x)
    {
        for (int h = 0; h < n; ++h)
        {
            row.push_back(s.new_var());
        }
    }
    for (const auto& row : x)
    {
        std::vector<Lit> clause;
        for (const auto v : row)
        {
            clause.push_back(pos(v));
        }
        s.add_clause(clause);
    }
    for (int h = 0; h < n; ++h)
    {
        for (std::size_t p1 = 0; p1 < x.size(); ++p1)
        {
            for (std::size_t p2 = p1 + 1; p2 < x.size(); ++p2)
            {
                s.add_clause(neg(x[p1][static_cast<std::size_t>(h)]),
                             neg(x[p2][static_cast<std::size_t>(h)]));
            }
        }
    }
    s.set_conflict_budget(10);
    EXPECT_EQ(s.solve(), Result::unknown);
}

/// Property: solver agrees with brute force on random 3-SAT and returns
/// genuine models.
TEST(SatSolver, AgreesWithBruteForceOnRandom3Sat)
{
    std::mt19937 rng{1234};
    for (int iter = 0; iter < 200; ++iter)
    {
        const int n = 5 + static_cast<int>(rng() % 7);
        const int m = 8 + static_cast<int>(rng() % 35);
        std::vector<std::vector<int>> clauses;
        for (int i = 0; i < m; ++i)
        {
            std::vector<int> c;
            for (int j = 0; j < 3; ++j)
            {
                const int v = 1 + static_cast<int>(rng() % n);
                c.push_back((rng() & 1U) != 0 ? v : -v);
            }
            clauses.push_back(c);
        }

        bool brute_sat = false;
        for (int mask = 0; mask < (1 << n) && !brute_sat; ++mask)
        {
            bool all = true;
            for (const auto& c : clauses)
            {
                bool sat = false;
                for (const int l : c)
                {
                    const bool val = ((mask >> (std::abs(l) - 1)) & 1) != 0;
                    if ((l > 0) == val)
                    {
                        sat = true;
                        break;
                    }
                }
                if (!sat)
                {
                    all = false;
                    break;
                }
            }
            brute_sat = all;
        }

        Solver s;
        for (int i = 0; i < n; ++i)
        {
            s.new_var();
        }
        bool trivially_unsat = false;
        for (const auto& c : clauses)
        {
            std::vector<Lit> lits;
            for (const int l : c)
            {
                lits.push_back(Lit{std::abs(l) - 1, l < 0});
            }
            if (!s.add_clause(lits))
            {
                trivially_unsat = true;
            }
        }
        const auto result = trivially_unsat ? Result::unsatisfiable : s.solve();
        ASSERT_EQ(result == Result::satisfiable, brute_sat) << "iteration " << iter;
        if (result == Result::satisfiable)
        {
            for (const auto& c : clauses)
            {
                bool sat = false;
                for (const int l : c)
                {
                    if (s.model_value(Lit{std::abs(l) - 1, l < 0}))
                    {
                        sat = true;
                        break;
                    }
                }
                ASSERT_TRUE(sat) << "model does not satisfy a clause";
            }
        }
    }
}

}  // namespace
