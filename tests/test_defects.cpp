#include "phys/defect.hpp"

#include "io/sqd_reader.hpp"
#include "io/sqd_writer.hpp"
#include "layout/apply_gate_library.hpp"
#include "layout/defect_map.hpp"
#include "layout/exact_physical_design.hpp"
#include "layout/scalable_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"
#include "phys/charge_state.hpp"
#include "phys/defect_sweep.hpp"
#include "phys/exhaustive.hpp"
#include "phys/operational.hpp"
#include "phys/quicksim.hpp"
#include "phys/simanneal.hpp"
#include "testing/oracles.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace
{

using namespace bestagon;
using namespace bestagon::phys;
using bestagon::logic::TruthTable;

/// The validated vertical BDL wire in tile-local coordinates (the same
/// fixture as test_operational.cpp).
GateDesign vertical_wire()
{
    GateDesign d;
    d.name = "wire";
    for (int k = 0; k < 6; ++k)
    {
        const int m = 1 + 4 * k;
        d.sites.push_back({15, m, 0});
        d.sites.push_back({15, m + 1, 0});
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.output_pairs.push_back({{15, 21, 0}, {15, 22, 0}});
    d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
    d.output_perturbers.push_back({15, 25, 1});
    d.functions.push_back(TruthTable::from_binary("10"));
    return d;
}

logic::LogicNetwork mapped_benchmark(const std::string& name)
{
    const auto* bm = logic::find_benchmark(name);
    logic::NpnDatabase db;
    return logic::map_to_bestagon(logic::rewrite(logic::to_xag(bm->build()), db));
}

core::RunBudget tripped_budget(core::StopSource& source)
{
    source.request_stop();
    return core::RunBudget{source.token(), {}};
}

// --- defect model ------------------------------------------------------------

TEST(DefectModel, AddRejectsInvalidDefects)
{
    DefectSurface surface;
    SurfaceDefect bad_radius;
    bad_radius.exclusion_radius_nm = -1.0;
    EXPECT_THROW(surface.add(bad_radius), std::invalid_argument);
    SurfaceDefect bad_charge;
    bad_charge.charge = std::nan("");
    EXPECT_THROW(surface.add(bad_charge), std::invalid_argument);
    EXPECT_TRUE(surface.empty());
}

TEST(DefectModel, BlockingQueries)
{
    DefectSurface surface;
    SurfaceDefect d;
    d.site = {10, 10, 0};
    d.kind = DefectKind::structural;
    d.charge = 0.0;
    d.exclusion_radius_nm = 0.8;
    surface.add(d);

    EXPECT_TRUE(surface.blocks({10, 10, 0}));      // coincident
    EXPECT_TRUE(surface.blocks({11, 10, 0}));      // 0.384 nm away
    EXPECT_FALSE(surface.blocks({10, 20, 0}));     // ~7.7 nm away
    ASSERT_NE(surface.blocking_defect({10, 10, 0}), nullptr);
    EXPECT_EQ(surface.blocking_defect({10, 20, 0}), nullptr);
    EXPECT_TRUE(surface.blocks_any({{10, 20, 0}, {11, 10, 0}}));
    EXPECT_FALSE(surface.has_charged());  // structural only

    // a zero-radius defect still blocks exactly its own site
    DefectSurface point;
    SurfaceDefect charged;
    charged.site = {0, 0, 0};
    point.add(charged);
    EXPECT_TRUE(point.blocks({0, 0, 0}));
    EXPECT_FALSE(point.blocks({1, 0, 0}));
    EXPECT_TRUE(point.has_charged());
}

TEST(DefectModel, ExternalPotentialMatchesManualSum)
{
    const SimulationParameters params;
    DefectSurface surface;
    SurfaceDefect d;
    d.site = {0, 0, 0};
    d.charge = -1.0;
    surface.add(d);

    const SiDBSite probe{10, 0, 0};
    const double r = probe.x() - d.site.x();
    EXPECT_DOUBLE_EQ(surface.external_potential(probe, params),
                     screened_coulomb(r, params));  // -q * V = +V for q = -1

    // no charged defect => empty row (the zero-cost defect-free contract)
    DefectSurface structural_only;
    SurfaceDefect s;
    s.kind = DefectKind::structural;
    s.charge = 0.0;
    structural_only.add(s);
    EXPECT_TRUE(structural_only.external_potentials({probe}, params).empty());
}

TEST(DefectSampling, DeterministicNestedAndValidated)
{
    const DefectRegion region{0, 40, 0, 40};
    DefectSampleParams params;
    params.density_per_nm2 = 0.05;

    const auto a = sample_defect_surface(region, params, 42);
    const auto b = sample_defect_surface(region, params, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
    {
        EXPECT_EQ(a.defects()[i].site.n, b.defects()[i].site.n);
        EXPECT_EQ(a.defects()[i].site.m, b.defects()[i].site.m);
    }
    EXPECT_NE(sample_defect_surface(region, params, 43).defects()[0].site.n,
              a.defects()[0].site.n);  // a different seed draws a different stream (with
                                       // overwhelming probability on a 41x41 region)

    // prefix nesting: the low-count surface is exactly the head of the stream
    const std::size_t lo = defect_count_for_density(region, 0.01, 42);
    const std::size_t hi = defect_count_for_density(region, 0.05, 42);
    ASSERT_LE(lo, hi);
    const auto small = sample_defect_surface(region, params, 42, lo);
    const auto large = sample_defect_surface(region, params, 42, hi);
    ASSERT_EQ(small.size(), lo);
    ASSERT_EQ(large.size(), hi);
    for (std::size_t i = 0; i < lo; ++i)
    {
        EXPECT_EQ(small.defects()[i].site.n, large.defects()[i].site.n);
        EXPECT_EQ(small.defects()[i].site.m, large.defects()[i].site.m);
    }

    DefectSampleParams bad = params;
    bad.density_per_nm2 = -0.1;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = params;
    bad.charged_fraction = 1.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// --- parameter validation ----------------------------------------------------

TEST(ParameterValidation, SimulationParametersRejectNonPhysicalValues)
{
    SimulationParameters p;
    p.epsilon_r = 0.0;
    EXPECT_THROW(validate_parameters(p), std::invalid_argument);
    p = SimulationParameters{};
    p.lambda_tf = -5.0;
    EXPECT_THROW(validate_parameters(p), std::invalid_argument);
    p = SimulationParameters{};
    EXPECT_NO_THROW(validate_parameters(p));
    // the operational layer validates before simulating
    p.epsilon_r = -1.0;
    EXPECT_THROW(static_cast<void>(check_operational(vertical_wire(), p)),
                 std::invalid_argument);
}

TEST(ParameterValidation, HeuristicEnginesRejectNonPositiveTemperatures)
{
    const SiDBSystem system{{{0, 0, 0}, {4, 0, 0}}, SimulationParameters{}};
    SimAnnealParameters anneal;
    anneal.initial_temperature = 0.0;
    EXPECT_THROW(static_cast<void>(simulated_annealing(system, anneal)), std::invalid_argument);
    QuickSimParameters qs;
    qs.hop_temperature = -0.1;
    EXPECT_THROW(static_cast<void>(quicksim_ground_state(system, qs)), std::invalid_argument);
}

// --- defect-aware simulation -------------------------------------------------

TEST(DefectAware, EmptySurfaceIsBitIdentical)
{
    const auto design = vertical_wire();
    const SimulationParameters params;
    const auto plain = check_operational(design, params);
    const auto with_empty = check_operational(design, params, DefectSurface{});
    ASSERT_EQ(plain.details.size(), with_empty.details.size());
    EXPECT_EQ(plain.operational, with_empty.operational);
    EXPECT_FALSE(with_empty.blocked);
    for (std::size_t p = 0; p < plain.details.size(); ++p)
    {
        EXPECT_EQ(plain.details[p].ground_state.grand_potential,
                  with_empty.details[p].ground_state.grand_potential);  // bit-identical
        EXPECT_EQ(plain.details[p].ground_state.config,
                  with_empty.details[p].ground_state.config);
    }
}

TEST(DefectAware, BlockedDesignShortCircuits)
{
    const auto design = vertical_wire();
    DefectSurface surface;
    SurfaceDefect d;
    d.site = design.sites.front();  // right on top of a permanent SiDB
    surface.add(d);
    const auto result = check_operational(design, SimulationParameters{}, surface);
    EXPECT_TRUE(result.blocked);
    EXPECT_FALSE(result.operational);
    EXPECT_FALSE(result.blocked_reason.empty());
    EXPECT_TRUE(result.details.empty());  // nothing was simulated
}

TEST(DefectAware, CacheMatchesDirectSystemWithChargedDefects)
{
    const auto design = vertical_wire();
    const SimulationParameters params;
    DefectSurface surface;
    SurfaceDefect d;
    d.site = {25, 11, 0};  // ~3.8 nm beside the wire: strong but not blocking
    surface.add(d);

    const GateInstanceCache cache{design, params, &surface};
    ASSERT_FALSE(cache.blocked());
    for (const std::uint64_t pattern : {0ULL, 1ULL})
    {
        const auto fast = cache.instantiate(pattern);
        const SiDBSystem direct{design.instance_sites(pattern), params, surface};
        ASSERT_EQ(fast.size(), direct.size());
        ASSERT_TRUE(fast.has_external_potentials());
        for (std::size_t i = 0; i < fast.size(); ++i)
        {
            EXPECT_EQ(fast.external_potential(i), direct.external_potential(i))
                << "pattern " << pattern << " site " << i;
            for (std::size_t j = 0; j < fast.size(); ++j)
            {
                EXPECT_EQ(fast.potential(i, j), direct.potential(i, j));
            }
        }
        const auto gs_fast = exhaustive_ground_state(fast);
        const auto gs_direct = exhaustive_ground_state(direct);
        EXPECT_EQ(gs_fast.grand_potential, gs_direct.grand_potential);
        EXPECT_EQ(gs_fast.config, gs_direct.config);
    }
}

// --- defect-avoiding placement & routing ------------------------------------

TEST(DefectMap, TileBlockingFollowsExclusionRadii)
{
    DefectSurface surface;
    SurfaceDefect d;
    d.site = layout::tile_origin({0, 0});  // upper-left corner of tile (0, 0)
    d.kind = DefectKind::structural;
    d.charge = 0.0;
    d.exclusion_radius_nm = 1.0;
    surface.add(d);

    EXPECT_TRUE(layout::tile_blocked({0, 0}, surface));
    EXPECT_FALSE(layout::tile_blocked({3, 5}, surface));
    const auto blocked = layout::blocked_tiles(4, 4, surface);
    ASSERT_EQ(blocked.size(), 1U);
    EXPECT_EQ(blocked.front(), (layout::HexCoord{0, 0}));
}

TEST(ExactPD, RoutesAroundBlockedTilesAndDiagnosesFullBlockage)
{
    const auto mapped = mapped_benchmark("xor2");

    layout::ExactPDOptions opt;
    SurfaceDefect corner;
    corner.site = layout::tile_origin({0, 0});
    corner.kind = DefectKind::structural;
    corner.charge = 0.0;
    corner.exclusion_radius_nm = 1.0;
    opt.defects.add(corner);
    const auto layout = layout::exact_physical_design(mapped, opt);
    ASSERT_TRUE(layout.has_value());
    for (const auto& tile : layout->all_tiles())
    {
        if (!layout->is_empty(tile))
        {
            EXPECT_FALSE(layout::tile_blocked(tile, opt.defects));
        }
    }

    // a surface-spanning defect blocks every tile: the instance is refuted
    // and the diagnosis names the defect constraint group
    layout::ExactPDOptions blocked_opt;
    blocked_opt.diagnose_infeasibility = true;
    SurfaceDefect everywhere = corner;
    everywhere.exclusion_radius_nm = 1e6;
    blocked_opt.defects.add(everywhere);
    layout::ExactPDStats stats;
    const auto none = layout::exact_physical_design(mapped, blocked_opt, &stats);
    EXPECT_FALSE(none.has_value());
    ASSERT_FALSE(stats.refuting_groups.empty());
    EXPECT_NE(std::find(stats.refuting_groups.begin(), stats.refuting_groups.end(), "defects"),
              stats.refuting_groups.end());
}

TEST(ScalablePD, TranslatesLayoutOffDefectiveTiles)
{
    const auto mapped = mapped_benchmark("xor2");
    const auto baseline = layout::scalable_physical_design(mapped);
    ASSERT_TRUE(baseline.has_value());

    // drop a defect onto the first occupied tile of the marched layout
    DefectSurface surface;
    for (const auto& tile : baseline->all_tiles())
    {
        if (!baseline->is_empty(tile))
        {
            SurfaceDefect d;
            d.site = layout::tile_origin(tile);
            d.kind = DefectKind::structural;
            d.charge = 0.0;
            d.exclusion_radius_nm = 0.5;
            surface.add(d);
            break;
        }
    }
    ASSERT_FALSE(surface.empty());

    layout::ScalablePDStats stats;
    const auto shifted = layout::scalable_physical_design(mapped, {}, &stats, &surface);
    ASSERT_TRUE(shifted.has_value()) << stats.message;
    EXPECT_TRUE(stats.defect_shift_x > 0 || stats.defect_shift_y > 0);
    EXPECT_EQ(stats.defect_shift_y % 4, 0U);  // clock zones preserved
    for (const auto& tile : shifted->all_tiles())
    {
        if (!shifted->is_empty(tile))
        {
            EXPECT_FALSE(layout::tile_blocked(tile, surface));
        }
    }
}

// --- .sqd round trip ---------------------------------------------------------

TEST(SqdRoundTrip, DefectLayerSurvivesWriteAndRead)
{
    const auto design = vertical_wire();
    DefectSurface surface;
    SurfaceDefect charged;
    charged.site = {30, 4, 1};
    charged.charge = 1.0;
    charged.exclusion_radius_nm = 0.25;
    surface.add(charged);
    SurfaceDefect structural;
    structural.site = {-5, 7, 0};
    structural.kind = DefectKind::structural;
    structural.charge = 0.0;
    structural.exclusion_radius_nm = 1.5;
    surface.add(structural);

    std::ostringstream out;
    io::write_sqd(out, design, surface);
    std::istringstream in{out.str()};
    const auto contents = io::read_sqd(in);
    EXPECT_TRUE(contents.ok()) << (contents.errors.empty() ? "" : contents.errors.front());
    EXPECT_EQ(contents.name, design.name);
    EXPECT_EQ(contents.sites, design.instance_sites(0));
    ASSERT_EQ(contents.defects.size(), surface.size());
    for (std::size_t i = 0; i < surface.size(); ++i)
    {
        const auto& written = surface.defects()[i];
        const auto& read = contents.defects.defects()[i];
        EXPECT_EQ(read.site, written.site);
        EXPECT_EQ(read.kind, written.kind);
        EXPECT_DOUBLE_EQ(read.charge, written.charge);
        EXPECT_DOUBLE_EQ(read.exclusion_radius_nm, written.exclusion_radius_nm);
    }
}

TEST(SqdRoundTrip, MalformedEntriesAreRecordedNotThrown)
{
    const std::string doc = R"(<siqad>
<name>damaged</name>
<design>
<dbdot><layer_id>1</layer_id></dbdot>
<dbdot><latcoord n="1" m="2" l="0"/></dbdot>
<defect><latcoord n="3" m="4" l="7"/></defect>
<defect><latcoord n="3" m="4" l="0"/><property kind="weird"/></defect>
<defect><latcoord n="5" m="6" l="1"/><property kind="structural" exclusion_radius_nm="-2"/></defect>
<defect><latcoord n="7" m="8" l="0"/><property charge="abc"/></defect>
<defect><latcoord n="9" m="1" l="0"/></defect>
</design>
</siqad>)";
    std::istringstream in{doc};
    const auto contents = io::read_sqd(in);
    EXPECT_FALSE(contents.ok());
    EXPECT_EQ(contents.errors.size(), 5U);  // bad dbdot + four bad defects
    ASSERT_EQ(contents.sites.size(), 1U);   // the well-formed dbdot survived
    EXPECT_EQ(contents.sites.front(), (SiDBSite{1, 2, 0}));
    ASSERT_EQ(contents.defects.size(), 1U);  // the well-formed defect survived
    EXPECT_EQ(contents.defects.defects().front().site, (SiDBSite{9, 1, 0}));

    std::istringstream garbage{"not xml at all"};
    const auto bad = io::read_sqd(garbage);
    EXPECT_FALSE(bad.ok());
    EXPECT_TRUE(bad.sites.empty());
}

// --- Monte-Carlo yield sweep -------------------------------------------------

TEST(DefectSweep, ParamValidation)
{
    DefectSweepParams sweep;
    sweep.densities_per_nm2 = {};
    EXPECT_THROW(sweep.validate(), std::invalid_argument);
    sweep = DefectSweepParams{};
    sweep.densities_per_nm2 = {0.01, 0.01};  // not strictly ascending
    EXPECT_THROW(sweep.validate(), std::invalid_argument);
    sweep = DefectSweepParams{};
    sweep.samples = 0;
    EXPECT_THROW(sweep.validate(), std::invalid_argument);
    sweep = DefectSweepParams{};
    sweep.margin_nm = -1.0;
    EXPECT_THROW(sweep.validate(), std::invalid_argument);
    EXPECT_NO_THROW(DefectSweepParams{}.validate());
}

TEST(DefectSweep, SurvivalCurveIsMonotoneAndDeterministic)
{
    const auto design = vertical_wire();
    DefectSweepParams sweep;
    sweep.densities_per_nm2 = {0.002, 0.01, 0.03};
    sweep.samples = 10;
    sweep.num_threads = 1;
    const auto a = defect_yield_sweep(design, SimulationParameters{}, sweep);
    const auto b = defect_yield_sweep(design, SimulationParameters{}, sweep);
    ASSERT_EQ(a.points.size(), 3U);
    EXPECT_FALSE(a.cancelled);
    for (std::size_t k = 0; k < a.points.size(); ++k)
    {
        EXPECT_EQ(a.points[k].samples_evaluated, 10U);
        EXPECT_EQ(a.points[k].operational, b.points[k].operational);  // rerun identical
        if (k > 0)
        {
            EXPECT_LE(a.points[k].operational, a.points[k - 1].operational);
        }
    }
    const auto json = to_json(a);
    EXPECT_NE(json.find("\"yield\""), std::string::npos);
    EXPECT_NE(json.find(design.name), std::string::npos);
}

TEST(DefectSweep, TrippedBudgetCancelsWithoutEvaluating)
{
    const auto design = vertical_wire();
    DefectSweepParams sweep;
    sweep.densities_per_nm2 = {0.01};
    sweep.samples = 4;
    sweep.num_threads = 1;
    core::StopSource source;
    const auto result =
        defect_yield_sweep(design, SimulationParameters{}, sweep, tripped_budget(source));
    EXPECT_TRUE(result.cancelled);
    ASSERT_EQ(result.points.size(), 1U);
    EXPECT_EQ(result.points.front().samples_evaluated, 0U);
}

// --- testkit oracle ----------------------------------------------------------

TEST(TestkitOracles, DefectDifferentialHappyPath)
{
    const auto verdict =
        testkit::defect_differential(vertical_wire(), SimulationParameters{}, 0xbe57a60eULL);
    EXPECT_TRUE(verdict) << verdict.detail;
}

TEST(TestkitOracles, DefectDifferentialCatchesIgnoredPotentials)
{
    const auto verdict =
        testkit::defect_differential(vertical_wire(), SimulationParameters{}, 0xbe57a60eULL, 1e-12,
                                     testkit::DefectFault::ignore_defect_potentials);
    EXPECT_FALSE(verdict);
    EXPECT_FALSE(verdict.detail.empty());
}

}  // namespace
