#include "io/verilog.hpp"

#include "logic/benchmarks.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using logic::LogicNetwork;

TEST(Verilog, ParsesAssignStyle)
{
    const auto net = io::read_verilog_string(R"(
        module mux(a, b, s, f);
          input a, b, s;
          output f;
          assign f = (a & ~s) | (b & s);
        endmodule
    )");
    EXPECT_EQ(net.num_pis(), 3U);
    EXPECT_EQ(net.num_pos(), 1U);
    const auto f = net.simulate()[0];
    for (unsigned t = 0; t < 8; ++t)
    {
        const bool a = t & 1, b = t & 2, s = t & 4;
        EXPECT_EQ(f.get_bit(t), s ? b : a);
    }
}

TEST(Verilog, ParsesPrimitiveGates)
{
    const auto net = io::read_verilog_string(R"(
        module c17_fragment(i1, i2, i3, o);
          input i1, i2, i3;
          output o;
          wire w1, w2;
          nand g1 (w1, i1, i3);
          nand g2 (w2, i3, i2);
          nand g3 (o, w1, w2);
        endmodule
    )");
    const auto f = net.simulate()[0];
    for (unsigned t = 0; t < 8; ++t)
    {
        const bool i1 = t & 1, i2 = t & 2, i3 = t & 4;
        EXPECT_EQ(f.get_bit(t), !(!(i1 && i3) && !(i3 && i2)));
    }
}

TEST(Verilog, ParsesXorChainWithComments)
{
    const auto net = io::read_verilog_string(R"(
        // parity of three bits
        module par(a, b, c, p);
          input a, b, c; /* three inputs */
          output p;
          assign p = a ^ b ^ c;
        endmodule
    )");
    const auto f = net.simulate()[0];
    EXPECT_EQ(f.to_binary(), "10010110");
}

TEST(Verilog, ParsesConstants)
{
    const auto net = io::read_verilog_string(R"(
        module constant_and(a, f);
          input a;
          output f;
          assign f = a & 1'b1;
        endmodule
    )");
    EXPECT_EQ(net.simulate()[0].to_binary(), "10");
}

TEST(Verilog, UndefinedSignalThrows)
{
    EXPECT_THROW(static_cast<void>(io::read_verilog_string(R"(
        module bad(a, f);
          input a;
          output f;
          assign f = a & ghost;
        endmodule
    )")),
                 std::runtime_error);
}

TEST(Verilog, DoubleDefinitionThrows)
{
    EXPECT_THROW(static_cast<void>(io::read_verilog_string(R"(
        module bad(a, f);
          input a;
          output f;
          assign f = a;
          assign f = ~a;
        endmodule
    )")),
                 std::runtime_error);
}

/// Property: writer -> reader round trip preserves function for the entire
/// benchmark suite.
class VerilogRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(VerilogRoundTrip, PreservesFunction)
{
    const auto* bm = logic::find_benchmark(GetParam());
    ASSERT_NE(bm, nullptr);
    const auto net = bm->build();
    const auto text = io::to_verilog_string(net, GetParam());
    const auto back = io::read_verilog_string(text);
    EXPECT_TRUE(logic::functionally_equivalent(net, back)) << text;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, VerilogRoundTrip,
                         ::testing::Values("xor2", "xnor2", "par_gen", "mux21", "par_check",
                                           "xor5_r1", "xor5_majority", "t", "t_5", "c17", "majority",
                                           "majority_5_r1", "cm82a_5", "newtag"));

}  // namespace
