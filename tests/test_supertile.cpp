#include "layout/supertile.hpp"

#include "layout/exact_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using namespace bestagon::layout;

TEST(SuperTile, MinimumExpansionSatisfiesPitch)
{
    const ElectrodeTechnology tech{};
    const auto k = minimum_expansion_factor(tech);
    EXPECT_GE(k * tech.tile_height_nm, tech.min_metal_pitch_nm);
    // one tile row (18.4 nm) is below the 40 nm pitch: expansion is required
    EXPECT_GT(k, 1U);
    EXPECT_EQ(k, 3U);  // ceil(40 / 18.432)
}

TEST(SuperTile, ZoneBandsFollowExpansionFactor)
{
    GateLevelLayout layout{2, 12};
    const auto st = make_supertiles(layout, 3);
    EXPECT_EQ(st.zone({0, 0}), 0U);
    EXPECT_EQ(st.zone({0, 2}), 0U);
    EXPECT_EQ(st.zone({0, 3}), 1U);
    EXPECT_EQ(st.zone({0, 11}), 3U);
    EXPECT_EQ(st.num_bands(), 4U);
}

TEST(SuperTile, DefaultExpansionIsMinimumFeasible)
{
    GateLevelLayout layout{2, 6};
    const auto st = make_supertiles(layout);
    EXPECT_EQ(st.expansion_factor, minimum_expansion_factor());
    EXPECT_TRUE(st.satisfies_pitch(ElectrodeTechnology{}));
}

TEST(SuperTile, SingleRowExpansionViolatesPitch)
{
    GateLevelLayout layout{2, 6};
    const auto st = make_supertiles(layout, 1);
    EXPECT_FALSE(st.satisfies_pitch(ElectrodeTechnology{}));
}

TEST(SuperTile, ExpandedClockingStaysFeedForwardOnRealLayout)
{
    logic::NpnDatabase db;
    const auto mapped =
        logic::map_to_bestagon(logic::to_xag(logic::find_benchmark("par_check")->build()));
    const auto layout = exact_physical_design(mapped);
    ASSERT_TRUE(layout.has_value());
    const auto st = make_supertiles(*layout, 3);
    EXPECT_TRUE(st.clocking_valid());
}

TEST(SuperTile, ElectrodePitchComputation)
{
    GateLevelLayout layout{1, 9};
    const auto st = make_supertiles(layout, 3);
    EXPECT_NEAR(st.electrode_pitch_nm(ElectrodeTechnology{}), 3 * 18.432, 1e-9);
}

}  // namespace
