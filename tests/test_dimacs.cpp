#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace
{

using namespace bestagon::sat;

TEST(Dimacs, ParsesSimpleFormula)
{
    const auto cnf = read_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
    EXPECT_EQ(cnf.num_vars, 3);
    ASSERT_EQ(cnf.clauses.size(), 2U);
    EXPECT_EQ(cnf.clauses[0], (std::vector<int>{1, -2}));
    EXPECT_EQ(cnf.clauses[1], (std::vector<int>{2, 3}));
}

TEST(Dimacs, RoundTrip)
{
    Cnf cnf;
    cnf.num_vars = 4;
    cnf.clauses = {{1, -2, 3}, {-1, 4}, {2}};
    std::ostringstream out;
    write_dimacs(out, cnf);
    const auto back = read_dimacs(out.str());
    EXPECT_EQ(back.num_vars, cnf.num_vars);
    EXPECT_EQ(back.clauses, cnf.clauses);
}

TEST(Dimacs, MalformedHeaderThrows)
{
    EXPECT_THROW(static_cast<void>(read_dimacs("p dnf 2 1\n1 0\n")), std::runtime_error);
}

/// Asserts that parsing \p text throws and the message contains \p expect.
void expect_parse_error(const std::string& text, const std::string& expect)
{
    try
    {
        static_cast<void>(read_dimacs(text));
        FAIL() << "expected a parse error containing '" << expect << "'";
    }
    catch (const std::runtime_error& e)
    {
        EXPECT_NE(std::string{e.what()}.find(expect), std::string::npos) << e.what();
    }
}

TEST(Dimacs, RejectsDuplicateProblemLine)
{
    expect_parse_error("p cnf 2 1\np cnf 2 1\n1 0\n", "duplicate problem line");
}

TEST(Dimacs, RejectsProblemLineAfterClauses)
{
    expect_parse_error("1 0\np cnf 2 1\n", "problem line after clause data");
}

TEST(Dimacs, RejectsTrailingGarbageInProblemLine)
{
    expect_parse_error("p cnf 2 1 extra\n1 0\n", "trailing garbage");
}

TEST(Dimacs, RejectsNegativeCounts)
{
    expect_parse_error("p cnf -2 1\n1 0\n", "negative count");
}

TEST(Dimacs, RejectsNonIntegerLiteral)
{
    expect_parse_error("p cnf 2 1\n1 x 0\n", "not an integer");
}

TEST(Dimacs, RejectsPartiallyNumericLiteral)
{
    expect_parse_error("p cnf 2 1\n1 2y 0\n", "trailing garbage");
}

TEST(Dimacs, RejectsOverflowingLiteral)
{
    expect_parse_error("p cnf 2 1\n99999999999999999999 0\n", "not an integer");
    expect_parse_error("p cnf 2 1\n2000000000 0\n", "out of range");
}

TEST(Dimacs, RejectsLiteralExceedingDeclaredVariables)
{
    expect_parse_error("p cnf 2 1\n1 3 0\n", "exceeds declared");
}

TEST(Dimacs, RejectsUnterminatedFinalClause)
{
    expect_parse_error("p cnf 2 2\n1 2 0\n-1 2\n", "unterminated final clause");
}

TEST(Dimacs, RejectsMoreClausesThanDeclared)
{
    expect_parse_error("p cnf 2 1\n1 0\n2 0\n", "exceed the declared");
}

TEST(Dimacs, RejectsEmptyInput)
{
    expect_parse_error("c only a comment\n", "no problem line");
}

TEST(Dimacs, HeaderlessClausesGrowTheVariableCount)
{
    // headerless DRAT-style input stays accepted: variables grow on demand
    const auto cnf = read_dimacs("1 -3 0\n2 0\n");
    EXPECT_EQ(cnf.num_vars, 3);
    ASSERT_EQ(cnf.clauses.size(), 2U);
}

TEST(Dimacs, FewerClausesThanDeclaredIsAccepted)
{
    // under-declaring is harmless (some generators truncate); only excess
    // clauses indicate a corrupted header
    const auto cnf = read_dimacs("p cnf 2 5\n1 2 0\n");
    EXPECT_EQ(cnf.clauses.size(), 1U);
}

TEST(Dimacs, ToCnfConvertsSolverLiterals)
{
    const std::vector<std::vector<Lit>> clauses{{Lit{0, false}, Lit{2, true}}, {Lit{1, true}}};
    const auto cnf = to_cnf(clauses);
    EXPECT_EQ(cnf.num_vars, 3);
    ASSERT_EQ(cnf.clauses.size(), 2U);
    EXPECT_EQ(cnf.clauses[0], (std::vector<int>{1, -3}));
    EXPECT_EQ(cnf.clauses[1], (std::vector<int>{-2}));
}

TEST(Dimacs, LoadIntoSolverAndSolve)
{
    const auto cnf = read_dimacs("p cnf 2 2\n1 2 0\n-1 0\n");
    Solver s;
    ASSERT_TRUE(load_into_solver(s, cnf));
    ASSERT_EQ(s.solve(), Result::satisfiable);
    EXPECT_FALSE(s.model_value(Var{0}));
    EXPECT_TRUE(s.model_value(Var{1}));
}

TEST(Dimacs, LoadUnsatisfiable)
{
    const auto cnf = read_dimacs("p cnf 1 2\n1 0\n-1 0\n");
    Solver s;
    EXPECT_FALSE(load_into_solver(s, cnf));
}

}  // namespace
