#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace
{

using namespace bestagon::sat;

TEST(Dimacs, ParsesSimpleFormula)
{
    const auto cnf = read_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
    EXPECT_EQ(cnf.num_vars, 3);
    ASSERT_EQ(cnf.clauses.size(), 2U);
    EXPECT_EQ(cnf.clauses[0], (std::vector<int>{1, -2}));
    EXPECT_EQ(cnf.clauses[1], (std::vector<int>{2, 3}));
}

TEST(Dimacs, RoundTrip)
{
    Cnf cnf;
    cnf.num_vars = 4;
    cnf.clauses = {{1, -2, 3}, {-1, 4}, {2}};
    std::ostringstream out;
    write_dimacs(out, cnf);
    const auto back = read_dimacs(out.str());
    EXPECT_EQ(back.num_vars, cnf.num_vars);
    EXPECT_EQ(back.clauses, cnf.clauses);
}

TEST(Dimacs, MalformedHeaderThrows)
{
    EXPECT_THROW(static_cast<void>(read_dimacs("p dnf 2 1\n1 0\n")), std::runtime_error);
}

TEST(Dimacs, LoadIntoSolverAndSolve)
{
    const auto cnf = read_dimacs("p cnf 2 2\n1 2 0\n-1 0\n");
    Solver s;
    ASSERT_TRUE(load_into_solver(s, cnf));
    ASSERT_EQ(s.solve(), Result::satisfiable);
    EXPECT_FALSE(s.model_value(Var{0}));
    EXPECT_TRUE(s.model_value(Var{1}));
}

TEST(Dimacs, LoadUnsatisfiable)
{
    const auto cnf = read_dimacs("p cnf 1 2\n1 0\n-1 0\n");
    Solver s;
    EXPECT_FALSE(load_into_solver(s, cnf));
}

}  // namespace
