#include "phys/operational_domain.hpp"

#include "layout/bestagon_library.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using namespace bestagon::phys;

const GateDesign& wire_design()
{
    static const GateDesign design = [] {
        const auto* wire = layout::BestagonLibrary::instance().lookup(
            logic::GateType::buf, layout::Port::nw, std::nullopt, layout::Port::sw, std::nullopt);
        return wire->design;
    }();
    return design;
}

TEST(OperationalDomain, GridHasRequestedShape)
{
    DomainSweep sweep;
    sweep.x_steps = 3;
    sweep.y_steps = 4;
    SimulationParameters base;
    const auto domain = compute_operational_domain(wire_design(), base, sweep);
    EXPECT_EQ(domain.points.size(), 12U);
    // row-major with y outer: the first row shares its y value
    EXPECT_DOUBLE_EQ(domain.points[0].y, domain.points[2].y);
    EXPECT_NE(domain.points[0].x, domain.points[1].x);
}

TEST(OperationalDomain, CalibratedPointIsOperational)
{
    DomainSweep sweep;
    sweep.axes = DomainAxes::epsilon_r_vs_lambda_tf;
    sweep.x_min = sweep.x_max = 5.6;
    sweep.x_steps = 1;
    sweep.y_min = sweep.y_max = 5.0;
    sweep.y_steps = 1;
    SimulationParameters base;
    base.mu_minus = -0.32;
    const auto domain = compute_operational_domain(wire_design(), base, sweep);
    ASSERT_EQ(domain.points.size(), 1U);
    EXPECT_TRUE(domain.points[0].operational);
    EXPECT_DOUBLE_EQ(domain.coverage(), 1.0);
}

TEST(OperationalDomain, ExtremeScreeningBreaksTheWire)
{
    // at eps_r = 20 the couplings are far too weak for BDL operation
    DomainSweep sweep;
    sweep.x_min = sweep.x_max = 20.0;
    sweep.x_steps = 1;
    sweep.y_min = sweep.y_max = 5.0;
    sweep.y_steps = 1;
    SimulationParameters base;
    base.mu_minus = -0.32;
    const auto domain = compute_operational_domain(wire_design(), base, sweep);
    EXPECT_FALSE(domain.points[0].operational);
}

TEST(OperationalDomain, MuAxisSweep)
{
    DomainSweep sweep;
    sweep.axes = DomainAxes::mu_vs_epsilon_r;
    sweep.x_min = -0.34;
    sweep.x_max = -0.26;
    sweep.x_steps = 3;
    sweep.y_min = sweep.y_max = 5.6;
    sweep.y_steps = 1;
    SimulationParameters base;
    const auto domain = compute_operational_domain(wire_design(), base, sweep);
    ASSERT_EQ(domain.points.size(), 3U);
    // the wire tile is operational across the paper's mu range
    for (const auto& p : domain.points)
    {
        EXPECT_TRUE(p.operational) << "mu = " << p.x;
    }
}

TEST(OperationalDomain, CoverageOfEmptyDomainIsZero)
{
    OperationalDomain domain;
    EXPECT_DOUBLE_EQ(domain.coverage(), 0.0);
}

}  // namespace
