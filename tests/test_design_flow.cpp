#include "core/design_flow.hpp"

#include "logic/benchmarks.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using core::FlowOptions;
using core::PhysicalDesignEngine;

TEST(DesignFlow, Xor2EndToEnd)
{
    const auto result = core::run_design_flow(logic::find_benchmark("xor2")->build());
    ASSERT_TRUE(result.success());
    EXPECT_EQ(result.layout->width(), 2U);
    EXPECT_EQ(result.layout->height(), 3U);
    EXPECT_EQ(result.equivalence, layout::EquivalenceResult::equivalent);
    EXPECT_TRUE(result.drc.clean());
    EXPECT_TRUE(result.sidb.has_value());
    EXPECT_TRUE(result.sidb->all_sites_unique());
    EXPECT_TRUE(result.supertiles->satisfies_pitch(layout::ElectrodeTechnology{}));
}

TEST(DesignFlow, ValidateGatesStepChecksEveryDistinctTileInUse)
{
    FlowOptions opt;
    opt.validate_gates = true;
    opt.sim_params.num_threads = 4;
    const auto result = core::run_design_flow(logic::find_benchmark("xor2")->build(), opt);
    ASSERT_TRUE(result.success());
    ASSERT_FALSE(result.apply_stats.implementations_used.empty());
    ASSERT_EQ(result.gate_validation.size(), result.apply_stats.implementations_used.size());
    for (std::size_t i = 0; i < result.gate_validation.size(); ++i)
    {
        const auto& v = result.gate_validation[i];
        EXPECT_EQ(v.name, result.apply_stats.implementations_used[i]->design.name);
        EXPECT_GT(v.patterns_total, 0U);
        // a pre-validated library tile must re-validate at the calibration point
        if (result.apply_stats.implementations_used[i]->simulation_validated)
        {
            EXPECT_TRUE(v.operational) << v.name;
        }
    }

    // off by default
    const auto plain = core::run_design_flow(logic::find_benchmark("xor2")->build());
    EXPECT_TRUE(plain.gate_validation.empty());
}

TEST(DesignFlow, VerilogEntryPoint)
{
    const auto result = core::run_design_flow_verilog(R"(
        module half(a, b, s);
          input a, b;
          output s;
          assign s = a ^ b;
        endmodule
    )");
    ASSERT_TRUE(result.success());
    EXPECT_EQ(result.mapped.num_pis(), 2U);
}

TEST(DesignFlow, RewritingCanBeDisabled)
{
    FlowOptions opt;
    opt.rewrite = false;
    const auto net = logic::find_benchmark("mux21")->build();
    const auto without = core::run_design_flow(net, opt);
    opt.rewrite = true;
    const auto with = core::run_design_flow(net, opt);
    ASSERT_TRUE(without.success());
    ASSERT_TRUE(with.success());
    // rewriting never hurts and shrinks the redundant mux structure
    EXPECT_LE(with.rewritten.num_gates(), without.rewritten.num_gates());
    EXPECT_LE(with.layout->area(), without.layout->area());
}

TEST(DesignFlow, ScalableEngineWorksOnSimpleBenchmarks)
{
    FlowOptions opt;
    opt.engine = PhysicalDesignEngine::scalable;
    const auto result = core::run_design_flow(logic::find_benchmark("par_check")->build(), opt);
    ASSERT_TRUE(result.success());
    EXPECT_EQ(result.engine_used, "scalable");
}

TEST(DesignFlow, FallbackReportsEngine)
{
    FlowOptions opt;
    opt.engine = PhysicalDesignEngine::exact_with_fallback;
    opt.exact_options.max_width = 1;   // force exact failure
    opt.exact_options.max_height = 2;
    const auto result = core::run_design_flow(logic::find_benchmark("par_gen")->build(), opt);
    ASSERT_TRUE(result.layout.has_value());
    EXPECT_EQ(result.engine_used, "scalable");
    EXPECT_TRUE(result.success());
}

class FlowBenchmark : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FlowBenchmark, FullFlowSucceeds)
{
    const auto* bm = logic::find_benchmark(GetParam());
    FlowOptions opt;
    opt.exact_options.time_budget_ms = 60000;
    const auto result = core::run_design_flow(bm->build(), opt);
    ASSERT_TRUE(result.success()) << GetParam();
    EXPECT_TRUE(result.drc.clean()) << GetParam();
    // functional correctness against the *original* specification
    const auto extracted = result.layout->extract_network(result.mapped);
    EXPECT_TRUE(logic::functionally_equivalent(bm->build(), extracted)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Table1, FlowBenchmark,
                         ::testing::Values("xor2", "xnor2", "par_gen", "mux21", "par_check",
                                           "xor5_r1", "xor5_majority", "t", "majority", "c17"));

}  // namespace
