/// \file test_testkit.cpp
/// \brief Unit tests for the property-testing subsystem itself: generator
///        determinism and validity, seed/reproducer conventions, and the
///        happy path of every differential oracle.

#include "testing/golden.hpp"
#include "testing/oracles.hpp"
#include "testing/random.hpp"
#include "testing/reproducer.hpp"

#include "core/thread_pool.hpp"
#include "logic/benchmarks.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>

namespace
{

using namespace bestagon;

TEST(TestkitRng, SameSeedSameStream)
{
    testkit::Rng a{42};
    testkit::Rng b{42};
    for (int i = 0; i < 100; ++i)
    {
        EXPECT_EQ(a.next(), b.next());
    }
    testkit::Rng c{43};
    bool any_difference = false;
    testkit::Rng a2{42};
    for (int i = 0; i < 100; ++i)
    {
        any_difference |= a2.next() != c.next();
    }
    EXPECT_TRUE(any_difference);
}

TEST(TestkitRng, BoundsAreRespected)
{
    testkit::Rng rng{7};
    for (int i = 0; i < 1000; ++i)
    {
        const auto v = rng.range(3, 9);
        EXPECT_GE(v, 3U);
        EXPECT_LE(v, 9U);
        const auto r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(TestkitSeeds, CaseSeedMatchesDeriveSeed)
{
    EXPECT_EQ(testkit::case_seed(0x5eed, 17), core::derive_seed(0x5eed, 17));
    EXPECT_NE(testkit::case_seed(0x5eed, 0), testkit::case_seed(0x5eed, 1));
}

TEST(TestkitSeeds, ReproducerIsOneActionableLine)
{
    const auto line = testkit::reproducer("sat", 0x5eed, 17);
    EXPECT_NE(line.find("[bestagon-repro]"), std::string::npos);
    EXPECT_NE(line.find("oracle=sat"), std::string::npos);
    EXPECT_NE(line.find("BESTAGON_FUZZ_SEED=0x5eed"), std::string::npos);
    EXPECT_NE(line.find("case=17"), std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(TestkitSeeds, BudgetHonorsEnvironmentOverrides)
{
    ::unsetenv("BESTAGON_FUZZ_SEED");  // isolate from an ambient fuzz-job environment
    ::unsetenv("BESTAGON_FUZZ_SCALE");
    const auto defaults = testkit::fuzz_budget(0xabc, 10);
    EXPECT_EQ(defaults.base_seed, 0xabcU);
    EXPECT_EQ(defaults.iterations, 10U);

    ::setenv("BESTAGON_FUZZ_SEED", "0x123", 1);
    ::setenv("BESTAGON_FUZZ_SCALE", "3", 1);
    const auto overridden = testkit::fuzz_budget(0xabc, 10);
    ::unsetenv("BESTAGON_FUZZ_SEED");
    ::unsetenv("BESTAGON_FUZZ_SCALE");
    EXPECT_EQ(overridden.base_seed, 0x123U);
    EXPECT_EQ(overridden.iterations, 30U);

    ::setenv("BESTAGON_FUZZ_SEED", "not-a-number", 1);
    const auto malformed = testkit::fuzz_budget(0xabc, 10);
    ::unsetenv("BESTAGON_FUZZ_SEED");
    EXPECT_EQ(malformed.base_seed, 0xabcU);
}

TEST(TestkitGenerators, CnfRespectsOptionsAndIsDeterministic)
{
    testkit::CnfOptions options;
    options.min_vars = 4;
    options.max_vars = 9;
    options.max_clause_len = 3;
    for (std::uint64_t seed = 0; seed < 20; ++seed)
    {
        testkit::Rng rng{seed};
        const auto cnf = testkit::random_cnf(rng, options);
        EXPECT_GE(cnf.num_vars, 4);
        EXPECT_LE(cnf.num_vars, 9);
        EXPECT_FALSE(cnf.clauses.empty());
        for (const auto& clause : cnf.clauses)
        {
            EXPECT_GE(clause.size(), 1U);
            EXPECT_LE(clause.size(), 3U);
            std::set<int> vars;
            for (const int lit : clause)
            {
                EXPECT_NE(lit, 0);
                EXPECT_LE(std::abs(lit), cnf.num_vars);
                EXPECT_TRUE(vars.insert(std::abs(lit)).second) << "duplicate variable in clause";
            }
        }
        testkit::Rng replay{seed};
        const auto again = testkit::random_cnf(replay, options);
        EXPECT_EQ(cnf.clauses, again.clauses);
    }
}

TEST(TestkitGenerators, NetworksSimulateAndStayInBounds)
{
    testkit::XagOptions options;
    options.max_pis = 4;
    options.max_gates = 10;
    for (std::uint64_t seed = 0; seed < 20; ++seed)
    {
        testkit::Rng rng{seed};
        const auto net = testkit::random_network(rng, options);
        EXPECT_GE(net.num_pis(), options.min_pis);
        EXPECT_LE(net.num_pis(), options.max_pis);
        EXPECT_GE(net.num_pos(), 1U);
        EXPECT_LE(net.num_pos(), options.max_pos);
        EXPECT_TRUE(net.is_xag());
        const auto tts = net.simulate();  // must not throw: network is well-formed
        EXPECT_EQ(tts.size(), net.num_pos());
    }
}

TEST(TestkitGenerators, MappedNetworksAreBestagonCompliant)
{
    for (std::uint64_t seed = 100; seed < 110; ++seed)
    {
        testkit::Rng rng{seed};
        const auto mapped = testkit::random_mapped_network(rng);
        std::string why;
        EXPECT_TRUE(mapped.is_bestagon_compliant(&why)) << why;
    }
}

TEST(TestkitGenerators, GateLayoutsPlaceEveryNetwork)
{
    testkit::Rng rng{2026};
    const auto layout = testkit::random_gate_layout(rng);
    ASSERT_TRUE(layout.has_value());
    EXPECT_GT(layout->num_occupied_tiles(), 0U);
}

TEST(TestkitGenerators, CanvasesAreUniqueAndBounded)
{
    testkit::CanvasOptions options;
    options.min_dots = 3;
    options.max_dots = 9;
    for (std::uint64_t seed = 0; seed < 20; ++seed)
    {
        testkit::Rng rng{seed};
        const auto canvas = testkit::random_sidb_canvas(rng, options);
        EXPECT_GE(canvas.size(), 3U);
        EXPECT_LE(canvas.size(), 9U);
        const std::set<phys::SiDBSite> unique(canvas.begin(), canvas.end());
        EXPECT_EQ(unique.size(), canvas.size());
        for (const auto& site : canvas)
        {
            EXPECT_GE(site.n, 0);
            EXPECT_LE(site.n, options.max_column);
            EXPECT_GE(site.m, 0);
            EXPECT_LE(site.m, options.max_dimer_row);
            EXPECT_TRUE(site.l == 0 || site.l == 1);
        }
    }
}

TEST(TestkitOracles, SatHappyPathOnFixedFormulas)
{
    sat::Cnf satisfiable;
    satisfiable.num_vars = 3;
    satisfiable.clauses = {{1, 2}, {-1, 3}, {-2, -3}};
    EXPECT_TRUE(testkit::sat_differential(satisfiable).ok);

    sat::Cnf unsatisfiable;
    unsatisfiable.num_vars = 2;
    unsatisfiable.clauses = {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}};
    EXPECT_TRUE(testkit::sat_differential(unsatisfiable).ok);
}

TEST(TestkitOracles, GroundStateHappyPathOnFixedCanvas)
{
    const std::vector<phys::SiDBSite> canvas{{0, 0, 0}, {4, 1, 0}, {8, 2, 1}, {2, 3, 0}};
    phys::SimAnnealParameters anneal;
    anneal.seed = 0x7e57;
    const auto verdict =
        testkit::ground_state_differential(canvas, phys::SimulationParameters{}, anneal);
    EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(TestkitOracles, FrontendHappyPathOnBenchmark)
{
    const auto verdict =
        testkit::frontend_differential(logic::find_benchmark("par_check")->build(), 0x7e57);
    EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(TestkitOracles, InvertedPoCopyFlipsExactlyThatOutput)
{
    const auto net = logic::find_benchmark("c17")->build();
    const auto inverted = testkit::with_inverted_po(net, 1);
    ASSERT_EQ(inverted.num_pos(), net.num_pos());
    const auto original_tts = net.simulate();
    const auto inverted_tts = inverted.simulate();
    EXPECT_EQ(inverted_tts[0], original_tts[0]);
    EXPECT_EQ(inverted_tts[1], ~original_tts[1]);
}

TEST(TestkitGolden, UpdateModeWritesAndComparisonModeReads)
{
    const std::string path = ::testing::TempDir() + "/bestagon_testkit_golden.txt";
    std::remove(path.c_str());
    const bool was_update = testkit::update_goldens_flag();

    testkit::update_goldens_flag() = true;
    EXPECT_TRUE(testkit::compare_golden("hello \r\nworld\n\n", path).ok);

    testkit::update_goldens_flag() = false;
    EXPECT_TRUE(testkit::compare_golden("hello\nworld\n", path).ok);
    const auto mismatch = testkit::compare_golden("hello\nmoon\n", path);
    EXPECT_FALSE(mismatch.ok);
    EXPECT_NE(mismatch.detail.find("line 2"), std::string::npos) << mismatch.detail;
    const auto missing = testkit::compare_golden("x\n", path + ".does-not-exist");
    EXPECT_FALSE(missing.ok);
    EXPECT_NE(missing.detail.find("missing golden"), std::string::npos);

    testkit::update_goldens_flag() = was_update;
    std::remove(path.c_str());
}

}  // namespace
