#include "layout/coordinates.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::layout;

TEST(Coordinates, CubeRoundTrip)
{
    for (int x = -5; x <= 5; ++x)
    {
        for (int y = -5; y <= 5; ++y)
        {
            const HexCoord c{x, y};
            EXPECT_EQ(to_offset(to_cube(c)), c);
        }
    }
}

TEST(Coordinates, CubeInvariantHolds)
{
    for (int x = -4; x <= 4; ++x)
    {
        for (int y = -4; y <= 4; ++y)
        {
            const auto cube = to_cube(HexCoord{x, y});
            EXPECT_EQ(cube.q + cube.r + cube.s, 0);
        }
    }
}

TEST(Coordinates, NeighborsAreAtDistanceOne)
{
    for (int x = -3; x <= 3; ++x)
    {
        for (int y = -3; y <= 3; ++y)
        {
            const HexCoord c{x, y};
            for (const auto p : {Port::nw, Port::ne, Port::sw, Port::se})
            {
                EXPECT_EQ(hex_distance(c, neighbor(c, p)), 1);
            }
        }
    }
}

TEST(Coordinates, UpDownAreInverse)
{
    // going down through SE and back up through NW returns to the origin
    for (int x = -3; x <= 3; ++x)
    {
        for (int y = -3; y <= 3; ++y)
        {
            const HexCoord c{x, y};
            EXPECT_EQ(neighbor(neighbor(c, Port::se), Port::nw), c);
            EXPECT_EQ(neighbor(neighbor(c, Port::sw), Port::ne), c);
        }
    }
}

TEST(Coordinates, OddRowShiftsRight)
{
    // odd-r layout: the SE neighbor of an even-row tile keeps its x
    EXPECT_EQ(neighbor(HexCoord{2, 0}, Port::se), (HexCoord{2, 1}));
    EXPECT_EQ(neighbor(HexCoord{2, 0}, Port::sw), (HexCoord{1, 1}));
    // and from an odd row it increments
    EXPECT_EQ(neighbor(HexCoord{2, 1}, Port::se), (HexCoord{3, 2}));
    EXPECT_EQ(neighbor(HexCoord{2, 1}, Port::sw), (HexCoord{2, 2}));
}

TEST(Coordinates, EntryAndExitPortsMatch)
{
    const HexCoord c{1, 1};
    for (const auto p : {Port::sw, Port::se})
    {
        const auto nb = neighbor(c, p);
        const auto exit = exit_port(c, nb);
        ASSERT_TRUE(exit.has_value());
        EXPECT_EQ(*exit, p);
        const auto entry = entry_port(c, nb);
        ASSERT_TRUE(entry.has_value());
        // leaving through SE means entering through NW, and vice versa
        EXPECT_EQ(*entry, p == Port::se ? Port::nw : Port::ne);
    }
}

TEST(Coordinates, NonAdjacentTilesHaveNoPorts)
{
    EXPECT_FALSE(exit_port(HexCoord{0, 0}, HexCoord{3, 3}).has_value());
    EXPECT_FALSE(entry_port(HexCoord{0, 0}, HexCoord{0, 2}).has_value());
}

TEST(Coordinates, DownNeighborsAreDistinct)
{
    for (int x = -3; x <= 3; ++x)
    {
        for (int y = -3; y <= 3; ++y)
        {
            const auto downs = down_neighbors(HexCoord{x, y});
            EXPECT_NE(downs[0], downs[1]);
            EXPECT_EQ(downs[0].y, y + 1);
            EXPECT_EQ(downs[1].y, y + 1);
        }
    }
}

TEST(Coordinates, HexDistanceIsAMetric)
{
    const HexCoord a{0, 0}, b{2, 3}, c{-1, 4};
    EXPECT_EQ(hex_distance(a, a), 0);
    EXPECT_EQ(hex_distance(a, b), hex_distance(b, a));
    EXPECT_LE(hex_distance(a, c), hex_distance(a, b) + hex_distance(b, c));
}

}  // namespace
