/// \file golden_main.cpp
/// \brief Entry point of the golden-file suite: plain gtest main plus the
///        `--update-goldens` flag, which rewrites every golden under
///        tests/golden/data/ with the current output instead of diffing
///        (BESTAGON_UPDATE_GOLDENS=1 does the same through the environment).

#include "testing/golden.hpp"

#include <gtest/gtest.h>

#include <cstring>

int main(int argc, char** argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
    {
        if (std::strcmp(argv[i], "--update-goldens") == 0)
        {
            bestagon::testkit::update_goldens_flag() = true;
        }
    }
    return RUN_ALL_TESTS();
}
