/// \file test_golden_outputs.cpp
/// \brief Golden-file regression tests for every textual artifact writer:
///        SiQAD .sqd XML, SVG (tile and dot views), Graphviz DOT and the
///        ASCII layout rendering. The flows under test are fully
///        deterministic, so any diff against tests/golden/data/ means an
///        engine or writer changed observable output — inspect, then either
///        fix the regression or regenerate with --update-goldens and commit
///        the reviewed diff.

#include "testing/golden.hpp"

#include "core/design_flow.hpp"
#include "io/dot_writer.hpp"
#include "io/render.hpp"
#include "io/sqd_writer.hpp"
#include "io/svg_writer.hpp"
#include "logic/benchmarks.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

namespace
{

using namespace bestagon;

std::string golden_path(const std::string& name)
{
    return std::string{BESTAGON_GOLDEN_DATA_DIR} + "/" + name;
}

/// Flows are expensive (SAT-based physical design) — run each benchmark once
/// and share the result across the suite.
const core::FlowResult& flow_for(const std::string& benchmark)
{
    static std::map<std::string, core::FlowResult> cache;
    auto it = cache.find(benchmark);
    if (it == cache.end())
    {
        const auto* bm = logic::find_benchmark(benchmark);
        if (bm == nullptr)
        {
            throw std::runtime_error("unknown benchmark " + benchmark);
        }
        it = cache.emplace(benchmark, core::run_design_flow(bm->build())).first;
    }
    return it->second;
}

void expect_golden(const std::string& actual, const std::string& file)
{
    const auto verdict = testkit::compare_golden(actual, golden_path(file));
    EXPECT_TRUE(verdict.ok) << verdict.detail;
}

TEST(GoldenDot, C17Network)
{
    std::ostringstream out;
    io::write_dot(out, logic::find_benchmark("c17")->build());
    expect_golden(out.str(), "c17.dot.golden");
}

TEST(GoldenDot, Xor2MappedNetwork)
{
    std::ostringstream out;
    io::write_dot(out, flow_for("xor2").mapped);
    expect_golden(out.str(), "xor2_mapped.dot.golden");
}

TEST(GoldenAscii, Xor2Layout)
{
    const auto& flow = flow_for("xor2");
    ASSERT_TRUE(flow.layout.has_value());
    expect_golden(io::render_layout(*flow.layout), "xor2_layout.txt.golden");
}

TEST(GoldenAscii, ParCheckLayout)
{
    const auto& flow = flow_for("par_check");
    ASSERT_TRUE(flow.layout.has_value());
    expect_golden(io::render_layout(*flow.layout), "par_check_layout.txt.golden");
}

TEST(GoldenSqd, Xor2SidbLayout)
{
    const auto& flow = flow_for("xor2");
    ASSERT_TRUE(flow.sidb.has_value());
    std::ostringstream out;
    io::write_sqd(out, *flow.sidb, "xor2");
    expect_golden(out.str(), "xor2.sqd.golden");
}

TEST(GoldenSqd, ParCheckSidbLayout)
{
    const auto& flow = flow_for("par_check");
    ASSERT_TRUE(flow.sidb.has_value());
    std::ostringstream out;
    io::write_sqd(out, *flow.sidb, "par_check");
    expect_golden(out.str(), "par_check.sqd.golden");
}

TEST(GoldenSvg, Xor2TileView)
{
    const auto& flow = flow_for("xor2");
    ASSERT_TRUE(flow.layout.has_value());
    std::ostringstream out;
    io::write_svg(out, *flow.layout);
    expect_golden(out.str(), "xor2_tiles.svg.golden");
}

TEST(GoldenSvg, Xor2DotAccurateView)
{
    const auto& flow = flow_for("xor2");
    ASSERT_TRUE(flow.sidb.has_value());
    std::ostringstream out;
    io::write_svg(out, *flow.sidb);
    expect_golden(out.str(), "xor2_dots.svg.golden");
}

TEST(GoldenHarness, NormalizationIsCanonical)
{
    using testkit::normalize_artifact;
    EXPECT_EQ(normalize_artifact("a \r\nb\t\nc"), "a\nb\nc\n");
    EXPECT_EQ(normalize_artifact("a\n\n\n"), "a\n");
    EXPECT_EQ(normalize_artifact(""), "");
    // idempotence: normalizing twice changes nothing
    const std::string messy = "x  \r\n\r\n y\r";
    EXPECT_EQ(normalize_artifact(normalize_artifact(messy)), normalize_artifact(messy));
}

TEST(GoldenHarness, DiffPinpointsFirstDivergentLine)
{
    if (testkit::update_goldens_flag())
    {
        // comparing wrong content in update mode would clobber the golden
        GTEST_SKIP() << "update mode rewrites goldens; diff behavior not testable";
    }
    // compare against an existing golden with deliberately wrong content
    const auto verdict =
        testkit::compare_golden("not the c17 graph\n", golden_path("c17.dot.golden"));
    ASSERT_FALSE(verdict.ok);
    EXPECT_NE(verdict.detail.find("first difference at line 1"), std::string::npos)
        << verdict.detail;
}

}  // namespace
