#include "logic/cuts.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::logic;

LogicNetwork make_mux()
{
    LogicNetwork n;
    const auto a = n.create_pi("a");
    const auto b = n.create_pi("b");
    const auto s = n.create_pi("s");
    const auto l = n.create_and(a, n.create_not(s));
    const auto r = n.create_and(b, s);
    n.create_po(n.create_or(l, r), "f");
    return n;
}

TEST(Cuts, TrivialCutOnPis)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    n.create_po(n.create_not(a));
    const CutEnumeration cuts{n};
    const auto& pi_cuts = cuts.cuts_of(a);
    ASSERT_EQ(pi_cuts.size(), 1U);
    EXPECT_EQ(pi_cuts[0].leaves, std::vector<LogicNetwork::NodeId>{a});
    unsigned var = 99;
    bool comp = true;
    EXPECT_TRUE(pi_cuts[0].function.is_projection(var, comp));
    EXPECT_FALSE(comp);
}

TEST(Cuts, CutFunctionsMatchConeSimulation)
{
    const auto n = make_mux();
    const CutEnumeration cuts{n, 4, 16};
    for (const auto id : n.topological_order())
    {
        for (const auto& cut : cuts.cuts_of(id))
        {
            // recompute independently and compare
            const auto recomputed = compute_cut_function(n, id, cut.leaves);
            EXPECT_EQ(cut.function, recomputed);
        }
    }
}

TEST(Cuts, MuxRootHasFullCut)
{
    const auto n = make_mux();
    const CutEnumeration cuts{n, 4, 16};
    const auto root = n.node(n.pos()[0]).fanin[0];
    bool found_pi_cut = false;
    for (const auto& cut : cuts.cuts_of(root))
    {
        if (cut.leaves.size() == 3)
        {
            // the 3-leaf cut over the PIs computes the full mux function
            // f(a,b,s) = s ? b : a; leaves are sorted by id = (a, b, s)
            const auto a = TruthTable::nth_var(3, 0);
            const auto b = TruthTable::nth_var(3, 1);
            const auto s = TruthTable::nth_var(3, 2);
            const auto expected = (a & ~s) | (b & s);
            if (cut.function == expected)
            {
                found_pi_cut = true;
            }
        }
    }
    EXPECT_TRUE(found_pi_cut);
}

TEST(Cuts, RespectsCutSizeLimit)
{
    const auto n = make_mux();
    const CutEnumeration cuts{n, 2, 16};
    for (const auto id : n.topological_order())
    {
        for (const auto& cut : cuts.cuts_of(id))
        {
            EXPECT_LE(cut.leaves.size(), 2U);
        }
    }
}

TEST(Cuts, RespectsCutCountLimit)
{
    const auto n = make_mux();
    const CutEnumeration cuts{n, 4, 3};
    for (const auto id : n.topological_order())
    {
        EXPECT_LE(cuts.cuts_of(id).size(), 3U);
    }
}

TEST(Cuts, LeavesAreSorted)
{
    const auto n = make_mux();
    const CutEnumeration cuts{n};
    for (const auto id : n.topological_order())
    {
        for (const auto& cut : cuts.cuts_of(id))
        {
            EXPECT_TRUE(std::is_sorted(cut.leaves.begin(), cut.leaves.end()));
        }
    }
}

}  // namespace
