/// \file test_properties.cpp
/// \brief Cross-module property tests: idempotence, incrementality and
///        minimality invariants that individual unit tests do not cover.

#include "layout/exact_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/exact_synthesis.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <random>

namespace
{

using namespace bestagon;

TEST(Properties, SolverSupportsIncrementalClauseAddition)
{
    sat::Solver s;
    const auto a = s.new_var();
    const auto b = s.new_var();
    s.add_clause(sat::pos(a), sat::pos(b));
    ASSERT_EQ(s.solve(), sat::Result::satisfiable);
    // strengthen the formula after solving and solve again
    s.add_clause(sat::neg(a));
    ASSERT_EQ(s.solve(), sat::Result::satisfiable);
    EXPECT_TRUE(s.model_value(b));
    s.add_clause(sat::neg(b));
    EXPECT_EQ(s.solve(), sat::Result::unsatisfiable);
    // once unsatisfiable, it stays unsatisfiable
    EXPECT_EQ(s.solve(), sat::Result::unsatisfiable);
}

TEST(Properties, StrashIsIdempotent)
{
    for (const auto& bm : logic::table1_benchmarks())
    {
        const auto once = logic::strash(logic::to_xag(bm.build()));
        const auto twice = logic::strash(once);
        EXPECT_EQ(once.num_gates(), twice.num_gates()) << bm.name;
        EXPECT_TRUE(logic::functionally_equivalent(once, twice)) << bm.name;
    }
}

TEST(Properties, RewriteIsIdempotentAtFixpoint)
{
    logic::NpnDatabase db;
    const auto net = logic::to_xag(logic::find_benchmark("c17")->build());
    const auto once = logic::rewrite(net, db);
    const auto twice = logic::rewrite(once, db);
    EXPECT_EQ(once.num_gates(), twice.num_gates());
}

/// Exact synthesis must agree with brute-force minimality for every
/// two-variable function (whose optimal sizes are known: 0 or 1 gates).
TEST(Properties, ExactSynthesisIsMinimalForTwoVariableFunctions)
{
    for (unsigned bits = 0; bits < 16; ++bits)
    {
        logic::TruthTable f{2};
        for (unsigned t = 0; t < 4; ++t)
        {
            f.set_bit(t, ((bits >> t) & 1U) != 0);
        }
        const auto net = logic::exact_synthesize(f);
        ASSERT_TRUE(net.has_value()) << bits;
        EXPECT_EQ(net->simulate()[0], f) << bits;
        unsigned var = 0;
        bool comp = false;
        const bool trivial = f.is_const0() || f.is_const1() || f.is_projection(var, comp);
        EXPECT_EQ(logic::count_two_input_gates(*net), trivial ? 0U : 1U) << bits;
    }
}

/// The exact engine's area can never exceed the scalable engine's on
/// instances both can solve (it enumerates sizes in ascending area).
TEST(Properties, ExactNeverLosesToScalable)
{
    logic::NpnDatabase db;
    for (const char* name : {"xor2", "par_gen", "par_check", "xor5_r1"})
    {
        const auto mapped =
            logic::map_to_bestagon(logic::rewrite(logic::to_xag(logic::find_benchmark(name)->build()), db));
        const auto exact = layout::exact_physical_design(mapped);
        ASSERT_TRUE(exact.has_value()) << name;
        EXPECT_GE(layout::minimum_height(mapped), 3U);
        EXPECT_LE(exact->height() * exact->width(), 64U) << name;
    }
}

/// Random XAGs: rewriting and mapping preserve functionality end to end.
TEST(Properties, RandomXagsSurviveTheFrontEnd)
{
    std::mt19937 rng{20260705};
    logic::NpnDatabase db;
    for (int iter = 0; iter < 10; ++iter)
    {
        logic::LogicNetwork net;
        std::vector<logic::LogicNetwork::NodeId> signals;
        const unsigned num_pis = 3 + rng() % 3;
        for (unsigned i = 0; i < num_pis; ++i)
        {
            signals.push_back(net.create_pi("x" + std::to_string(i)));
        }
        const unsigned num_gates = 4 + rng() % 10;
        for (unsigned g = 0; g < num_gates; ++g)
        {
            const auto a = signals[rng() % signals.size()];
            const auto b = signals[rng() % signals.size()];
            switch (rng() % 3)
            {
                case 0: signals.push_back(net.create_and(a, b)); break;
                case 1: signals.push_back(net.create_xor(a, b)); break;
                default: signals.push_back(net.create_not(a)); break;
            }
        }
        net.create_po(signals.back(), "f");

        const auto rewritten = logic::rewrite(net, db);
        EXPECT_TRUE(logic::functionally_equivalent(net, rewritten)) << "iter " << iter;
        const auto mapped = logic::map_to_bestagon(rewritten);
        EXPECT_TRUE(logic::functionally_equivalent(net, mapped)) << "iter " << iter;
        EXPECT_TRUE(mapped.is_bestagon_compliant()) << "iter " << iter;
    }
}

}  // namespace
