#include "logic/rewriting.hpp"

#include "logic/benchmarks.hpp"
#include "logic/tech_mapping.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::logic;

TEST(Sweep, RemovesDeadNodes)
{
    LogicNetwork n;
    const auto a = n.create_pi("a");
    const auto b = n.create_pi("b");
    static_cast<void>(n.create_and(a, b));  // dead
    n.create_po(n.create_xor(a, b), "f");
    const auto swept = sweep(n);
    EXPECT_EQ(swept.num_gates(), 1U);
    EXPECT_TRUE(functionally_equivalent(n, swept));
}

TEST(Sweep, PreservesPiOrderAndNames)
{
    LogicNetwork n;
    n.create_pi("first");
    const auto b = n.create_pi("second");
    n.create_po(b, "out");
    const auto swept = sweep(n);
    EXPECT_EQ(swept.num_pis(), 2U);
    EXPECT_EQ(swept.node(swept.pis()[0]).name, "first");
    EXPECT_EQ(swept.node(swept.pis()[1]).name, "second");
}

TEST(Strash, MergesStructurallyIdenticalGates)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    const auto x1 = n.create_and(a, b);
    const auto x2 = n.create_and(b, a);  // commutatively identical
    n.create_po(n.create_xor(x1, x2));
    const auto hashed = strash(n);
    EXPECT_TRUE(functionally_equivalent(n, hashed));
    // XOR(x, x) = 0, so everything should fold to a constant
    EXPECT_TRUE(hashed.simulate()[0].is_const0());
}

TEST(Strash, FoldsConstants)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto c1 = n.create_const(true);
    n.create_po(n.create_and(a, c1));  // a & 1 = a
    const auto hashed = strash(n);
    EXPECT_EQ(hashed.num_gates(), 0U);
    EXPECT_TRUE(functionally_equivalent(n, hashed));
}

TEST(Strash, CollapsesDoubleInversion)
{
    LogicNetwork n;
    const auto a = n.create_pi();
    n.create_po(n.create_not(n.create_not(a)));
    const auto hashed = strash(n);
    EXPECT_EQ(hashed.num_gates(), 0U);
    EXPECT_TRUE(functionally_equivalent(n, hashed));
}

TEST(Rewrite, ReducesRedundantXorChain)
{
    // (a ^ b) ^ b == a: rewriting should shrink this
    LogicNetwork n;
    const auto a = n.create_pi();
    const auto b = n.create_pi();
    n.create_po(n.create_xor(n.create_xor(a, b), b));
    NpnDatabase db;
    RewriteStats stats;
    const auto rewritten = rewrite(n, db, &stats);
    EXPECT_TRUE(functionally_equivalent(n, rewritten));
    EXPECT_EQ(rewritten.num_gates(), 0U);
}

/// Property over the full benchmark suite: rewriting preserves function and
/// never increases the gate count.
class RewriteBenchmarkTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RewriteBenchmarkTest, PreservesFunctionAndNeverGrows)
{
    const auto* bm = find_benchmark(GetParam());
    ASSERT_NE(bm, nullptr);
    const auto net = bm->build();
    const auto xag = to_xag(net);
    NpnDatabase db;
    RewriteStats stats;
    const auto rewritten = rewrite(xag, db, &stats);
    EXPECT_TRUE(functionally_equivalent(net, rewritten));
    EXPECT_LE(rewritten.num_gates(), xag.num_gates());
    EXPECT_EQ(stats.gates_after, rewritten.num_gates());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RewriteBenchmarkTest,
                         ::testing::Values("xor2", "xnor2", "par_gen", "mux21", "par_check",
                                           "xor5_r1", "xor5_majority", "t", "t_5", "c17", "majority",
                                           "majority_5_r1", "cm82a_5", "newtag"));

TEST(Rewrite, SubstantiallyReducesMajorityBasedXor)
{
    // the xor5_majority benchmark is heavily redundant after XAG conversion
    const auto net = find_benchmark("xor5_majority")->build();
    const auto xag = to_xag(net);
    NpnDatabase db;
    const auto rewritten = rewrite(xag, db);
    EXPECT_LT(rewritten.num_gates(), xag.num_gates() / 2);
}

}  // namespace
