#include "layout/apply_gate_library.hpp"

#include "layout/exact_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using namespace bestagon::layout;

GateLevelLayout layout_for(const std::string& name)
{
    logic::NpnDatabase db;
    const auto mapped =
        logic::map_to_bestagon(logic::rewrite(logic::to_xag(logic::find_benchmark(name)->build()), db));
    auto layout = exact_physical_design(mapped);
    EXPECT_TRUE(layout.has_value());
    return *layout;
}

TEST(ApplyLibrary, TileOriginsFollowOddRowShift)
{
    EXPECT_EQ(tile_origin({0, 0}).n, 0);
    EXPECT_EQ(tile_origin({1, 0}).n, tile_columns);
    EXPECT_EQ(tile_origin({0, 1}).n, tile_columns / 2);  // odd row shifted
    EXPECT_EQ(tile_origin({0, 1}).m, tile_rows);
    EXPECT_EQ(tile_origin({2, 3}).m, 3 * tile_rows);
}

TEST(ApplyLibrary, LogicalAreaMatchesPaperFormula)
{
    const GateLevelLayout l{4, 7};
    // 28 tiles x (23.04 nm x 18.432 nm) ~ 11.9 knm^2, the Table-1 scale
    EXPECT_NEAR(logical_area_nm2(l), 4 * 23.04 * 7 * 18.432, 1e-6);
}

TEST(ApplyLibrary, Xor2ProducesSidbLayout)
{
    const auto layout = layout_for("xor2");
    ApplyStats stats;
    const auto sidb = apply_gate_library(layout, &stats);
    EXPECT_EQ(stats.tiles_mapped, layout.num_occupied_tiles());
    EXPECT_GT(sidb.num_sidbs(), 40U);   // 4 tiles of wires/gates
    EXPECT_LT(sidb.num_sidbs(), 120U);  // sane upper bound
    EXPECT_TRUE(sidb.all_sites_unique());
}

TEST(ApplyLibrary, SidbCountsScaleWithLayoutSize)
{
    const auto small = apply_gate_library(layout_for("xor2"));
    const auto large = apply_gate_library(layout_for("c17"));
    EXPECT_GT(large.num_sidbs(), 2 * small.num_sidbs());
}

TEST(ApplyLibrary, BoundingBoxFitsTheTileGrid)
{
    const auto layout = layout_for("par_gen");
    const auto sidb = apply_gate_library(layout);
    const auto [x0, y0, x1, y1] = sidb.bounding_box_nm();
    EXPECT_GE(x0, 0.0);
    EXPECT_GE(y0, 0.0);
    // everything must fit in (width + half-shift) x height tiles
    EXPECT_LE(x1, (layout.width() + 0.5) * 23.04 + 1e-9);
    EXPECT_LE(y1, layout.height() * 18.432 + 1e-9);
}

TEST(ApplyLibrary, CrossingsUseTheDedicatedTile)
{
    // mux21 is the smallest benchmark whose exact layout contains a crossing
    const auto layout = layout_for("mux21");
    if (layout.num_crossing_tiles() > 0)
    {
        ApplyStats stats;
        const auto sidb = apply_gate_library(layout, &stats);
        EXPECT_EQ(stats.crossings_mapped, layout.num_crossing_tiles());
        EXPECT_TRUE(sidb.all_sites_unique());
    }
}

TEST(ApplyLibrary, AllTable1BenchmarksMapWithoutCollisions)
{
    for (const char* name : {"xor2", "par_gen", "mux21", "par_check", "c17"})
    {
        const auto layout = layout_for(name);
        const auto sidb = apply_gate_library(layout);
        EXPECT_TRUE(sidb.all_sites_unique()) << name;
        EXPECT_GT(sidb.num_sidbs(), 0U) << name;
    }
}

}  // namespace
