#include "layout/design_rules.hpp"

#include "layout/exact_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;
using namespace bestagon::layout;
using logic::GateType;

TEST(DesignRules, CleanOnEmptyLayout)
{
    GateLevelLayout layout{3, 3};
    EXPECT_TRUE(check_design_rules(layout).clean());
}

TEST(DesignRules, DetectsDanglingOutput)
{
    GateLevelLayout layout{2, 3};
    Occupant pi;
    pi.type = GateType::pi;
    pi.out_a = Port::se;  // feeds (0,1), where nothing listens
    ASSERT_TRUE(layout.add_occupant({0, 0}, pi));
    const auto report = check_design_rules(layout);
    ASSERT_FALSE(report.clean());
    bool found = false;
    for (const auto& v : report.violations)
    {
        if (v.rule == "connectivity")
        {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(DesignRules, DetectsOutputLeavingLayout)
{
    GateLevelLayout layout{1, 2};
    Occupant pi;
    pi.type = GateType::pi;
    pi.out_a = Port::sw;  // leaves the 1-wide layout at x = -1
    ASSERT_TRUE(layout.add_occupant({0, 0}, pi));
    const auto report = check_design_rules(layout);
    EXPECT_FALSE(report.clean());
}

TEST(DesignRules, DetectsDanglingWireInput)
{
    // a wire segment whose NW input faces an empty tile: nothing drives it,
    // so the input-side connectivity check must flag the tile
    GateLevelLayout layout{2, 3};
    Occupant wire;
    wire.type = GateType::buf;
    wire.in_a = Port::nw;
    wire.out_a = Port::se;
    ASSERT_TRUE(layout.add_occupant({0, 1}, wire));
    Occupant po;
    po.type = GateType::po;
    po.in_a = Port::nw;
    ASSERT_TRUE(layout.add_occupant({1, 2}, po));  // driven by the wire's SE output
    const auto report = check_design_rules(layout);
    bool found = false;
    for (const auto& v : report.violations)
    {
        if (v.rule == "connectivity" && v.message.find("no matching driver") != std::string::npos)
        {
            found = true;
            EXPECT_EQ(v.tile, (HexCoord{0, 1}));
        }
    }
    EXPECT_TRUE(found);
}

TEST(DesignRules, DetectsInputReadingFromOutsideTheLayout)
{
    GateLevelLayout layout{1, 1};
    Occupant po;
    po.type = GateType::po;
    po.in_a = Port::nw;  // row -1 does not exist
    ASSERT_TRUE(layout.add_occupant({0, 0}, po));
    const auto report = check_design_rules(layout);
    bool found = false;
    for (const auto& v : report.violations)
    {
        if (v.rule == "connectivity" &&
            v.message.find("outside the layout") != std::string::npos)
        {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(DesignRules, SingleTileLayoutWithIsolatedPiIsReported)
{
    // a 1x1 layout can hold a PI but its output necessarily dangles or
    // leaves the layout — never silently accepted
    GateLevelLayout layout{1, 1};
    Occupant pi;
    pi.type = GateType::pi;
    pi.out_a = Port::se;
    ASSERT_TRUE(layout.add_occupant({0, 0}, pi));
    EXPECT_FALSE(check_design_rules(layout).clean());
}

TEST(DesignRules, EmptySingleTileLayoutIsClean)
{
    GateLevelLayout layout{1, 1};
    EXPECT_TRUE(check_design_rules(layout).clean());
}

TEST(DesignRules, DetectsWrongGatePortUsage)
{
    GateLevelLayout layout{2, 3};
    Occupant g;
    g.type = GateType::and2;
    g.in_a = Port::nw;  // missing second input
    g.out_a = Port::sw;
    ASSERT_TRUE(layout.add_occupant({1, 1}, g));
    const auto report = check_design_rules(layout);
    bool found = false;
    for (const auto& v : report.violations)
    {
        if (v.rule == "ports")
        {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(DesignRules, ExactLayoutsAreClean)
{
    logic::NpnDatabase db;
    for (const char* name : {"xor2", "mux21", "c17"})
    {
        const auto mapped =
            logic::map_to_bestagon(logic::to_xag(logic::find_benchmark(name)->build()));
        const auto layout = exact_physical_design(mapped);
        ASSERT_TRUE(layout.has_value()) << name;
        const auto report = check_design_rules(*layout);
        EXPECT_TRUE(report.clean()) << name << ": "
                                    << (report.violations.empty() ? ""
                                                                  : report.violations.front().message);
    }
}

TEST(DesignRules, SuperTileChecksIncludeElectrodePitch)
{
    GateLevelLayout layout{2, 6};
    const auto st = make_supertiles(layout, 1);  // violates the 40 nm pitch
    const auto report = check_design_rules(st);
    bool found = false;
    for (const auto& v : report.violations)
    {
        if (v.rule == "electrode-pitch")
        {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(DesignRules, CanvasSeparationIsLargeEnough)
{
    // vertically adjacent tiles: canvas centers one tile height apart
    EXPECT_GE(canvas_center_distance_nm({0, 0}, {0, 1}), 18.0);
    // horizontally adjacent tiles: one tile width apart
    EXPECT_GE(canvas_center_distance_nm({0, 0}, {1, 0}), 23.0);
}

}  // namespace
