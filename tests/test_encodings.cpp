#include "sat/encodings.hpp"
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace
{

using namespace bestagon::sat;

/// Enumerates all models of the current solver over the first n variables by
/// blocking clauses; returns the set of assignments as bitmasks.
std::vector<unsigned> all_models(Solver& s, int n)
{
    std::vector<unsigned> models;
    while (s.solve() == Result::satisfiable)
    {
        unsigned mask = 0;
        std::vector<Lit> blocking;
        for (int i = 0; i < n; ++i)
        {
            const bool v = s.model_value(Var{i});
            if (v)
            {
                mask |= 1U << i;
            }
            blocking.push_back(Lit{i, v});
        }
        models.push_back(mask);
        if (!s.add_clause(blocking))
        {
            break;
        }
        if (models.size() > 4096)
        {
            break;  // defensive
        }
    }
    return models;
}

class CardinalityTest : public ::testing::TestWithParam<std::pair<int, unsigned>>
{
};

TEST_P(CardinalityTest, AtMostKMatchesPopcount)
{
    const auto [n, k] = GetParam();
    Solver s;
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i)
    {
        lits.push_back(pos(s.new_var()));
    }
    add_at_most_k(s, lits, k);
    const auto models = all_models(s, n);
    // every assignment with popcount <= k must appear exactly once
    unsigned expected = 0;
    for (unsigned mask = 0; mask < (1U << n); ++mask)
    {
        if (std::popcount(mask) <= static_cast<int>(k))
        {
            ++expected;
        }
    }
    EXPECT_EQ(models.size(), expected);
    for (const auto m : models)
    {
        EXPECT_LE(std::popcount(m), static_cast<int>(k));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CardinalityTest,
                         ::testing::Values(std::pair{4, 0U}, std::pair{4, 1U}, std::pair{5, 2U},
                                           std::pair{6, 3U}, std::pair{7, 2U}, std::pair{8, 1U}));

class ExactlyOneTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ExactlyOneTest, HasExactlyNModels)
{
    const int n = GetParam();
    Solver s;
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i)
    {
        lits.push_back(pos(s.new_var()));
    }
    add_exactly_one(s, lits);
    const auto models = all_models(s, n);
    EXPECT_EQ(models.size(), static_cast<std::size_t>(n));
    for (const auto m : models)
    {
        EXPECT_EQ(std::popcount(m), 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactlyOneTest, ::testing::Values(1, 2, 3, 5, 7, 9, 12));

/// Counts models over the first n variables that set at most one of them.
void expect_at_most_one_models(Solver& s, int n)
{
    const auto models = all_models(s, n);
    EXPECT_EQ(models.size(), static_cast<std::size_t>(n) + 1);  // empty + n singletons
    for (const auto m : models)
    {
        EXPECT_LE(std::popcount(m), 1);
    }
}

class IncrementalAmoTest : public ::testing::TestWithParam<int>
{
};

/// Growing one literal at a time must yield exactly the at-most-one models at
/// every prefix length — both below and above the pairwise threshold.
TEST_P(IncrementalAmoTest, PrefixSemanticsMatchAtMostOne)
{
    const int n = GetParam();
    Solver s;
    IncrementalAtMostOne amo;
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i)
    {
        lits.push_back(pos(s.new_var()));
    }
    for (int i = 0; i < n; ++i)
    {
        amo.add(s, lits[i]);
        // two true literals among the prefix must be refuted...
        for (int j = 0; j < i; ++j)
        {
            EXPECT_EQ(s.solve({lits[j], lits[i]}), Result::unsatisfiable)
                << "pair (" << j << ", " << i << ") not excluded at size " << i + 1;
        }
        // ...while each singleton stays satisfiable
        EXPECT_EQ(s.solve({lits[i]}), Result::satisfiable);
    }
    EXPECT_EQ(amo.size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalAmoTest, ::testing::Values(1, 2, 6, 7, 9, 14));

TEST(Encodings, IncrementalAmoModelCountAfterGrowth)
{
    // grow far past the pairwise threshold, then enumerate: the ladder must
    // not exclude any singleton or admit any pair
    constexpr int n = 10;
    Solver s;
    IncrementalAtMostOne amo;
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i)
    {
        lits.push_back(pos(s.new_var()));  // before any aux var interleaves
    }
    for (const auto l : lits)
    {
        amo.add(s, l);
    }
    expect_at_most_one_models(s, n);
}

TEST(Encodings, IncrementalAmoGuardDisarmsConstraint)
{
    Solver s;
    const Lit guard = pos(s.new_var());
    IncrementalAtMostOne amo{guard};
    std::vector<Lit> lits;
    for (int i = 0; i < 8; ++i)
    {
        lits.push_back(pos(s.new_var()));
        amo.add(s, lits.back());
    }
    // enforced under the guard...
    EXPECT_EQ(s.solve({guard, lits[0], lits[7]}), Result::unsatisfiable);
    EXPECT_EQ(s.solve({guard, lits[2]}), Result::satisfiable);
    // ...inert without it: all literals may be true simultaneously
    std::vector<Lit> all{~guard};
    all.insert(all.end(), lits.begin(), lits.end());
    EXPECT_EQ(s.solve(all), Result::satisfiable);
}

TEST(Encodings, AtLeastK)
{
    Solver s;
    std::vector<Lit> lits;
    for (int i = 0; i < 5; ++i)
    {
        lits.push_back(pos(s.new_var()));
    }
    add_at_least_k(s, lits, 3);
    const auto models = all_models(s, 5);
    unsigned expected = 0;
    for (unsigned mask = 0; mask < 32; ++mask)
    {
        if (std::popcount(mask) >= 3)
        {
            ++expected;
        }
    }
    EXPECT_EQ(models.size(), expected);
}

TEST(Encodings, TseitinAndTruthTable)
{
    for (unsigned input = 0; input < 4; ++input)
    {
        Solver s;
        const Var a = s.new_var(), b = s.new_var();
        const Lit out = tseitin_and(s, pos(a), pos(b));
        const std::vector<Lit> assumptions{Lit{a, (input & 1) == 0}, Lit{b, (input & 2) == 0}};
        ASSERT_EQ(s.solve(assumptions), Result::satisfiable);
        EXPECT_EQ(s.model_value(out), input == 3);
    }
}

TEST(Encodings, TseitinXorTruthTable)
{
    for (unsigned input = 0; input < 4; ++input)
    {
        Solver s;
        const Var a = s.new_var(), b = s.new_var();
        const Lit out = tseitin_xor(s, pos(a), pos(b));
        const std::vector<Lit> assumptions{Lit{a, (input & 1) == 0}, Lit{b, (input & 2) == 0}};
        ASSERT_EQ(s.solve(assumptions), Result::satisfiable);
        EXPECT_EQ(s.model_value(out), input == 1 || input == 2);
    }
}

TEST(Encodings, MajEncodingTruthTable)
{
    for (unsigned input = 0; input < 8; ++input)
    {
        Solver s;
        const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
        const Lit out = pos(s.new_var());
        encode_maj(s, out, pos(a), pos(b), pos(c));
        const std::vector<Lit> assumptions{Lit{a, (input & 1) == 0}, Lit{b, (input & 2) == 0},
                                           Lit{c, (input & 4) == 0}};
        ASSERT_EQ(s.solve(assumptions), Result::satisfiable);
        EXPECT_EQ(s.model_value(out), std::popcount(input) >= 2);
    }
}

TEST(Encodings, WideAndOr)
{
    Solver s;
    std::vector<Lit> ins;
    for (int i = 0; i < 6; ++i)
    {
        ins.push_back(pos(s.new_var()));
    }
    const Lit all = tseitin_and(s, std::span<const Lit>{ins});
    const Lit any = tseitin_or(s, std::span<const Lit>{ins});
    std::vector<Lit> assumptions;
    for (const auto l : ins)
    {
        assumptions.push_back(l);
    }
    ASSERT_EQ(s.solve(assumptions), Result::satisfiable);
    EXPECT_TRUE(s.model_value(all));
    EXPECT_TRUE(s.model_value(any));
    assumptions.back() = ~assumptions.back();
    ASSERT_EQ(s.solve(assumptions), Result::satisfiable);
    EXPECT_FALSE(s.model_value(all));
    EXPECT_TRUE(s.model_value(any));
}

}  // namespace
