// Tests for the bestagon_lint invariant checker (src/analysis).
//
// Every check family is proven against the fixture corpus in
// tests/data/lint_fixtures: each seeded violation is caught at the expected
// granularity and each clean twin passes. The suite also locks down the
// waiver round-trip (suppression, staleness, hygiene) and ends with the real
// gate: linting the live src/ tree must be clean.

#include "analysis/lexer.hpp"
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace
{

using namespace bestagon::analysis;

const std::string fixtures = BESTAGON_LINT_FIXTURE_DIR;

std::string fixture(const std::string& rel)
{
    return fixtures + "/" + rel;
}

std::size_t count_id(const FileReport& report, CheckId id, bool waived = false)
{
    return static_cast<std::size_t>(
        std::count_if(report.diagnostics.begin(), report.diagnostics.end(),
                      [&](const Diagnostic& d) { return d.id == id && d.waived == waived; }));
}

// ---------------------------------------------------------------------------
// lexer
// ---------------------------------------------------------------------------

TEST(LintLexer, TokenizesIdentifiersNumbersAndPunctuation)
{
    const auto lexed = lex("int x = 42 + foo(y);");
    std::vector<std::string> texts;
    for (const auto& t : lexed.tokens)
    {
        texts.push_back(t.text);
    }
    const std::vector<std::string> expected{"int", "x", "=",  "42", "+", "foo",
                                            "(",   "y", ")",  ";"};
    EXPECT_EQ(texts, expected);
}

TEST(LintLexer, CommentsGoToSideChannelNotTokenStream)
{
    const auto lexed = lex("a; // line comment\nb; /* block */ c;");
    ASSERT_EQ(lexed.comments.size(), 2U);
    EXPECT_EQ(lexed.comments[0].line, 1U);
    EXPECT_FALSE(lexed.comments[0].block);
    EXPECT_TRUE(lexed.comments[1].block);
    for (const auto& t : lexed.tokens)
    {
        EXPECT_NE(t.text, "comment");
    }
}

TEST(LintLexer, RawStringsAndEscapesDoNotConfuseTheLexer)
{
    const auto lexed = lex(R"src(auto s = R"(unbalanced " and // not a comment)"; auto t = "esc\"";)src");
    EXPECT_TRUE(lexed.comments.empty());
    const auto strings =
        std::count_if(lexed.tokens.begin(), lexed.tokens.end(),
                      [](const Token& t) { return t.kind == TokenKind::string_lit; });
    EXPECT_EQ(strings, 2);
}

TEST(LintLexer, MalformedInputDoesNotThrow)
{
    EXPECT_NO_THROW((void)lex("\"unterminated"));
    EXPECT_NO_THROW((void)lex("/* unterminated"));
    EXPECT_NO_THROW((void)lex("R\"(unterminated"));
}

// ---------------------------------------------------------------------------
// D: determinism
// ---------------------------------------------------------------------------

TEST(LintDeterminism, BannedRngFixtureIsCaught)
{
    const auto report = lint_file(fixture("src/logic/d1_banned_rng.cpp"));
    EXPECT_EQ(count_id(report, CheckId::d_banned_rng), 3U)
        << "std::random_device, system_clock and std::rand must each be flagged";
    EXPECT_EQ(report.active_count(), 3U);
}

TEST(LintDeterminism, UnorderedIterationFixtureIsCaught)
{
    const auto report = lint_file(fixture("src/logic/d2_unordered_iter.cpp"));
    EXPECT_EQ(count_id(report, CheckId::d_unordered_iter), 2U)
        << "the range-for and the .begin() traversal must both be flagged";
}

TEST(LintDeterminism, CleanFixturePasses)
{
    const auto report = lint_file(fixture("src/logic/d_clean.cpp"));
    EXPECT_EQ(report.active_count(), 0U)
        << "keyed unordered access and seeded mt19937 are fine";
}

TEST(LintDeterminism, SortedSnapshotConstructionIsNotFlagged)
{
    // the remediation the D2 message recommends must itself lint clean
    const std::string source = R"(
        #include <algorithm>
        #include <unordered_map>
        #include <utility>
        #include <vector>

        std::vector<std::pair<int, int>> sorted(const std::unordered_map<int, int>& m)
        {
            std::vector<std::pair<int, int>> v(m.begin(), m.end());
            std::sort(v.begin(), v.end());
            return v;
        }
    )";
    const auto report = lint_source("src/logic/snap.cpp", source);
    EXPECT_EQ(count_id(report, CheckId::d_unordered_iter), 0U)
        << "a begin()/end() pair handed to a constructor is the sanctioned snapshot";
}

TEST(LintDeterminism, ChecksOnlyApplyInResultAffectingDirs)
{
    // the same banned-RNG source under a non-result-affecting path is ignored
    const std::string source = "#include <cstdlib>\nint f() { return std::rand(); }\n";
    EXPECT_EQ(lint_source("src/logic/f.cpp", source).active_count(), 1U);
    EXPECT_EQ(lint_source("tools/f.cpp", source).active_count(), 0U);
}

// ---------------------------------------------------------------------------
// C: cancellation
// ---------------------------------------------------------------------------

TEST(LintCancellation, UnpolledEngineLoopFixtureIsCaught)
{
    const auto report = lint_file(fixture("src/core/c1_unpolled_loop.cpp"));
    EXPECT_EQ(count_id(report, CheckId::c_unpolled_loop), 1U)
        << "exactly the outer engine loop must be flagged, not the tiny inner one";
}

TEST(LintCancellation, MissingCountdownLatchFixtureIsCaught)
{
    const auto report = lint_file(fixture("src/core/c2_latch_missing.cpp"));
    EXPECT_EQ(count_id(report, CheckId::c_latch_missing), 1U);
}

TEST(LintCancellation, CleanFixturePasses)
{
    const auto report = lint_file(fixture("src/core/c_clean.cpp"));
    EXPECT_EQ(report.active_count(), 0U)
        << "a polled loop and a 0-latched countdown must both pass";
}

TEST(LintCancellation, UnpolledIncrementalLadderFixtureIsCaught)
{
    // the PR-10 shape: a persistent-solver ladder walk that accepts a
    // RunBudget but never polls it between solve_size calls
    const auto report = lint_file(fixture("src/layout/c1_incremental_ladder.cpp"));
    EXPECT_EQ(count_id(report, CheckId::c_unpolled_loop), 1U)
        << "the unpolled ladder loop must be flagged";
}

TEST(LintCancellation, PolledIncrementalLadderFixturePasses)
{
    const auto report = lint_file(fixture("src/layout/c_ladder_clean.cpp"));
    EXPECT_EQ(report.active_count(), 0U)
        << "a ladder walk that polls its budget per solve must pass";
}

TEST(LintCancellation, LatchesAreTrackedPerCountdownVariable)
{
    // the latched countdown must not excuse the unlatched one next to it
    const std::string source = R"(
        struct Engine
        {
            long poll_countdown{0};
            long flush_countdown{0};

            void tick(long check_stride)
            {
                if (--poll_countdown <= 0)
                {
                    poll_countdown = 0;
                }
                if (--flush_countdown <= 0)
                {
                    flush_countdown = check_stride;
                }
            }
        };
    )";
    const auto report = lint_source("src/core/x.cpp", source);
    EXPECT_EQ(count_id(report, CheckId::c_latch_missing), 1U)
        << "only flush_countdown lacks a 0-latch; poll_countdown's latch must not cover it";
}

TEST(LintCancellation, PollingViaCalleeCountsAsAPoll)
{
    // passing the budget into the callee is an accepted polling pattern
    const std::string source = R"(
        int step(const RunBudget& run);
        int drive(int n, const RunBudget& run)
        {
            int acc = 0;
            for (int i = 0; i < n; ++i)
            {
                for (int j = 0; j < n; ++j)
                {
                    acc += step(run);
                }
            }
            return acc;
        }
    )";
    EXPECT_EQ(lint_source("src/core/x.cpp", source).active_count(), 0U);
}

// ---------------------------------------------------------------------------
// A: arena-ref stability
// ---------------------------------------------------------------------------

TEST(LintArena, HandleAcrossAllocFixtureIsCaught)
{
    const auto report = lint_file(fixture("src/sat/a1_view_across_alloc.cpp"));
    EXPECT_EQ(count_id(report, CheckId::a_ref_across_alloc), 1U);
}

TEST(LintArena, RefetchedHandleFixturePasses)
{
    const auto report = lint_file(fixture("src/sat/a_clean.cpp"));
    EXPECT_EQ(report.active_count(), 0U)
        << "consuming before the alloc and re-fetching after it is the sanctioned pattern";
}

TEST(LintArena, CheckOnlyAppliesInArenaDirs)
{
    const std::string source = R"(
        int f(Arena& arena, unsigned ref)
        {
            const auto c = arena.view(ref);
            arena.alloc(3);
            return c[0];
        }
    )";
    EXPECT_EQ(lint_source("src/sat/f.cpp", source).active_count(), 1U);
    EXPECT_EQ(lint_source("src/phys/f.cpp", source).active_count(), 0U);
}

// ---------------------------------------------------------------------------
// W: waiver hygiene
// ---------------------------------------------------------------------------

TEST(LintWaivers, WaiverRoundTripSuppressesAndIsNotStale)
{
    const auto report = lint_file(fixture("src/logic/d2_waived.cpp"));
    EXPECT_EQ(report.active_count(), 0U);
    EXPECT_EQ(count_id(report, CheckId::d_unordered_iter, /*waived=*/true), 1U);
    ASSERT_EQ(report.waivers.size(), 1U);
    EXPECT_TRUE(report.waivers.front().used);
    EXPECT_FALSE(report.waivers.front().reason.empty());
}

TEST(LintWaivers, StaleWaiverIsAnError)
{
    const auto report = lint_file(fixture("src/logic/w1_stale_waiver.cpp"));
    EXPECT_EQ(count_id(report, CheckId::w_stale_waiver), 1U);
    EXPECT_EQ(report.active_count(), 1U);
}

TEST(LintWaivers, EmptyReasonIsAnErrorAndDoesNotSuppress)
{
    const auto report = lint_file(fixture("src/logic/w2_empty_reason.cpp"));
    EXPECT_EQ(count_id(report, CheckId::w_empty_reason), 1U);
    EXPECT_EQ(count_id(report, CheckId::d_unordered_iter), 1U)
        << "a reasonless waiver must not suppress the diagnostic underneath it";
}

TEST(LintWaivers, UnknownTagIsAnError)
{
    const auto report = lint_file(fixture("src/logic/w3_unknown_tag.cpp"));
    EXPECT_EQ(count_id(report, CheckId::w_unknown_tag), 1U);
}

TEST(LintWaivers, DisabledFamilyWaiverIsNotStale)
{
    // a waiver of a family that did not run cannot have been used — partial
    // --checks selections must not turn legitimate waivers into W1 failures
    const std::string source = R"(
        int step(int);
        int drive(int n, const RunBudget& run)
        {
            int acc = 0;
            // bestagon-lint: no-poll-ok(loop bounded by caller, sub-ms)
            for (int i = 0; i < n; ++i)
            {
                acc += step(acc) + step(i) + step(n) + step(acc + i) + step(acc - n) +
                       step(i * n) + step(acc * i) + step(acc + n) + step(i - n) + step(n * n);
            }
            return acc;
        }
    )";
    LintOptions all;
    const auto full = lint_source("src/core/x.cpp", source, all);
    EXPECT_EQ(count_id(full, CheckId::w_stale_waiver), 0U)
        << "with cancellation enabled the waiver is used, not stale";

    LintOptions partial;  // --checks=D,W
    partial.check_cancellation = false;
    partial.check_arena = false;
    const auto report = lint_source("src/core/x.cpp", source, partial);
    EXPECT_EQ(count_id(report, CheckId::w_stale_waiver), 0U)
        << "C never ran, so its waiver must not count as stale";
    EXPECT_EQ(report.active_count(), 0U);
}

TEST(LintWaivers, DocCommentsMentioningTheMarkerAreNotWaivers)
{
    const std::string source =
        "/// The waiver syntax is `// bestagon-lint: ordered-ok(reason)`.\n"
        "int x;\n";
    const auto report = lint_source("src/logic/doc.cpp", source);
    EXPECT_TRUE(report.waivers.empty());
    EXPECT_EQ(report.active_count(), 0U);
}

// ---------------------------------------------------------------------------
// drivers
// ---------------------------------------------------------------------------

TEST(LintDrivers, MissingFileReportsIoErrorInsteadOfThrowing)
{
    const auto report = lint_file(fixture("does/not/exist.cpp"));
    EXPECT_EQ(report.active_count(), 1U);
    EXPECT_EQ(count_id(report, CheckId::io_error), 1U)
        << "read failures are IO errors, not waiver-hygiene findings";
}

TEST(LintDrivers, DirectoryWalkIsSortedAndComplete)
{
    const auto reports = lint_paths({fixtures});
    ASSERT_GE(reports.size(), 11U);
    EXPECT_TRUE(std::is_sorted(reports.begin(), reports.end(),
                               [](const FileReport& a, const FileReport& b)
                               { return a.file < b.file; }));
    // the corpus as a whole is deliberately dirty
    std::size_t active = 0;
    for (const auto& r : reports)
    {
        active += r.active_count();
    }
    EXPECT_GT(active, 0U);
}

TEST(LintDrivers, CompileCommandsFileListIsParsedFilteredAndSorted)
{
    const auto dir = std::filesystem::temp_directory_path() / "bestagon_lint_test";
    std::filesystem::create_directories(dir);
    const auto json = dir / "compile_commands.json";
    {
        std::ofstream out{json};
        out << R"([
            {"directory": "/b", "command": "c++ -c z.cpp", "file": "/repo/src/sat/z.cpp"},
            {"directory": "/b", "command": "c++ -c a.cpp", "file": "/repo/src/logic/a.cpp"},
            {"directory": "/b", "command": "c++ -c a.cpp", "file": "/repo/src/logic/a.cpp"},
            {"directory": "/b", "command": "c++ -c t.cpp", "file": "/repo/tools/t.cpp"}
        ])";
    }
    const auto all = compile_commands_files(json.string());
    const std::vector<std::string> expected_all{"/repo/src/logic/a.cpp", "/repo/src/sat/z.cpp",
                                                "/repo/tools/t.cpp"};
    EXPECT_EQ(all, expected_all);
    const auto filtered = compile_commands_files(json.string(), "src/");
    const std::vector<std::string> expected_filtered{"/repo/src/logic/a.cpp",
                                                     "/repo/src/sat/z.cpp"};
    EXPECT_EQ(filtered, expected_filtered);
    std::filesystem::remove_all(dir);
}

TEST(LintDrivers, FormatIsStable)
{
    const Diagnostic d{CheckId::d_unordered_iter, "src/logic/x.cpp", 12, "msg", false};
    EXPECT_EQ(format(d), "src/logic/x.cpp:12: [D2] msg");
}

// ---------------------------------------------------------------------------
// the real gate: the live tree must be clean
// ---------------------------------------------------------------------------

TEST(LintGate, LiveSourceTreeIsClean)
{
    const auto reports = lint_paths({BESTAGON_SRC_DIR});
    ASSERT_GT(reports.size(), 50U) << "the walk must actually find the source tree";
    std::size_t active = 0;
    std::size_t waived = 0;
    for (const auto& r : reports)
    {
        for (const auto& d : r.diagnostics)
        {
            if (d.waived)
            {
                ++waived;
                continue;
            }
            ++active;
            ADD_FAILURE() << format(d);
        }
    }
    EXPECT_EQ(active, 0U);
    EXPECT_GT(waived, 0U) << "the tree carries justified waivers; they must keep suppressing";
}

}  // namespace
