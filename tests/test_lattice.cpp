#include "phys/lattice.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon::phys;

TEST(Lattice, SitePositions)
{
    const SiDBSite origin{0, 0, 0};
    EXPECT_DOUBLE_EQ(origin.x(), 0.0);
    EXPECT_DOUBLE_EQ(origin.y(), 0.0);

    const SiDBSite s{3, 2, 1};
    EXPECT_DOUBLE_EQ(s.x(), 3 * 0.384);
    EXPECT_DOUBLE_EQ(s.y(), 2 * 0.768 + 0.225);
}

TEST(Lattice, DimerPairSpacing)
{
    // the two atoms of a dimer pair are 2.25 A apart
    EXPECT_NEAR(distance_nm({0, 0, 0}, {0, 0, 1}), 0.225, 1e-12);
}

TEST(Lattice, ColumnAndRowPitches)
{
    EXPECT_NEAR(distance_nm({0, 0, 0}, {1, 0, 0}), 0.384, 1e-12);
    EXPECT_NEAR(distance_nm({0, 0, 0}, {0, 1, 0}), 0.768, 1e-12);
}

TEST(Lattice, DistanceIsSymmetric)
{
    const SiDBSite a{2, 3, 0}, b{7, 1, 1};
    EXPECT_DOUBLE_EQ(distance_nm(a, b), distance_nm(b, a));
    EXPECT_DOUBLE_EQ(distance_nm(a, a), 0.0);
}

TEST(Lattice, TranslationPreservesDistances)
{
    const SiDBSite a{2, 3, 0}, b{7, 1, 1};
    const auto at = a.translated(10, -2);
    const auto bt = b.translated(10, -2);
    EXPECT_DOUBLE_EQ(distance_nm(a, b), distance_nm(at, bt));
}

TEST(Lattice, OrderingIsTotal)
{
    const SiDBSite a{0, 0, 0}, b{0, 0, 1}, c{1, 0, 0};
    EXPECT_LT(a, b);
    EXPECT_LT(a, c);
    EXPECT_EQ(a, (SiDBSite{0, 0, 0}));
}

/// The Bestagon tile is 60 columns x 24 rows = 23.04 nm x 18.43 nm, which
/// reproduces the paper's ~407-424 nm^2 per-tile area scale.
TEST(Lattice, BestagonTileDimensions)
{
    EXPECT_NEAR(60 * lattice_pitch_x, 23.04, 1e-9);
    EXPECT_NEAR(24 * lattice_pitch_y, 18.432, 1e-9);
}

}  // namespace
