#include "io/bench_reader.hpp"

#include "logic/benchmarks.hpp"

#include <gtest/gtest.h>

namespace
{

using namespace bestagon;

TEST(BenchReader, ParsesC17)
{
    const auto net = io::read_bench_string(R"(
        # ISCAS-85 c17
        INPUT(1)
        INPUT(2)
        INPUT(3)
        INPUT(6)
        INPUT(7)
        OUTPUT(22)
        OUTPUT(23)
        10 = NAND(1, 3)
        11 = NAND(3, 6)
        16 = NAND(2, 11)
        19 = NAND(11, 7)
        22 = NAND(10, 16)
        23 = NAND(16, 19)
    )");
    EXPECT_EQ(net.num_pis(), 5U);
    EXPECT_EQ(net.num_pos(), 2U);
    EXPECT_TRUE(logic::functionally_equivalent(net, logic::find_benchmark("c17")->build()));
}

TEST(BenchReader, HandlesUnorderedDefinitions)
{
    const auto net = io::read_bench_string(R"(
        INPUT(a)
        INPUT(b)
        OUTPUT(f)
        f = NOT(w)      # uses w before its definition
        w = AND(a, b)
    )");
    EXPECT_EQ(net.simulate()[0].to_binary(), "0111");
}

TEST(BenchReader, DecomposesWideGates)
{
    const auto net = io::read_bench_string(R"(
        INPUT(a)
        INPUT(b)
        INPUT(c)
        OUTPUT(f)
        f = NOR(a, b, c)
    )");
    const auto f = net.simulate()[0];
    for (unsigned t = 0; t < 8; ++t)
    {
        EXPECT_EQ(f.get_bit(t), t == 0);
    }
}

TEST(BenchReader, XorAndBuf)
{
    const auto net = io::read_bench_string(R"(
        INPUT(x)
        INPUT(y)
        OUTPUT(p)
        OUTPUT(q)
        p = XOR(x, y)
        q = BUFF(x)
    )");
    const auto tts = net.simulate();
    EXPECT_EQ(tts[0].to_binary(), "0110");
    EXPECT_EQ(tts[1].to_binary(), "1010");
}

TEST(BenchReader, CycleIsRejected)
{
    EXPECT_THROW(static_cast<void>(io::read_bench_string(R"(
        INPUT(a)
        OUTPUT(f)
        f = AND(a, g)
        g = NOT(f)
    )")),
                 std::runtime_error);
}

TEST(BenchReader, UndefinedOutputIsRejected)
{
    EXPECT_THROW(static_cast<void>(io::read_bench_string(R"(
        INPUT(a)
        OUTPUT(ghost)
    )")),
                 std::runtime_error);
}

TEST(BenchReader, UnsupportedGateIsRejected)
{
    EXPECT_THROW(static_cast<void>(io::read_bench_string(R"(
        INPUT(a)
        INPUT(b)
        INPUT(c)
        OUTPUT(f)
        f = MUX(a, b, c)
    )")),
                 std::runtime_error);
}

}  // namespace
