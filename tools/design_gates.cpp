/// \file design_gates.cpp
/// \brief Offline gate-design runner — the tool that produced the canvas
///        coordinates frozen in src/layout/bestagon_library.cpp.
///
/// Usage: design_gates <gate> [seed] [iterations] [restarts] [threads] [retries]
///   gate in {or, and, nor, nand, xor, xnor, inv, inv_diag, fanout, ha}
///   restarts: independent search restarts (default 1; restart 0 reproduces
///             the single-restart trajectory bit-for-bit)
///   threads:  0 = hardware concurrency (default), 1 = serial
///   retries:  extra full-search attempts with a rotated base seed when all
///             restarts fail (default 0)
///
/// Ctrl-C stops the search cooperatively at the next poll point; a second
/// Ctrl-C hard-exits.
///
/// For each gate it builds the standard-tile skeleton (port pairs, wires,
/// drivers, output perturbers, target function), then runs the stochastic
/// canvas search (the stand-in for the paper's RL agent [28]) until the
/// design passes the exhaustive operational check at the library calibration
/// point (mu = -0.32 eV, eps_r = 5.6, lambda_TF = 5 nm). Successful canvases
/// are printed in a form that can be pasted into the library source.
///
/// Gates whose non-inverting version is already in the library (nor, nand,
/// xnor) keep that canvas in the skeleton and search only for the
/// polarization-flipping dots near the output chain — the mechanism the
/// designer discovered for the straight inverter.

#include "core/run_control.hpp"
#include "layout/bestagon_library.hpp"
#include "phys/gate_designer.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace bestagon;
using phys::GateDesign;
using phys::SiDBSite;

namespace
{

logic::TruthTable tt(const char* bits)
{
    return logic::TruthTable::from_binary(bits);
}

void add_input_nw(GateDesign& d)
{
    for (const SiDBSite s :
         {SiDBSite{15, 1, 0}, {15, 2, 0}, {20, 4, 1}, {22, 5, 0}, {25, 7, 1}, {27, 8, 0}})
    {
        d.sites.push_back(s);
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
}

void add_input_ne(GateDesign& d)
{
    for (const SiDBSite s :
         {SiDBSite{45, 1, 0}, {45, 2, 0}, {40, 4, 1}, {38, 5, 0}, {35, 7, 1}, {33, 8, 0}})
    {
        d.sites.push_back(s);
    }
    d.input_pairs.push_back({{45, 1, 0}, {45, 2, 0}});
    d.drivers.push_back({{45, -3, 0}, {45, -2, 0}});
}

void add_output_se(GateDesign& d)
{
    for (const SiDBSite s :
         {SiDBSite{35, 14, 1}, {37, 15, 0}, {40, 17, 1}, {42, 18, 0}, {45, 21, 0}, {45, 22, 0}})
    {
        d.sites.push_back(s);
    }
    d.output_pairs.push_back({{45, 21, 0}, {45, 22, 0}});
    d.output_perturbers.push_back({45, 25, 1});
}

void add_output_sw(GateDesign& d)
{
    for (const SiDBSite s :
         {SiDBSite{25, 14, 1}, {23, 15, 0}, {20, 17, 1}, {18, 18, 0}, {15, 21, 0}, {15, 22, 0}})
    {
        d.sites.push_back(s);
    }
    d.output_pairs.push_back({{15, 21, 0}, {15, 22, 0}});
    d.output_perturbers.push_back({15, 25, 1});
}

std::vector<SiDBSite> grid(int n0, int n1, int m0, int m1)
{
    std::vector<SiDBSite> cells;
    for (int n = n0; n <= n1; ++n)
    {
        for (int m = m0; m <= m1; ++m)
        {
            cells.push_back({n, m, 0});
            cells.push_back({n, m, 1});
        }
    }
    return cells;
}

}  // namespace

int main(int argc, char** argv)
{
    if (argc < 2)
    {
        std::printf("usage: design_gates <or|and|nor|nand|xor|xnor|inv|inv_diag|fanout|ha> "
                    "[seed] [iterations] [restarts] [threads] [retries]\n");
        return 2;
    }
    const std::string gate = argv[1];
    const unsigned seed = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 1;
    const unsigned iterations = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 20000;
    const unsigned restarts = argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 1;
    const unsigned threads = argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 0;
    const unsigned retries = argc > 6 ? static_cast<unsigned>(std::atoi(argv[6])) : 0;

    phys::SimulationParameters params;  // library calibration point
    params.num_threads = threads;
    GateDesign d;
    d.name = gate;
    std::vector<SiDBSite> candidates;
    phys::DesignerOptions options;
    options.seed = 0xbe57a60 + seed;
    options.max_iterations = iterations;
    options.min_canvas_dots = 1;
    options.max_canvas_dots = 6;
    options.num_restarts = restarts;
    options.num_threads = threads;
    options.max_retries = retries;
    options.run.token = core::install_sigint_stop();

    if (gate == "or" || gate == "and" || gate == "xor")
    {
        add_input_nw(d);
        add_input_ne(d);
        add_output_se(d);
        d.functions.push_back(tt(gate == "or" ? "1110" : gate == "and" ? "1000" : "0110"));
        candidates = grid(20, 40, 9, 14);
        options.max_canvas_dots = gate == "xor" ? 8 : 6;
    }
    else if (gate == "nor" || gate == "nand" || gate == "xnor")
    {
        // keep the validated non-inverting canvas; search for the
        // polarization-flipping dots near the output chain
        add_input_nw(d);
        add_input_ne(d);
        add_output_se(d);
        if (gate == "nor")
        {
            d.sites.push_back({34, 9, 0});  // the OR canvas
            d.functions.push_back(tt("0001"));
        }
        else if (gate == "nand")
        {
            d.sites.push_back({29, 10, 0});  // the AND canvas
            d.functions.push_back(tt("0111"));
        }
        else
        {
            d.functions.push_back(tt("1001"));
            options.max_canvas_dots = 8;
        }
        candidates = grid(28, 44, 13, 20);
        options.min_canvas_dots = 2;
    }
    else if (gate == "inv")
    {
        for (const int m : {1, 5, 9})
        {
            d.sites.push_back({15, m, 0});
            d.sites.push_back({15, m + 1, 0});
        }
        for (const int m : {17, 21})
        {
            d.sites.push_back({15, m, 0});
            d.sites.push_back({15, m + 1, 0});
        }
        d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
        d.output_pairs.push_back({{15, 21, 0}, {15, 22, 0}});
        d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
        d.output_perturbers.push_back({15, 25, 1});
        d.functions.push_back(tt("01"));
        candidates = grid(6, 28, 7, 16);
        options.min_canvas_dots = 2;
        options.max_canvas_dots = 7;
    }
    else if (gate == "inv_diag")
    {
        d.sites.push_back({15, 1, 0});
        d.sites.push_back({15, 2, 0});
        d.sites.push_back({15, 5, 0});
        d.sites.push_back({15, 6, 0});
        d.sites.push_back({40, 17, 1});
        d.sites.push_back({42, 18, 0});
        d.sites.push_back({45, 21, 0});
        d.sites.push_back({45, 22, 0});
        d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
        d.output_pairs.push_back({{45, 21, 0}, {45, 22, 0}});
        d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
        d.output_perturbers.push_back({45, 25, 1});
        d.functions.push_back(tt("01"));
        candidates = grid(12, 40, 7, 16);
        options.min_canvas_dots = 2;
        options.max_canvas_dots = 8;
    }
    else if (gate == "fanout")
    {
        add_input_nw(d);
        add_output_sw(d);
        add_output_se(d);
        d.functions.push_back(tt("10"));
        d.functions.push_back(tt("10"));
        candidates = grid(20, 40, 8, 14);
    }
    else if (gate == "ha")
    {
        add_input_nw(d);
        add_input_ne(d);
        add_output_sw(d);
        add_output_se(d);
        d.functions.push_back(tt("0110"));  // sum -> SW
        d.functions.push_back(tt("1000"));  // carry -> SE
        candidates = grid(20, 40, 9, 14);
        options.min_canvas_dots = 2;
        options.max_canvas_dots = 8;
    }
    else
    {
        std::printf("unknown gate '%s'\n", gate.c_str());
        return 2;
    }

    std::printf("designing '%s' (seed %u, %u iterations, %u restart(s), %zu candidates)...\n",
                gate.c_str(), seed, iterations, restarts, candidates.size());
    const auto result = phys::design_gate(d, candidates, options, params);
    if (!result.has_value())
    {
        if (core::sigint_received())
        {
            std::printf("GATE %s seed=%u INTERRUPTED (no design found before the stop)\n",
                        gate.c_str(), seed);
            return 130;
        }
        std::printf("GATE %s seed=%u FAILED after %u iterations x %u restarts x %u attempt(s)\n",
                    gate.c_str(), seed, iterations, restarts, retries + 1);
        return 1;
    }
    std::printf("GATE %s seed=%u OK after %u iterations (restart %u, retry %u); canvas:",
                gate.c_str(), seed, result->iterations_used, result->restart_used,
                result->retries_used);
    for (const auto& s : result->canvas)
    {
        std::printf(" {%d, %d, %d},", s.n, s.m, s.l);
    }
    std::printf("\n");
    return 0;
}
