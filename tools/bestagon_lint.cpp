/// \file bestagon_lint.cpp
/// \brief CLI driver for the project-specific invariant checks (src/analysis).
///
/// Usage:
///   bestagon_lint [options] [paths...]
///     paths                  files, or directories recursed for .hpp/.cpp
///     --compile-commands=F   lint the "file" entries of a
///                            compile_commands.json (combine with --filter)
///     --filter=SUBSTR        keep only compile-commands entries whose path
///                            contains SUBSTR (default: src/)
///     --checks=D,C,A,W       enable only the listed check families
///     --include-waived       also print (waived) diagnostics
///     --list-checks          print the check catalog and exit
///
/// Exit status: 0 clean, 1 diagnostics found, 2 usage or IO error.

#include "analysis/lint.hpp"

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace
{

using namespace bestagon::analysis;

void print_catalog()
{
    std::puts(
        "bestagon_lint check catalog (waive with `// bestagon-lint: tag(reason)`\n"
        "on the flagged line or the line above; see DESIGN.md §12):\n"
        "  D1  banned nondeterministic source (std::rand/srand, random_device,\n"
        "      system_clock) in result-affecting code        [waiver: rng-ok]\n"
        "  D2  range-for / iterator traversal of an unordered container in\n"
        "      result-affecting code                         [waiver: ordered-ok]\n"
        "  C1  loop does engine work without polling the function's\n"
        "      RunBudget/StopToken/Deadline parameter        [waiver: no-poll-ok]\n"
        "  C2  budget-poll countdown reset from its stride without a 0-latch\n"
        "      (a fired budget would un-fire)                [waiver: latch-ok]\n"
        "  A1  clause-arena handle (ClauseView/Clause*) used across a call\n"
        "      that may allocate or GC the arena             [waiver: ref-ok]\n"
        "  W1  stale waiver (suppresses nothing)             [not waivable]\n"
        "  W2  waiver without a reason                       [not waivable]\n"
        "  W3  unknown waiver tag                            [not waivable]");
}

}  // namespace

int main(int argc, char** argv)
{
    std::vector<std::string> paths;
    std::string compile_commands;
    std::string filter = "src/";
    bool include_waived = false;
    LintOptions options;

    for (int i = 1; i < argc; ++i)
    {
        const std::string_view arg{argv[i]};
        if (arg == "--list-checks")
        {
            print_catalog();
            return 0;
        }
        if (arg == "--include-waived")
        {
            include_waived = true;
        }
        else if (arg.rfind("--compile-commands=", 0) == 0)
        {
            compile_commands = std::string{arg.substr(19)};
        }
        else if (arg.rfind("--filter=", 0) == 0)
        {
            filter = std::string{arg.substr(9)};
        }
        else if (arg.rfind("--checks=", 0) == 0)
        {
            const std::string_view list = arg.substr(9);
            options.check_determinism = list.find('D') != std::string_view::npos;
            options.check_cancellation = list.find('C') != std::string_view::npos;
            options.check_arena = list.find('A') != std::string_view::npos;
            options.check_waivers = list.find('W') != std::string_view::npos;
        }
        else if (arg.rfind("--", 0) == 0)
        {
            std::fprintf(stderr, "bestagon_lint: unknown option '%s'\n", argv[i]);
            return 2;
        }
        else
        {
            paths.emplace_back(arg);
        }
    }

    if (!compile_commands.empty())
    {
        auto files = compile_commands_files(compile_commands, filter);
        if (files.empty())
        {
            std::fprintf(stderr, "bestagon_lint: no matching files in %s\n",
                         compile_commands.c_str());
            return 2;
        }
        paths.insert(paths.end(), files.begin(), files.end());
    }
    if (paths.empty())
    {
        std::fprintf(stderr,
                     "usage: bestagon_lint [--compile-commands=F] [--filter=S] "
                     "[--checks=D,C,A,W] [--include-waived] [--list-checks] paths...\n");
        return 2;
    }

    std::size_t active = 0;
    std::size_t waived = 0;
    std::size_t files = 0;
    std::size_t io_errors = 0;
    for (const auto& report : lint_paths(paths, options))
    {
        ++files;
        for (const auto& d : report.diagnostics)
        {
            if (d.id == CheckId::io_error)
            {
                ++io_errors;
                std::fprintf(stderr, "%s\n", format(d).c_str());
                continue;
            }
            if (d.waived)
            {
                ++waived;
                if (include_waived)
                {
                    std::printf("%s\n", format(d).c_str());
                }
                continue;
            }
            ++active;
            std::printf("%s\n", format(d).c_str());
        }
    }
    std::printf("bestagon_lint: %zu file(s), %zu diagnostic(s), %zu waived\n", files, active,
                waived);
    if (io_errors != 0)
    {
        return 2;
    }
    return active == 0 ? 0 : 1;
}
