/// \file defect_sweep.cpp
/// \brief Monte-Carlo defect yield sweep over Bestagon library tiles.
///
/// Usage: defect_sweep [gate] [samples] [seed] [threads] [out.json]
///   gate:    a library design name (e.g. "or", "and", "wire") or "all"
///            (default) for every simulation-validated implementation
///   samples: Monte-Carlo samples per density (default 100)
///   seed:    base seed; sample s derives its own stream (default 0xbe57a60d)
///   threads: 0 = hardware concurrency (default), 1 = serial
///   out.json: output path (default "defect_yield.json"); with multiple
///             gates the file holds a JSON array of per-gate yield curves
///
/// For each gate the tool samples seeded defect surfaces (charged +
/// structural, fab-realistic densities) around the tile footprint and
/// reports the per-density yield: the fraction of surfaces on which the
/// gate remains operational at the library calibration point (mu = -0.32
/// eV, eps_r = 5.6, lambda_TF = 5 nm). The curves are survival curves —
/// monotonically non-increasing in the density — and bit-identical for any
/// thread count.

#include "layout/bestagon_library.hpp"
#include "phys/defect_sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace bestagon;

int main(int argc, char** argv)
{
    const std::string gate_arg = argc > 1 ? argv[1] : "all";
    phys::DefectSweepParams sweep;
    sweep.samples = argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 0)) : 100U;
    if (argc > 3)
    {
        sweep.seed = std::strtoull(argv[3], nullptr, 0);
    }
    sweep.num_threads = argc > 4 ? static_cast<unsigned>(std::strtoul(argv[4], nullptr, 0)) : 0U;
    const std::string out_path = argc > 5 ? argv[5] : "defect_yield.json";

    // one sweep per distinct design name (the library holds one entry per
    // port orientation; mirrored variants have statistically identical yield)
    std::vector<const phys::GateDesign*> designs;
    std::vector<std::string> seen;
    for (const auto& impl : layout::BestagonLibrary::instance().all())
    {
        if (!impl.simulation_validated)
        {
            continue;
        }
        if (gate_arg != "all" && impl.design.name != gate_arg)
        {
            continue;
        }
        if (std::find(seen.begin(), seen.end(), impl.design.name) != seen.end())
        {
            continue;
        }
        seen.push_back(impl.design.name);
        designs.push_back(&impl.design);
    }
    if (designs.empty())
    {
        std::fprintf(stderr, "defect_sweep: no validated library design named '%s'\n",
                     gate_arg.c_str());
        return 1;
    }

    const phys::SimulationParameters params;  // library calibration point
    std::string json = designs.size() > 1 ? "[\n" : "";
    for (std::size_t g = 0; g < designs.size(); ++g)
    {
        const auto& design = *designs[g];
        std::printf("sweeping '%s' (%zu sites, %u inputs, %u samples x %zu densities)...\n",
                    design.name.c_str(), design.sites.size(), design.num_inputs(), sweep.samples,
                    sweep.densities_per_nm2.size());
        const auto result = phys::defect_yield_sweep(design, params, sweep);
        for (const auto& p : result.points)
        {
            std::printf("  density %.4f /nm^2: yield %5.1f%%  (%u/%u operational, %u blocked)\n",
                        p.density_per_nm2, 100.0 * p.yield(), p.operational, p.samples_evaluated,
                        p.blocked);
        }
        json += phys::to_json(result);
        if (designs.size() > 1 && g + 1 < designs.size())
        {
            json += ",\n";
        }
    }
    if (designs.size() > 1)
    {
        json += "]\n";
    }

    std::ofstream out{out_path};
    if (!out)
    {
        std::fprintf(stderr, "defect_sweep: cannot write '%s'\n", out_path.c_str());
        return 1;
    }
    out << json;
    std::printf("yield curves written to %s\n", out_path.c_str());
    return 0;
}
