/// \file proof_check.cpp
/// \brief Command-line DRAT proof checker.
///
/// Usage: proof_check <formula.cnf> <proof.drat> [--all-lemmas]
///
/// Validates that the DRAT proof refutes the DIMACS CNF formula. Exit code 0
/// means the proof is valid (s VERIFIED), 1 means it is not (s NOT VERIFIED),
/// 2 means the inputs could not be read.

#include "sat/dimacs.hpp"
#include "sat/proof.hpp"
#include "sat/proof_check.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

namespace
{

int usage(const char* argv0)
{
    std::cerr << "usage: " << argv0 << " <formula.cnf> <proof.drat> [--all-lemmas]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv)
{
    using namespace bestagon::sat;

    std::string cnf_path, drat_path;
    auto mode = ProofCheckMode::refutation;
    for (int i = 1; i < argc; ++i)
    {
        if (std::strcmp(argv[i], "--all-lemmas") == 0)
        {
            mode = ProofCheckMode::all_lemmas;
        }
        else if (cnf_path.empty())
        {
            cnf_path = argv[i];
        }
        else if (drat_path.empty())
        {
            drat_path = argv[i];
        }
        else
        {
            return usage(argv[0]);
        }
    }
    if (cnf_path.empty() || drat_path.empty())
    {
        return usage(argv[0]);
    }

    Cnf cnf;
    DratProof proof;
    try
    {
        std::ifstream cnf_in{cnf_path};
        if (!cnf_in)
        {
            std::cerr << "error: cannot open " << cnf_path << '\n';
            return 2;
        }
        cnf = read_dimacs(cnf_in);

        std::ifstream drat_in{drat_path};
        if (!drat_in)
        {
            std::cerr << "error: cannot open " << drat_path << '\n';
            return 2;
        }
        proof = read_drat(drat_in);
    }
    catch (const std::exception& e)
    {
        std::cerr << "error: " << e.what() << '\n';
        return 2;
    }

    const auto res = check_drat_proof(cnf, proof, mode);
    std::cout << "c formula: " << cnf.num_vars << " vars, " << cnf.clauses.size() << " clauses\n"
              << "c proof:   " << proof.steps.size() << " steps, " << res.num_lemmas
              << " lemmas\n"
              << "c checked: " << res.checked_lemmas << " lemmas (" << res.core_lemmas
              << " core), " << res.core_formula_clauses << " core formula clauses, "
              << res.propagations << " propagations\n";
    if (res.valid)
    {
        std::cout << "s VERIFIED\n";
        return 0;
    }
    std::cout << "c " << res.error << '\n' << "s NOT VERIFIED\n";
    return 1;
}
