module mux21(a, b, s, f);
  input a;
  input b;
  input s;
  output f;
  wire w0;
  wire w1;
  wire w2;
  wire w3;
  assign w0 = ~s;
  assign w1 = a & w0;
  assign w2 = b & s;
  assign w3 = w1 | w2;
  assign f = w3;
endmodule
