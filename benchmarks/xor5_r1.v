module xor5_r1(a, b, c, d, e, par);
  input a;
  input b;
  input c;
  input d;
  input e;
  output par;
  wire w0;
  wire w1;
  wire w2;
  wire w3;
  assign w0 = a ^ b;
  assign w1 = c ^ d;
  assign w2 = w0 ^ w1;
  assign w3 = w2 ^ e;
  assign par = w3;
endmodule
