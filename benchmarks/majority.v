module majority(a, b, c, maj);
  input a;
  input b;
  input c;
  output maj;
  wire w0;
  assign w0 = (a & b) | (a & c) | (b & c);
  assign maj = w0;
endmodule
