module par_check(a, b, c, d, ok);
  input a;
  input b;
  input c;
  input d;
  output ok;
  wire w0;
  wire w1;
  wire w2;
  assign w0 = a ^ b;
  assign w1 = c ^ d;
  assign w2 = ~(w0 ^ w1);
  assign ok = w2;
endmodule
