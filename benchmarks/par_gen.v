module par_gen(a, b, c, par);
  input a;
  input b;
  input c;
  output par;
  wire w0;
  wire w1;
  assign w0 = a ^ b;
  assign w1 = w0 ^ c;
  assign par = w1;
endmodule
