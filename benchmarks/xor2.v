module xor2(a, b, f);
  input a;
  input b;
  output f;
  wire w0;
  assign w0 = a ^ b;
  assign f = w0;
endmodule
