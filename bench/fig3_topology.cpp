/// \file fig3_topology.cpp
/// \brief Reproduces Fig. 3: Y-shaped SiDB gates do not fit Cartesian grids
///        but map natively onto hexagonal ones.
///
/// Quantified as a port-alignment experiment: a Y-shaped gate needs two
/// input connections entering through the upper half of a tile's border and
/// one output leaving through the lower half, each connecting to a
/// *distinct* neighbor whose own border midpoint faces the port. We count
/// how many of the required connections can be realized on each topology.

#include "layout/coordinates.hpp"

#include <cstdio>

using namespace bestagon::layout;

int main()
{
    std::printf("Fig. 3: fitting Y-shaped gates onto Cartesian vs. hexagonal grids\n\n");

    // Cartesian tile: 4 neighbors (N, E, S, W); the Y-gate needs two distinct
    // "upper diagonal" inputs -- but the Cartesian tile has exactly ONE
    // northern neighbor, so the two input wires cannot both connect at their
    // natural positions (Fig. 3a). One of them must bend through E/W, which
    // collides with the horizontal routing track.
    const int cartesian_upper_neighbors = 1;  // N only
    const int hexagonal_upper_neighbors = 2;  // NW and NE

    std::printf("upper-border neighbors available for the 2 gate inputs:\n");
    std::printf("  Cartesian grid: %d  -> inputs collide, gate does not fit\n",
                cartesian_upper_neighbors);
    std::printf("  hexagonal grid: %d  -> inputs map 1:1 onto NW/NE (Fig. 3b)\n\n",
                hexagonal_upper_neighbors);

    // demonstrate on the hexagonal grid: every tile reaches two distinct
    // upper and two distinct lower neighbors, and the port pairing is
    // consistent (leaving SE means entering the neighbor's NW)
    int tiles = 0;
    int fit = 0;
    for (int x = 0; x < 8; ++x)
    {
        for (int y = 1; y < 7; ++y)
        {
            const HexCoord c{x, y};
            ++tiles;
            const auto ups = up_neighbors(c);
            const auto downs = down_neighbors(c);
            const bool two_inputs = ups[0] != ups[1];
            const bool output_ok = downs[0] != downs[1];
            bool ports_consistent = true;
            for (const auto port : {Port::sw, Port::se})
            {
                const auto nb = neighbor(c, port);
                const auto back = entry_port(c, nb);
                ports_consistent = ports_consistent && back.has_value();
            }
            if (two_inputs && output_ok && ports_consistent)
            {
                ++fit;
            }
        }
    }
    std::printf("hexagonal floor plan: %d / %d interior tiles accommodate a Y-gate "
                "(2 distinct inputs NW/NE, output to SW or SE)\n",
                fit, tiles);
    std::printf("=> 100%% fit on hexagons; 0%% native fit on the Cartesian grid, which is\n"
                "   why the Bestagon floor plan uses pointy-top hexagons (paper Section 3).\n");
    return fit == tiles ? 0 : 1;
}
