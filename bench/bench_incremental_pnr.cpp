/// \file bench_incremental_pnr.cpp
/// \brief Incremental vs. fresh-per-size exact P&R (results:
///        BENCH_incremental_pnr.json).
///
/// Two views on the PR's tentpole claim — that walking the aspect-ratio
/// ladder on ONE persistent solver (sizes selected by assumptions, learned
/// clauses carried across ratios) beats re-encoding every size from scratch:
///
///  1. BM_ExactPnrLadder{Incremental,Fresh}/<name> — one exact_physical_design
///     call on a single mapped benchmark; Incremental uses the persistent
///     solver (ExactPDOptions::incremental = true, the new default), Fresh
///     the legacy fresh-encoding-per-size lane. Mapping runs outside the
///     timed region.
///  2. BM_Table1ExactPnr{Incremental,Fresh} — the whole Table-1 suite's
///     exact P&R in one iteration (the paper-scale wall-clock number the
///     ROADMAP tracks); every produced layout is consumed so the work cannot
///     be optimized away.

#include "layout/exact_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <benchmark/benchmark.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace
{

using namespace bestagon;

const logic::LogicNetwork& mapped(const std::string& name)
{
    static std::map<std::string, logic::LogicNetwork> cache;
    const auto it = cache.find(name);
    if (it != cache.end())
    {
        return it->second;
    }
    const auto* bm = logic::find_benchmark(name);
    if (bm == nullptr)
    {
        throw std::runtime_error{"unknown benchmark: " + name};
    }
    logic::NpnDatabase db;
    return cache
        .emplace(name, logic::map_to_bestagon(logic::rewrite(logic::to_xag(bm->build()), db)))
        .first->second;
}

layout::ExactPDOptions options_for(bool incremental)
{
    layout::ExactPDOptions options;
    options.incremental = incremental;
    return options;
}

void exact_pnr_single(benchmark::State& state, const std::string& name, bool incremental)
{
    const auto& net = mapped(name);
    const auto options = options_for(incremental);
    // NOTE: deliberately no DoNotOptimize here — the engine is an opaque
    // external call (cannot be elided), and routing a later-branched-on value
    // through DoNotOptimize trips a GCC multi-alternative-asm-constraint bug
    // in google benchmark's "+m,r" operand (the store feeding the asm is
    // dropped, so the post-loop read sees stack garbage).
    unsigned long failures = 0;
    for (auto _ : state)
    {
        const auto result = layout::exact_physical_design(net, options);
        if (!result.has_value())
        {
            ++failures;
        }
    }
    if (failures != 0)
    {
        state.SkipWithError("exact engine failed to place the benchmark");
    }
}

void BM_ExactPnrLadderIncremental(benchmark::State& state, const std::string& name)
{
    exact_pnr_single(state, name, true);
}

void BM_ExactPnrLadderFresh(benchmark::State& state, const std::string& name)
{
    exact_pnr_single(state, name, false);
}

BENCHMARK_CAPTURE(BM_ExactPnrLadderIncremental, mux21, std::string{"mux21"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExactPnrLadderFresh, mux21, std::string{"mux21"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExactPnrLadderIncremental, par_check, std::string{"par_check"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExactPnrLadderFresh, par_check, std::string{"par_check"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExactPnrLadderIncremental, c17, std::string{"c17"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExactPnrLadderFresh, c17, std::string{"c17"})
    ->Unit(benchmark::kMillisecond);

/// The Table-1-scale number: exact P&R over every benchmark of the paper's
/// Table 1 back to back, sharing nothing across networks (each gets its own
/// ladder — the persistence under test is per ladder, not per suite).
void table1_sweep(benchmark::State& state, bool incremental)
{
    // map everything up front so the timed region is pure P&R
    std::vector<const logic::LogicNetwork*> nets;
    for (const auto& bm : logic::table1_benchmarks())
    {
        nets.push_back(&mapped(bm.name));
    }
    const auto options = options_for(incremental);
    for (auto _ : state)
    {
        unsigned placed = 0;
        for (const auto* net : nets)
        {
            const auto result = layout::exact_physical_design(*net, options);
            placed += result.has_value() ? 1 : 0;
        }
        if (placed != nets.size())
        {
            state.SkipWithError("a Table-1 benchmark failed to place");
        }
    }
}

void BM_Table1ExactPnrIncremental(benchmark::State& state)
{
    table1_sweep(state, true);
}
BENCHMARK(BM_Table1ExactPnrIncremental)->Unit(benchmark::kMillisecond);

void BM_Table1ExactPnrFresh(benchmark::State& state)
{
    table1_sweep(state, false);
}
BENCHMARK(BM_Table1ExactPnrFresh)->Unit(benchmark::kMillisecond);

}  // namespace
