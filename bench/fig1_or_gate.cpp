/// \file fig1_or_gate.cpp
/// \brief Reproduces Fig. 1c: ground-state simulation of the Y-shaped BDL OR
///        gate (eps_r = 5.6, lambda_TF = 5 nm). The paper demonstrates the
///        OR gate of Huff et al. at mu = -0.28 eV; our automatically designed
///        Bestagon OR tile is calibrated at the library's Fig. 5 parameter
///        point (mu = -0.32 eV). Both points are simulated and reported.

#include "io/render.hpp"
#include "layout/bestagon_library.hpp"
#include "phys/exhaustive.hpp"
#include "phys/operational.hpp"

#include <cstdio>

using namespace bestagon;

namespace
{

bool run_point(const phys::GateDesign& design, double mu, bool print_config)
{
    phys::SimulationParameters params;
    params.mu_minus = mu;
    params.epsilon_r = 5.6;
    params.lambda_tf = 5.0;

    std::printf("mu = %.2f eV:\n", mu);
    std::printf("  %-8s %-8s %-10s %-14s %-12s %s\n", "input A", "input B", "output", "F [eV]",
                "degeneracy", "verdict");
    bool all_ok = true;
    for (std::uint64_t pattern = 0; pattern < 4; ++pattern)
    {
        const auto r = phys::simulate_gate_pattern(design, pattern, params, phys::Engine::exhaustive);
        const char* out = r.output_states[0] == phys::PairState::one    ? "1"
                          : r.output_states[0] == phys::PairState::zero ? "0"
                                                                        : "undefined";
        std::printf("  %-8d %-8d %-10s %-14.5f %-12llu %s\n", static_cast<int>(pattern & 1),
                    static_cast<int>((pattern >> 1) & 1), out, r.ground_state.grand_potential,
                    static_cast<unsigned long long>(r.ground_state.degeneracy),
                    r.correct ? "as expected (OR)" : "mismatch");
        all_ok = all_ok && r.correct;
    }
    std::printf("  => operational: %s\n\n", all_ok ? "YES" : "no");

    if (print_config && all_ok)
    {
        const auto detail = phys::simulate_gate_pattern(design, 1, params, phys::Engine::exhaustive);
        std::printf("charge configuration for A=1, B=0 (DB- = negatively charged, cf. Fig. 1c):\n%s\n",
                    io::render_charges(detail.sites, detail.ground_state.config).c_str());
    }
    return all_ok;
}

}  // namespace

int main()
{
    const auto& lib = layout::BestagonLibrary::instance();
    const auto* or_gate = lib.lookup(logic::GateType::or2, layout::Port::nw, layout::Port::ne,
                                     layout::Port::se, std::nullopt);
    if (or_gate == nullptr)
    {
        std::printf("OR gate missing from the library\n");
        return 1;
    }

    std::printf("Fig. 1c: BDL OR gate, exhaustive ground states (eps_r=5.6, lambda_TF=5 nm)\n\n");

    const bool at_028 = run_point(or_gate->design, -0.28, false);
    const bool at_032 = run_point(or_gate->design, -0.32, true);

    std::printf("summary: operational at mu=-0.28: %s; at mu=-0.32 (library calibration): %s\n",
                at_028 ? "yes" : "no", at_032 ? "yes" : "no");
    std::printf("The paper validates Huff et al.'s hand-built OR at -0.28 eV and the Bestagon\n"
                "library at -0.32 eV (Fig. 5); our automatically designed tile reproduces the\n"
                "latter calibration point (see DESIGN.md on the gate-designer substitution).\n");
    return at_032 ? 0 : 1;
}
