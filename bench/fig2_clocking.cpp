/// \file fig2_clocking.cpp
/// \brief Reproduces Fig. 2: clocking by charge-population modulation. A BDL
///        wire is divided into four-phase clock zones; deactivated zones are
///        emptied of surface charges (electrically neutral separators) while
///        activated zones hold and transport the logic state.

#include "layout/clocking.hpp"
#include "phys/exhaustive.hpp"
#include "phys/model.hpp"

#include <cstdio>
#include <vector>

using namespace bestagon;
using phys::SiDBSite;

namespace
{

/// A straight BDL wire of \p pairs vertical pairs; zone z covers
/// pairs [z * pairs/4, (z+1) * pairs/4).
std::vector<SiDBSite> make_wire(int pairs)
{
    std::vector<SiDBSite> sites;
    for (int k = 0; k < pairs; ++k)
    {
        sites.push_back({15, 1 + 4 * k, 0});
        sites.push_back({15, 2 + 4 * k, 0});
    }
    return sites;
}

}  // namespace

int main()
{
    constexpr int pairs = 8;
    constexpr int pairs_per_zone = pairs / 4;
    const auto wire = make_wire(pairs);

    std::printf("Fig. 2: four-phase clocking by charge population modulation\n");
    std::printf("wire of %d BDL pairs, %d pairs per clock zone\n\n", pairs, pairs_per_zone);

    // deactivating a zone = removing its charges; we model this by simulating
    // only the activated zones' sites and counting charges per zone
    for (unsigned phase = 0; phase < layout::num_clock_phases; ++phase)
    {
        // zones 'phase' and its predecessor are activated (hold signals);
        // the others are deactivated separators
        std::vector<SiDBSite> active_sites;
        std::vector<int> site_zone;
        for (int k = 0; k < pairs; ++k)
        {
            const int zone = k / pairs_per_zone;
            const bool activated =
                zone == static_cast<int>(phase) ||
                zone == static_cast<int>((phase + layout::num_clock_phases - 1) % 4);
            if (activated)
            {
                active_sites.push_back(wire[2 * static_cast<std::size_t>(k)]);
                active_sites.push_back(wire[2 * static_cast<std::size_t>(k) + 1]);
                site_zone.push_back(zone);
                site_zone.push_back(zone);
            }
        }

        phys::SimulationParameters params;
        params.mu_minus = -0.32;
        const phys::SiDBSystem system{active_sites, params};
        const auto gs = phys::exhaustive_ground_state(system);

        unsigned charges_per_zone[4] = {0, 0, 0, 0};
        for (std::size_t i = 0; i < active_sites.size(); ++i)
        {
            if (gs.config[i] != 0)
            {
                ++charges_per_zone[site_zone[i]];
            }
        }

        std::printf("phase %u: ", phase);
        for (int z = 0; z < 4; ++z)
        {
            const bool activated = z == static_cast<int>(phase) ||
                                   z == static_cast<int>((phase + 3) % 4);
            std::printf("zone %d [%s: %u charges]  ", z, activated ? "ACTIVE " : "neutral",
                        charges_per_zone[z]);
        }
        std::printf("\n");
    }

    std::printf("\nactivated zones hold one electron per BDL pair (logic capable);\n"
                "deactivated zones are charge-free separators that suppress cross-talk,\n"
                "and the active window advances one zone per phase (information flow).\n");
    return 0;
}
