/// \file bench_charge_kernel.cpp
/// \brief Naive-vs-incremental microbenchmarks of the charge-state kernel.
///
/// Three families:
///
///  1. AnnealInstance over synthetic n-site canvases (n in {20, 40, 80}):
///     one full annealing instance at the production schedule (4000 moves at
///     T0 = 0.5, cooling 0.997, 25% hops, then a greedy quench). The naive
///     rows replicate the pre-kernel code path — a fresh O(n) local-potential
///     sum per *proposed* move and the O(n^3)-per-sweep descent quench. The
///     kernel rows run the same RNG stream on ChargeState: O(1) cached deltas
///     per proposal, O(n) commits on acceptance only, O(n^2) quench sweeps.
///
///  2. Instantiate on the Bestagon 2-input OR tile: building the per-pattern
///     SiDBSystem from scratch (O(n^2) screened-Coulomb terms, exp per entry)
///     versus assembling it from the pattern-invariant GateInstanceCache
///     (row copies; only driver rows differ between patterns).
///
///  3. CheckOperationalEndToEnd: the production check_operational on the
///     same OR tile with the exhaustive engine — the full 4-pattern
///     verification as used by the gate designer's scoring loop.
///
/// Results are recorded in BENCH_charge_kernel.json at the repository root.
/// CI runs this binary in smoke mode (--benchmark_min_time=0.05) to keep
/// every path exercised.

#include "layout/bestagon_library.hpp"
#include "phys/charge_state.hpp"
#include "phys/operational.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <random>
#include <vector>

namespace
{

using namespace bestagon;
using namespace bestagon::phys;

/// Deterministic pseudo-random canvas of \p n unique sites, spread over a
/// box that grows with n so the charge density stays gate-like.
std::vector<SiDBSite> synthetic_canvas(std::size_t n)
{
    std::mt19937_64 rng{0xca11'ab1e + n};
    const auto span_cols = static_cast<std::int32_t>(8 * std::sqrt(static_cast<double>(n))) + 4;
    const auto span_rows = static_cast<std::int32_t>(4 * std::sqrt(static_cast<double>(n))) + 2;
    std::vector<SiDBSite> sites;
    while (sites.size() < n)
    {
        const SiDBSite s{static_cast<std::int32_t>(rng() % static_cast<std::uint64_t>(span_cols)),
                         static_cast<std::int32_t>(rng() % static_cast<std::uint64_t>(span_rows)),
                         static_cast<std::int32_t>(rng() & 1)};
        if (std::find(sites.begin(), sites.end(), s) == sites.end())
        {
            sites.push_back(s);
        }
    }
    return sites;
}

// production schedule (SimAnnealParameters defaults)
constexpr unsigned anneal_steps = 4000;
constexpr double initial_temperature = 0.5;
constexpr double cooling_rate = 0.997;
constexpr double quench_tolerance = 1e-9;

/// Pre-kernel greedy descent: every flip test is an O(n) fresh sum and every
/// hop test two of them, so one sweep costs O(n^3).
void naive_quench(const SiDBSystem& system, ChargeConfig& config)
{
    const std::size_t n = system.size();
    const double mu = system.parameters().mu_minus;
    bool changed = true;
    while (changed)
    {
        changed = false;
        for (std::size_t i = 0; i < n; ++i)
        {
            const double v = system.local_potential(config, i);
            const double delta = config[i] == 0 ? (mu + v) : -(mu + v);
            if (delta < -quench_tolerance)
            {
                config[i] ^= 1;
                changed = true;
            }
        }
        for (std::size_t i = 0; i < n; ++i)
        {
            if (config[i] == 0)
            {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j)
            {
                if (config[j] != 0 || j == i)
                {
                    continue;
                }
                const double delta =
                    system.local_potential(config, j) - system.local_potential(config, i) -
                    system.potential(i, j);
                if (delta < -quench_tolerance)
                {
                    config[i] = 0;
                    config[j] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }
}

/// The pre-kernel anneal_instance: fresh local-potential sums per proposal
/// followed by the O(n^3)-per-sweep quench.
double naive_anneal_instance(const SiDBSystem& system, std::uint64_t seed)
{
    const std::size_t n = system.size();
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> uni{0.0, 1.0};
    ChargeConfig config(n, 0);
    for (auto& c : config)
    {
        c = (rng() & 1) != 0 ? 1 : 0;
    }
    double temperature = initial_temperature;
    for (unsigned step = 0; step < anneal_steps; ++step)
    {
        // mirrors the production proposal loop: an invalid hop is rejected
        const bool do_hop = (rng() & 3U) == 0;
        const std::size_t i = rng() % n;
        std::size_t hop_to = n;
        bool rejected = false;
        double delta = 0.0;
        if (do_hop)
        {
            if (config[i] == 0)
            {
                rejected = true;
            }
            else
            {
                const std::size_t j = rng() % n;
                if (config[j] == 0 && j != i)
                {
                    hop_to = j;
                    delta = system.local_potential(config, j) - system.local_potential(config, i) -
                            system.potential(i, j);
                }
                else
                {
                    rejected = true;
                }
            }
        }
        else
        {
            const double v = system.local_potential(config, i);
            delta = config[i] == 0 ? (system.parameters().mu_minus + v)
                                   : -(system.parameters().mu_minus + v);
        }
        if (!rejected && (delta <= 0.0 || uni(rng) < std::exp(-delta / temperature)))
        {
            if (hop_to != n)
            {
                config[i] = 0;
                config[hop_to] = 1;
            }
            else
            {
                config[i] ^= 1;
            }
        }
        temperature *= cooling_rate;
    }
    naive_quench(system, config);
    return system.grand_potential(config);
}

/// The production anneal_instance on the incremental kernel: the identical
/// RNG stream and accept decisions, O(1) cached deltas and O(n^2) quench.
double kernel_anneal_instance(const SiDBSystem& system, std::uint64_t seed)
{
    const std::size_t n = system.size();
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> uni{0.0, 1.0};
    ChargeConfig config(n, 0);
    for (auto& c : config)
    {
        c = (rng() & 1) != 0 ? 1 : 0;
    }
    ChargeState state{system, std::move(config)};
    double temperature = initial_temperature;
    for (unsigned step = 0; step < anneal_steps; ++step)
    {
        // mirrors the production proposal loop: an invalid hop is rejected
        const bool do_hop = (rng() & 3U) == 0;
        const std::size_t i = rng() % n;
        std::size_t hop_to = n;
        bool rejected = false;
        double delta = 0.0;
        if (do_hop)
        {
            if (state.charge(i) == 0)
            {
                rejected = true;
            }
            else
            {
                const std::size_t j = rng() % n;
                if (state.charge(j) == 0 && j != i)
                {
                    hop_to = j;
                    delta = state.delta_hop(i, j);
                }
                else
                {
                    rejected = true;
                }
            }
        }
        else
        {
            delta = state.delta_flip(i);
        }
        if (!rejected && (delta <= 0.0 || uni(rng) < std::exp(-delta / temperature)))
        {
            if (hop_to != n)
            {
                state.commit_hop(i, hop_to);
            }
            else
            {
                state.commit_flip(i);
            }
        }
        temperature *= cooling_rate;
    }
    state.rebuild();
    state.quench();
    return system.grand_potential(state.config());
}

void BM_AnnealInstanceNaive(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const SiDBSystem system{synthetic_canvas(n), SimulationParameters{}};
    std::uint64_t seed = 0x5eed;
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(naive_anneal_instance(system, seed++));
    }
    state.counters["moves/s"] = benchmark::Counter(
        static_cast<double>(anneal_steps) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void BM_AnnealInstanceKernel(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const SiDBSystem system{synthetic_canvas(n), SimulationParameters{}};
    std::uint64_t seed = 0x5eed;
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(kernel_anneal_instance(system, seed++));
    }
    state.counters["moves/s"] = benchmark::Counter(
        static_cast<double>(anneal_steps) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

const GateDesign& bestagon_or_design()
{
    static const GateDesign design = [] {
        const auto& lib = layout::BestagonLibrary::instance();
        const auto* gate = lib.lookup(logic::GateType::or2, layout::Port::nw, layout::Port::ne,
                                      layout::Port::se, std::nullopt);
        return gate->design;
    }();
    return design;
}

void BM_InstantiateNaive(benchmark::State& state)
{
    const auto& design = bestagon_or_design();
    const SimulationParameters params{};
    std::uint64_t pattern = 0;
    std::vector<SiDBSite> sites;
    for (auto _ : state)
    {
        design.instance_sites(pattern & 3U, sites);
        const SiDBSystem system{sites, params};
        benchmark::DoNotOptimize(system.potential(0, 1));
        ++pattern;
    }
}

void BM_InstantiateCached(benchmark::State& state)
{
    const auto& design = bestagon_or_design();
    const GateInstanceCache cache{design, SimulationParameters{}};
    std::uint64_t pattern = 0;
    for (auto _ : state)
    {
        const auto system = cache.instantiate(pattern & 3U);
        benchmark::DoNotOptimize(system.potential(0, 1));
        ++pattern;
    }
}

void BM_CheckOperationalEndToEnd(benchmark::State& state)
{
    const auto& design = bestagon_or_design();
    SimulationParameters params;
    params.num_threads = 1;  // isolate single-thread cost from the fan-out
    bool ok = false;
    for (auto _ : state)
    {
        const auto result = check_operational(design, params, Engine::exhaustive);
        ok = result.operational;
        benchmark::DoNotOptimize(result);
    }
    state.counters["operational"] = ok ? 1.0 : 0.0;
    state.counters["sites"] = static_cast<double>(design.instance_sites(0).size());
}

}  // namespace

BENCHMARK(BM_AnnealInstanceNaive)->Arg(20)->Arg(40)->Arg(80)->ArgName("sites")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnnealInstanceKernel)->Arg(20)->Arg(40)->Arg(80)->ArgName("sites")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InstantiateNaive)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InstantiateCached)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CheckOperationalEndToEnd)->Unit(benchmark::kMillisecond);
