/// \file ablation_xag_vs_aig.cpp
/// \brief Ablation A: the paper picks XAGs over AIGs because the Bestagon
///        library has native AND *and* XOR tiles (Section 4.2). This harness
///        quantifies that choice: XAG vs. AIG node counts and the resulting
///        layout areas, plus the effect of exact-NPN rewriting.

#include "core/design_flow.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <cstdio>

using namespace bestagon;

int main()
{
    std::printf("Ablation A: XAG vs AIG representation and the effect of rewriting\n\n");
    std::printf("%-15s %8s %8s %8s %10s %12s\n", "name", "AIG", "XAG", "XAG(rw)", "area(XAG)",
                "area(noRW)");

    for (const auto& bm : logic::table1_benchmarks())
    {
        const auto net = bm.build();
        const auto xag = logic::to_xag(net);
        const auto aig = logic::to_aig(net);
        logic::NpnDatabase db;
        const auto rewritten = logic::rewrite(xag, db);

        core::FlowOptions with_rw;
        with_rw.exact_options.time_budget_ms = 60000;
        core::FlowOptions no_rw = with_rw;
        no_rw.rewrite = false;

        const auto flow_rw = core::run_design_flow(net, with_rw);
        const auto flow_no = core::run_design_flow(net, no_rw);

        std::printf("%-15s %8zu %8zu %8zu %10s %12s\n", bm.name.c_str(), aig.num_gates(),
                    xag.num_gates(), rewritten.num_gates(),
                    flow_rw.layout ? std::to_string(flow_rw.layout->area()).c_str() : "-",
                    flow_no.layout ? std::to_string(flow_no.layout->area()).c_str() : "-");
    }

    std::printf("\nXAGs dominate AIGs wherever parity logic appears (xor benchmarks), and\n"
                "exact-NPN rewriting shrinks redundant structures (xor5_majority) before\n"
                "physical design -- the paper's rationale for flow steps (1)-(2).\n");
    return 0;
}
