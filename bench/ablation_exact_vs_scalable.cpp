/// \file ablation_exact_vs_scalable.cpp
/// \brief Ablation B: exact SAT-based physical design [46] vs. the scalable
///        constructive heuristic [49] — area and runtime on the benchmark
///        suite. This is the classic quality/runtime trade-off the paper's
///        flow inherits from the QCA literature.

#include "layout/exact_physical_design.hpp"
#include "layout/scalable_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <chrono>
#include <cstdio>

using namespace bestagon;

namespace
{

long long ms_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                                                 start)
        .count();
}

}  // namespace

int main()
{
    std::printf("Ablation B: exact vs. scalable placement & routing\n\n");
    std::printf("%-15s %12s %10s %14s %10s %8s\n", "name", "exact WxH", "exact ms",
                "scalable WxH", "scal ms", "overhead");

    for (const auto& bm : logic::table1_benchmarks())
    {
        logic::NpnDatabase db;
        const auto mapped = logic::map_to_bestagon(logic::rewrite(logic::to_xag(bm.build()), db));

        layout::ExactPDOptions opt;
        opt.time_budget_ms = 120000;
        auto t0 = std::chrono::steady_clock::now();
        const auto exact = layout::exact_physical_design(mapped, opt);
        const auto exact_ms = ms_since(t0);

        t0 = std::chrono::steady_clock::now();
        const auto scalable = layout::scalable_physical_design(mapped);
        const auto scalable_ms = ms_since(t0);

        char exact_dims[32] = "-";
        char scal_dims[32] = "-";
        char overhead[32] = "-";
        if (exact)
        {
            std::snprintf(exact_dims, sizeof(exact_dims), "%ux%u=%u", exact->width(),
                          exact->height(), exact->area());
        }
        if (scalable)
        {
            std::snprintf(scal_dims, sizeof(scal_dims), "%ux%u=%u", scalable->width(),
                          scalable->height(), scalable->area());
        }
        if (exact && scalable)
        {
            std::snprintf(overhead, sizeof(overhead), "%.2fx",
                          static_cast<double>(scalable->area()) / exact->area());
        }
        std::printf("%-15s %12s %9lld %14s %9lld %8s\n", bm.name.c_str(), exact_dims,
                    static_cast<long long>(exact_ms), scal_dims,
                    static_cast<long long>(scalable_ms), overhead);
    }

    std::printf("\nThe exact engine is area-minimal (first satisfiable aspect ratio in\n"
                "ascending area order); the constructive marcher trades area for guaranteed\n"
                "linear-time behavior and may bail out on densely reconvergent networks\n"
                "(reported as '-'), in which case the flow falls back to the exact engine.\n");
    return 0;
}
