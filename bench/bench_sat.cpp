/// \file bench_sat.cpp
/// \brief SAT engine benchmarks (results: BENCH_sat.json).
///
/// Three questions, mirroring DESIGN.md section 11:
///  1. SatRandom3Sat{Legacy,Arena,Preprocessed}/vars:n — one full solve of a
///     seeded random 3-SAT instance near the phase transition, per engine:
///     the frozen pre-arena solver (bench's regression baseline), the
///     modernized arena solver, and the arena solver behind the
///     BVE+subsumption preprocessing backend. Same instance per size across
///     all three.
///  2. SatPigeonhole{Legacy,Arena,Preprocessed} — PHP(8,7), the
///     resolution-hard UNSAT workload that stresses learnt-clause reduction
///     and (for the arena) garbage collection.
///  3. ExactPhysicalDesign{Internal,Preprocessed} — the full exact P&R flow
///     on the mapped mux21 benchmark with ExactPDOptions::sat_backend forced
///     to each kind; this is the production-shaped instance mix (many small
///     incremental solves) the preprocessor must not regress.

#include "layout/exact_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"
#include "sat/backend.hpp"
#include "sat/solver.hpp"
#include "testing/legacy_solver.hpp"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

namespace
{

using namespace bestagon;

/// Seeded uniform 3-SAT at ratio 4.2 (clause literals may repeat variables,
/// matching the historical BM_SatRandom3Sat generator so numbers stay
/// comparable across PRs).
std::vector<std::vector<sat::Lit>> random_3sat(int num_vars)
{
    const int num_clauses = num_vars * 42 / 10;
    std::mt19937 rng{12345};
    std::vector<std::vector<sat::Lit>> clauses;
    clauses.reserve(static_cast<std::size_t>(num_clauses));
    for (int i = 0; i < num_clauses; ++i)
    {
        std::vector<sat::Lit> clause;
        for (int j = 0; j < 3; ++j)
        {
            const auto v = static_cast<sat::Var>(rng() % static_cast<unsigned>(num_vars));
            clause.push_back(sat::Lit{v, (rng() & 1U) != 0});
        }
        clauses.push_back(std::move(clause));
    }
    return clauses;
}

/// PHP(pigeons, holes): UNSAT and exponentially hard for resolution.
std::vector<std::vector<sat::Lit>> php(int pigeons, int holes)
{
    const auto var = [&](int p, int h) { return sat::Var{p * holes + h}; };
    std::vector<std::vector<sat::Lit>> clauses;
    for (int p = 0; p < pigeons; ++p)
    {
        std::vector<sat::Lit> somewhere;
        for (int h = 0; h < holes; ++h)
        {
            somewhere.push_back(sat::pos(var(p, h)));
        }
        clauses.push_back(std::move(somewhere));
    }
    for (int h = 0; h < holes; ++h)
    {
        for (int p = 0; p < pigeons; ++p)
        {
            for (int q = p + 1; q < pigeons; ++q)
            {
                clauses.push_back({sat::neg(var(p, h)), sat::neg(var(q, h))});
            }
        }
    }
    return clauses;
}

template <typename SolverT>
void load(SolverT& solver, int num_vars, const std::vector<std::vector<sat::Lit>>& clauses)
{
    for (int i = 0; i < num_vars; ++i)
    {
        solver.new_var();
    }
    for (const auto& clause : clauses)
    {
        solver.add_clause(clause);
    }
}

void solve_legacy(benchmark::State& state, int num_vars,
                  const std::vector<std::vector<sat::Lit>>& clauses)
{
    for (auto _ : state)
    {
        state.PauseTiming();
        testkit::legacy::Solver solver;
        load(solver, num_vars, clauses);
        state.ResumeTiming();
        benchmark::DoNotOptimize(solver.solve());
    }
}

void solve_arena(benchmark::State& state, int num_vars,
                 const std::vector<std::vector<sat::Lit>>& clauses)
{
    for (auto _ : state)
    {
        state.PauseTiming();
        sat::Solver solver;
        load(solver, num_vars, clauses);
        state.ResumeTiming();
        benchmark::DoNotOptimize(solver.solve());
    }
}

void solve_preprocessed(benchmark::State& state, int num_vars,
                        const std::vector<std::vector<sat::Lit>>& clauses)
{
    for (auto _ : state)
    {
        state.PauseTiming();
        // force the pass even below the adaptive size threshold — this lane
        // measures what preprocessing itself costs and saves
        sat::PreprocessorOptions options;
        options.backend_min_clauses = 0;
        sat::PreprocessingBackend backend{options};
        load(backend, num_vars, clauses);
        state.ResumeTiming();
        benchmark::DoNotOptimize(backend.solve());
    }
}

void BM_SatRandom3SatLegacy(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    solve_legacy(state, n, random_3sat(n));
}
BENCHMARK(BM_SatRandom3SatLegacy)->Arg(40)->Arg(80)->Arg(120)->ArgName("vars");

void BM_SatRandom3SatArena(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    solve_arena(state, n, random_3sat(n));
}
BENCHMARK(BM_SatRandom3SatArena)->Arg(40)->Arg(80)->Arg(120)->ArgName("vars");

void BM_SatRandom3SatPreprocessed(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    solve_preprocessed(state, n, random_3sat(n));
}
BENCHMARK(BM_SatRandom3SatPreprocessed)->Arg(40)->Arg(80)->Arg(120)->ArgName("vars");

void BM_SatPigeonholeLegacy(benchmark::State& state)
{
    solve_legacy(state, 8 * 7, php(8, 7));
}
BENCHMARK(BM_SatPigeonholeLegacy)->Unit(benchmark::kMillisecond);

void BM_SatPigeonholeArena(benchmark::State& state)
{
    solve_arena(state, 8 * 7, php(8, 7));
}
BENCHMARK(BM_SatPigeonholeArena)->Unit(benchmark::kMillisecond);

void BM_SatPigeonholePreprocessed(benchmark::State& state)
{
    solve_preprocessed(state, 8 * 7, php(8, 7));
}
BENCHMARK(BM_SatPigeonholePreprocessed)->Unit(benchmark::kMillisecond);

const logic::LogicNetwork& mapped_mux21()
{
    static const logic::LogicNetwork net = [] {
        logic::NpnDatabase db;
        return logic::map_to_bestagon(
            logic::rewrite(logic::to_xag(logic::find_benchmark("mux21")->build()), db));
    }();
    return net;
}

void exact_pd_with(benchmark::State& state, sat::BackendKind kind)
{
    const auto& net = mapped_mux21();
    layout::ExactPDOptions options;
    options.sat_backend.kind = kind;
    bool placed = false;
    for (auto _ : state)
    {
        const auto result = layout::exact_physical_design(net, options);
        placed = result.has_value();
        benchmark::DoNotOptimize(result);
    }
    state.counters["placed"] = placed ? 1.0 : 0.0;
}

void BM_ExactPhysicalDesignInternal(benchmark::State& state)
{
    exact_pd_with(state, sat::BackendKind::internal);
}
BENCHMARK(BM_ExactPhysicalDesignInternal)->Unit(benchmark::kMillisecond);

void BM_ExactPhysicalDesignPreprocessed(benchmark::State& state)
{
    exact_pd_with(state, sat::BackendKind::internal_preprocessed);
}
BENCHMARK(BM_ExactPhysicalDesignPreprocessed)->Unit(benchmark::kMillisecond);

}  // namespace
