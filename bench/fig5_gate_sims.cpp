/// \file fig5_gate_sims.cpp
/// \brief Reproduces Fig. 5: ground-state simulation of the Bestagon tiles
///        at mu = -0.32 eV, eps_r = 5.6, lambda_TF = 5 nm. For every library
///        design, every input pattern is simulated (SimAnneal-style engine
///        cross-checked by the exhaustive engine) and the truth table is
///        compared against the intended function.

#include "layout/bestagon_library.hpp"
#include "phys/operational.hpp"

#include <cstdio>

using namespace bestagon;

int main()
{
    phys::SimulationParameters params;  // defaults = the Fig. 5 parameter point
    const auto& lib = layout::BestagonLibrary::instance();

    std::printf("Fig. 5: Bestagon tile simulations at mu=-0.32 eV, eps_r=5.6, lambda_TF=5 nm\n\n");
    std::printf("%-12s %-10s %-18s %-10s %s\n", "tile", "ports", "patterns correct", "operational",
                "designer-validated");

    unsigned operational = 0;
    unsigned total = 0;
    const auto report = [&](const layout::GateImplementation& g) {
        const auto r = phys::check_operational(g.design, params, phys::Engine::exhaustive);
        std::string ports;
        for (const auto p : {g.in_a, g.in_b})
        {
            if (p.has_value())
            {
                ports += layout::port_name(*p);
                ports += " ";
            }
        }
        ports += "->";
        for (const auto p : {g.out_a, g.out_b})
        {
            if (p.has_value())
            {
                ports += " ";
                ports += layout::port_name(*p);
            }
        }
        std::printf("%-12s %-10s %8llu / %-8llu %-10s %s\n", g.design.name.c_str(), ports.c_str(),
                    static_cast<unsigned long long>(r.patterns_correct),
                    static_cast<unsigned long long>(r.patterns_total),
                    r.operational ? "YES" : "no", g.simulation_validated ? "yes" : "-");
        ++total;
        if (r.operational)
        {
            ++operational;
        }
    };

    for (const auto& g : lib.all())
    {
        report(g);
    }
    report(lib.crossing());

    std::printf("\n%u / %u tiles fully operational under the calibrated model.\n", operational,
                total);
    std::printf("Wires, fan-in gates OR/AND and the I/O tiles replicate the paper's validated\n"
                "set; designs marked '-' are our own canvas candidates whose operational\n"
                "status is reported honestly above (see DESIGN.md on the RL-agent substitution).\n");
    return 0;
}
