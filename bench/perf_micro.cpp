/// \file perf_micro.cpp
/// \brief google-benchmark micro-benchmarks of the computational substrates:
///        CDCL solving, exhaustive/annealed ground states, NPN canonization,
///        cut rewriting and exact physical design.

#include "layout/bestagon_library.hpp"
#include "layout/exact_physical_design.hpp"
#include "logic/benchmarks.hpp"
#include "logic/npn.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"
#include "phys/exhaustive.hpp"
#include "phys/simanneal.hpp"

#include "sat/solver.hpp"

#include <benchmark/benchmark.h>

#include <random>

using namespace bestagon;

namespace
{

void BM_SatRandom3Sat(benchmark::State& state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(n * 42 / 10);  // near the phase transition
    for (auto _ : state)
    {
        state.PauseTiming();
        std::mt19937 rng{12345};
        sat::Solver solver;
        for (int i = 0; i < n; ++i)
        {
            solver.new_var();
        }
        for (int i = 0; i < m; ++i)
        {
            std::vector<sat::Lit> clause;
            for (int j = 0; j < 3; ++j)
            {
                const auto v = static_cast<sat::Var>(rng() % n);
                clause.push_back(sat::Lit{v, (rng() & 1U) != 0});
            }
            solver.add_clause(clause);
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(40)->Arg(80)->Arg(120);

void BM_NpnCanonization(benchmark::State& state)
{
    std::mt19937 rng{7};
    logic::TruthTable f{4};
    for (std::uint64_t t = 0; t < 16; ++t)
    {
        f.set_bit(t, (rng() & 1U) != 0);
    }
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(logic::canonize_npn(f));
    }
}
BENCHMARK(BM_NpnCanonization);

void BM_ExhaustiveGroundState(benchmark::State& state)
{
    const auto& lib = layout::BestagonLibrary::instance();
    const auto* wire = lib.lookup(logic::GateType::buf, layout::Port::nw, std::nullopt,
                                  layout::Port::sw, std::nullopt);
    const auto sites = wire->design.instance_sites(1);
    phys::SimulationParameters params;
    const phys::SiDBSystem system{sites, params};
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(phys::exhaustive_ground_state(system));
    }
}
BENCHMARK(BM_ExhaustiveGroundState);

void BM_SimAnnealGroundState(benchmark::State& state)
{
    const auto& lib = layout::BestagonLibrary::instance();
    const auto* wire = lib.lookup(logic::GateType::buf, layout::Port::nw, std::nullopt,
                                  layout::Port::sw, std::nullopt);
    const auto sites = wire->design.instance_sites(1);
    phys::SimulationParameters params;
    const phys::SiDBSystem system{sites, params};
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(phys::simulated_annealing(system));
    }
}
BENCHMARK(BM_SimAnnealGroundState);

void BM_RewriteBenchmark(benchmark::State& state)
{
    const auto net = logic::to_xag(logic::find_benchmark("xor5_majority")->build());
    for (auto _ : state)
    {
        logic::NpnDatabase db;
        benchmark::DoNotOptimize(logic::rewrite(net, db));
    }
}
BENCHMARK(BM_RewriteBenchmark);

void BM_ExactPhysicalDesign(benchmark::State& state)
{
    logic::NpnDatabase db;
    const auto mapped =
        logic::map_to_bestagon(logic::rewrite(logic::to_xag(logic::find_benchmark("mux21")->build()), db));
    for (auto _ : state)
    {
        benchmark::DoNotOptimize(layout::exact_physical_design(mapped));
    }
}
BENCHMARK(BM_ExactPhysicalDesign);

}  // namespace
