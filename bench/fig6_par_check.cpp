/// \file fig6_par_check.cpp
/// \brief Reproduces Fig. 6: the synthesized par_check layout on hexagonal
///        Bestagon tiles — rendered tile view, formal verification verdict,
///        and the dot-accurate SiDB statistics. Also writes fig6_par_check.svg
///        and fig6_par_check.sqd into the artifact directory (first CLI
///        argument, BESTAGON_ARTIFACT_DIR, or ./artifacts).

#include "core/design_flow.hpp"
#include "io/artifacts.hpp"
#include "io/render.hpp"
#include "io/sqd_writer.hpp"
#include "io/svg_writer.hpp"
#include "logic/benchmarks.hpp"

#include <cstdio>
#include <fstream>

using namespace bestagon;

int main(int argc, char** argv)
{
    const std::string out_dir = io::artifact_dir(argc > 1 ? argv[1] : "");
    const auto* bm = logic::find_benchmark("par_check");
    const auto result = core::run_design_flow(bm->build());
    if (!result.success())
    {
        std::printf("par_check flow failed\n");
        return 1;
    }

    std::printf("Fig. 6: synthesized par_check layout (information flows top to bottom,\n"
                "row-based Columnar clocking: tile (x, y) is driven by clock zone y mod 4)\n\n");
    std::printf("%s\n", io::render_layout(*result.layout).c_str());

    std::printf("gate tiles:        %zu\n", result.layout->num_gate_tiles());
    std::printf("wire segments:     %zu\n", result.layout->num_wire_segments());
    std::printf("crossing tiles:    %zu\n", result.layout->num_crossing_tiles());
    std::printf("SiDBs:             %zu\n", result.sidb->num_sidbs());
    std::printf("logical area:      %.2f nm^2 (paper: %.2f nm^2 at 4x7)\n",
                layout::logical_area_nm2(*result.layout), bm->paper.area_nm2);
    std::printf("formal verification: %s\n",
                result.equivalence == layout::EquivalenceResult::equivalent
                    ? "layout == specification (SAT, UNSAT miter)"
                    : "FAILED");
    std::printf("design rules:      %s\n", result.drc.clean() ? "clean" : "violations!");

    std::ofstream svg{io::artifact_path("fig6_par_check.svg", out_dir)};
    io::write_svg(svg, *result.layout);
    std::ofstream sqd{io::artifact_path("fig6_par_check.sqd", out_dir)};
    io::write_sqd(sqd, *result.sidb, "par_check");
    std::printf("\nwrote %s/fig6_par_check.svg (tile view) and fig6_par_check.sqd (SiQAD file)\n",
                out_dir.c_str());
    return 0;
}
