/// \file bench_operational_domain.cpp
/// \brief Serial-vs-parallel throughput of the operational-domain sweep —
///        the hottest loop of the design-automation flow. Sweeps a 20x20
///        (eps_r, lambda_TF) grid of the validated BDL wire tile, i.e.
///        400 grid points x 2 input patterns = 800 independent exhaustive
///        ground-state searches per iteration.
///
/// Run as:  bench_operational_domain
/// The Threads<N> rows share one workload; on a machine with >= 4 cores the
/// Threads4 row is expected to run >= 3x faster than Threads1 while
/// producing the bit-identical domain (the checksum counter proves it).

#include "phys/operational_domain.hpp"

#include <benchmark/benchmark.h>

namespace
{

using namespace bestagon::phys;
using bestagon::logic::TruthTable;

/// The validated vertical BDL wire in tile-local coordinates.
GateDesign vertical_wire()
{
    GateDesign d;
    d.name = "wire";
    for (int k = 0; k < 6; ++k)
    {
        const int m = 1 + 4 * k;
        d.sites.push_back({15, m, 0});
        d.sites.push_back({15, m + 1, 0});
    }
    d.input_pairs.push_back({{15, 1, 0}, {15, 2, 0}});
    d.output_pairs.push_back({{15, 21, 0}, {15, 22, 0}});
    d.drivers.push_back({{15, -3, 0}, {15, -2, 0}});
    d.output_perturbers.push_back({15, 25, 1});
    d.functions.push_back(TruthTable::from_binary("10"));
    return d;
}

DomainSweep sweep_20x20()
{
    DomainSweep sweep;
    sweep.axes = DomainAxes::epsilon_r_vs_lambda_tf;
    sweep.x_min = 3.0;  // eps_r
    sweep.x_max = 9.0;
    sweep.x_steps = 20;
    sweep.y_min = 2.0;  // lambda_TF in nm
    sweep.y_max = 8.0;
    sweep.y_steps = 20;
    return sweep;
}

void BM_OperationalDomainSweep(benchmark::State& state)
{
    const auto design = vertical_wire();
    const auto sweep = sweep_20x20();
    SimulationParameters base;
    base.num_threads = static_cast<unsigned>(state.range(0));

    double coverage = 0.0;
    for (auto _ : state)
    {
        const auto domain = compute_operational_domain(design, base, sweep);
        coverage = domain.coverage();
        benchmark::DoNotOptimize(domain);
    }
    state.counters["coverage"] = coverage;  // identical across thread counts
    state.counters["points/s"] = benchmark::Counter(
        static_cast<double>(sweep.x_steps) * sweep.y_steps * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_OperationalDomainSweep)
    ->Arg(1)   // serial baseline
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)   // hardware concurrency
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
