/// \file bench_ground_state.cpp
/// \brief Ground-state engine benchmarks (results: BENCH_ground_state.json).
///
/// Three questions, mirroring DESIGN.md section 10:
///  1. GroundState<engine>/sites:n — single ground-state call per engine on
///     dense synthetic canvases. The exhaustive engine's energy-only pruning
///     stops converging past ~36 dense sites; the exact engine's population
///     window keeps it polynomial-ish on the same canvases (sites:40 runs
///     only on the engines that can finish it in bench time).
///  2. CheckOperational{DefaultExact,Exhaustive} — the production
///     check_operational on the Bestagon 2-input OR tile under the new
///     default engine (automatic -> exact) vs the legacy exhaustive engine.
///     The `operational` counter records the verdict: both rows must report
///     1 (the default-engine switch moves no verdicts).
///  3. GroundStateQuickSim/SimAnneal — heuristic engines at production
///     effort, for the cost picture when an inexact answer is acceptable.

#include "layout/bestagon_library.hpp"
#include "phys/exhaustive.hpp"
#include "phys/ground_state.hpp"
#include "phys/ground_state_exact.hpp"
#include "phys/operational.hpp"
#include "phys/quicksim.hpp"
#include "phys/simanneal.hpp"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <random>
#include <vector>

namespace
{

using namespace bestagon::phys;
namespace layout = bestagon::layout;
namespace logic = bestagon::logic;

/// Dense random canvas in a box scaling with sqrt(n), as in the engine
/// tests — the fixed salt keeps every engine on the same canvas per size.
std::vector<SiDBSite> synthetic_canvas(std::size_t n)
{
    std::mt19937_64 rng{0xca11'ab1eULL + 4};
    const int cols = static_cast<int>(8 * std::sqrt(static_cast<double>(n)));
    const int rows = static_cast<int>(4 * std::sqrt(static_cast<double>(n)));
    std::vector<SiDBSite> sites;
    while (sites.size() < n)
    {
        const SiDBSite s{static_cast<int>(rng() % static_cast<unsigned>(cols)),
                         static_cast<int>(rng() % static_cast<unsigned>(rows)),
                         static_cast<int>(rng() % 2)};
        if (std::find(sites.begin(), sites.end(), s) == sites.end())
        {
            sites.push_back(s);
        }
    }
    return sites;
}

const GateDesign& bestagon_or_design()
{
    static const GateDesign design = [] {
        const auto& lib = layout::BestagonLibrary::instance();
        const auto* gate = lib.lookup(logic::GateType::or2, layout::Port::nw, layout::Port::ne,
                                      layout::Port::se, std::nullopt);
        return gate->design;
    }();
    return design;
}

void BM_GroundStateExhaustive(benchmark::State& state)
{
    const SiDBSystem system{synthetic_canvas(static_cast<std::size_t>(state.range(0))),
                            SimulationParameters{}};
    std::uint64_t degeneracy = 0;
    for (auto _ : state)
    {
        const auto gs = exhaustive_ground_state(system);
        degeneracy = gs.degeneracy;
        benchmark::DoNotOptimize(gs);
    }
    state.counters["degeneracy"] = static_cast<double>(degeneracy);
}

void BM_GroundStateExact(benchmark::State& state)
{
    const SiDBSystem system{synthetic_canvas(static_cast<std::size_t>(state.range(0))),
                            SimulationParameters{}};
    std::uint64_t degeneracy = 0;
    for (auto _ : state)
    {
        const auto gs = exact_ground_state(system);
        degeneracy = gs.degeneracy;
        benchmark::DoNotOptimize(gs);
    }
    state.counters["degeneracy"] = static_cast<double>(degeneracy);
}

void BM_GroundStateSimAnneal(benchmark::State& state)
{
    const SiDBSystem system{synthetic_canvas(static_cast<std::size_t>(state.range(0))),
                            SimulationParameters{}};
    SimAnnealParameters params;
    params.num_threads = 1;  // isolate single-thread engine cost
    for (auto _ : state)
    {
        const auto gs = simulated_annealing(system, params);
        benchmark::DoNotOptimize(gs);
    }
}

void BM_GroundStateQuickSim(benchmark::State& state)
{
    const SiDBSystem system{synthetic_canvas(static_cast<std::size_t>(state.range(0))),
                            SimulationParameters{}};
    QuickSimParameters params;
    params.num_threads = 1;
    for (auto _ : state)
    {
        const auto gs = quicksim_ground_state(system, params);
        benchmark::DoNotOptimize(gs);
    }
}

void BM_CheckOperationalDefaultExact(benchmark::State& state)
{
    const auto& design = bestagon_or_design();
    SimulationParameters params;
    params.num_threads = 1;
    bool ok = false;
    for (auto _ : state)
    {
        // Engine::automatic resolves to params.engine (default: exact)
        const auto result = check_operational(design, params);
        ok = result.operational;
        benchmark::DoNotOptimize(result);
    }
    state.counters["operational"] = ok ? 1.0 : 0.0;
}

void BM_CheckOperationalExhaustive(benchmark::State& state)
{
    const auto& design = bestagon_or_design();
    SimulationParameters params;
    params.num_threads = 1;
    bool ok = false;
    for (auto _ : state)
    {
        const auto result = check_operational(design, params, Engine::exhaustive);
        ok = result.operational;
        benchmark::DoNotOptimize(result);
    }
    state.counters["operational"] = ok ? 1.0 : 0.0;
}

}  // namespace

BENCHMARK(BM_GroundStateExhaustive)->Arg(12)->Arg(20)->Arg(28)->ArgName("sites")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GroundStateExact)->Arg(12)->Arg(20)->Arg(28)->Arg(40)->ArgName("sites")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GroundStateSimAnneal)->Arg(20)->Arg(40)->ArgName("sites")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GroundStateQuickSim)->Arg(20)->Arg(40)->ArgName("sites")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CheckOperationalDefaultExact)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckOperationalExhaustive)->Unit(benchmark::kMillisecond);
