/// \file fig4_supertile.cpp
/// \brief Reproduces Fig. 4: clock electrodes cannot match single-tile
///        dimensions at the 7 nm node (40 nm minimum metal pitch [54]), so
///        multiple standard tiles are grouped into super-tiles driven by one
///        electrode. Reports the feasible expansion factors and applies the
///        expansion to a real layout.

#include "core/design_flow.hpp"
#include "layout/supertile.hpp"
#include "logic/benchmarks.hpp"

#include <cstdio>

using namespace bestagon;

int main()
{
    const layout::ElectrodeTechnology tech{};
    std::printf("Fig. 4: super-tiles under the minimum metal pitch constraint\n\n");
    std::printf("tile:            %.2f nm x %.2f nm (60 columns x 24 dimer rows)\n",
                tech.tile_width_nm, tech.tile_height_nm);
    std::printf("min metal pitch: %.1f nm (7 nm node [54])\n\n", tech.min_metal_pitch_nm);

    std::printf("%-18s %-18s %-10s\n", "expansion factor", "electrode pitch", "feasible");
    for (unsigned k = 1; k <= 5; ++k)
    {
        const double pitch = k * tech.tile_height_nm;
        std::printf("%-18u %10.2f nm     %s\n", k, pitch,
                    pitch >= tech.min_metal_pitch_nm ? "yes" : "NO (pitch violation)");
    }
    std::printf("\nminimum feasible expansion: %u tile rows per electrode\n\n",
                layout::minimum_expansion_factor(tech));

    // apply to the par_check layout (the paper's running example)
    const auto result = core::run_design_flow(logic::find_benchmark("par_check")->build());
    if (!result.success())
    {
        std::printf("par_check flow failed\n");
        return 1;
    }
    const auto& st = *result.supertiles;
    std::printf("par_check layout: %u x %u tiles -> %u super-tile bands of %u rows\n",
                result.layout->width(), result.layout->height(), st.num_bands(),
                st.expansion_factor);
    std::printf("electrode pitch: %.2f nm (>= %.1f nm: %s)\n", st.electrode_pitch_nm(tech),
                tech.min_metal_pitch_nm, st.satisfies_pitch(tech) ? "ok" : "VIOLATION");
    std::printf("expanded clocking remains feed-forward: %s\n",
                st.clocking_valid() ? "yes" : "NO");
    std::printf("tiles per super-tile band: up to %u (width %u x %u rows)\n",
                result.layout->width() * st.expansion_factor, result.layout->width(),
                st.expansion_factor);
    return 0;
}
