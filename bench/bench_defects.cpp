/// \file bench_defects.cpp
/// \brief Throughput of the Monte-Carlo defect yield sweep — the robustness
///        analysis loop of the flow. Sweeps the validated Bestagon OR gate
///        over seeded defect surfaces at three fab-realistic densities;
///        every sample is an independent defect-aware check_operational call
///        (4 input patterns), fanned out over the thread pool.
///
/// Run as:  bench_defects
/// The Threads<N> rows share one workload; the yield counter is identical
/// across thread counts (sample seeds are derived per index, not per
/// worker). The PerSample rows isolate the cost of one defect-aware
/// operational check against the defect-free baseline.

#include "layout/bestagon_library.hpp"
#include "phys/defect_sweep.hpp"
#include "phys/operational.hpp"

#include <benchmark/benchmark.h>

#include <stdexcept>

namespace
{

using namespace bestagon::phys;

const GateDesign& or_gate()
{
    for (const auto& impl : bestagon::layout::BestagonLibrary::instance().all())
    {
        if (impl.design.name == "or" && impl.simulation_validated)
        {
            return impl.design;
        }
    }
    throw std::logic_error{"no validated OR gate in the library"};
}

DefectSweepParams sweep_params(unsigned threads)
{
    DefectSweepParams sweep;
    sweep.densities_per_nm2 = {0.002, 0.005, 0.01};
    sweep.samples = 24;
    sweep.seed = 0xbe57a60d;
    sweep.num_threads = threads;
    return sweep;
}

void BM_DefectYieldSweep(benchmark::State& state)
{
    const auto& design = or_gate();
    const auto sweep = sweep_params(static_cast<unsigned>(state.range(0)));
    const SimulationParameters params;  // library calibration point

    double yield = 0.0;
    for (auto _ : state)
    {
        const auto result = defect_yield_sweep(design, params, sweep);
        yield = result.points.back().yield();
        benchmark::DoNotOptimize(result);
    }
    state.counters["yield"] = yield;  // identical across thread counts
    state.counters["samples/s"] = benchmark::Counter(
        static_cast<double>(sweep.samples) * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

/// One defect-aware operational check on a fixed charged surface — the unit
/// of work the sweep fans out.
void BM_PerSampleCheck(benchmark::State& state)
{
    const auto& design = or_gate();
    SimulationParameters params;
    params.num_threads = 1;

    const auto region = sweep_region(design, 5.0);
    DefectSampleParams sample_params;
    sample_params.density_per_nm2 = 0.005;
    // walk the seed stream to a surface that does NOT block an instance
    // site, so the loop measures full simulations rather than the blocked
    // short-circuit
    DefectSurface surface;
    for (std::uint64_t seed = 0xbe57a60d;; ++seed)
    {
        surface = sample_defect_surface(region, sample_params, seed);
        if (!GateInstanceCache{design, params, &surface}.blocked())
        {
            break;
        }
    }

    for (auto _ : state)
    {
        const auto result = check_operational(design, params, surface);
        benchmark::DoNotOptimize(result);
    }
}

/// The defect-free baseline of the same check: the difference is the total
/// cost of the defect path (blocking scan + external-potential rows).
void BM_PerSampleCheckDefectFree(benchmark::State& state)
{
    const auto& design = or_gate();
    SimulationParameters params;
    params.num_threads = 1;

    for (auto _ : state)
    {
        const auto result = check_operational(design, params);
        benchmark::DoNotOptimize(result);
    }
}

}  // namespace

BENCHMARK(BM_DefectYieldSweep)
    ->Arg(1)   // serial baseline
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)   // hardware concurrency
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK(BM_PerSampleCheck)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PerSampleCheckDefectFree)->Unit(benchmark::kMillisecond);
