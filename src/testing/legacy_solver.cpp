#include "testing/legacy_solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

namespace bestagon::testkit::legacy
{

namespace
{

[[nodiscard]] std::int64_t now_ms()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// variable order heap
// ---------------------------------------------------------------------------

void Solver::VarOrderHeap::grow(Var v)
{
    while (static_cast<std::size_t>(v) >= indices.size())
    {
        indices.push_back(-1);
    }
}

void Solver::VarOrderHeap::percolate_up(int i)
{
    const Var x = heap[static_cast<std::size_t>(i)];
    int p = (i - 1) / 2;
    while (i != 0 && less(x, heap[static_cast<std::size_t>(p)]))
    {
        heap[static_cast<std::size_t>(i)] = heap[static_cast<std::size_t>(p)];
        indices[static_cast<std::size_t>(heap[static_cast<std::size_t>(i)])] = i;
        i = p;
        p = (p - 1) / 2;
    }
    heap[static_cast<std::size_t>(i)] = x;
    indices[static_cast<std::size_t>(x)] = i;
}

void Solver::VarOrderHeap::percolate_down(int i)
{
    const Var x = heap[static_cast<std::size_t>(i)];
    const int n = static_cast<int>(heap.size());
    while (2 * i + 1 < n)
    {
        int child = 2 * i + 1;
        if (child + 1 < n && less(heap[static_cast<std::size_t>(child + 1)], heap[static_cast<std::size_t>(child)]))
        {
            ++child;
        }
        if (!less(heap[static_cast<std::size_t>(child)], x))
        {
            break;
        }
        heap[static_cast<std::size_t>(i)] = heap[static_cast<std::size_t>(child)];
        indices[static_cast<std::size_t>(heap[static_cast<std::size_t>(i)])] = i;
        i = child;
    }
    heap[static_cast<std::size_t>(i)] = x;
    indices[static_cast<std::size_t>(x)] = i;
}

void Solver::VarOrderHeap::insert(Var v)
{
    grow(v);
    if (contains(v))
    {
        return;
    }
    indices[static_cast<std::size_t>(v)] = static_cast<int>(heap.size());
    heap.push_back(v);
    percolate_up(static_cast<int>(heap.size()) - 1);
}

Var Solver::VarOrderHeap::remove_max()
{
    const Var x = heap.front();
    heap.front() = heap.back();
    indices[static_cast<std::size_t>(heap.front())] = 0;
    indices[static_cast<std::size_t>(x)] = -1;
    heap.pop_back();
    if (heap.size() > 1)
    {
        percolate_down(0);
    }
    return x;
}

void Solver::VarOrderHeap::update(Var v)
{
    if (contains(v))
    {
        percolate_up(indices[static_cast<std::size_t>(v)]);
    }
}

// ---------------------------------------------------------------------------
// solver
// ---------------------------------------------------------------------------

Solver::Solver()
{
    order_heap_.activity = &activity_;
}

Var Solver::new_var()
{
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::undef);
    polarity_.push_back(true);
    activity_.push_back(0.0);
    reason_.push_back(cref_undef);
    level_.push_back(0);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    order_heap_.insert(v);
    return v;
}

Solver::CRef Solver::alloc_clause(std::vector<Lit> lits, bool learnt)
{
    const auto cr = static_cast<CRef>(clauses_.size());
    Clause c;
    c.lits = std::move(lits);
    c.learnt = learnt;
    clauses_.push_back(std::move(c));
    return cr;
}

void Solver::attach_clause(CRef cr)
{
    const auto& c = clauses_[cr];
    assert(c.lits.size() >= 2);
    watches_[static_cast<std::size_t>((~c.lits[0]).x)].push_back({cr, c.lits[1]});
    watches_[static_cast<std::size_t>((~c.lits[1]).x)].push_back({cr, c.lits[0]});
}

void Solver::remove_clause(CRef cr)
{
    clauses_[cr].deleted = true;  // watches are cleaned lazily during propagation
    ++stats_.deleted_clauses;
}

bool Solver::add_clause(std::vector<Lit> lits)
{
    if (!ok_)
    {
        return false;
    }
    assert(decision_level() == 0);

    // simplify: sort, deduplicate, drop false literals, detect tautology
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    out.reserve(lits.size());
    Lit prev = lit_undef;
    for (const auto l : lits)
    {
        assert(l.var() >= 0 && l.var() < num_vars());
        if (value(l) == LBool::true_ || l == ~prev)
        {
            return true;  // satisfied or tautological
        }
        if (value(l) != LBool::false_ && l != prev)
        {
            out.push_back(l);
            prev = l;
        }
    }

    if (out.empty())
    {
        // record the original clause: it is not stored anywhere else, yet the
        // formula snapshot needs it to remain unsatisfiable (all its literals
        // are falsified by root-level propagation)
        root_conflict_clauses_.push_back(lits);
        ok_ = false;
        return false;
    }
    if (out.size() == 1)
    {
        root_units_.push_back(out[0]);
        unchecked_enqueue(out[0], cref_undef);
        ok_ = (propagate() == cref_undef);
        return ok_;
    }

    const auto cr = alloc_clause(std::move(out), false);
    problem_clauses_.push_back(cr);
    ++num_problem_clauses_;
    attach_clause(cr);
    return true;
}

void Solver::unchecked_enqueue(Lit l, CRef from)
{
    assert(value(l) == LBool::undef);
    assigns_[static_cast<std::size_t>(l.var())] = lbool_from(!l.sign());
    reason_[static_cast<std::size_t>(l.var())] = from;
    level_[static_cast<std::size_t>(l.var())] = decision_level();
    trail_.push_back(l);
}

Solver::CRef Solver::propagate()
{
    CRef conflict = cref_undef;
    while (qhead_ < trail_.size())
    {
        const Lit p = trail_[qhead_++];
        ++stats_.propagations;
        auto& ws = watches_[static_cast<std::size_t>(p.x)];

        std::size_t i = 0;
        std::size_t j = 0;
        const std::size_t n = ws.size();
        while (i < n)
        {
            const Watcher w = ws[i];
            // fast path: blocker already true
            if (value(w.blocker) == LBool::true_)
            {
                ws[j++] = ws[i++];
                continue;
            }
            Clause& c = clauses_[w.cref];
            if (c.deleted)
            {
                ++i;  // drop watcher of a deleted clause
                continue;
            }
            // make sure the false literal is lits[1]
            const Lit false_lit = ~p;
            if (c.lits[0] == false_lit)
            {
                std::swap(c.lits[0], c.lits[1]);
            }
            assert(c.lits[1] == false_lit);

            const Lit first = c.lits[0];
            if (value(first) == LBool::true_)
            {
                ws[j++] = {w.cref, first};
                ++i;
                continue;
            }
            // look for a new watch
            bool found = false;
            for (std::size_t k = 2; k < c.lits.size(); ++k)
            {
                if (value(c.lits[k]) != LBool::false_)
                {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[static_cast<std::size_t>((~c.lits[1]).x)].push_back({w.cref, first});
                    found = true;
                    break;
                }
            }
            if (found)
            {
                ++i;
                continue;
            }
            // clause is unit or conflicting
            ws[j++] = {w.cref, first};
            ++i;
            if (value(first) == LBool::false_)
            {
                conflict = w.cref;
                qhead_ = trail_.size();
                // copy remaining watchers
                while (i < n)
                {
                    ws[j++] = ws[i++];
                }
            }
            else
            {
                unchecked_enqueue(first, w.cref);
            }
        }
        ws.resize(j);
        if (conflict != cref_undef)
        {
            break;
        }
    }
    return conflict;
}

void Solver::cancel_until(int level)
{
    if (decision_level() <= level)
    {
        return;
    }
    const auto bound = static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(level)]);
    for (std::size_t c = trail_.size(); c > bound; --c)
    {
        const Lit l = trail_[c - 1];
        const Var v = l.var();
        assigns_[static_cast<std::size_t>(v)] = LBool::undef;
        polarity_[static_cast<std::size_t>(v)] = l.sign();
        if (!order_heap_.contains(v))
        {
            order_heap_.insert(v);
        }
    }
    trail_.resize(bound);
    trail_lim_.resize(static_cast<std::size_t>(level));
    qhead_ = trail_.size();
}

void Solver::var_bump_activity(Var v)
{
    auto& act = activity_[static_cast<std::size_t>(v)];
    act += var_inc_;
    if (act > 1e100)
    {
        for (auto& a : activity_)
        {
            a *= 1e-100;
        }
        var_inc_ *= 1e-100;
    }
    order_heap_.update(v);
}

void Solver::cla_bump_activity(Clause& c)
{
    c.activity += cla_inc_;
    if (c.activity > 1e20)
    {
        for (const auto cr : learnts_)
        {
            clauses_[cr].activity *= 1e-20;
        }
        cla_inc_ *= 1e-20;
    }
}

void Solver::analyze(CRef conflict, std::vector<Lit>& out_learnt, int& out_btlevel, std::uint32_t& out_lbd)
{
    int path_count = 0;
    Lit p = lit_undef;
    out_learnt.clear();
    out_learnt.push_back(lit_undef);  // placeholder for the asserting literal
    std::size_t index = trail_.size();

    CRef cr = conflict;
    do
    {
        assert(cr != cref_undef);
        Clause& c = clauses_[cr];
        if (c.learnt)
        {
            cla_bump_activity(c);
        }
        const std::size_t start = (p == lit_undef) ? 0 : 1;
        for (std::size_t k = start; k < c.lits.size(); ++k)
        {
            const Lit q = c.lits[k];
            const Var v = q.var();
            if (seen_[static_cast<std::size_t>(v)] == 0 && level_[static_cast<std::size_t>(v)] > 0)
            {
                var_bump_activity(v);
                seen_[static_cast<std::size_t>(v)] = 1;
                if (level_[static_cast<std::size_t>(v)] >= decision_level())
                {
                    ++path_count;
                }
                else
                {
                    out_learnt.push_back(q);
                }
            }
        }
        // select next literal to look at
        while (seen_[static_cast<std::size_t>(trail_[index - 1].var())] == 0)
        {
            --index;
        }
        --index;
        p = trail_[index];
        cr = reason_[static_cast<std::size_t>(p.var())];
        seen_[static_cast<std::size_t>(p.var())] = 0;
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // minimization
    analyze_toclear_.assign(out_learnt.begin(), out_learnt.end());
    std::uint32_t abstract_levels = 0;
    for (std::size_t k = 1; k < out_learnt.size(); ++k)
    {
        abstract_levels |= 1U << (static_cast<std::uint32_t>(level_[static_cast<std::size_t>(out_learnt[k].var())]) & 31U);
    }
    std::size_t keep = 1;
    for (std::size_t k = 1; k < out_learnt.size(); ++k)
    {
        const Lit q = out_learnt[k];
        if (reason_[static_cast<std::size_t>(q.var())] == cref_undef || !lit_redundant(q, abstract_levels))
        {
            out_learnt[keep++] = q;
        }
    }
    out_learnt.resize(keep);

    // find backtrack level
    if (out_learnt.size() == 1)
    {
        out_btlevel = 0;
    }
    else
    {
        std::size_t max_i = 1;
        for (std::size_t k = 2; k < out_learnt.size(); ++k)
        {
            if (level_[static_cast<std::size_t>(out_learnt[k].var())] >
                level_[static_cast<std::size_t>(out_learnt[max_i].var())])
            {
                max_i = k;
            }
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = level_[static_cast<std::size_t>(out_learnt[1].var())];
    }

    // LBD = number of distinct decision levels
    std::vector<int> levels;
    levels.reserve(out_learnt.size());
    for (const auto l : out_learnt)
    {
        levels.push_back(level_[static_cast<std::size_t>(l.var())]);
    }
    std::sort(levels.begin(), levels.end());
    out_lbd = static_cast<std::uint32_t>(std::unique(levels.begin(), levels.end()) - levels.begin());

    for (const auto l : analyze_toclear_)
    {
        seen_[static_cast<std::size_t>(l.var())] = 0;
    }
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels)
{
    analyze_stack_.clear();
    analyze_stack_.push_back(l);
    const std::size_t top = analyze_toclear_.size();
    while (!analyze_stack_.empty())
    {
        const Lit q = analyze_stack_.back();
        analyze_stack_.pop_back();
        const CRef cr = reason_[static_cast<std::size_t>(q.var())];
        assert(cr != cref_undef);
        const Clause& c = clauses_[cr];
        for (std::size_t k = 1; k < c.lits.size(); ++k)
        {
            const Lit r = c.lits[k];
            const Var v = r.var();
            if (seen_[static_cast<std::size_t>(v)] != 0 || level_[static_cast<std::size_t>(v)] == 0)
            {
                continue;
            }
            const bool level_ok =
                (abstract_levels & (1U << (static_cast<std::uint32_t>(level_[static_cast<std::size_t>(v)]) & 31U))) != 0;
            if (reason_[static_cast<std::size_t>(v)] != cref_undef && level_ok)
            {
                seen_[static_cast<std::size_t>(v)] = 1;
                analyze_stack_.push_back(r);
                analyze_toclear_.push_back(r);
            }
            else
            {
                // abort: literal not redundant; undo marks made here
                for (std::size_t j = analyze_toclear_.size(); j > top; --j)
                {
                    seen_[static_cast<std::size_t>(analyze_toclear_[j - 1].var())] = 0;
                }
                analyze_toclear_.resize(top);
                return false;
            }
        }
    }
    return true;
}

void Solver::analyze_final(Lit failed_assumption)
{
    conflict_core_.clear();
    conflict_core_.push_back(failed_assumption);
    if (decision_level() == 0)
    {
        return;  // ~failed_assumption is implied by the formula alone
    }

    std::vector<Var> to_clear;
    const Var pv = failed_assumption.var();
    seen_[static_cast<std::size_t>(pv)] = 1;
    to_clear.push_back(pv);

    const auto bound = static_cast<std::size_t>(trail_lim_[0]);
    for (std::size_t i = trail_.size(); i > bound; --i)
    {
        const Var v = trail_[i - 1].var();
        if (seen_[static_cast<std::size_t>(v)] == 0)
        {
            continue;
        }
        const CRef cr = reason_[static_cast<std::size_t>(v)];
        if (cr == cref_undef)
        {
            // a decision inside the assumption prefix is an assumption
            assert(level_[static_cast<std::size_t>(v)] > 0);
            conflict_core_.push_back(trail_[i - 1]);
        }
        else
        {
            const Clause& c = clauses_[cr];
            for (std::size_t k = 1; k < c.lits.size(); ++k)
            {
                const Var x = c.lits[k].var();
                if (seen_[static_cast<std::size_t>(x)] == 0 && level_[static_cast<std::size_t>(x)] > 0)
                {
                    seen_[static_cast<std::size_t>(x)] = 1;
                    to_clear.push_back(x);
                }
            }
        }
    }
    for (const auto v : to_clear)
    {
        seen_[static_cast<std::size_t>(v)] = 0;
    }
}

Lit Solver::pick_branch_lit()
{
    Var next = -1;
    while (next == -1 || value(next) != LBool::undef)
    {
        if (order_heap_.empty())
        {
            return lit_undef;
        }
        next = order_heap_.remove_max();
    }
    return Lit{next, polarity_[static_cast<std::size_t>(next)]};
}

void Solver::reduce_db()
{
    // sort learnts by activity ascending; delete the weaker half
    std::sort(learnts_.begin(), learnts_.end(),
              [this](CRef a, CRef b) { return clauses_[a].activity < clauses_[b].activity; });

    std::vector<CRef> kept;
    kept.reserve(learnts_.size());
    const std::size_t half = learnts_.size() / 2;
    for (std::size_t i = 0; i < learnts_.size(); ++i)
    {
        const CRef cr = learnts_[i];
        Clause& c = clauses_[cr];
        const bool locked = !c.lits.empty() && value(c.lits[0]) == LBool::true_ &&
                            reason_[static_cast<std::size_t>(c.lits[0].var())] == cr;
        if (!locked && c.lits.size() > 2 && c.lbd > 2 && i < half)
        {
            remove_clause(cr);
        }
        else
        {
            kept.push_back(cr);
        }
    }
    learnts_ = std::move(kept);
}

std::int64_t Solver::luby(std::int64_t i)
{
    // Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    ++i;  // 1-based position
    for (;;)
    {
        std::int64_t k = 1;
        while ((1LL << k) - 1 < i)
        {
            ++k;
        }
        if ((1LL << k) - 1 == i)
        {
            return 1LL << (k - 1);
        }
        i -= (1LL << (k - 1)) - 1;
    }
}

bool Solver::budget_exhausted() const
{
    if (stop_token_.stop_requested())
    {
        return true;
    }
    if (conflict_budget_ >= 0 &&
        static_cast<std::int64_t>(stats_.conflicts - conflicts_at_solve_start_) >= conflict_budget_)
    {
        return true;
    }
    // Wall-clock checks are polled on a call-count stride rather than a
    // conflict-count one: this function runs roughly once per decision, so
    // propagation-heavy stretches with few conflicts still hit the clock.
    if (time_budget_ms_ >= 0 || !deadline_.unlimited())
    {
        if (--time_check_countdown_ <= 0)
        {
            if ((time_budget_ms_ >= 0 && now_ms() - solve_start_ms_ >= time_budget_ms_) ||
                deadline_.expired())
            {
                // keep the countdown expired: both clocks are monotone, so
                // every later call re-checks and confirms the exhaustion
                // (resetting the stride here would let the confirming call in
                // solve() skip the clock and resume the search)
                time_check_countdown_ = 0;
                return true;
            }
            time_check_countdown_ = time_check_stride_;
        }
    }
    return false;
}

Result Solver::search(std::int64_t conflicts_allowed)
{
    std::int64_t conflicts_here = 0;
    std::vector<Lit> learnt;
    for (;;)
    {
        const CRef conflict = propagate();
        if (conflict != cref_undef)
        {
            ++stats_.conflicts;
            ++conflicts_here;
            if (decision_level() == 0)
            {
                ok_ = false;
                return Result::unsatisfiable;
            }
            int bt_level = 0;
            std::uint32_t lbd = 0;
            analyze(conflict, learnt, bt_level, lbd);
            cancel_until(bt_level);
            if (learnt.size() == 1)
            {
                unchecked_enqueue(learnt[0], cref_undef);
            }
            else
            {
                const CRef cr = alloc_clause(learnt, true);
                clauses_[cr].lbd = lbd;
                learnts_.push_back(cr);
                attach_clause(cr);
                cla_bump_activity(clauses_[cr]);
                unchecked_enqueue(learnt[0], cr);
                ++stats_.learnt_clauses;
            }
            var_decay_activity();
            cla_decay_activity();
            continue;
        }

        if (conflicts_allowed >= 0 && conflicts_here >= conflicts_allowed)
        {
            cancel_until(0);
            return Result::unknown;  // restart
        }
        if (budget_exhausted())
        {
            cancel_until(0);
            return Result::unknown;
        }
        if (static_cast<double>(learnts_.size()) >= max_learnts_ + static_cast<double>(trail_.size()))
        {
            reduce_db();
        }

        // extend with assumptions first
        Lit next = lit_undef;
        while (static_cast<std::size_t>(decision_level()) < assumptions_.size())
        {
            const Lit a = assumptions_[static_cast<std::size_t>(decision_level())];
            if (value(a) == LBool::true_)
            {
                trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
            }
            else if (value(a) == LBool::false_)
            {
                analyze_final(a);  // conflicting assumption: extract the core
                return Result::unsatisfiable;
            }
            else
            {
                next = a;
                break;
            }
        }
        if (next == lit_undef)
        {
            next = pick_branch_lit();
            if (next == lit_undef)
            {
                return Result::satisfiable;  // all variables assigned
            }
            ++stats_.decisions;
        }
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        unchecked_enqueue(next, cref_undef);
    }
}

std::vector<std::vector<Lit>> Solver::root_clauses() const
{
    std::vector<std::vector<Lit>> out;
    out.reserve(root_units_.size() + root_conflict_clauses_.size() + problem_clauses_.size());
    for (const auto l : root_units_)
    {
        out.push_back({l});
    }
    for (const auto& c : root_conflict_clauses_)
    {
        out.push_back(c);
    }
    for (const auto cr : problem_clauses_)
    {
        out.push_back(clauses_[cr].lits);
    }
    return out;
}

Result Solver::solve(const std::vector<Lit>& assumptions)
{
    // copy before clearing the core: callers may pass final_conflict()
    // itself back in to re-solve under the extracted core
    assumptions_ = assumptions;
    conflict_core_.clear();
    if (!ok_)
    {
        assumptions_.clear();
        return Result::unsatisfiable;
    }
    solve_start_ms_ = now_ms();
    time_check_countdown_ = 0;  // poll the clock on the first budget check
    conflicts_at_solve_start_ = stats_.conflicts;
    max_learnts_ = std::max(1000.0, static_cast<double>(num_problem_clauses_) * 0.4);

    Result result = Result::unknown;
    for (std::int64_t restarts = 0; result == Result::unknown; ++restarts)
    {
        const std::int64_t budget = luby(restarts) * 100;
        result = search(budget);
        if (result == Result::unknown)
        {
            ++stats_.restarts;
            max_learnts_ *= 1.02;
            if (budget_exhausted())
            {
                break;
            }
        }
    }

    if (result == Result::satisfiable)
    {
        model_.assign(assigns_.begin(), assigns_.end());
    }
    cancel_until(0);
    assumptions_.clear();
    return result;
}

}  // namespace bestagon::testkit::legacy
