/// \file random.hpp
/// \brief Seeded random generators for every major input domain of the flow:
///        CNF formulas, truth tables, XAGs, Bestagon-mapped networks, hex
///        gate-level layouts and small SiDB canvases.
///
/// All generators draw from an explicit `Rng`, never from global state, so a
/// case is replayed exactly by re-seeding with the same 64-bit value (see
/// reproducer.hpp for the seed-derivation convention).

#pragma once

#include "layout/gate_level_layout.hpp"
#include "logic/network.hpp"
#include "logic/truth_table.hpp"
#include "phys/lattice.hpp"
#include "sat/dimacs.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace bestagon::testkit
{

/// Deterministic 64-bit random stream (splitmix64 — the same finalizer that
/// backs core::derive_seed, so streams for distinct seeds are independent).
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_{seed} {}

    /// Next raw 64-bit value.
    std::uint64_t next();

    /// Uniform value in [0, bound); bound must be > 0.
    std::uint64_t below(std::uint64_t bound);

    /// Uniform value in the inclusive range [lo, hi].
    unsigned range(unsigned lo, unsigned hi);

    /// True with probability \p p.
    bool chance(double p);

    /// Uniform double in [0, 1).
    double real();

  private:
    std::uint64_t state_;
};

// --- CNF formulas ----------------------------------------------------------

struct CnfOptions
{
    unsigned min_vars{3};
    unsigned max_vars{20};       ///< keep <= 20 so UNSAT answers stay brute-forceable
    unsigned max_clause_len{4};  ///< unit clauses are generated too
    double clause_ratio_min{1.0};  ///< #clauses >= ratio * #vars
    double clause_ratio_max{6.0};  ///< high ratios make UNSAT instances likely
};

/// Random CNF over a random number of variables. Mixes clause lengths and
/// densities so both satisfiable and unsatisfiable instances occur.
[[nodiscard]] sat::Cnf random_cnf(Rng& rng, const CnfOptions& options = {});

// --- truth tables ----------------------------------------------------------

/// Uniformly random truth table over \p num_vars <= 16 variables.
[[nodiscard]] logic::TruthTable random_truth_table(Rng& rng, unsigned num_vars);

// --- logic networks --------------------------------------------------------

struct XagOptions
{
    unsigned min_pis{2};
    unsigned max_pis{5};
    unsigned min_gates{3};
    unsigned max_gates{16};
    unsigned max_pos{3};        ///< 1..max_pos primary outputs
    bool xag_gates_only{true};  ///< false also emits OR/NAND/NOR/XNOR nodes
};

/// Random feed-forward logic network: every gate reads already-created
/// signals, and every signal is observed — unconsumed signals are reduced
/// pairwise and routed to 1..max_pos primary outputs, so the networks meet
/// the fully-observed precondition shared by real specifications and both
/// P&R engines (no dangling logic cones).
[[nodiscard]] logic::LogicNetwork random_network(Rng& rng, const XagOptions& options = {});

/// Random network mapped onto the Bestagon gate set
/// (satisfies is_bestagon_compliant()).
[[nodiscard]] logic::LogicNetwork random_mapped_network(Rng& rng, const XagOptions& options = {});

// --- gate-level layouts ----------------------------------------------------

/// Random hexagonal gate-level layout: a random mapped network placed and
/// routed with the always-feasible scalable engine. Returns nullopt only if
/// the placer rejects the network (does not happen for generator output, but
/// callers must not assume).
[[nodiscard]] std::optional<layout::GateLevelLayout> random_gate_layout(
    Rng& rng, const XagOptions& options = {});

// --- SiDB canvases ---------------------------------------------------------

struct CanvasOptions
{
    unsigned min_dots{2};
    unsigned max_dots{12};  ///< keep small enough for exhaustive ground states
    std::int32_t max_column{10};     ///< n in [0, max_column]
    std::int32_t max_dimer_row{6};   ///< m in [0, max_dimer_row]
};

/// Random set of unique SiDB sites on the H-Si(100)-2x1 surface.
[[nodiscard]] std::vector<phys::SiDBSite> random_sidb_canvas(Rng& rng,
                                                             const CanvasOptions& options = {});

}  // namespace bestagon::testkit
