/// \file oracles.hpp
/// \brief Differential oracles cross-checking every redundant engine pair in
///        the flow:
///
///  1. CDCL solver vs. brute-force model enumeration — SAT answers are
///     model-checked against every clause, UNSAT answers carry a DRAT proof
///     certified by the independent backward checker and are additionally
///     refuted or confirmed by an exhaustive sweep (instances <= 20 vars).
///  2. Ground-state engines vs. the exhaustive reference on small canvases:
///     the population-bounded exact engine must be bit-identical, the
///     heuristics (simanneal, quicksim) accurate within tolerance (the
///     exact-vs-heuristic split of the SiDB simulation literature).
///  3. Exact vs. scalable placement & routing — both layouts must pass
///     SAT-based equivalence checking against the specification network.
///  4. Rewriting + technology mapping vs. the input network via random
///     simulation (64 patterns by default; exhaustive when <= 16 PIs).
///  5. Run control: a flow run under fault-injected cancellation / deadlines
///     must never throw, return within a small multiple of its budget, and
///     produce a FlowResult whose artifacts and per-stage diagnostics are
///     mutually consistent.
///
/// Each oracle takes an optional *fault* that corrupts one engine's answer
/// before cross-checking. Faults exist purely so tests can prove the oracle
/// detects real divergence (a mutation-coverage check for the oracle
/// itself); production code never sets them.

#pragma once

#include "core/design_flow.hpp"
#include "logic/network.hpp"
#include "layout/exact_physical_design.hpp"
#include "phys/model.hpp"
#include "phys/operational.hpp"
#include "phys/simanneal.hpp"
#include "sat/dimacs.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace bestagon::testkit
{

/// Outcome of one oracle evaluation. `detail` explains the first detected
/// divergence in one paragraph (empty when ok).
struct OracleVerdict
{
    bool ok{true};
    std::string detail;

    /// Convenience for gtest: EXPECT_TRUE(verdict) prints the detail.
    explicit operator bool() const noexcept { return ok; }
};

// --- 1. SAT: CDCL vs. brute force ------------------------------------------

enum class SatFault : std::uint8_t
{
    none,
    flip_reported_result,  ///< pretend the solver answered SAT<->UNSAT
    corrupt_model,         ///< flip the model value of the first variable
    drop_proof_lemmas,     ///< discard every learnt clause from the DRAT proof
    /// The preprocessing backend returns the inner solver's model without
    /// running the reconstruction stack — eliminated variables keep arbitrary
    /// values, so the model can violate eliminated original clauses.
    skip_model_reconstruction,
    /// The preprocessor performs its eliminations but omits the derived
    /// resolvents/strengthened clauses from the DRAT stream — the inner
    /// solver's refutation then rests on clauses the proof never introduced.
    drop_eliminated_clause_proof
};

struct SatOracleStats
{
    bool unsat{false};          ///< the solver genuinely answered UNSAT
    bool proof_checked{false};  ///< that answer carried a verified DRAT proof
    /// The preprocessing lane's UNSAT answer passed DRAT certification
    /// against the ORIGINAL formula (preprocessor derivations included).
    bool preprocessed_proof_checked{false};
    std::uint64_t vars_eliminated{0};  ///< BVE eliminations in the preprocessing lane
};

/// Races every solver lane on \p cnf and cross-checks all answers:
///
///  - the modernized arena solver (the production default), whose SAT models
///    must satisfy every clause and whose UNSAT answers must carry a DRAT
///    proof the independent backward checker certifies;
///  - the frozen pre-arena legacy solver (testkit::legacy::Solver), whose
///    verdict must be identical — any divergence is a bug in one of them;
///  - the preprocessing backend (BVE + subsumption in front of the arena
///    solver), whose verdict must also be identical, whose SAT models are
///    reconstructed and checked against the ORIGINAL clauses, and whose
///    UNSAT answers are DRAT-certified end-to-end through preprocessing.
///
/// UNSAT verdicts are additionally refuted or confirmed by an exhaustive
/// assignment sweep when the instance has at most \p max_bruteforce_vars
/// variables. The drop_proof_lemmas fault guts the direct lane's proof down
/// to its final empty clause before checking — rejected whenever the
/// refutation actually needed a learnt lemma. skip_model_reconstruction and
/// drop_eliminated_clause_proof corrupt the preprocessing lane the way real
/// inprocessing bugs would, proving the oracle catches them.
[[nodiscard]] OracleVerdict sat_differential(const sat::Cnf& cnf,
                                             unsigned max_bruteforce_vars = 20,
                                             SatFault fault = SatFault::none,
                                             SatOracleStats* stats = nullptr);

// --- 2. ground states: exact/simanneal/quicksim vs. exhaustive --------------

enum class GroundStateFault : std::uint8_t
{
    none,
    corrupt_anneal_config,  ///< flip the charge of site 0 in simanneal's answer
    shift_exact_energy,     ///< misreport the exhaustive minimum by +10 meV
    /// Narrow the exact engine's population window so it prunes the true
    /// ground state — models an unsound bound derivation.
    shrink_exact_population_window,
    corrupt_quicksim_config  ///< flip the charge of site 0 in quicksim's answer
};

/// Runs all four ground-state engines on the canvas with the legacy
/// exhaustive branch-and-bound as the reference:
///
///  - the *exact* engine (population-bounded search) must report a complete
///    search with a bit-identical configuration, grand potential and
///    degeneracy count — it claims exactness, so any divergence is a bug;
///  - each *heuristic* engine (simanneal with \p anneal_params, quicksim
///    with the matching instance count/seed/threads) must return a
///    physically valid configuration that (a) reports an energy consistent
///    with itself, (b) never beats the exhaustive minimum, (c) reaches it
///    within \p tolerance_ev, and (d) — when it does find the minimum —
///    reports a distinct-configuration degeneracy that does not exceed the
///    exhaustive engine's true count (the documented lower-bound contract).
[[nodiscard]] OracleVerdict ground_state_differential(const std::vector<phys::SiDBSite>& canvas,
                                                      const phys::SimulationParameters& sim_params,
                                                      const phys::SimAnnealParameters& anneal_params,
                                                      double tolerance_ev = 1e-6,
                                                      GroundStateFault fault = GroundStateFault::none);

// --- 2b. charge-state kernel: incremental cache vs. naive evaluation --------

enum class ChargeStateFault : std::uint8_t
{
    none,
    skip_cache_update  ///< one commit updates the config but not the v_i cache
};

/// Differential oracle for the incremental charge-state kernel
/// (phys::ChargeState), in three parts:
///
///  1. *Cache fidelity*: drives a kernel through \p num_moves seeded random
///     flip/hop commits on \p canvas while mirroring the moves on a plain
///     configuration; after every commit each cached v_i must match a fresh
///     SiDBSystem::local_potential sum within \p tolerance, the kernel's
///     O(n) cached grand potential must match the naive pairwise sum, and a
///     rebuild() must restore bit-exact agreement.
///  2. *Engine fidelity*: the kernel-backed quench, simulated annealing and
///     exhaustive engines are cross-checked against pre-refactor naive
///     reference implementations kept here (fresh local-potential sums at
///     every decision): quench and anneal must reproduce the naive
///     accept/reject trajectory (identical configurations, energies within
///     \p tolerance) and the exhaustive ground state must match a naive
///     brute-force enumeration (energy within \p tolerance, identical
///     degeneracy) when the canvas is small enough to enumerate.
///  3. With ChargeStateFault::skip_cache_update, one mid-sequence commit
///     bypasses the cache update; the oracle must detect the divergence
///     (mutation coverage for the oracle itself).
[[nodiscard]] OracleVerdict charge_state_differential(
    const std::vector<phys::SiDBSite>& canvas, const phys::SimulationParameters& sim_params,
    const phys::SimAnnealParameters& anneal_params, std::uint64_t seed, unsigned num_moves = 256,
    double tolerance = 1e-12, ChargeStateFault fault = ChargeStateFault::none);

// --- 2c. defects: external potentials, blocking, yield sweep -----------------

enum class DefectFault : std::uint8_t
{
    none,
    /// The kernel rebuild drops the charged-defect background W — models an
    /// engine that forgot the external potentials (the defect analogue of
    /// skip_cache_update).
    ignore_defect_potentials
};

/// Differential oracle for the defect-aware simulation path, in four parts:
///
///  1. *Defect-free bit-identity*: an EMPTY DefectSurface must be
///     indistinguishable from the legacy no-defect code path — bit-identical
///     local potentials, ground states and check_operational verdicts (the
///     zero-cost-when-unused contract of defect.hpp).
///  2. *External-potential fidelity*: on a seeded charged surface around the
///     design, every cached quantity is checked against fresh O(n^2) sums
///     evaluated here from first principles (screened Coulomb per defect):
///     the system's W row, every cached kernel v_i after seeded random
///     commits, and the O(n) cached energies, all within \p tolerance.
///     The exact engine must agree bit-identically with the exhaustive
///     reference on the defect system (both see W through the kernel).
///  3. *Yield-sweep invariants*: a small Monte-Carlo sweep over \p design
///     must evaluate every sample, produce a monotonically non-increasing
///     survival curve, and be bit-identical between 1 and 3 worker threads.
///  4. With DefectFault::ignore_defect_potentials, the kernel cache is
///     rebuilt without W mid-check; the oracle must detect the divergence
///     (mutation coverage for the oracle itself).
[[nodiscard]] OracleVerdict defect_differential(const phys::GateDesign& design,
                                                const phys::SimulationParameters& sim_params,
                                                std::uint64_t seed, double tolerance = 1e-12,
                                                DefectFault fault = DefectFault::none);

// --- 3. physical design: exact vs. scalable --------------------------------

enum class PdFault : std::uint8_t
{
    none,
    invert_spec_output  ///< models an engine realizing the wrong function
};

struct PdOracleStats
{
    bool exact_ran{false};         ///< false if the exact engine's budget expired
    bool scalable_ran{false};      ///< false if the constructive march declined the network
    bool constant_function{false}; ///< mapping folded the spec to a constant — P&R skipped
    unsigned exact_area{0};
    unsigned scalable_area{0};
    unsigned proofs_checked{0};  ///< exact-engine UNSAT sizes with verified DRAT proofs
    unsigned proof_failures{0};  ///< UNSAT sizes whose proof did NOT check (always a bug)
};

/// Maps \p spec onto the Bestagon gate set, runs both P&R engines and
/// SAT-equivalence-checks every produced layout against the mapped network
/// (plus mapped vs. spec functionally). Either engine may decline: the exact
/// engine by exhausting \p exact_options' budget, the scalable engine on
/// densely reconvergent networks its march cannot realize. A decline skips
/// that engine's checks (reported via stats), never fails the oracle —
/// callers asserting engine participation must inspect the stats.
[[nodiscard]] OracleVerdict physical_design_differential(
    const logic::LogicNetwork& spec, const layout::ExactPDOptions& exact_options,
    PdOracleStats* stats = nullptr, PdFault fault = PdFault::none);

// --- 3b. exact P&R: incremental ladder vs. fresh-per-size ------------------

enum class IncrementalPnrFault : std::uint8_t
{
    none,
    /// The incremental engine solves every size under the FIRST grid
    /// generation's activation literal — the selector never advances, so all
    /// newer completeness clauses stay unasserted: the canonical
    /// incremental-encoding bug class (stale selector). Sizes of the first
    /// generation are unaffected, so the fault is vacuous on instances the
    /// smallest size already solves.
    leak_stale_activation
};

struct IncrementalPnrStats
{
    bool found_layout{false};     ///< both lanes produced a layout
    bool budget_diverged{false};  ///< a lane hit its budget — parity checks truncated
    bool fault_vacuous{false};    ///< injected fault never got a chance to act
    unsigned sizes_compared{0};   ///< per-size verdicts cross-checked between the lanes
    unsigned grid_generations{0}; ///< persistent-solver grid growths in the incremental lane
    unsigned proofs_checked{0};   ///< certified UNSAT sizes, summed over both lanes
};

/// Differential oracle for the persistent-solver exact-P&R refactor: maps
/// \p spec, then runs the exact engine twice — once on the incremental
/// ladder (ONE solver, sizes selected by assumptions) and once on the legacy
/// fresh-encoding-per-size path — with UNSAT certification on in both lanes,
/// and cross-checks:
///
///  1. *Verdict parity*: the per-size SAT/UNSAT verdict sequences must be
///     identical up to the first budget-truncated (unknown) verdict of
///     either lane.
///  2. *Same answer*: both lanes must agree on whether a layout exists and,
///     when one does, on the first feasible size (area-minimality); each
///     layout must SAT-equivalence-check against the mapped network.
///  3. *Proof continuity*: every certified UNSAT size in either lane must
///     carry a DRAT proof the independent checker accepts — for the
///     incremental lane that certifies UNSAT *under the size assumptions*
///     against the persistent solver's cumulative clause set.
///  4. With IncrementalPnrFault::leak_stale_activation the oracle must
///     detect the divergence whenever the fault had a chance to act (the
///     grid grew at least twice); otherwise it reports fault_vacuous.
[[nodiscard]] OracleVerdict incremental_pnr_differential(
    const logic::LogicNetwork& spec, const layout::ExactPDOptions& options,
    IncrementalPnrStats* stats = nullptr, IncrementalPnrFault fault = IncrementalPnrFault::none);

// --- 4. front end: rewriting + mapping vs. input ---------------------------

enum class FrontendFault : std::uint8_t
{
    none,
    invert_mapped_output  ///< models a rewrite/mapping step dropping an inverter
};

/// Rewrites and maps \p input, then compares input, rewritten and mapped
/// networks on \p num_patterns random input patterns (seeded by \p seed).
/// Also asserts the mapped network is Bestagon-compliant.
[[nodiscard]] OracleVerdict frontend_differential(const logic::LogicNetwork& input,
                                                  std::uint64_t seed, unsigned num_patterns = 64,
                                                  FrontendFault fault = FrontendFault::none);

// --- 5. run control: cancellation, deadlines, degradation -------------------

enum class RunControlFault : std::uint8_t
{
    none,
    drop_diagnostics,  ///< models a flow that forgets to account for its stages
    forge_success      ///< models an `equivalent` verdict without a layout
};

struct RunControlOracleStats
{
    std::int64_t wall_ms{0};   ///< measured wall-clock of the whole flow call
    bool interrupted{false};   ///< a stage reported timed_out or cancelled
    bool produced_layout{false};
    bool produced_sidb{false};
    std::string first_cut;     ///< name of the first cut stage (empty when none)
    std::string engine_used;
};

/// Runs the full design flow on \p spec under whatever run-control event
/// \p options injects (a pre-tripped or concurrently tripped stop token, a
/// global deadline, per-stage budgets) and checks the invariants every
/// controlled run must satisfy:
///
///  - the flow never throws, whatever is cut when;
///  - diagnostics are never empty and artifacts match the stage statuses
///    (a layout implies a completed/degraded physical_design stage, a cut
///    physical_design stage implies no layout, every derived artifact
///    implies its prerequisite, `equivalent` implies a completed check);
///  - a run that was cut names the cut stage via first_cut();
///  - with a global deadline of D ms the call returns within
///    2*D + \p timing_slack_ms (the slack absorbs the token-only scalable
///    fallback and scheduler noise on loaded CI machines);
///  - step (7b) bookkeeping: unevaluated tiles are only ever reported by a
///    cut or skipped gate_validation stage.
[[nodiscard]] OracleVerdict run_control_differential(
    const logic::LogicNetwork& spec, const core::FlowOptions& options,
    std::int64_t timing_slack_ms = 2000, RunControlOracleStats* stats = nullptr,
    RunControlFault fault = RunControlFault::none);

/// Structural copy of \p network with the driver of PO \p po_index routed
/// through a fresh inverter — the standard "seeded mutation" used to prove
/// the equivalence oracles catch functionally wrong engine output.
[[nodiscard]] logic::LogicNetwork with_inverted_po(const logic::LogicNetwork& network,
                                                   unsigned po_index = 0);

}  // namespace bestagon::testkit
