#include "testing/random.hpp"

#include "layout/scalable_physical_design.hpp"
#include "logic/tech_mapping.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <string>

namespace bestagon::testkit
{

std::uint64_t Rng::next()
{
    // splitmix64 (Steele, Lea, Flood): guaranteed full period of 2^64.
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t Rng::below(std::uint64_t bound)
{
    // Lemire-style rejection-free multiply-shift is overkill here; plain
    // modulo bias is negligible for the small bounds the generators use,
    // but reject the worst case anyway to keep distributions exact.
    const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                                std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t v = next();
    while (v >= limit)
    {
        v = next();
    }
    return v % bound;
}

unsigned Rng::range(unsigned lo, unsigned hi)
{
    return lo + static_cast<unsigned>(below(static_cast<std::uint64_t>(hi) - lo + 1));
}

bool Rng::chance(double p)
{
    return real() < p;
}

double Rng::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

sat::Cnf random_cnf(Rng& rng, const CnfOptions& options)
{
    sat::Cnf cnf;
    cnf.num_vars = static_cast<int>(rng.range(options.min_vars, options.max_vars));
    const double ratio =
        options.clause_ratio_min + rng.real() * (options.clause_ratio_max - options.clause_ratio_min);
    const auto num_clauses =
        std::max<unsigned>(1, static_cast<unsigned>(ratio * static_cast<double>(cnf.num_vars)));
    for (unsigned c = 0; c < num_clauses; ++c)
    {
        const unsigned len = rng.range(1, std::min<unsigned>(options.max_clause_len,
                                                             static_cast<unsigned>(cnf.num_vars)));
        std::vector<int> clause;
        std::set<int> used_vars;
        while (clause.size() < len)
        {
            const int var = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(cnf.num_vars)));
            if (!used_vars.insert(var).second)
            {
                continue;  // no duplicate/contradictory literal within a clause
            }
            clause.push_back(rng.chance(0.5) ? var : -var);
        }
        cnf.clauses.push_back(std::move(clause));
    }
    return cnf;
}

logic::TruthTable random_truth_table(Rng& rng, unsigned num_vars)
{
    logic::TruthTable tt{num_vars};
    for (std::uint64_t bit = 0; bit < tt.num_bits(); ++bit)
    {
        tt.set_bit(bit, rng.chance(0.5));
    }
    return tt;
}

logic::LogicNetwork random_network(Rng& rng, const XagOptions& options)
{
    logic::LogicNetwork net;
    std::vector<logic::LogicNetwork::NodeId> signals;
    std::vector<unsigned> uses;  // consumers per entry of `signals`
    const unsigned num_pis = rng.range(options.min_pis, options.max_pis);
    for (unsigned i = 0; i < num_pis; ++i)
    {
        signals.push_back(net.create_pi("x" + std::to_string(i)));
        uses.push_back(0);
    }
    const auto consume = [&](std::size_t index) { ++uses[index]; return signals[index]; };
    const unsigned num_gates = rng.range(options.min_gates, options.max_gates);
    for (unsigned g = 0; g < num_gates; ++g)
    {
        const auto ia = rng.below(signals.size());
        auto ib = rng.below(signals.size());
        // gate(a, a) strashes to a wire or a constant during mapping —
        // resample so binary gates contribute actual logic (a buffered copy
        // of `a` may still be drawn; the oracles tolerate the residual folds)
        while (ib == ia && signals.size() > 1)
        {
            ib = rng.below(signals.size());
        }
        const unsigned kind = rng.range(0, options.xag_gates_only ? 3 : 7);
        logic::LogicNetwork::NodeId out;
        switch (kind)
        {
            case 0: out = net.create_and(consume(ia), consume(ib)); break;
            case 1: out = net.create_xor(consume(ia), consume(ib)); break;
            case 2: out = net.create_not(consume(ia)); break;
            case 3: out = net.create_buf(consume(ia)); break;
            case 4: out = net.create_or(consume(ia), consume(ib)); break;
            case 5: out = net.create_nand(consume(ia), consume(ib)); break;
            case 6: out = net.create_nor(consume(ia), consume(ib)); break;
            default: out = net.create_xnor(consume(ia), consume(ib)); break;
        }
        signals.push_back(out);
        uses.push_back(0);
    }
    // every signal must reach an output: both P&R engines (and any real
    // specification) require fully observed logic — dangling cones would make
    // the constructive march fail structurally. Reduce unconsumed signals
    // pairwise until at most max_pos remain, then observe each through a PO.
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < signals.size(); ++i)
    {
        if (uses[i] == 0)
        {
            open.push_back(i);
        }
    }
    while (open.size() > options.max_pos)
    {
        const auto ia = open.back();
        open.pop_back();
        const auto ib = open.back();
        open.pop_back();
        const auto out = rng.chance(0.5) ? net.create_and(consume(ia), consume(ib))
                                         : net.create_xor(consume(ia), consume(ib));
        signals.push_back(out);
        uses.push_back(0);
        open.push_back(signals.size() - 1);
    }
    unsigned po = 0;
    for (const auto index : open)
    {
        net.create_po(consume(index), "f" + std::to_string(po++));
    }
    return net;
}

logic::LogicNetwork random_mapped_network(Rng& rng, const XagOptions& options)
{
    return logic::map_to_bestagon(random_network(rng, options));
}

std::optional<layout::GateLevelLayout> random_gate_layout(Rng& rng, const XagOptions& options)
{
    return layout::scalable_physical_design(random_mapped_network(rng, options));
}

std::vector<phys::SiDBSite> random_sidb_canvas(Rng& rng, const CanvasOptions& options)
{
    const unsigned num_dots = rng.range(options.min_dots, options.max_dots);
    std::set<phys::SiDBSite> sites;
    while (sites.size() < num_dots)
    {
        sites.insert(phys::SiDBSite{
            static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(options.max_column) + 1)),
            static_cast<std::int32_t>(
                rng.below(static_cast<std::uint64_t>(options.max_dimer_row) + 1)),
            static_cast<std::int32_t>(rng.below(2))});
    }
    return {sites.begin(), sites.end()};
}

}  // namespace bestagon::testkit
