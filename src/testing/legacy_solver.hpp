/// \file legacy_solver.hpp
/// \brief Frozen pre-arena CDCL solver kept as a differential-testing oracle.
///
/// This is the solver exactly as it stood before the clause-arena /
/// preprocessing / backend modernization (commit 98277c4), with the proof
/// tracing surface trimmed. It is compiled only into the testkit and serves
/// as the reference lane of testkit::sat_differential: any divergence between
/// this solver and the modernized stack is a bug in one of them. Do not
/// improve it — its value is that it does not change.

#pragma once

#include "core/run_control.hpp"
#include "sat/sat_types.hpp"

#include <cstdint>
#include <limits>
#include <vector>

namespace bestagon::testkit::legacy
{

using sat::LBool;
using sat::Lit;
using sat::Result;
using sat::SolverStats;
using sat::Var;
using sat::lbool_from;
using sat::lit_undef;
using sat::neg;
using sat::pos;


/// CDCL SAT solver with incremental assumption-based solving.
class Solver
{
  public:
    Solver();

    /// Creates a fresh variable and returns it.
    Var new_var();

    /// Number of variables created so far.
    [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(assigns_.size()); }

    /// Number of problem (non-learnt) clauses currently held.
    [[nodiscard]] std::size_t num_clauses() const noexcept { return num_problem_clauses_; }

    /// Adds a clause (disjunction of literals). Returns false if the clause
    /// makes the instance trivially unsatisfiable (e.g. empty after
    /// simplification against top-level assignments).
    bool add_clause(std::vector<Lit> lits);

    /// Convenience overloads.
    bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
    bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
    bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

    /// Solves the current formula under the given assumptions.
    Result solve(const std::vector<Lit>& assumptions = {});

    /// Model value of variable \p v after a satisfiable result.
    [[nodiscard]] bool model_value(Var v) const { return model_[static_cast<std::size_t>(v)] == LBool::true_; }

    /// Model value of a literal after a satisfiable result.
    [[nodiscard]] bool model_value(Lit l) const { return model_value(l.var()) != l.sign(); }

    /// Limits the number of conflicts for the next solve() call
    /// (< 0 disables the budget). Exceeding it yields Result::unknown.
    void set_conflict_budget(std::int64_t budget) noexcept { conflict_budget_ = budget; }

    /// Wall-clock budget in milliseconds for the next solve() call
    /// (< 0 disables). Exceeding it yields Result::unknown.
    void set_time_budget_ms(std::int64_t ms) noexcept { time_budget_ms_ = ms; }

    /// Cooperative cancellation: the search polls the token alongside its
    /// budgets and yields Result::unknown once a stop is requested. A
    /// default-constructed token clears it.
    void set_stop_token(core::StopToken token) noexcept { stop_token_ = std::move(token); }

    /// Absolute steady-clock deadline for solve(); composes with (is checked
    /// in addition to) the relative time budget. An unlimited Deadline
    /// clears it.
    void set_deadline(core::Deadline deadline) noexcept { deadline_ = deadline; }

    /// Number of budget checks (≈ decisions) between wall-clock polls.
    /// Smaller strides honor tight time budgets more promptly at the cost of
    /// more clock reads; values < 1 are clamped to 1. Defaults to 256.
    void set_time_check_stride(std::int64_t stride) noexcept
    {
        time_check_stride_ = stride < 1 ? 1 : stride;
    }

    [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

    /// True once the formula was proven unsatisfiable without assumptions.
    [[nodiscard]] bool in_conflicting_state() const noexcept { return !ok_; }

    /// After solve() returned unsatisfiable: the subset of the assumptions
    /// that the refutation depends on (the "unsat core" over assumptions).
    /// Empty when the formula itself is unsatisfiable regardless of the
    /// assumptions.
    [[nodiscard]] const std::vector<Lit>& final_conflict() const noexcept { return conflict_core_; }

    /// Snapshot of the root-level formula as the solver holds it: stored
    /// problem clauses, top-level units from clause simplification, and any
    /// clause that simplified to empty (in original form). Every returned
    /// clause is a logical consequence of the clauses passed to add_clause(),
    /// so a DRAT refutation checked against this snapshot certifies the
    /// original formula unsatisfiable. Intended for proof certification.
    [[nodiscard]] std::vector<std::vector<Lit>> root_clauses() const;

  private:
    using CRef = std::uint32_t;
    static constexpr CRef cref_undef = std::numeric_limits<CRef>::max();

    struct Clause
    {
        std::vector<Lit> lits;
        double activity{0.0};
        std::uint32_t lbd{0};
        bool learnt{false};
        bool deleted{false};
    };

    struct Watcher
    {
        CRef cref;
        Lit blocker;
    };

    struct VarOrderHeap
    {
        std::vector<Var> heap;
        std::vector<int> indices;  // position in heap, -1 if absent
        const std::vector<double>* activity{nullptr};

        [[nodiscard]] bool less(Var a, Var b) const
        {
            return (*activity)[static_cast<std::size_t>(a)] > (*activity)[static_cast<std::size_t>(b)];
        }
        [[nodiscard]] bool empty() const noexcept { return heap.empty(); }
        [[nodiscard]] bool contains(Var v) const { return indices[static_cast<std::size_t>(v)] >= 0; }
        void grow(Var v);
        void insert(Var v);
        void percolate_up(int i);
        void percolate_down(int i);
        Var remove_max();
        void update(Var v);
    };

    // clause management
    CRef alloc_clause(std::vector<Lit> lits, bool learnt);
    void attach_clause(CRef cr);
    void remove_clause(CRef cr);
    void reduce_db();

    // assignment / propagation
    [[nodiscard]] LBool value(Lit l) const
    {
        const auto a = assigns_[static_cast<std::size_t>(l.var())];
        if (a == LBool::undef)
        {
            return LBool::undef;
        }
        return (a == LBool::true_) != l.sign() ? LBool::true_ : LBool::false_;
    }
    [[nodiscard]] LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
    void unchecked_enqueue(Lit l, CRef from);
    CRef propagate();
    void cancel_until(int level);
    [[nodiscard]] int decision_level() const noexcept { return static_cast<int>(trail_lim_.size()); }

    // conflict analysis
    void analyze(CRef conflict, std::vector<Lit>& out_learnt, int& out_btlevel, std::uint32_t& out_lbd);
    [[nodiscard]] bool lit_redundant(Lit l, std::uint32_t abstract_levels);
    void analyze_final(Lit failed_assumption);

    // branching
    Lit pick_branch_lit();
    void var_bump_activity(Var v);
    void var_decay_activity() noexcept { var_inc_ /= var_decay_; }
    void cla_bump_activity(Clause& c);
    void cla_decay_activity() noexcept { cla_inc_ /= cla_decay_; }

    // search
    Result search(std::int64_t conflicts_allowed);
    [[nodiscard]] static std::int64_t luby(std::int64_t i);
    [[nodiscard]] bool budget_exhausted() const;

    // data
    std::vector<Clause> clauses_;
    std::vector<CRef> problem_clauses_;
    std::vector<CRef> learnts_;
    std::size_t num_problem_clauses_{0};

    std::vector<std::vector<Watcher>> watches_;  // indexed by literal code
    std::vector<LBool> assigns_;
    std::vector<LBool> model_;
    std::vector<bool> polarity_;  // saved phases (true = last assigned false)
    std::vector<double> activity_;
    std::vector<CRef> reason_;
    std::vector<int> level_;
    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    std::size_t qhead_{0};

    VarOrderHeap order_heap_;
    std::vector<Lit> assumptions_;
    std::vector<Lit> conflict_core_;  // failed assumptions of the last UNSAT solve

    // root-formula bookkeeping for proof certification: units produced by
    // add_clause simplification and clauses that simplified to empty are not
    // stored in clauses_, so they are recorded here to keep root_clauses()
    // a faithful (consequence-preserving) snapshot of the input formula
    std::vector<Lit> root_units_;
    std::vector<std::vector<Lit>> root_conflict_clauses_;

    // temporaries for analyze()
    std::vector<std::uint8_t> seen_;
    std::vector<Lit> analyze_toclear_;
    std::vector<Lit> analyze_stack_;

    bool ok_{true};
    double var_inc_{1.0};
    double var_decay_{0.95};
    double cla_inc_{1.0};
    double cla_decay_{0.999};
    std::int64_t conflict_budget_{-1};
    std::int64_t time_budget_ms_{-1};
    core::StopToken stop_token_{};
    core::Deadline deadline_{};
    std::int64_t time_check_stride_{256};
    mutable std::int64_t time_check_countdown_{0};
    std::int64_t solve_start_ms_{0};
    std::uint64_t conflicts_at_solve_start_{0};
    double max_learnts_{0.0};

    SolverStats stats_{};
};

}  // namespace bestagon::testkit::legacy
