/// \file golden.hpp
/// \brief Golden-file regression harness for textual artifacts
///        (.sqd XML, SVG, DOT, ASCII renderings).
///
/// A golden test renders an artifact to a string and calls
/// `compare_golden(actual, path)`. In comparison mode the actual text is
/// normalized (CRLF -> LF, trailing whitespace stripped, exactly one final
/// newline) and diffed line-by-line against the checked-in golden; the
/// verdict pinpoints the first divergent line. In update mode
/// (`--update-goldens` on the golden-test binary, or
/// BESTAGON_UPDATE_GOLDENS=1) the normalized text is written to the golden
/// path instead and the comparison always passes — regenerate, inspect the
/// git diff, commit.

#pragma once

#include <string>

namespace bestagon::testkit
{

/// Process-wide update-mode flag (set by the golden test binary's main).
[[nodiscard]] bool& update_goldens_flag();

/// Normalizes artifact text: CRLF/CR -> LF, strips trailing whitespace per
/// line, guarantees exactly one trailing newline (empty input stays empty).
[[nodiscard]] std::string normalize_artifact(const std::string& text);

/// Outcome of a golden comparison; `detail` carries the first mismatching
/// line with context, or the I/O error.
struct GoldenVerdict
{
    bool ok{true};
    std::string detail;

    explicit operator bool() const noexcept { return ok; }
};

/// Compares \p actual against the golden file at \p golden_path
/// (or rewrites it in update mode).
[[nodiscard]] GoldenVerdict compare_golden(const std::string& actual,
                                           const std::string& golden_path);

}  // namespace bestagon::testkit
