#include "testing/reproducer.hpp"

#include "core/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace bestagon::testkit
{

namespace
{

/// Parses a decimal or 0x-prefixed hexadecimal unsigned integer; returns
/// false on malformed input instead of throwing (env values are untrusted).
bool parse_u64(const char* text, std::uint64_t& out)
{
    if (text == nullptr || *text == '\0')
    {
        return false;
    }
    char* end = nullptr;
    const auto value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0')
    {
        return false;
    }
    out = value;
    return true;
}

}  // namespace

FuzzBudget fuzz_budget(std::uint64_t default_seed, unsigned default_iterations)
{
    FuzzBudget budget{default_seed, default_iterations};
    std::uint64_t value = 0;
    // fuzz budgets are read once at suite start on the main thread; nothing in
    // the process calls setenv
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (parse_u64(std::getenv("BESTAGON_FUZZ_SEED"), value))
    {
        budget.base_seed = value;
    }
    // same single-threaded read-once path as above
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (parse_u64(std::getenv("BESTAGON_FUZZ_SCALE"), value))
    {
        const auto scale = std::clamp<std::uint64_t>(value, 1, 1000);
        budget.iterations = static_cast<unsigned>(
            std::min<std::uint64_t>(budget.iterations * scale, 1'000'000));
    }
    return budget;
}

std::uint64_t case_seed(std::uint64_t base, std::uint64_t index)
{
    return core::derive_seed(base, index);
}

std::string reproducer(const std::string& oracle, std::uint64_t base_seed, std::uint64_t index)
{
    std::ostringstream out;
    out << "[bestagon-repro] oracle=" << oracle << " BESTAGON_FUZZ_SEED=0x" << std::hex
        << base_seed << std::dec << " case=" << index << " case_seed=0x" << std::hex
        << case_seed(base_seed, index);
    return out.str();
}

}  // namespace bestagon::testkit
