#include "testing/golden.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace bestagon::testkit
{

bool& update_goldens_flag()
{
    static bool update = []
    {
        // read once under the static initializer lock; nothing in the process
        // calls setenv
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char* env = std::getenv("BESTAGON_UPDATE_GOLDENS");
        return env != nullptr && std::string{env} != "0" && std::string{env} != "";
    }();
    return update;
}

std::string normalize_artifact(const std::string& text)
{
    std::vector<std::string> lines;
    std::string current;
    for (std::size_t i = 0; i < text.size(); ++i)
    {
        const char c = text[i];
        if (c == '\r')
        {
            if (i + 1 < text.size() && text[i + 1] == '\n')
            {
                ++i;
            }
            lines.push_back(std::move(current));
            current.clear();
        }
        else if (c == '\n')
        {
            lines.push_back(std::move(current));
            current.clear();
        }
        else
        {
            current.push_back(c);
        }
    }
    if (!current.empty())
    {
        lines.push_back(std::move(current));
    }
    while (!lines.empty() && lines.back().empty())
    {
        lines.pop_back();
    }
    std::string out;
    for (auto& line : lines)
    {
        while (!line.empty() && (line.back() == ' ' || line.back() == '\t'))
        {
            line.pop_back();
        }
        out += line;
        out += '\n';
    }
    return out;
}

GoldenVerdict compare_golden(const std::string& actual, const std::string& golden_path)
{
    const auto normalized = normalize_artifact(actual);
    if (update_goldens_flag())
    {
        std::ofstream out{golden_path, std::ios::binary};
        if (!out)
        {
            return {false, "cannot write golden file " + golden_path};
        }
        out << normalized;
        return {};
    }

    std::ifstream in{golden_path, std::ios::binary};
    if (!in)
    {
        return {false, "missing golden file " + golden_path +
                           " (regenerate with --update-goldens or BESTAGON_UPDATE_GOLDENS=1)"};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto expected = normalize_artifact(buffer.str());
    if (expected == normalized)
    {
        return {};
    }

    // locate the first divergent line for an actionable message
    std::istringstream exp_stream{expected};
    std::istringstream act_stream{normalized};
    std::string exp_line;
    std::string act_line;
    std::size_t line_no = 0;
    while (true)
    {
        const bool has_exp = static_cast<bool>(std::getline(exp_stream, exp_line));
        const bool has_act = static_cast<bool>(std::getline(act_stream, act_line));
        ++line_no;
        if (!has_exp && !has_act)
        {
            break;  // only normalization differences remained — treat as diff anyway
        }
        if (!has_exp || !has_act || exp_line != act_line)
        {
            std::ostringstream out;
            out << golden_path << ": first difference at line " << line_no << "\n  golden: "
                << (has_exp ? exp_line : "<end of file>") << "\n  actual: "
                << (has_act ? act_line : "<end of file>")
                << "\n  (rerun with --update-goldens to accept the new output)";
            return {false, out.str()};
        }
    }
    return {false, golden_path + ": files differ"};
}

}  // namespace bestagon::testkit
