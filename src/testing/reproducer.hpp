/// \file reproducer.hpp
/// \brief Seed and reproducer conventions for the property-based testing and
///        fuzzing subsystem (`bestagon_testkit`).
///
/// Every randomized test draws its per-case seed as
/// `core::derive_seed(base_seed, case_index)`, so a failure is fully
/// described by the pair (base seed, case index). `reproducer()` renders
/// that pair as a one-line string that is printed with every failing
/// assertion; pasting the `BESTAGON_FUZZ_SEED=...` prefix in front of the
/// test command replays the exact failing case stream.
///
/// Environment knobs (read once per call site through `fuzz_budget`):
///  - BESTAGON_FUZZ_SEED:  overrides the base seed (decimal or 0x-hex)
///  - BESTAGON_FUZZ_SCALE: multiplies every default iteration count
///    (CI uses this to buy deeper fuzzing without touching the sources)

#pragma once

#include <cstdint>
#include <string>

namespace bestagon::testkit
{

/// Effort and seeding of one fuzzing loop.
struct FuzzBudget
{
    std::uint64_t base_seed{0};
    unsigned iterations{0};
};

/// Resolves the budget for one fuzz loop: \p default_seed and
/// \p default_iterations, overridden by BESTAGON_FUZZ_SEED and scaled by
/// BESTAGON_FUZZ_SCALE respectively (scale is clamped to [1, 1000]).
[[nodiscard]] FuzzBudget fuzz_budget(std::uint64_t default_seed, unsigned default_iterations);

/// Seed for case \p index of the loop seeded by \p base
/// (exactly core::derive_seed — re-exported so tests need not link the
/// concurrency target directly).
[[nodiscard]] std::uint64_t case_seed(std::uint64_t base, std::uint64_t index);

/// One-line reproducer, e.g.
/// `[bestagon-repro] oracle=sat BESTAGON_FUZZ_SEED=0x5eed case=17 case_seed=0x9e3779b97f4a7c15`.
[[nodiscard]] std::string reproducer(const std::string& oracle, std::uint64_t base_seed,
                                     std::uint64_t index);

}  // namespace bestagon::testkit
