#include "testing/oracles.hpp"

#include "core/thread_pool.hpp"
#include "layout/equivalence_checking.hpp"
#include "layout/scalable_physical_design.hpp"
#include "logic/exact_synthesis.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"
#include "phys/charge_state.hpp"
#include "phys/defect.hpp"
#include "phys/defect_sweep.hpp"
#include "phys/exhaustive.hpp"
#include "phys/ground_state_exact.hpp"
#include "phys/quicksim.hpp"
#include "sat/backend.hpp"
#include "sat/proof.hpp"
#include "sat/proof_check.hpp"
#include "sat/solver.hpp"
#include "testing/legacy_solver.hpp"
#include "testing/random.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <sstream>

namespace bestagon::testkit
{

namespace
{

/// True if \p assignment (bit v-1 = DIMACS variable v) satisfies the clause.
bool clause_satisfied(const std::vector<int>& clause, std::uint64_t assignment)
{
    for (const int lit : clause)
    {
        const auto var = static_cast<unsigned>(std::abs(lit)) - 1;
        const bool value = ((assignment >> var) & 1ULL) != 0;
        if (value == (lit > 0))
        {
            return true;
        }
    }
    return false;
}

bool formula_satisfied(const sat::Cnf& cnf, std::uint64_t assignment)
{
    for (const auto& clause : cnf.clauses)
    {
        if (!clause_satisfied(clause, assignment))
        {
            return false;
        }
    }
    return true;
}

/// Exhaustive existence check over all 2^num_vars assignments.
bool bruteforce_satisfiable(const sat::Cnf& cnf)
{
    const std::uint64_t count = 1ULL << static_cast<unsigned>(cnf.num_vars);
    for (std::uint64_t a = 0; a < count; ++a)
    {
        if (formula_satisfied(cnf, a))
        {
            return true;
        }
    }
    return false;
}

OracleVerdict fail(std::string detail)
{
    return OracleVerdict{false, std::move(detail)};
}

/// True if any node of \p network is a constant. Mapped networks can contain
/// constants when structural hashing folds a degenerate specification (e.g.
/// xor of a signal with a buffered copy of itself); the gate library has no
/// constant tile, so such networks lie outside both P&R engines' domain.
bool has_constant_nodes(const logic::LogicNetwork& network)
{
    for (const auto id : network.topological_order())
    {
        const auto type = network.type_of(id);
        if (type == logic::GateType::const0 || type == logic::GateType::const1)
        {
            return true;
        }
    }
    return false;
}

/// Loads \p cnf into the frozen pre-arena solver.
bool load_into_legacy(legacy::Solver& solver, const sat::Cnf& cnf)
{
    while (solver.num_vars() < cnf.num_vars)
    {
        static_cast<void>(solver.new_var());
    }
    for (const auto& clause : cnf.clauses)
    {
        std::vector<sat::Lit> lits;
        lits.reserve(clause.size());
        for (const auto l : clause)
        {
            const sat::Var v = std::abs(l) - 1;
            while (solver.num_vars() <= v)
            {
                static_cast<void>(solver.new_var());
            }
            lits.push_back(sat::Lit{v, l < 0});
        }
        if (!solver.add_clause(std::move(lits)))
        {
            return false;
        }
    }
    return true;
}

/// The legacy reference lane: verdict must match the modernized solver's.
OracleVerdict check_legacy_lane(const sat::Cnf& cnf, sat::Result reference)
{
    legacy::Solver solver;
    const bool trivially_unsat = !load_into_legacy(solver, cnf);
    const auto result = trivially_unsat ? sat::Result::unsatisfiable : solver.solve();
    if (result == sat::Result::unknown)
    {
        return fail("legacy solver returned unknown without a budget being set");
    }
    if (result != reference)
    {
        std::ostringstream out;
        out << "legacy solver verdict diverges from the arena solver: "
            << (result == sat::Result::satisfiable ? "SAT" : "UNSAT") << " vs "
            << (reference == sat::Result::satisfiable ? "SAT" : "UNSAT") << " (" << cnf.num_vars
            << " vars, " << cnf.clauses.size() << " clauses)";
        return fail(out.str());
    }
    return {};
}

/// The preprocessing lane: identical verdict, reconstructed models checked
/// against the ORIGINAL clauses, UNSAT DRAT-certified through preprocessing.
OracleVerdict check_preprocessing_lane(const sat::Cnf& cnf, sat::Result reference, SatFault fault,
                                       SatOracleStats& s)
{
    sat::PreprocessorOptions prep_options;
    prep_options.backend_min_clauses = 0;  // fuzz instances are tiny: always preprocess
    sat::PreprocessingBackend backend{prep_options};
    sat::MemoryProofTracer tracer;
    backend.set_proof_tracer(&tracer);
    backend.testkit_skip_model_reconstruction(fault == SatFault::skip_model_reconstruction);
    backend.testkit_drop_preprocessor_proof_steps(fault == SatFault::drop_eliminated_clause_proof);

    const bool trivially_unsat = !sat::load_into_solver(backend, cnf);
    const auto result = trivially_unsat ? sat::Result::unsatisfiable : backend.solve();
    if (result == sat::Result::unknown)
    {
        return fail("preprocessing backend returned unknown without a budget being set");
    }
    if (result != reference)
    {
        std::ostringstream out;
        out << "preprocessing backend verdict diverges from the arena solver: "
            << (result == sat::Result::satisfiable ? "SAT" : "UNSAT") << " vs "
            << (reference == sat::Result::satisfiable ? "SAT" : "UNSAT") << " (" << cnf.num_vars
            << " vars, " << cnf.clauses.size() << " clauses)";
        return fail(out.str());
    }
    s.vars_eliminated = backend.preprocessor_stats().vars_eliminated;

    if (result == sat::Result::satisfiable)
    {
        // the reconstructed model must satisfy every ORIGINAL clause — this
        // is exactly the check that catches a missing reconstruction stack
        std::uint64_t assignment = 0;
        for (int v = 0; v < cnf.num_vars; ++v)
        {
            if (v < backend.num_vars() && backend.model_value(static_cast<sat::Var>(v)))
            {
                assignment |= 1ULL << static_cast<unsigned>(v);
            }
        }
        for (std::size_t c = 0; c < cnf.clauses.size(); ++c)
        {
            if (!clause_satisfied(cnf.clauses[c], assignment))
            {
                std::ostringstream out;
                out << "preprocessed SAT model violates clause " << c << " of "
                    << cnf.clauses.size() << " (" << cnf.num_vars << " vars)";
                return fail(out.str());
            }
        }
        return {};
    }

    // UNSAT through preprocessing must stay certifiable against the original
    // formula: the proof stream carries the preprocessor's derivations
    const auto check = sat::check_drat_proof(sat::to_cnf(backend.root_clauses()), tracer.proof());
    if (!check.valid)
    {
        return fail("preprocessed UNSAT answer failed DRAT certification: " + check.error);
    }
    s.preprocessed_proof_checked = true;
    return {};
}

}  // namespace

OracleVerdict sat_differential(const sat::Cnf& cnf, unsigned max_bruteforce_vars, SatFault fault,
                               SatOracleStats* stats)
{
    SatOracleStats local;
    SatOracleStats& s = stats != nullptr ? *stats : local;

    sat::Solver solver;
    sat::MemoryProofTracer tracer;
    solver.set_proof_tracer(&tracer);
    const bool trivially_unsat = !sat::load_into_solver(solver, cnf);
    const auto real_result = trivially_unsat ? sat::Result::unsatisfiable : solver.solve();
    if (real_result == sat::Result::unknown)
    {
        return fail("CDCL solver returned unknown without a budget being set");
    }

    // race the other lanes against the arena solver's verdict
    if (auto lane = check_legacy_lane(cnf, real_result); !lane.ok)
    {
        return lane;
    }
    if (auto lane = check_preprocessing_lane(cnf, real_result, fault, s); !lane.ok)
    {
        return lane;
    }

    if (real_result == sat::Result::unsatisfiable)
    {
        // every UNSAT answer is certified: the proof the solver emitted must
        // pass the independent backward DRAT checker against the root formula
        s.unsat = true;
        sat::DratProof proof = tracer.proof();
        if (fault == SatFault::drop_proof_lemmas)
        {
            proof.steps.clear();
            proof.steps.push_back({false, {}});  // keep only the final empty clause
        }
        const auto check = sat::check_drat_proof(sat::to_cnf(solver.root_clauses()), proof);
        if (!check.valid)
        {
            return fail("UNSAT answer failed DRAT certification: " + check.error);
        }
        s.proof_checked = true;
    }

    auto result = real_result;
    if (fault == SatFault::flip_reported_result)
    {
        result = result == sat::Result::satisfiable ? sat::Result::unsatisfiable
                                                    : sat::Result::satisfiable;
    }

    if (result == sat::Result::satisfiable)
    {
        // model-check: the reported assignment must satisfy every clause
        // (after an UNSAT->SAT flip there is no model — the all-false
        // "claimed" model stands in, and necessarily fails the check)
        std::uint64_t assignment = 0;
        if (real_result == sat::Result::satisfiable)
        {
            for (int v = 0; v < cnf.num_vars; ++v)
            {
                if (v < solver.num_vars() && solver.model_value(static_cast<sat::Var>(v)))
                {
                    assignment |= 1ULL << static_cast<unsigned>(v);
                }
            }
        }
        if (fault == SatFault::corrupt_model)
        {
            assignment ^= 1ULL;
        }
        for (std::size_t c = 0; c < cnf.clauses.size(); ++c)
        {
            if (!clause_satisfied(cnf.clauses[c], assignment))
            {
                std::ostringstream out;
                out << "SAT model violates clause " << c << " of " << cnf.clauses.size() << " ("
                    << cnf.num_vars << " vars)";
                return fail(out.str());
            }
        }
        return {};
    }

    // UNSAT: refutable only by the exhaustive sweep (skip oversized instances)
    if (static_cast<unsigned>(cnf.num_vars) > max_bruteforce_vars)
    {
        return {};
    }
    if (bruteforce_satisfiable(cnf))
    {
        std::ostringstream out;
        out << "solver reported UNSAT but a satisfying assignment exists (" << cnf.num_vars
            << " vars, " << cnf.clauses.size() << " clauses)";
        return fail(out.str());
    }
    return {};
}


namespace
{

/// Heuristic-engine checks shared by simanneal and quicksim: validity,
/// self-consistent energy, never beating the reference minimum, accuracy
/// within tolerance, and the degeneracy lower-bound contract.
OracleVerdict check_heuristic_ground_state(const char* name, const phys::SiDBSystem& system,
                                           const phys::GroundStateResult& reference,
                                           const phys::GroundStateResult& heuristic,
                                           double tolerance_ev)
{
    std::ostringstream out;
    if (heuristic.config.size() != system.size())
    {
        out << name << " returned a configuration of the wrong size";
        return fail(out.str());
    }
    if (!system.physically_valid(heuristic.config))
    {
        out << name
            << " configuration is not physically valid (population or "
               "configuration stability violated)";
        return fail(out.str());
    }
    const double recomputed = system.grand_potential(heuristic.config);
    if (std::abs(recomputed - heuristic.grand_potential) > 1e-9)
    {
        out << name << " misreports its own energy: config evaluates to " << recomputed
            << " eV but " << heuristic.grand_potential << " eV was reported";
        return fail(out.str());
    }
    if (heuristic.grand_potential < reference.grand_potential - 1e-9)
    {
        out << name << " energy " << heuristic.grand_potential
            << " eV beats the exhaustive minimum " << reference.grand_potential
            << " eV — the exact engine is not exact";
        return fail(out.str());
    }
    if (heuristic.grand_potential > reference.grand_potential + tolerance_ev)
    {
        out << name << " missed the ground state: " << heuristic.grand_potential << " eV vs "
            << reference.grand_potential << " eV exhaustive (" << system.size() << " dots)";
        return fail(out.str());
    }
    // distinct-configuration degeneracy is a lower bound on the true count,
    // but only when the heuristic actually sits on the minimum (otherwise
    // its tolerance window is shifted upward and may cover configurations
    // the exhaustive count excludes)
    if (heuristic.grand_potential <= reference.grand_potential + 1e-9 &&
        heuristic.degeneracy > reference.degeneracy)
    {
        out << name << " reports degeneracy " << heuristic.degeneracy
            << " above the exhaustive engine's true count " << reference.degeneracy;
        return fail(out.str());
    }
    return {};
}

}  // namespace

OracleVerdict ground_state_differential(const std::vector<phys::SiDBSite>& canvas,
                                        const phys::SimulationParameters& sim_params,
                                        const phys::SimAnnealParameters& anneal_params,
                                        double tolerance_ev, GroundStateFault fault)
{
    const phys::SiDBSystem system{canvas, sim_params};
    auto reference = phys::exhaustive_ground_state(system);
    if (!reference.complete)
    {
        return fail("exhaustive engine did not report a complete search");
    }
    if (fault == GroundStateFault::shift_exact_energy)
    {
        reference.grand_potential += 0.010;
    }

    std::ostringstream out;

    // --- exact engine: claims bit-identical results to exhaustive ----------
    phys::GroundStateResult exact;
    if (fault == GroundStateFault::shrink_exact_population_window)
    {
        // unsound-window mutant: force one charged ground-state site neutral
        // (or, for an all-neutral ground state, force site 0 negative) so the
        // search prunes the true minimum
        auto window = phys::compute_population_window(system);
        if (canvas.empty())
        {
            return fail("shrink_exact_population_window needs a non-empty canvas");
        }
        std::size_t site = 0;
        std::uint8_t forced = phys::site_forced_negative;
        for (std::size_t i = 0; i < reference.config.size(); ++i)
        {
            if (reference.config[i] != 0)
            {
                site = i;
                forced = phys::site_forced_neutral;
                break;
            }
        }
        window.status[site] = forced;
        exact = phys::testkit_exact_ground_state_with_window(
            system, system.parameters().energy_tolerance, window);
    }
    else
    {
        exact = phys::exact_ground_state(system);
    }
    if (!exact.complete)
    {
        return fail("exact engine did not report a complete search");
    }
    if (exact.config != reference.config)
    {
        out << "exact engine found a different ground-state configuration than exhaustive ("
            << canvas.size() << " dots)";
        return fail(out.str());
    }
    if (exact.grand_potential != reference.grand_potential)
    {
        out << "exact engine energy " << exact.grand_potential
            << " eV is not bit-identical to the exhaustive minimum " << reference.grand_potential
            << " eV";
        return fail(out.str());
    }
    if (exact.degeneracy != reference.degeneracy)
    {
        out << "exact engine degeneracy " << exact.degeneracy << " != exhaustive degeneracy "
            << reference.degeneracy;
        return fail(out.str());
    }

    // --- heuristic engines -------------------------------------------------
    auto simanneal = phys::simulated_annealing(system, anneal_params);
    if (fault == GroundStateFault::corrupt_anneal_config)
    {
        if (simanneal.config.empty())
        {
            return fail("corrupt_anneal_config needs a non-empty canvas");
        }
        simanneal.config[0] ^= 1U;
    }
    if (auto verdict = check_heuristic_ground_state("simanneal", system, reference, simanneal,
                                                    tolerance_ev);
        !verdict)
    {
        return verdict;
    }

    phys::QuickSimParameters quicksim_params;
    quicksim_params.num_instances = anneal_params.num_instances;
    quicksim_params.seed = anneal_params.seed;
    quicksim_params.num_threads = anneal_params.num_threads;
    auto quicksim = phys::quicksim_ground_state(system, quicksim_params);
    if (fault == GroundStateFault::corrupt_quicksim_config)
    {
        if (quicksim.config.empty())
        {
            return fail("corrupt_quicksim_config needs a non-empty canvas");
        }
        quicksim.config[0] ^= 1U;
    }
    return check_heuristic_ground_state("quicksim", system, reference, quicksim, tolerance_ev);
}

namespace
{

/// Pre-refactor naive quench: greedy descent evaluating a fresh O(n)
/// local-potential sum at every decision — the exact SiDBSystem::quench
/// code before the charge-state kernel refactor. Kept as the reference the
/// kernel-backed engines are differenced against.
void naive_quench(const phys::SiDBSystem& system, phys::ChargeConfig& config)
{
    const std::size_t n = system.size();
    const double mu = system.parameters().mu_minus;
    const double tol = system.parameters().stability_tolerance;
    bool changed = true;
    while (changed)
    {
        changed = false;
        for (std::size_t i = 0; i < n; ++i)
        {
            const double v = system.local_potential(config, i);
            const double delta = config[i] == 0 ? (mu + v) : -(mu + v);
            if (delta < -tol)
            {
                config[i] ^= 1;
                changed = true;
            }
        }
        for (std::size_t i = 0; i < n; ++i)
        {
            if (config[i] == 0)
            {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j)
            {
                if (config[j] != 0 || j == i)
                {
                    continue;
                }
                const double delta = system.local_potential(config, j) -
                                     system.local_potential(config, i) - system.potential(i, j);
                if (delta < -tol)
                {
                    config[i] = 0;
                    config[j] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }
}

/// Pre-refactor naive annealing instance: identical RNG stream and move
/// logic to phys::simulated_annealing, but every proposal pays fresh O(n)
/// local-potential sums and the trailing quench is the naive one.
std::pair<phys::ChargeConfig, double> naive_anneal_instance(const phys::SiDBSystem& system,
                                                            const phys::SimAnnealParameters& params,
                                                            std::uint64_t seed)
{
    const std::size_t n = system.size();
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> uni{0.0, 1.0};

    phys::ChargeConfig config(n, 0);
    for (auto& c : config)
    {
        c = (rng() & 1) != 0 ? 1 : 0;
    }
    double temperature = params.initial_temperature;
    for (unsigned step = 0; step < params.steps_per_instance; ++step)
    {
        // mirrors the production proposal loop exactly: an invalid hop is a
        // rejected proposal (no fall-through to a flip, no acceptance draw)
        const bool do_hop = (rng() & 3U) == 0;
        const std::size_t i = rng() % n;
        std::size_t hop_to = n;
        bool rejected = false;
        double delta = 0.0;
        if (do_hop)
        {
            if (config[i] == 0)
            {
                rejected = true;
            }
            else
            {
                const std::size_t j = rng() % n;
                if (config[j] == 0 && j != i)
                {
                    hop_to = j;
                    delta = system.local_potential(config, j) - system.local_potential(config, i) -
                            system.potential(i, j);
                }
                else
                {
                    rejected = true;
                }
            }
        }
        else
        {
            const double v = system.local_potential(config, i);
            delta = config[i] == 0 ? (system.parameters().mu_minus + v)
                                   : -(system.parameters().mu_minus + v);
        }
        if (!rejected && (delta <= 0.0 || uni(rng) < std::exp(-delta / temperature)))
        {
            if (hop_to != n)
            {
                config[i] = 0;
                config[hop_to] = 1;
            }
            else
            {
                config[i] ^= 1;
            }
        }
        temperature *= params.cooling_rate;
    }
    naive_quench(system, config);
    return {std::move(config), system.grand_potential(config)};
}

/// Naive population + configuration stability with fresh sums everywhere
/// (independent of both the kernel and SiDBSystem's kernel-backed checks).
bool naive_physically_valid(const phys::SiDBSystem& system, const phys::ChargeConfig& config)
{
    const std::size_t n = system.size();
    const double mu = system.parameters().mu_minus;
    const double tol = system.parameters().stability_tolerance;
    for (std::size_t i = 0; i < n; ++i)
    {
        const double level = mu + system.local_potential(config, i);
        if (config[i] != 0 && level > tol)
        {
            return false;
        }
        if (config[i] == 0 && level < -tol)
        {
            return false;
        }
    }
    for (std::size_t i = 0; i < n; ++i)
    {
        if (config[i] == 0)
        {
            continue;
        }
        const double vi = system.local_potential(config, i);
        for (std::size_t j = 0; j < n; ++j)
        {
            if (config[j] != 0 || j == i)
            {
                continue;
            }
            if (system.local_potential(config, j) - vi - system.potential(i, j) < -tol)
            {
                return false;
            }
        }
    }
    return true;
}

}  // namespace

OracleVerdict charge_state_differential(const std::vector<phys::SiDBSite>& canvas,
                                        const phys::SimulationParameters& sim_params,
                                        const phys::SimAnnealParameters& anneal_params,
                                        std::uint64_t seed, unsigned num_moves, double tolerance,
                                        ChargeStateFault fault)
{
    if (canvas.size() < 2)
    {
        return fail("charge-state oracle needs at least two sites");
    }
    const phys::SiDBSystem system{canvas, sim_params};
    const std::size_t n = system.size();
    Rng rng{seed};
    std::ostringstream out;

    // --- 1. cache fidelity under a random committed move sequence ----------
    phys::ChargeConfig mirror(n, 0);
    for (auto& c : mirror)
    {
        c = rng.chance(0.5) ? 1 : 0;
    }
    phys::ChargeState kernel{system, mirror};
    const unsigned fault_move = num_moves / 2;
    for (unsigned move = 0; move < num_moves; ++move)
    {
        // pick a move: mostly flips, hops when an electron and a hole exist
        const std::size_t i = static_cast<std::size_t>(rng.below(n));
        std::size_t hop_to = n;
        if (rng.chance(0.25) && mirror[i] != 0)
        {
            const std::size_t j = static_cast<std::size_t>(rng.below(n));
            if (mirror[j] == 0 && j != i)
            {
                hop_to = j;
            }
        }
        if (fault == ChargeStateFault::skip_cache_update && move == fault_move)
        {
            // the mutant: the configuration changes but the cache does not
            phys::ChargeConfig skipped = mirror;
            skipped[i] ^= 1U;
            kernel.testkit_adopt_config_skip_cache_update(skipped);
            mirror = std::move(skipped);
        }
        else if (hop_to != n)
        {
            const double expect = system.local_potential(mirror, hop_to) -
                                  system.local_potential(mirror, i) - system.potential(i, hop_to);
            if (std::abs(kernel.delta_hop(i, hop_to) - expect) > tolerance)
            {
                out << "delta_hop(" << i << ", " << hop_to << ") = " << kernel.delta_hop(i, hop_to)
                    << " diverges from the fresh evaluation " << expect << " at move " << move;
                return fail(out.str());
            }
            kernel.commit_hop(i, hop_to);
            mirror[i] = 0;
            mirror[hop_to] = 1;
        }
        else
        {
            const double v = system.local_potential(mirror, i);
            const double expect = mirror[i] == 0 ? (sim_params.mu_minus + v)
                                                 : -(sim_params.mu_minus + v);
            if (std::abs(kernel.delta_flip(i) - expect) > tolerance)
            {
                out << "delta_flip(" << i << ") = " << kernel.delta_flip(i)
                    << " diverges from the fresh evaluation " << expect << " at move " << move;
                return fail(out.str());
            }
            kernel.commit_flip(i);
            mirror[i] ^= 1U;
        }

        if (kernel.config() != mirror)
        {
            out << "kernel configuration diverged from the mirrored moves at move " << move;
            return fail(out.str());
        }
        for (std::size_t s = 0; s < n; ++s)
        {
            const double fresh = system.local_potential(mirror, s);
            if (std::abs(kernel.local_potential(s) - fresh) > tolerance)
            {
                out << "cached v_" << s << " = " << kernel.local_potential(s)
                    << " drifted beyond " << tolerance << " from the fresh sum " << fresh
                    << " after move " << move << " (" << num_moves << " total)";
                return fail(out.str());
            }
        }
        const double fresh_f = system.grand_potential(mirror);
        if (std::abs(kernel.grand_potential() - fresh_f) > tolerance * static_cast<double>(n))
        {
            out << "cached grand potential " << kernel.grand_potential()
                << " diverges from the naive pairwise sum " << fresh_f << " after move " << move;
            return fail(out.str());
        }
    }

    // the exact-resync hook must restore bit-exact agreement
    kernel.rebuild();
    for (std::size_t s = 0; s < n; ++s)
    {
        if (kernel.local_potential(s) != system.local_potential(mirror, s))
        {
            out << "rebuild() left v_" << s << " = " << kernel.local_potential(s)
                << " not bit-identical to the fresh sum " << system.local_potential(mirror, s);
            return fail(out.str());
        }
    }

    // --- 2a. kernel-backed quench vs. the naive reference -------------------
    phys::ChargeConfig quench_start(n, 0);
    for (auto& c : quench_start)
    {
        c = rng.chance(0.5) ? 1 : 0;
    }
    phys::ChargeConfig naive_quenched = quench_start;
    naive_quench(system, naive_quenched);
    phys::ChargeConfig kernel_quenched = quench_start;
    system.quench(kernel_quenched);
    if (kernel_quenched != naive_quenched)
    {
        return fail("kernel-backed quench took a different descent trajectory than the "
                    "pre-refactor naive quench");
    }

    // --- 2b. kernel-backed anneal vs. the naive reference --------------------
    phys::SimAnnealParameters serial = anneal_params;
    serial.num_threads = 1;
    const auto production = phys::simulated_annealing(system, serial);
    phys::GroundStateResult reference;
    reference.grand_potential = std::numeric_limits<double>::infinity();
    for (unsigned inst = 0; inst < serial.num_instances; ++inst)
    {
        auto [config, f] =
            naive_anneal_instance(system, serial, core::derive_seed(serial.seed, inst));
        if (f < reference.grand_potential)
        {
            reference.grand_potential = f;
            reference.config = std::move(config);
        }
    }
    if (std::abs(production.grand_potential - reference.grand_potential) > tolerance)
    {
        out << "kernel-backed simulated annealing found " << production.grand_potential
            << " eV but the pre-refactor naive path found " << reference.grand_potential
            << " eV (" << n << " dots) — a move decision diverged";
        return fail(out.str());
    }
    if (production.config != reference.config)
    {
        return fail("kernel-backed simulated annealing returned a different configuration than "
                    "the pre-refactor naive path at equal energy");
    }

    // --- 2c. kernel-backed exhaustive vs. naive brute-force enumeration -----
    if (n <= 14)
    {
        const auto exact = phys::exhaustive_ground_state(system);
        if (!exact.complete)
        {
            return fail("exhaustive engine did not report a complete search");
        }
        double best = std::numeric_limits<double>::infinity();
        const std::uint64_t count = 1ULL << n;
        std::vector<double> energies(count, std::numeric_limits<double>::infinity());
        for (std::uint64_t bits = 0; bits < count; ++bits)
        {
            phys::ChargeConfig config(n, 0);
            for (std::size_t s = 0; s < n; ++s)
            {
                config[s] = static_cast<std::uint8_t>((bits >> s) & 1ULL);
            }
            if (!naive_physically_valid(system, config))
            {
                continue;
            }
            energies[bits] = system.grand_potential(config);
            best = std::min(best, energies[bits]);
        }
        std::uint64_t degeneracy = 0;
        for (const double f : energies)
        {
            if (f - best <= sim_params.energy_tolerance)
            {
                ++degeneracy;
            }
        }
        if (std::abs(exact.grand_potential - best) > tolerance)
        {
            out << "kernel-backed exhaustive ground state " << exact.grand_potential
                << " eV differs from the naive brute-force minimum " << best << " eV";
            return fail(out.str());
        }
        if (exact.degeneracy != degeneracy)
        {
            out << "kernel-backed exhaustive engine counted " << exact.degeneracy
                << " degenerate configurations; the naive brute force counted " << degeneracy;
            return fail(out.str());
        }
    }
    return {};
}

OracleVerdict defect_differential(const phys::GateDesign& design,
                                  const phys::SimulationParameters& sim_params, std::uint64_t seed,
                                  double tolerance, DefectFault fault)
{
    if (design.sites.empty() || design.num_inputs() == 0)
    {
        return fail("defect oracle needs a design with sites and at least one input");
    }
    std::ostringstream out;

    // --- 1. defect-free bit-identity ----------------------------------------
    const phys::DefectSurface no_defects;
    const auto plain = phys::check_operational(design, sim_params);
    const auto via_empty = phys::check_operational(design, sim_params, no_defects);
    if (via_empty.blocked || via_empty.operational != plain.operational ||
        via_empty.patterns_correct != plain.patterns_correct ||
        via_empty.details.size() != plain.details.size())
    {
        return fail("an empty defect surface changed the check_operational verdict");
    }
    for (std::size_t p = 0; p < plain.details.size(); ++p)
    {
        if (via_empty.details[p].ground_state.config != plain.details[p].ground_state.config ||
            via_empty.details[p].ground_state.grand_potential !=
                plain.details[p].ground_state.grand_potential)
        {
            out << "pattern " << p << " ground state is not bit-identical between the legacy "
                << "defect-free path and an empty defect surface";
            return fail(out.str());
        }
    }

    const auto canvas = design.instance_sites(0);
    const phys::SiDBSystem empty_system{canvas, sim_params, no_defects};
    if (empty_system.has_external_potentials())
    {
        return fail("an empty defect surface allocated an external-potential row");
    }

    // --- 2. external potentials vs. fresh first-principles sums --------------
    // a seeded all-charged surface around the design; defects that would
    // block a canvas site are dropped (the system constructor rejects them,
    // by design — their Coulomb term would be singular)
    const auto region = phys::sweep_region(design, 5.0);
    phys::DefectSampleParams sample_params;
    sample_params.density_per_nm2 = 0.05;
    sample_params.charged_fraction = 1.0;
    phys::DefectSurface surface;
    const auto raw = phys::sample_defect_surface(region, sample_params, seed);
    for (const auto& d : raw.defects())
    {
        phys::DefectSurface one;
        one.add(d);
        if (!one.blocks_any(canvas))
        {
            surface.add(d);
        }
    }
    if (!surface.has_charged())
    {
        // degenerate draw on a tiny region: pin one charged defect at the
        // region corner (the sweep margin keeps it off every canvas site)
        phys::SurfaceDefect corner;
        corner.site = phys::SiDBSite{region.n_min, region.m_min, 0};
        surface.add(corner);
    }

    const phys::SiDBSystem system{canvas, sim_params, surface};
    const std::size_t n = system.size();
    std::vector<double> fresh_w(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
    {
        for (const auto& d : surface.defects())
        {
            if (d.kind != phys::DefectKind::charged)
            {
                continue;
            }
            const double dx = canvas[i].x() - d.site.x();
            const double dy = canvas[i].y() - d.site.y();
            fresh_w[i] += -d.charge *
                          phys::screened_coulomb(std::sqrt(dx * dx + dy * dy), sim_params);
        }
        if (std::abs(system.external_potential(i) - fresh_w[i]) > tolerance)
        {
            out << "system W_" << i << " = " << system.external_potential(i)
                << " diverges from the fresh per-defect Coulomb sum " << fresh_w[i];
            return fail(out.str());
        }
    }

    // kernel cache on a seeded random configuration; with the fault injected
    // the rebuild drops W and the v_i comparison below must flag it
    Rng rng{seed};
    phys::ChargeConfig config(n, 0);
    for (auto& c : config)
    {
        c = rng.chance(0.5) ? 1 : 0;
    }
    phys::ChargeState kernel{system, config};
    if (fault == DefectFault::ignore_defect_potentials)
    {
        kernel.testkit_rebuild_ignore_external();
    }
    double fresh_pairs = 0.0;
    double fresh_external = 0.0;
    for (std::size_t i = 0; i < n; ++i)
    {
        double v = fresh_w[i];
        for (std::size_t j = 0; j < n; ++j)
        {
            if (j != i && config[j] != 0)
            {
                v += system.potential(i, j);
            }
        }
        if (std::abs(kernel.local_potential(i) - v) > tolerance)
        {
            out << "cached v_" << i << " = " << kernel.local_potential(i)
                << " diverges from the fresh sum W_i + sum_j V_ij n_j = " << v
                << " on the charged defect surface (" << surface.size() << " defects)";
            return fail(out.str());
        }
        if (config[i] != 0)
        {
            fresh_external += fresh_w[i];
            for (std::size_t j = i + 1; j < n; ++j)
            {
                if (config[j] != 0)
                {
                    fresh_pairs += system.potential(i, j);
                }
            }
        }
    }
    if (std::abs(kernel.electrostatic_energy() - (fresh_pairs + fresh_external)) >
        tolerance * static_cast<double>(n))
    {
        out << "cached electrostatic energy " << kernel.electrostatic_energy()
            << " diverges from the naive pair sum + defect term "
            << fresh_pairs + fresh_external;
        return fail(out.str());
    }
    if (std::abs(kernel.grand_potential() - system.grand_potential(config)) >
        tolerance * static_cast<double>(n))
    {
        out << "cached grand potential " << kernel.grand_potential()
            << " diverges from the fresh evaluation " << system.grand_potential(config);
        return fail(out.str());
    }

    // both complete engines see W through the shared kernel — on the defect
    // system they must still agree bit-for-bit
    if (n <= 24)
    {
        const auto reference = phys::exhaustive_ground_state(system);
        const auto exact = phys::exact_ground_state(system);
        if (!reference.complete || !exact.complete)
        {
            return fail("a complete engine did not finish on the defect system");
        }
        if (exact.grand_potential != reference.grand_potential ||
            exact.config != reference.config || exact.degeneracy != reference.degeneracy)
        {
            out << "exact (" << exact.grand_potential << " eV) and exhaustive ("
                << reference.grand_potential
                << " eV) ground states diverge on the defect system";
            return fail(out.str());
        }
    }

    // --- 3. yield-sweep invariants -------------------------------------------
    phys::DefectSweepParams sweep;
    sweep.densities_per_nm2 = {0.005, 0.01, 0.02};
    sweep.samples = 6;
    sweep.seed = seed;
    sweep.num_threads = 1;
    const auto serial = phys::defect_yield_sweep(design, sim_params, sweep);
    if (serial.cancelled)
    {
        return fail("unbudgeted yield sweep reported cancellation");
    }
    for (std::size_t k = 0; k < serial.points.size(); ++k)
    {
        const auto& point = serial.points[k];
        if (point.samples_evaluated != sweep.samples)
        {
            out << "density point " << k << " evaluated " << point.samples_evaluated << " of "
                << sweep.samples << " samples without a budget";
            return fail(out.str());
        }
        if (point.operational + point.blocked > point.samples_evaluated)
        {
            out << "density point " << k << " counts more outcomes than samples";
            return fail(out.str());
        }
        if (k > 0 && point.operational > serial.points[k - 1].operational)
        {
            out << "survival curve is not monotone: " << serial.points[k - 1].operational
                << " operational at density " << serial.points[k - 1].density_per_nm2 << " but "
                << point.operational << " at the higher density " << point.density_per_nm2;
            return fail(out.str());
        }
    }
    sweep.num_threads = 3;
    const auto threaded = phys::defect_yield_sweep(design, sim_params, sweep);
    if (threaded.points.size() != serial.points.size())
    {
        return fail("thread count changed the number of sweep points");
    }
    for (std::size_t k = 0; k < serial.points.size(); ++k)
    {
        if (threaded.points[k].operational != serial.points[k].operational ||
            threaded.points[k].blocked != serial.points[k].blocked ||
            threaded.points[k].samples_evaluated != serial.points[k].samples_evaluated)
        {
            out << "yield sweep is not thread-count invariant at density point " << k << " ("
                << serial.points[k].operational << "/" << serial.points[k].samples_evaluated
                << " serial vs " << threaded.points[k].operational << "/"
                << threaded.points[k].samples_evaluated << " on 3 threads)";
            return fail(out.str());
        }
    }

    if (fault == DefectFault::ignore_defect_potentials)
    {
        return fail("ignore_defect_potentials fault was injected but every check passed — the "
                    "oracle lost its mutation coverage");
    }
    return {};
}

OracleVerdict physical_design_differential(const logic::LogicNetwork& spec,
                                           const layout::ExactPDOptions& exact_options,
                                           PdOracleStats* stats, PdFault fault)
{
    const auto mapped = logic::map_to_bestagon(spec);
    std::string why;
    if (!mapped.is_bestagon_compliant(&why))
    {
        return fail("mapped network is not Bestagon-compliant: " + why);
    }
    if (spec.num_pis() <= 16 && !logic::functionally_equivalent(spec, mapped))
    {
        return fail("technology mapping changed the function of the specification");
    }
    const auto miter_spec = fault == PdFault::invert_spec_output ? with_inverted_po(mapped) : mapped;

    PdOracleStats local;
    PdOracleStats& s = stats != nullptr ? *stats : local;

    if (has_constant_nodes(mapped))
    {
        // degenerate (constant-function) specification: no P&R engine can
        // place it, so there is nothing to cross-check
        s.constant_function = true;
        return {};
    }

    // the march may decline densely reconvergent networks (production falls
    // back to the exact engine then) — that skips its checks, stats record it
    const auto scalable = layout::scalable_physical_design(mapped);
    if (scalable.has_value())
    {
        s.scalable_ran = true;
        s.scalable_area = scalable->area();
        // extraction needs the network the engine actually placed (occupants
        // carry its node ids); the miter then compares against the — possibly
        // fault-corrupted — specification
        if (layout::check_equivalence(miter_spec, scalable->extract_network(mapped)) !=
            layout::EquivalenceResult::equivalent)
        {
            return fail("scalable layout is NOT equivalent to the specification (SAT miter)");
        }
    }

    // the exact engine certifies every refuted size with a checked DRAT
    // proof; a proof failure means the solver's UNSAT verdict is untrusted
    auto certified_options = exact_options;
    certified_options.certify_unsat = true;
    layout::ExactPDStats pd_stats;
    const auto exact = layout::exact_physical_design(mapped, certified_options, &pd_stats);
    s.proofs_checked = pd_stats.proofs_checked;
    s.proof_failures = pd_stats.proof_failures;
    if (s.proof_failures > 0)
    {
        std::ostringstream out;
        out << s.proof_failures << " of " << (s.proofs_checked + s.proof_failures)
            << " exact-engine UNSAT verdicts failed DRAT certification";
        return fail(out.str());
    }
    if (exact.has_value())
    {
        s.exact_ran = true;
        s.exact_area = exact->area();
        if (layout::check_equivalence(miter_spec, exact->extract_network(mapped)) !=
            layout::EquivalenceResult::equivalent)
        {
            return fail("exact layout is NOT equivalent to the specification (SAT miter)");
        }
        // minimality cross-check: the scalable layout proves its own area
        // feasible, so the area-ascending exact search may never exceed it
        // (valid only when the scalable result lies inside the exact bounds)
        if (s.scalable_ran && scalable->width() <= exact_options.max_width &&
            scalable->height() <= exact_options.max_height && s.exact_area > s.scalable_area)
        {
            std::ostringstream out;
            out << "exact area " << s.exact_area << " exceeds scalable area " << s.scalable_area
                << " — ascending-area enumeration is broken";
            return fail(out.str());
        }
    }
    return {};
}

OracleVerdict incremental_pnr_differential(const logic::LogicNetwork& spec,
                                           const layout::ExactPDOptions& options,
                                           IncrementalPnrStats* stats, IncrementalPnrFault fault)
{
    const auto mapped = logic::map_to_bestagon(spec);
    std::string why;
    if (!mapped.is_bestagon_compliant(&why))
    {
        return fail("mapped network is not Bestagon-compliant: " + why);
    }
    if (has_constant_nodes(mapped))
    {
        return {};  // degenerate specification: nothing to place
    }

    IncrementalPnrStats local;
    IncrementalPnrStats& s = stats != nullptr ? *stats : local;

    auto inc_options = options;
    inc_options.incremental = true;
    inc_options.certify_unsat = true;
    inc_options.testkit_leak_stale_activation = fault == IncrementalPnrFault::leak_stale_activation;
    layout::ExactPDStats inc_stats;
    const auto inc = layout::exact_physical_design(mapped, inc_options, &inc_stats);

    auto fresh_options = options;
    fresh_options.incremental = false;
    fresh_options.certify_unsat = true;
    fresh_options.testkit_leak_stale_activation = false;
    layout::ExactPDStats fresh_stats;
    const auto fresh = layout::exact_physical_design(mapped, fresh_options, &fresh_stats);

    s.grid_generations = inc_stats.grid_generations;
    s.proofs_checked = inc_stats.proofs_checked + fresh_stats.proofs_checked;
    s.budget_diverged = inc_stats.budget_exhausted || fresh_stats.budget_exhausted ||
                        inc_stats.cancelled || fresh_stats.cancelled;

    std::ostringstream out;

    // 3. proof continuity: a failed certificate is a bug in either lane
    if (inc_stats.proof_failures > 0)
    {
        out << inc_stats.proof_failures << " incremental-lane UNSAT size(s) failed DRAT "
            << "certification under their size assumptions";
        return fail(out.str());
    }
    if (fresh_stats.proof_failures > 0)
    {
        out << fresh_stats.proof_failures << " fresh-lane UNSAT size(s) failed DRAT certification";
        return fail(out.str());
    }
    // every refuted ratio must actually have produced a checked certificate
    const auto count_unsat = [](const layout::ExactPDStats& st) {
        unsigned n = 0;
        for (const auto& v : st.size_verdicts)
        {
            n += v.result == sat::Result::unsatisfiable ? 1U : 0U;
        }
        return n;
    };
    if (inc_stats.proofs_checked < count_unsat(inc_stats))
    {
        out << "incremental lane refuted " << count_unsat(inc_stats) << " size(s) but certified "
            << "only " << inc_stats.proofs_checked;
        return fail(out.str());
    }

    // 1. verdict parity up to the first budget-truncated verdict
    bool truncated = false;
    const auto n = std::min(inc_stats.size_verdicts.size(), fresh_stats.size_verdicts.size());
    for (std::size_t i = 0; i < n && !truncated; ++i)
    {
        const auto& a = inc_stats.size_verdicts[i];
        const auto& b = fresh_stats.size_verdicts[i];
        if (!(a.size == b.size))
        {
            out << "the lanes explored different ladders: step " << i << " is "
                << a.size.width << "x" << a.size.height << " incremental but "
                << b.size.width << "x" << b.size.height << " fresh";
            return fail(out.str());
        }
        if (a.result == sat::Result::unknown || b.result == sat::Result::unknown)
        {
            truncated = true;
            break;
        }
        if (a.result != b.result)
        {
            out << "verdict mismatch at size " << a.size.width << "x" << a.size.height
                << ": incremental says " << (a.result == sat::Result::satisfiable ? "SAT" : "UNSAT")
                << ", fresh says " << (b.result == sat::Result::satisfiable ? "SAT" : "UNSAT");
            return fail(out.str());
        }
        ++s.sizes_compared;
    }

    // 2. same answer and first-feasible size (only binding without a budget cut)
    if (!truncated && !s.budget_diverged)
    {
        if (inc.has_value() != fresh.has_value())
        {
            out << "the lanes disagree on feasibility: incremental "
                << (inc.has_value() ? "found a layout" : "declined") << ", fresh "
                << (fresh.has_value() ? "found a layout" : "declined");
            return fail(out.str());
        }
        if (inc.has_value() &&
            (inc->width() != fresh->width() || inc->height() != fresh->height()))
        {
            out << "first feasible size differs: " << inc->width() << "x" << inc->height()
                << " incremental vs " << fresh->width() << "x" << fresh->height() << " fresh";
            return fail(out.str());
        }
    }
    s.found_layout = inc.has_value() && fresh.has_value();
    for (const auto* layout : {inc.has_value() ? &*inc : nullptr, fresh.has_value() ? &*fresh : nullptr})
    {
        if (layout != nullptr &&
            layout::check_equivalence(mapped, layout->extract_network(mapped)) !=
                layout::EquivalenceResult::equivalent)
        {
            return fail("a produced layout is NOT equivalent to the specification (SAT miter)");
        }
    }

    if (fault == IncrementalPnrFault::leak_stale_activation)
    {
        // the stale activation literal only bites once a second grid
        // generation exists; a first-generation-only run cannot expose it
        if (inc_stats.grid_generations <= 1)
        {
            s.fault_vacuous = true;
            return {};
        }
        return fail("leak_stale_activation fault was injected, the grid grew " +
                    std::to_string(inc_stats.grid_generations) +
                    " times, and every check passed — the oracle lost its mutation coverage");
    }
    return {};
}

OracleVerdict frontend_differential(const logic::LogicNetwork& input, std::uint64_t seed,
                                    unsigned num_patterns, FrontendFault fault)
{
    // shared across calls: the database caches exact-synthesis results, and
    // rebuilding it per case would re-run SAT synthesis for every NPN class
    static logic::NpnDatabase database;
    const auto rewritten = logic::rewrite(input, database);
    auto mapped = logic::map_to_bestagon(rewritten);
    std::string why;
    if (!mapped.is_bestagon_compliant(&why))
    {
        return fail("mapped network is not Bestagon-compliant: " + why);
    }
    if (fault == FrontendFault::invert_mapped_output)
    {
        mapped = with_inverted_po(mapped);
    }
    if (input.num_pos() != rewritten.num_pos() || input.num_pos() != mapped.num_pos())
    {
        return fail("rewriting or mapping changed the number of primary outputs");
    }

    Rng rng{seed};
    const std::uint64_t mask =
        input.num_pis() >= 64 ? ~0ULL : (1ULL << input.num_pis()) - 1ULL;
    const bool exhaustive = input.num_pis() <= 6;  // all patterns fit the budget
    const std::uint64_t count = exhaustive ? (1ULL << input.num_pis()) : num_patterns;
    for (std::uint64_t i = 0; i < count; ++i)
    {
        const std::uint64_t pattern = exhaustive ? i : (rng.next() & mask);
        const auto expected = input.simulate_pattern(pattern);
        const auto after_rewrite = rewritten.simulate_pattern(pattern);
        const auto after_mapping = mapped.simulate_pattern(pattern);
        for (std::size_t o = 0; o < expected.size(); ++o)
        {
            if (after_rewrite[o] != expected[o] || after_mapping[o] != expected[o])
            {
                std::ostringstream out;
                out << "front end diverges on pattern 0x" << std::hex << pattern << std::dec
                    << " output " << o << ": input=" << expected[o]
                    << " rewritten=" << after_rewrite[o] << " mapped=" << after_mapping[o];
                return fail(out.str());
            }
        }
    }
    return {};
}

OracleVerdict run_control_differential(const logic::LogicNetwork& spec,
                                       const core::FlowOptions& options,
                                       std::int64_t timing_slack_ms, RunControlOracleStats* stats,
                                       RunControlFault fault)
{
    const auto start = std::chrono::steady_clock::now();
    core::FlowResult result;
    try
    {
        result = core::run_design_flow(spec, options);
    }
    catch (const std::exception& e)
    {
        return fail(std::string{"flow threw under run control: "} + e.what());
    }
    catch (...)
    {
        return fail("flow threw a non-std exception under run control");
    }
    const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    if (fault == RunControlFault::drop_diagnostics)
    {
        result.diagnostics.stages.clear();
    }
    else if (fault == RunControlFault::forge_success)
    {
        result.equivalence = layout::EquivalenceResult::equivalent;
        result.layout.reset();
    }

    const auto* cut = result.diagnostics.first_cut();
    if (stats != nullptr)
    {
        stats->wall_ms = wall_ms;
        stats->interrupted = result.diagnostics.interrupted();
        stats->produced_layout = result.layout.has_value();
        stats->produced_sidb = result.sidb.has_value();
        stats->first_cut = cut != nullptr ? cut->stage : std::string{};
        stats->engine_used = result.engine_used;
    }

    // a controlled run must return within a small multiple of its deadline;
    // the slack absorbs the (token-only) scalable fallback and CI noise
    if (options.deadline_ms >= 0 && wall_ms > 2 * options.deadline_ms + timing_slack_ms)
    {
        std::ostringstream out;
        out << "flow ignored its deadline: " << wall_ms << " ms elapsed against a "
            << options.deadline_ms << " ms deadline (+" << timing_slack_ms << " ms slack)";
        return fail(out.str());
    }

    // diagnostics are never empty: to_xag reports even on immediate cuts
    if (result.diagnostics.stages.empty())
    {
        return fail("flow recorded no stage diagnostics at all");
    }
    for (const auto& stage : result.diagnostics.stages)
    {
        if (stage.wall_ms < 0)
        {
            return fail("stage '" + stage.stage + "' reports negative wall-clock time");
        }
    }

    // artifacts <-> stage-status consistency
    const auto* pd = result.diagnostics.find("physical_design");
    if (result.layout.has_value())
    {
        if (pd == nullptr)
        {
            return fail("a layout exists but no physical_design stage was recorded");
        }
        if (pd->status != core::StageStatus::completed && pd->status != core::StageStatus::degraded)
        {
            return fail(std::string{"a layout exists but physical_design reports '"} +
                        core::to_string(pd->status) + "'");
        }
        if (pd->status == core::StageStatus::degraded && result.engine_used != "scalable")
        {
            return fail("physical_design degraded but engine_used is '" + result.engine_used +
                        "' instead of 'scalable'");
        }
    }
    else if (pd != nullptr &&
             (pd->status == core::StageStatus::degraded ||
              (pd->status == core::StageStatus::completed && pd->detail.empty())))
    {
        // completed-without-layout is legal only for a declined exact-only
        // run, which always carries an explanatory detail
        return fail(std::string{"physical_design reports '"} + core::to_string(pd->status) +
                    "' but no layout exists");
    }
    if ((result.supertiles.has_value() || result.sidb.has_value()) && !result.layout.has_value())
    {
        return fail("derived artifacts exist without a gate-level layout");
    }
    if (result.equivalence == layout::EquivalenceResult::equivalent)
    {
        if (!result.layout.has_value())
        {
            return fail("equivalent verdict without a layout");
        }
        const auto* eq = result.diagnostics.find("equivalence");
        if (eq == nullptr || eq->status != core::StageStatus::completed)
        {
            return fail("equivalent verdict but the equivalence stage did not complete");
        }
    }

    // a cut run must name the stage that was cut
    if (result.diagnostics.interrupted() && cut == nullptr)
    {
        return fail("diagnostics report an interruption but first_cut() names no stage");
    }
    if (options.stop.stop_requested() && !result.diagnostics.all_completed() && cut == nullptr &&
        result.diagnostics.find("gate_validation") == nullptr)
    {
        return fail("stop was requested and the run is incomplete, yet no stage reports a cut");
    }

    // step (7b) bookkeeping: unevaluated tiles only under a cut/skipped stage
    bool any_unevaluated = false;
    for (const auto& v : result.gate_validation)
    {
        any_unevaluated = any_unevaluated || !v.evaluated;
    }
    if (any_unevaluated)
    {
        const auto* val = result.diagnostics.find("gate_validation");
        if (val == nullptr || val->status == core::StageStatus::completed)
        {
            return fail("unevaluated tiles exist but gate_validation claims completion");
        }
    }

    return {};
}

logic::LogicNetwork with_inverted_po(const logic::LogicNetwork& network, unsigned po_index)
{
    logic::LogicNetwork copy;
    std::vector<logic::LogicNetwork::NodeId> remap(network.size(),
                                                   logic::LogicNetwork::invalid_node);
    unsigned pos_seen = 0;
    for (const auto id : network.topological_order())
    {
        const auto& n = network.node(id);
        switch (n.type)
        {
            case logic::GateType::none: break;
            case logic::GateType::const0: remap[id] = copy.create_const(false); break;
            case logic::GateType::const1: remap[id] = copy.create_const(true); break;
            case logic::GateType::pi: remap[id] = copy.create_pi(n.name); break;
            case logic::GateType::po:
            {
                auto driver = remap[n.fanin[0]];
                if (pos_seen++ == po_index)
                {
                    driver = copy.create_not(driver);
                }
                remap[id] = copy.create_po(driver, n.name);
                break;
            }
            default:
            {
                std::vector<logic::LogicNetwork::NodeId> fanins;
                for (unsigned i = 0; i < logic::gate_arity(n.type); ++i)
                {
                    fanins.push_back(remap[n.fanin[i]]);
                }
                remap[id] = copy.create_gate(n.type, fanins);
                break;
            }
        }
    }
    return copy;
}

}  // namespace bestagon::testkit
