#include "io/bench_reader.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bestagon::io
{

namespace
{

using logic::GateType;
using logic::LogicNetwork;
using NodeId = LogicNetwork::NodeId;

std::string trim(const std::string& s)
{
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
    {
        return "";
    }
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

std::string upper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return s;
}

}  // namespace

logic::LogicNetwork read_bench(std::istream& in)
{
    LogicNetwork net;
    std::map<std::string, NodeId> signals;
    std::vector<std::string> outputs;
    // gate definitions may reference later lines; collect and resolve after
    struct Def
    {
        std::string lhs;
        std::string op;
        std::vector<std::string> args;
    };
    std::vector<Def> defs;

    std::string line;
    while (std::getline(in, line))
    {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
        {
            line = line.substr(0, hash);
        }
        line = trim(line);
        if (line.empty())
        {
            continue;
        }
        const auto upper_line = upper(line);
        if (upper_line.rfind("INPUT", 0) == 0 || upper_line.rfind("OUTPUT", 0) == 0)
        {
            const auto open = line.find('(');
            const auto close = line.rfind(')');
            if (open == std::string::npos || close == std::string::npos || close <= open)
            {
                throw std::runtime_error{"bench: malformed I/O declaration: " + line};
            }
            const auto name = trim(line.substr(open + 1, close - open - 1));
            if (upper_line[0] == 'I')
            {
                signals[name] = net.create_pi(name);
            }
            else
            {
                outputs.push_back(name);
            }
            continue;
        }
        const auto eq = line.find('=');
        const auto open = line.find('(', eq);
        const auto close = line.rfind(')');
        if (eq == std::string::npos || open == std::string::npos || close == std::string::npos)
        {
            throw std::runtime_error{"bench: malformed gate line: " + line};
        }
        Def def;
        def.lhs = trim(line.substr(0, eq));
        def.op = upper(trim(line.substr(eq + 1, open - eq - 1)));
        std::istringstream args{line.substr(open + 1, close - open - 1)};
        std::string arg;
        while (std::getline(args, arg, ','))
        {
            def.args.push_back(trim(arg));
        }
        defs.push_back(std::move(def));
    }

    // resolve definitions iteratively (BENCH files may be unordered)
    static const std::map<std::string, GateType> ops = {
        {"AND", GateType::and2},   {"OR", GateType::or2},     {"NAND", GateType::nand2},
        {"NOR", GateType::nor2},   {"XOR", GateType::xor2},   {"XNOR", GateType::xnor2},
        {"NOT", GateType::inv},    {"BUF", GateType::buf},    {"BUFF", GateType::buf},
    };
    std::size_t remaining = defs.size();
    bool progress = true;
    std::vector<bool> done(defs.size(), false);
    while (remaining > 0 && progress)
    {
        progress = false;
        for (std::size_t i = 0; i < defs.size(); ++i)
        {
            if (done[i])
            {
                continue;
            }
            const auto& def = defs[i];
            const bool ready = std::all_of(def.args.begin(), def.args.end(), [&](const auto& a) {
                return signals.count(a) != 0;
            });
            if (!ready)
            {
                continue;
            }
            const auto it = ops.find(def.op);
            if (it == ops.end())
            {
                throw std::runtime_error{"bench: unsupported gate '" + def.op + "'"};
            }
            const unsigned arity = gate_arity(it->second);
            std::vector<NodeId> fanins;
            for (const auto& a : def.args)
            {
                fanins.push_back(signals.at(a));
            }
            // n-ary gates are decomposed into binary trees
            NodeId out;
            if (arity == 1)
            {
                if (fanins.size() != 1)
                {
                    throw std::runtime_error{"bench: wrong arity for " + def.op};
                }
                out = net.create_gate(it->second, {fanins[0]});
            }
            else
            {
                if (fanins.size() < 2)
                {
                    throw std::runtime_error{"bench: wrong arity for " + def.op};
                }
                // decompose n-ary gates: apply the base op pairwise, with the
                // inversion (if any) only at the end
                const bool inverted =
                    it->second == GateType::nand2 || it->second == GateType::nor2;
                const GateType base = it->second == GateType::nand2  ? GateType::and2
                                      : it->second == GateType::nor2 ? GateType::or2
                                                                     : it->second;
                out = fanins[0];
                for (std::size_t k = 1; k < fanins.size(); ++k)
                {
                    out = net.create_gate(base, {out, fanins[k]});
                }
                if (inverted)
                {
                    out = net.create_not(out);
                }
            }
            signals[def.lhs] = out;
            done[i] = true;
            --remaining;
            progress = true;
        }
    }
    if (remaining > 0)
    {
        throw std::runtime_error{"bench: unresolved signals (cycle or missing definition)"};
    }

    for (const auto& name : outputs)
    {
        const auto it = signals.find(name);
        if (it == signals.end())
        {
            throw std::runtime_error{"bench: undefined output '" + name + "'"};
        }
        net.create_po(it->second, name);
    }
    return net;
}

logic::LogicNetwork read_bench_string(const std::string& text)
{
    std::istringstream in{text};
    return read_bench(in);
}

}  // namespace bestagon::io
