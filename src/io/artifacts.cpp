#include "io/artifacts.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

namespace bestagon::io
{

std::string artifact_dir(const std::string& override_dir)
{
    std::string dir = override_dir;
    if (dir.empty())
    {
        // read on the driver thread before artifact writers fan out; nothing
        // in the process calls setenv
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        const char* env = std::getenv("BESTAGON_ARTIFACT_DIR");
        dir = env != nullptr && *env != '\0' ? env : "artifacts";
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
    {
        throw std::runtime_error("cannot create artifact directory '" + dir + "': " + ec.message());
    }
    return dir;
}

std::string artifact_path(const std::string& filename, const std::string& override_dir)
{
    return (std::filesystem::path{artifact_dir(override_dir)} / filename).string();
}

}  // namespace bestagon::io
