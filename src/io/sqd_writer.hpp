/// \file sqd_writer.hpp
/// \brief SiQAD design-file (.sqd XML) writer (flow step 8) so that layouts
///        can be opened and simulated in SiQAD [30].

#pragma once

#include "layout/sidb_layout.hpp"
#include "phys/operational.hpp"

#include <iosfwd>
#include <string>

namespace bestagon::io
{

/// Writes a dot-accurate layout in SiQAD's .sqd XML format.
void write_sqd(std::ostream& out, const layout::SiDBLayout& layout,
               const std::string& name = "bestagon_layout");

/// Writes a standalone gate design (including drivers for pattern 0).
void write_sqd(std::ostream& out, const phys::GateDesign& design);

}  // namespace bestagon::io
