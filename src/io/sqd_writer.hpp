/// \file sqd_writer.hpp
/// \brief SiQAD design-file (.sqd XML) writer (flow step 8) so that layouts
///        can be opened and simulated in SiQAD [30].

#pragma once

#include "layout/sidb_layout.hpp"
#include "phys/defect.hpp"
#include "phys/operational.hpp"

#include <iosfwd>
#include <string>

namespace bestagon::io
{

/// Writes a dot-accurate layout in SiQAD's .sqd XML format.
void write_sqd(std::ostream& out, const layout::SiDBLayout& layout,
               const std::string& name = "bestagon_layout");

/// Writes a standalone gate design (including drivers for pattern 0).
void write_sqd(std::ostream& out, const phys::GateDesign& design);

/// Writes a layout together with the fabrication-defect surface it was
/// checked / placed against. Defects go into a dedicated Defect layer, each
/// entry carrying kind, charge and exclusion radius as attributes, so the
/// reader round-trips the full surface (see sqd_reader.hpp).
void write_sqd(std::ostream& out, const layout::SiDBLayout& layout,
               const phys::DefectSurface& defects, const std::string& name = "bestagon_layout");

/// Writes a gate design together with a defect surface.
void write_sqd(std::ostream& out, const phys::GateDesign& design,
               const phys::DefectSurface& defects);

}  // namespace bestagon::io
