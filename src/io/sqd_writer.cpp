#include "io/sqd_writer.hpp"

#include <ostream>

namespace bestagon::io
{

namespace
{

void write_header(std::ostream& out, const std::string& name, bool with_defects)
{
    out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
        << "<siqad>\n"
        << "  <program>\n"
        << "    <file_purpose>save</file_purpose>\n"
        << "    <name>" << name << "</name>\n"
        << "    <version>0.3.3</version>\n"
        << "  </program>\n"
        << "  <layers>\n"
        << "    <layer_prop><name>Lattice</name><type>Lattice</type></layer_prop>\n"
        << "    <layer_prop><name>DB</name><type>DB</type></layer_prop>\n";
    if (with_defects)
    {
        out << "    <layer_prop><name>Defects</name><type>Defect</type></layer_prop>\n";
    }
    out << "  </layers>\n"
        << "  <design>\n"
        << "    <layer type=\"DB\">\n";
}

void write_db(std::ostream& out, const phys::SiDBSite& s)
{
    out << "      <dbdot>\n"
        << "        <layer_id>1</layer_id>\n"
        << "        <latcoord n=\"" << s.n << "\" m=\"" << s.m << "\" l=\"" << s.l << "\"/>\n"
        << "      </dbdot>\n";
}

void write_defect_layer(std::ostream& out, const phys::DefectSurface& defects)
{
    out << "    <layer type=\"Defect\">\n";
    for (const auto& d : defects.defects())
    {
        out << "      <defect>\n"
            << "        <layer_id>2</layer_id>\n"
            << "        <latcoord n=\"" << d.site.n << "\" m=\"" << d.site.m << "\" l=\""
            << d.site.l << "\"/>\n"
            << "        <property kind=\""
            << (d.kind == phys::DefectKind::charged ? "charged" : "structural") << "\" charge=\""
            << d.charge << "\" exclusion_radius_nm=\"" << d.exclusion_radius_nm << "\"/>\n"
            << "      </defect>\n";
    }
    out << "    </layer>\n";
}

void write_footer(std::ostream& out, const phys::DefectSurface* defects)
{
    out << "    </layer>\n";
    if (defects != nullptr && !defects->empty())
    {
        write_defect_layer(out, *defects);
    }
    out << "  </design>\n"
        << "</siqad>\n";
}

void write_impl(std::ostream& out, const std::vector<phys::SiDBSite>& sites,
                const std::string& name, const phys::DefectSurface* defects)
{
    write_header(out, name, defects != nullptr && !defects->empty());
    for (const auto& s : sites)
    {
        write_db(out, s);
    }
    write_footer(out, defects);
}

}  // namespace

void write_sqd(std::ostream& out, const layout::SiDBLayout& layout, const std::string& name)
{
    write_impl(out, layout.sites, name, nullptr);
}

void write_sqd(std::ostream& out, const phys::GateDesign& design)
{
    write_impl(out, design.instance_sites(0), design.name, nullptr);
}

void write_sqd(std::ostream& out, const layout::SiDBLayout& layout,
               const phys::DefectSurface& defects, const std::string& name)
{
    write_impl(out, layout.sites, name, &defects);
}

void write_sqd(std::ostream& out, const phys::GateDesign& design,
               const phys::DefectSurface& defects)
{
    write_impl(out, design.instance_sites(0), design.name, &defects);
}

}  // namespace bestagon::io
