#include "io/sqd_writer.hpp"

#include <ostream>

namespace bestagon::io
{

namespace
{

void write_header(std::ostream& out, const std::string& name)
{
    out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
        << "<siqad>\n"
        << "  <program>\n"
        << "    <file_purpose>save</file_purpose>\n"
        << "    <name>" << name << "</name>\n"
        << "    <version>0.3.3</version>\n"
        << "  </program>\n"
        << "  <layers>\n"
        << "    <layer_prop><name>Lattice</name><type>Lattice</type></layer_prop>\n"
        << "    <layer_prop><name>DB</name><type>DB</type></layer_prop>\n"
        << "  </layers>\n"
        << "  <design>\n"
        << "    <layer type=\"DB\">\n";
}

void write_db(std::ostream& out, const phys::SiDBSite& s)
{
    out << "      <dbdot>\n"
        << "        <layer_id>1</layer_id>\n"
        << "        <latcoord n=\"" << s.n << "\" m=\"" << s.m << "\" l=\"" << s.l << "\"/>\n"
        << "      </dbdot>\n";
}

void write_footer(std::ostream& out)
{
    out << "    </layer>\n"
        << "  </design>\n"
        << "</siqad>\n";
}

}  // namespace

void write_sqd(std::ostream& out, const layout::SiDBLayout& layout, const std::string& name)
{
    write_header(out, name);
    for (const auto& s : layout.sites)
    {
        write_db(out, s);
    }
    write_footer(out);
}

void write_sqd(std::ostream& out, const phys::GateDesign& design)
{
    write_header(out, design.name);
    for (const auto& s : design.instance_sites(0))
    {
        write_db(out, s);
    }
    write_footer(out);
}

}  // namespace bestagon::io
