/// \file artifacts.hpp
/// \brief Output-directory resolution for artifact-writing tools (examples,
///        benches, design runners), so generated .sqd/.svg files land in a
///        dedicated — gitignored — directory instead of the repo root.
///
/// Resolution order: explicit directory argument (tools forward their CLI
/// flag), else the BESTAGON_ARTIFACT_DIR environment variable, else
/// "artifacts" under the current working directory. The directory is created
/// on first use.

#pragma once

#include <string>

namespace bestagon::io
{

/// Resolves (and creates, if needed) the artifact output directory.
/// Throws std::runtime_error if the directory cannot be created.
[[nodiscard]] std::string artifact_dir(const std::string& override_dir = {});

/// Full path for artifact \p filename inside artifact_dir(\p override_dir).
[[nodiscard]] std::string artifact_path(const std::string& filename,
                                        const std::string& override_dir = {});

}  // namespace bestagon::io
