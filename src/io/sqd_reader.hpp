/// \file sqd_reader.hpp
/// \brief SiQAD design-file (.sqd XML) reader: dangling bonds and the
///        fabrication-defect layer written by sqd_writer.
///
/// The parser is deliberately forgiving: a malformed entry (missing
/// latcoord, non-numeric attribute, invalid defect property) is skipped and
/// RECORDED as a one-line error instead of aborting the whole file — STM
/// tool exports routinely carry vendor extensions we do not model, and one
/// bad defect entry must not discard an otherwise usable surface scan.
/// Structural problems that make the document unreadable (not an .sqd file
/// at all) surface as errors too, with empty contents.

#pragma once

#include "phys/defect.hpp"
#include "phys/lattice.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace bestagon::io
{

/// Everything a .sqd file contributes to the flow.
struct SqdContents
{
    std::string name;                      ///< design name from the program block
    std::vector<phys::SiDBSite> sites;     ///< DB layer, in file order
    phys::DefectSurface defects;           ///< Defect layer, in file order
    std::vector<std::string> errors;       ///< recorded per-entry parse errors

    [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Parses an .sqd document from \p in. Never throws on malformed content;
/// every skipped entry leaves a description in SqdContents::errors.
[[nodiscard]] SqdContents read_sqd(std::istream& in);

}  // namespace bestagon::io
