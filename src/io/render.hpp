/// \file render.hpp
/// \brief ASCII rendering of gate-level layouts (hexagonal, clock-annotated)
///        and of charge configurations — the textual companion to Fig. 6.

#pragma once

#include "layout/gate_level_layout.hpp"
#include "phys/model.hpp"

#include <string>
#include <vector>

namespace bestagon::io
{

/// Renders a hexagonal gate-level layout as offset ASCII rows, e.g.
/// ```
///  [PI a ]  [PI b ]
///     [XOR/1 ]
///  [PO f ]
/// ```
[[nodiscard]] std::string render_layout(const layout::GateLevelLayout& layout);

/// Renders a charge configuration as site list with charges.
[[nodiscard]] std::string render_charges(const std::vector<phys::SiDBSite>& sites,
                                         const phys::ChargeConfig& config);

}  // namespace bestagon::io
