#include "io/svg_writer.hpp"

#include <ostream>

namespace bestagon::io
{

namespace
{

constexpr double hex_size = 40.0;  // px

/// Pixel center of a tile (pointy-top hexagons, odd-r offset).
std::pair<double, double> center_px(layout::HexCoord c)
{
    const double w = 1.7320508 * hex_size;  // sqrt(3) * size
    const double x = w * (c.x + 0.5 * (c.y & 1)) + w;
    const double y = 1.5 * hex_size * c.y + 2 * hex_size;
    return {x, y};
}

const char* zone_color(unsigned zone)
{
    switch (zone % 4)
    {
        case 0: return "#dbeafe";
        case 1: return "#bfdbfe";
        case 2: return "#93c5fd";
        default: return "#60a5fa";
    }
}

}  // namespace

void write_svg(std::ostream& out, const layout::GateLevelLayout& layout)
{
    const double w = 1.7320508 * hex_size * (layout.width() + 2);
    const double h = 1.5 * hex_size * (layout.height() + 2);
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h << "\">\n";
    for (const auto& t : layout.all_tiles())
    {
        const auto [cx, cy] = center_px(t);
        out << "  <polygon points=\"";
        for (int corner = 0; corner < 6; ++corner)
        {
            const double angle = 3.14159265 / 180.0 * (60.0 * corner - 30.0);
            out << cx + hex_size * std::cos(angle) << "," << cy + hex_size * std::sin(angle) << " ";
        }
        out << "\" fill=\"" << zone_color(layout.zone(t))
            << "\" stroke=\"#1e3a8a\" stroke-width=\"1\"/>\n";
        const auto& occs = layout.occupants(t);
        if (!occs.empty())
        {
            std::string label;
            if (occs.size() == 2)
            {
                label = "X";
            }
            else
            {
                switch (occs.front().type)
                {
                    case logic::GateType::pi: label = "PI " + occs.front().label; break;
                    case logic::GateType::po: label = "PO " + occs.front().label; break;
                    case logic::GateType::buf: label = "~"; break;
                    default: label = logic::gate_type_name(occs.front().type);
                }
            }
            out << "  <text x=\"" << cx << "\" y=\"" << cy + 4
                << "\" text-anchor=\"middle\" font-size=\"12\" font-family=\"monospace\">" << label
                << "</text>\n";
        }
    }
    out << "</svg>\n";
}

void write_svg(std::ostream& out, const layout::SiDBLayout& layout)
{
    const auto [x0, y0, x1, y1] = layout.bounding_box_nm();
    const double scale = 12.0;  // px per nm
    const double margin = 10.0;
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << (x1 - x0) * scale + 2 * margin
        << "\" height=\"" << (y1 - y0) * scale + 2 * margin << "\">\n";
    for (const auto& s : layout.sites)
    {
        out << "  <circle cx=\"" << (s.x() - x0) * scale + margin << "\" cy=\""
            << (s.y() - y0) * scale + margin
            << "\" r=\"3\" fill=\"#0d9488\" stroke=\"#134e4a\" stroke-width=\"0.5\"/>\n";
    }
    out << "</svg>\n";
}

}  // namespace bestagon::io
