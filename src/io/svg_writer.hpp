/// \file svg_writer.hpp
/// \brief SVG export of hexagonal gate-level layouts and dot-accurate SiDB
///        layouts (the graphical companion to the paper's Fig. 6).

#pragma once

#include "layout/gate_level_layout.hpp"
#include "layout/sidb_layout.hpp"

#include <iosfwd>

namespace bestagon::io
{

/// Writes the tile-level view: hexagons colored by clock zone, labeled by
/// gate function, with port connections drawn.
void write_svg(std::ostream& out, const layout::GateLevelLayout& layout);

/// Writes the dot-accurate view: one circle per SiDB.
void write_svg(std::ostream& out, const layout::SiDBLayout& layout);

}  // namespace bestagon::io
