#include "io/verilog.hpp"

#include <cctype>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bestagon::io
{

namespace
{

using logic::GateType;
using logic::LogicNetwork;
using NodeId = LogicNetwork::NodeId;

struct Token
{
    enum class Kind
    {
        identifier,
        symbol,
        end
    };
    Kind kind{Kind::end};
    std::string text;
};

class Lexer
{
  public:
    explicit Lexer(std::string text) : text_{std::move(text)} {}

    Token next()
    {
        skip_ws_and_comments();
        if (pos_ >= text_.size())
        {
            return {Token::Kind::end, ""};
        }
        const char c = text_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\')
        {
            std::string id;
            if (c == '\\')
            {
                // escaped identifier: up to whitespace
                ++pos_;
                while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])))
                {
                    id.push_back(text_[pos_++]);
                }
            }
            else
            {
                while (pos_ < text_.size() &&
                       (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
                        text_[pos_] == '$'))
                {
                    id.push_back(text_[pos_++]);
                }
            }
            return {Token::Kind::identifier, id};
        }
        if (std::isdigit(static_cast<unsigned char>(c)))
        {
            std::string num;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '\''))
            {
                num.push_back(text_[pos_++]);
            }
            return {Token::Kind::identifier, num};
        }
        ++pos_;
        return {Token::Kind::symbol, std::string(1, c)};
    }

  private:
    void skip_ws_and_comments()
    {
        for (;;)
        {
            while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
            {
                ++pos_;
            }
            if (pos_ + 1 < text_.size() && text_[pos_] == '/' && text_[pos_ + 1] == '/')
            {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                {
                    ++pos_;
                }
                continue;
            }
            if (pos_ + 1 < text_.size() && text_[pos_] == '/' && text_[pos_ + 1] == '*')
            {
                pos_ += 2;
                while (pos_ + 1 < text_.size() && !(text_[pos_] == '*' && text_[pos_ + 1] == '/'))
                {
                    ++pos_;
                }
                pos_ += 2;
                continue;
            }
            break;
        }
    }

    std::string text_;
    std::size_t pos_{0};
};

class Parser
{
  public:
    explicit Parser(std::string text) : lexer_{std::move(text)} { advance(); }

    LogicNetwork parse()
    {
        expect_identifier("module");
        advance();  // module name
        if (current_.text == "(")
        {
            while (current_.text != ")" && current_.kind != Token::Kind::end)
            {
                advance();
            }
            consume(")");
        }
        consume(";");

        while (current_.kind != Token::Kind::end && current_.text != "endmodule")
        {
            parse_statement();
        }
        // connect outputs
        for (const auto& name : output_order_)
        {
            net_.create_po(resolve(name), name);
        }
        return std::move(net_);
    }

  private:
    void advance() { current_ = lexer_.next(); }

    void consume(const std::string& sym)
    {
        if (current_.text != sym)
        {
            throw std::runtime_error{"verilog: expected '" + sym + "', got '" + current_.text + "'"};
        }
        advance();
    }

    void expect_identifier(const std::string& id)
    {
        if (current_.text != id)
        {
            throw std::runtime_error{"verilog: expected '" + id + "', got '" + current_.text + "'"};
        }
        advance();
    }

    void parse_statement()
    {
        const std::string keyword = current_.text;
        if (keyword == "input" || keyword == "output" || keyword == "wire")
        {
            advance();
            for (;;)
            {
                const std::string name = current_.text;
                advance();
                if (keyword == "input")
                {
                    signals_[name] = net_.create_pi(name);
                }
                else if (keyword == "output")
                {
                    output_order_.push_back(name);
                }
                if (current_.text == ",")
                {
                    advance();
                    continue;
                }
                break;
            }
            consume(";");
            return;
        }
        if (keyword == "assign")
        {
            advance();
            const std::string lhs = current_.text;
            advance();
            consume("=");
            const auto rhs = parse_expression();
            define(lhs, rhs);
            consume(";");
            return;
        }
        // primitive gate instantiation: type [name] (out, in...);
        static const std::map<std::string, GateType> primitives = {
            {"and", GateType::and2},   {"or", GateType::or2},     {"nand", GateType::nand2},
            {"nor", GateType::nor2},   {"xor", GateType::xor2},   {"xnor", GateType::xnor2},
            {"not", GateType::inv},    {"buf", GateType::buf},    {"maj", GateType::maj3},
        };
        const auto it = primitives.find(keyword);
        if (it == primitives.end())
        {
            throw std::runtime_error{"verilog: unsupported statement '" + keyword + "'"};
        }
        advance();
        if (current_.text != "(")
        {
            advance();  // optional instance name
        }
        consume("(");
        std::vector<std::string> args;
        for (;;)
        {
            args.push_back(current_.text);
            advance();
            if (current_.text == ",")
            {
                advance();
                continue;
            }
            break;
        }
        consume(")");
        consume(";");
        if (args.size() != 1 + gate_arity(it->second))
        {
            throw std::runtime_error{"verilog: wrong arity for gate '" + keyword + "'"};
        }
        std::vector<NodeId> fanins;
        for (std::size_t i = 1; i < args.size(); ++i)
        {
            fanins.push_back(resolve(args[i]));
        }
        define(args[0], net_.create_gate(it->second, fanins));
    }

    // expression grammar: or_expr := xor_expr ('|' xor_expr)*;
    // xor_expr := and_expr ('^' and_expr)*; and_expr := unary ('&' unary)*;
    // unary := '~' unary | '(' or_expr ')' | literal | identifier
    NodeId parse_expression() { return parse_or(); }

    NodeId parse_or()
    {
        auto lhs = parse_xor();
        while (current_.text == "|")
        {
            advance();
            lhs = net_.create_or(lhs, parse_xor());
        }
        return lhs;
    }

    NodeId parse_xor()
    {
        auto lhs = parse_and();
        while (current_.text == "^")
        {
            advance();
            lhs = net_.create_xor(lhs, parse_and());
        }
        return lhs;
    }

    NodeId parse_and()
    {
        auto lhs = parse_unary();
        while (current_.text == "&")
        {
            advance();
            lhs = net_.create_and(lhs, parse_unary());
        }
        return lhs;
    }

    NodeId parse_unary()
    {
        if (current_.text == "~")
        {
            advance();
            return net_.create_not(parse_unary());
        }
        if (current_.text == "(")
        {
            advance();
            const auto inner = parse_or();
            consume(")");
            return inner;
        }
        if (current_.text == "1'b0" || current_.text == "0")
        {
            advance();
            return net_.create_const(false);
        }
        if (current_.text == "1'b1" || current_.text == "1")
        {
            advance();
            return net_.create_const(true);
        }
        const std::string name = current_.text;
        advance();
        return resolve(name);
    }

    NodeId resolve(const std::string& name)
    {
        const auto it = signals_.find(name);
        if (it == signals_.end())
        {
            throw std::runtime_error{"verilog: use of undefined signal '" + name + "'"};
        }
        return it->second;
    }

    void define(const std::string& name, NodeId id)
    {
        if (signals_.count(name) != 0)
        {
            throw std::runtime_error{"verilog: signal '" + name + "' defined twice"};
        }
        signals_[name] = id;
    }

    Lexer lexer_;
    Token current_;
    LogicNetwork net_;
    std::map<std::string, NodeId> signals_;
    std::vector<std::string> output_order_;
};

}  // namespace

logic::LogicNetwork read_verilog(std::istream& in)
{
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return read_verilog_string(buffer.str());
}

logic::LogicNetwork read_verilog_string(const std::string& text)
{
    Parser parser{text};
    return parser.parse();
}

namespace
{

/// Verilog identifiers must start with a letter or underscore; benchmark
/// names like ISCAS's "1"/"22" are prefixed to stay legal.
std::string sanitize_identifier(const std::string& name)
{
    if (name.empty())
    {
        return name;
    }
    std::string out = name;
    for (auto& c : out)
    {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
        {
            c = '_';
        }
    }
    if (!(std::isalpha(static_cast<unsigned char>(out.front())) || out.front() == '_'))
    {
        out = "n" + out;
    }
    return out;
}

}  // namespace

void write_verilog(std::ostream& out, const logic::LogicNetwork& network, const std::string& module_name)
{
    std::map<NodeId, std::string> names;
    std::vector<std::string> inputs, outputs;
    unsigned anon = 0;
    for (const auto pi : network.pis())
    {
        const auto& n = network.node(pi);
        const std::string name =
            n.name.empty() ? ("pi" + std::to_string(anon++)) : sanitize_identifier(n.name);
        names[pi] = name;
        inputs.push_back(name);
    }
    unsigned po_index = 0;
    for (const auto po : network.pos())
    {
        const auto& n = network.node(po);
        const std::string name =
            n.name.empty() ? ("po" + std::to_string(po_index)) : sanitize_identifier(n.name);
        outputs.push_back(name);
        ++po_index;
    }

    out << "module " << module_name << "(";
    bool first = true;
    for (const auto& n : inputs)
    {
        out << (first ? "" : ", ") << n;
        first = false;
    }
    for (const auto& n : outputs)
    {
        out << (first ? "" : ", ") << n;
        first = false;
    }
    out << ");\n";
    for (const auto& n : inputs)
    {
        out << "  input " << n << ";\n";
    }
    for (const auto& n : outputs)
    {
        out << "  output " << n << ";\n";
    }

    std::ostringstream body;
    unsigned wires = 0;
    std::vector<std::string> wire_decls;
    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        switch (node.type)
        {
            case GateType::pi:
            case GateType::po:
            case GateType::none: continue;
            case GateType::const0: names[id] = "1'b0"; continue;
            case GateType::const1: names[id] = "1'b1"; continue;
            default: break;
        }
        const std::string name = "w" + std::to_string(wires++);
        names[id] = name;
        wire_decls.push_back(name);
        const auto a = names.at(node.fanin[0]);
        switch (node.type)
        {
            case GateType::buf:
            case GateType::fanout: body << "  assign " << name << " = " << a << ";\n"; break;
            case GateType::inv: body << "  assign " << name << " = ~" << a << ";\n"; break;
            case GateType::and2: body << "  assign " << name << " = " << a << " & " << names.at(node.fanin[1]) << ";\n"; break;
            case GateType::or2: body << "  assign " << name << " = " << a << " | " << names.at(node.fanin[1]) << ";\n"; break;
            case GateType::nand2: body << "  assign " << name << " = ~(" << a << " & " << names.at(node.fanin[1]) << ");\n"; break;
            case GateType::nor2: body << "  assign " << name << " = ~(" << a << " | " << names.at(node.fanin[1]) << ");\n"; break;
            case GateType::xor2: body << "  assign " << name << " = " << a << " ^ " << names.at(node.fanin[1]) << ";\n"; break;
            case GateType::xnor2: body << "  assign " << name << " = ~(" << a << " ^ " << names.at(node.fanin[1]) << ");\n"; break;
            case GateType::maj3:
                body << "  assign " << name << " = (" << a << " & " << names.at(node.fanin[1]) << ") | ("
                     << a << " & " << names.at(node.fanin[2]) << ") | (" << names.at(node.fanin[1])
                     << " & " << names.at(node.fanin[2]) << ");\n";
                break;
            default: break;
        }
    }
    for (const auto& w : wire_decls)
    {
        out << "  wire " << w << ";\n";
    }
    out << body.str();
    unsigned po_i = 0;
    for (const auto po : network.pos())
    {
        out << "  assign " << outputs[po_i++] << " = " << names.at(network.node(po).fanin[0]) << ";\n";
    }
    out << "endmodule\n";
}

std::string to_verilog_string(const logic::LogicNetwork& network, const std::string& module_name)
{
    std::ostringstream out;
    write_verilog(out, network, module_name);
    return out.str();
}

}  // namespace bestagon::io
