/// \file verilog.hpp
/// \brief Gate-level Verilog reading and writing (flow step 1).
///
/// The reader supports the structural subset used by FCN benchmark suites:
/// one module with `input`/`output`/`wire` declarations, continuous
/// `assign` statements over ~, &, |, ^ and parentheses, and primitive gate
/// instantiations (and/or/nand/nor/xor/xnor/not/buf with output-first
/// argument order).

#pragma once

#include "logic/network.hpp"

#include <iosfwd>
#include <string>

namespace bestagon::io
{

/// Parses a Verilog module into a logic network.
/// Throws std::runtime_error with a diagnostic on malformed input.
[[nodiscard]] logic::LogicNetwork read_verilog(std::istream& in);
[[nodiscard]] logic::LogicNetwork read_verilog_string(const std::string& text);

/// Writes a network as a structural Verilog module.
void write_verilog(std::ostream& out, const logic::LogicNetwork& network,
                   const std::string& module_name = "top");
[[nodiscard]] std::string to_verilog_string(const logic::LogicNetwork& network,
                                            const std::string& module_name = "top");

}  // namespace bestagon::io
