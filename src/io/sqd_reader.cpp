#include "io/sqd_reader.hpp"

#include <cstdlib>
#include <istream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bestagon::io
{

namespace
{

/// Value of attribute \p attr inside the tag text \p tag ('name="value"').
std::optional<std::string> attribute(const std::string& tag, const std::string& attr)
{
    const std::string needle = attr + "=\"";
    const auto pos = tag.find(needle);
    if (pos == std::string::npos)
    {
        return std::nullopt;
    }
    const auto begin = pos + needle.size();
    const auto end = tag.find('"', begin);
    if (end == std::string::npos)
    {
        return std::nullopt;
    }
    return tag.substr(begin, end - begin);
}

std::optional<int> parse_int(const std::string& text)
{
    const char* s = text.c_str();
    char* end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0')
    {
        return std::nullopt;
    }
    return static_cast<int>(v);
}

std::optional<double> parse_double(const std::string& text)
{
    const char* s = text.c_str();
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0')
    {
        return std::nullopt;
    }
    return v;
}

/// The text of the first \p tag element inside \p block ("<tag ... />" or
/// "<tag ...>"), or nullopt.
std::optional<std::string> first_tag(const std::string& block, const std::string& tag)
{
    const auto pos = block.find("<" + tag);
    if (pos == std::string::npos)
    {
        return std::nullopt;
    }
    const auto end = block.find('>', pos);
    if (end == std::string::npos)
    {
        return std::nullopt;
    }
    return block.substr(pos, end - pos + 1);
}

/// Parses the latcoord element of \p block into a site; returns nullopt and
/// sets \p why on failure.
std::optional<phys::SiDBSite> parse_latcoord(const std::string& block, std::string& why)
{
    const auto tag = first_tag(block, "latcoord");
    if (!tag.has_value())
    {
        why = "missing <latcoord>";
        return std::nullopt;
    }
    phys::SiDBSite site;
    const char* names[] = {"n", "m", "l"};
    std::int32_t* fields[] = {&site.n, &site.m, &site.l};
    for (int i = 0; i < 3; ++i)
    {
        const auto text = attribute(*tag, names[i]);
        if (!text.has_value())
        {
            why = std::string{"latcoord missing attribute '"} + names[i] + "'";
            return std::nullopt;
        }
        const auto value = parse_int(*text);
        if (!value.has_value())
        {
            why = std::string{"latcoord attribute '"} + names[i] + "' is not an integer: '" +
                  *text + "'";
            return std::nullopt;
        }
        *fields[i] = *value;
    }
    if (site.l != 0 && site.l != 1)
    {
        why = "latcoord sublattice index l must be 0 or 1";
        return std::nullopt;
    }
    return site;
}

/// Calls \p handle(block, index) for every <element>...</element> block.
/// An unterminated element is reported through \p on_error and stops the
/// scan (everything after it would be garbage).
template <typename Handler, typename ErrorSink>
void for_each_block(const std::string& doc, const std::string& element, Handler handle,
                    ErrorSink on_error)
{
    const std::string open = "<" + element + ">";
    const std::string close = "</" + element + ">";
    std::size_t pos = 0;
    std::size_t index = 0;
    for (;;)
    {
        const auto begin = doc.find(open, pos);
        if (begin == std::string::npos)
        {
            return;
        }
        const auto end = doc.find(close, begin);
        if (end == std::string::npos)
        {
            on_error("unterminated <" + element + "> element");
            return;
        }
        handle(doc.substr(begin, end - begin + close.size()), index);
        ++index;
        pos = end + close.size();
    }
}

}  // namespace

SqdContents read_sqd(std::istream& in)
{
    SqdContents contents;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string doc = buffer.str();

    if (doc.find("<siqad") == std::string::npos)
    {
        contents.errors.emplace_back("not a SiQAD document (no <siqad> root)");
        return contents;
    }

    // design name (optional; the program block may be absent)
    if (const auto open = doc.find("<name>"); open != std::string::npos)
    {
        if (const auto close = doc.find("</name>", open); close != std::string::npos)
        {
            contents.name = doc.substr(open + 6, close - open - 6);
        }
    }

    const auto record = [&](const std::string& what) { contents.errors.push_back(what); };

    for_each_block(
        doc, "dbdot",
        [&](const std::string& block, std::size_t index) {
            std::string why;
            if (const auto site = parse_latcoord(block, why); site.has_value())
            {
                contents.sites.push_back(*site);
            }
            else
            {
                record("dbdot #" + std::to_string(index) + " skipped: " + why);
            }
        },
        record);

    for_each_block(
        doc, "defect",
        [&](const std::string& block, std::size_t index) {
            const auto skip = [&](const std::string& why) {
                record("defect #" + std::to_string(index) + " skipped: " + why);
            };
            std::string why;
            const auto site = parse_latcoord(block, why);
            if (!site.has_value())
            {
                skip(why);
                return;
            }
            phys::SurfaceDefect defect;
            defect.site = *site;
            // the property element is optional (defaults model a bare
            // charged vacancy); malformed values skip the entry
            if (const auto prop = first_tag(block, "property"); prop.has_value())
            {
                if (const auto kind = attribute(*prop, "kind"); kind.has_value())
                {
                    if (*kind == "charged")
                    {
                        defect.kind = phys::DefectKind::charged;
                    }
                    else if (*kind == "structural")
                    {
                        defect.kind = phys::DefectKind::structural;
                        defect.charge = 0.0;
                    }
                    else
                    {
                        skip("unknown defect kind '" + *kind + "'");
                        return;
                    }
                }
                if (const auto charge = attribute(*prop, "charge"); charge.has_value())
                {
                    const auto value = parse_double(*charge);
                    if (!value.has_value())
                    {
                        skip("charge is not a number: '" + *charge + "'");
                        return;
                    }
                    defect.charge = *value;
                }
                if (const auto radius = attribute(*prop, "exclusion_radius_nm");
                    radius.has_value())
                {
                    const auto value = parse_double(*radius);
                    if (!value.has_value())
                    {
                        skip("exclusion_radius_nm is not a number: '" + *radius + "'");
                        return;
                    }
                    defect.exclusion_radius_nm = *value;
                }
            }
            try
            {
                contents.defects.add(defect);
            }
            catch (const std::invalid_argument& e)
            {
                // DefectSurface::add rejects negative radii / non-finite
                // charges; record instead of throwing through the reader
                skip(e.what());
            }
        },
        record);

    return contents;
}

}  // namespace bestagon::io
