#include "io/render.hpp"

#include <sstream>

namespace bestagon::io
{

namespace
{

using layout::GateLevelLayout;
using layout::HexCoord;
using logic::GateType;

std::string cell_text(const GateLevelLayout& layout, HexCoord t)
{
    const auto& occs = layout.occupants(t);
    if (occs.empty())
    {
        return "        ";
    }
    std::string label;
    if (occs.size() == 2)
    {
        label = "x       ";  // crossing / parallel wires
        label[1] = '/';
    }
    else
    {
        const auto& occ = occs.front();
        switch (occ.type)
        {
            case GateType::pi: label = "PI " + occ.label; break;
            case GateType::po: label = "PO " + occ.label; break;
            case GateType::buf: label = occ.out_a == occ.in_a ? "|" : "wire"; break;
            default: label = logic::gate_type_name(occ.type);
        }
    }
    label = "[" + label;
    label.resize(7, ' ');
    label += "]";
    return label;
}

}  // namespace

std::string render_layout(const GateLevelLayout& layout)
{
    std::ostringstream out;
    out << layout.width() << " x " << layout.height() << " hexagonal layout ("
        << layout::clocking_scheme_name(layout.scheme()) << " clocking)\n";
    for (unsigned y = 0; y < layout.height(); ++y)
    {
        if ((y & 1) != 0)
        {
            out << "    ";  // odd rows shifted right by half a tile
        }
        for (unsigned x = 0; x < layout.width(); ++x)
        {
            out << cell_text(layout, HexCoord{static_cast<std::int32_t>(x), static_cast<std::int32_t>(y)});
        }
        out << "   (clock " << layout.zone(HexCoord{0, static_cast<std::int32_t>(y)}) << ")\n";
    }
    return out.str();
}

std::string render_charges(const std::vector<phys::SiDBSite>& sites, const phys::ChargeConfig& config)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < sites.size(); ++i)
    {
        out << "(" << sites[i].n << "," << sites[i].m << "," << sites[i].l << ") "
            << (config[i] != 0 ? "DB-" : "DB0") << "\n";
    }
    return out.str();
}

}  // namespace bestagon::io
