/// \file dot_writer.hpp
/// \brief Graphviz DOT export of logic networks for inspection/debugging.

#pragma once

#include "logic/network.hpp"

#include <iosfwd>

namespace bestagon::io
{

/// Writes a network in Graphviz DOT format.
void write_dot(std::ostream& out, const logic::LogicNetwork& network);

}  // namespace bestagon::io
