/// \file bench_reader.hpp
/// \brief Reader for the ISCAS BENCH netlist format, the other common
///        interchange format of FCN benchmark suites:
///
///        INPUT(a)
///        OUTPUT(f)
///        w = NAND(a, b)
///        f = NOT(w)

#pragma once

#include "logic/network.hpp"

#include <iosfwd>
#include <string>

namespace bestagon::io
{

/// Parses a BENCH netlist. Supported gates: AND, OR, NAND, NOR, XOR, XNOR,
/// NOT, BUF(F) with arbitrary comments (#). Throws std::runtime_error on
/// malformed input.
[[nodiscard]] logic::LogicNetwork read_bench(std::istream& in);
[[nodiscard]] logic::LogicNetwork read_bench_string(const std::string& text);

}  // namespace bestagon::io
