#include "io/dot_writer.hpp"

#include <ostream>

namespace bestagon::io
{

void write_dot(std::ostream& out, const logic::LogicNetwork& network)
{
    out << "digraph network {\n  rankdir=TB;\n";
    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        const char* shape = "box";
        std::string label = logic::gate_type_name(node.type);
        if (node.type == logic::GateType::pi || node.type == logic::GateType::po)
        {
            shape = "ellipse";
            label += " " + node.name;
        }
        out << "  n" << id << " [shape=" << shape << ", label=\"" << label << "\"];\n";
        for (unsigned i = 0; i < gate_arity(node.type); ++i)
        {
            out << "  n" << node.fanin[i] << " -> n" << id << ";\n";
        }
    }
    out << "}\n";
}

}  // namespace bestagon::io
