/// \file benchmarks.hpp
/// \brief The benchmark suite used in the paper's Table 1: circuits from
///        Trindade et al. [43] and Fontes et al. [13] (c17 originally from
///        the ISCAS-85 set [7]).
///
/// The paper does not print the netlists; for the five Trindade benchmarks,
/// c17, the parity and majority functions, the functions are standard. The
/// netlists for t, t_5 and newtag are faithful-scale reconstructions (same
/// PI/PO counts and similar gate counts); see DESIGN.md.

#pragma once

#include "logic/network.hpp"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace bestagon::logic
{

/// Reference values from the paper's Table 1 for comparison in benches.
struct Table1Row
{
    unsigned width{0};
    unsigned height{0};
    unsigned area_tiles{0};
    unsigned sidbs{0};
    double area_nm2{0.0};
};

/// A named benchmark with its source and the paper's reported layout data.
struct Benchmark
{
    std::string name;
    std::string source;  ///< "[43]" or "[13]"
    std::function<LogicNetwork()> build;
    Table1Row paper;
};

/// All 14 Table-1 benchmarks in paper order.
[[nodiscard]] const std::vector<Benchmark>& table1_benchmarks();

/// Looks up a benchmark by name (nullptr if unknown).
[[nodiscard]] const Benchmark* find_benchmark(const std::string& name);

}  // namespace bestagon::logic
