/// \file exact_synthesis.hpp
/// \brief SAT-based exact synthesis of minimal Boolean chains (XAG-compatible)
///        and the exact NPN database used by the rewriting engine.
///
/// The paper's flow performs "cut-based logic rewriting with an exact NPN
/// database" [38]. We rebuild that database on the fly: for each canonical
/// NPN class encountered, a minimal-length Boolean chain (two-input gates
/// over {AND, OR, XOR, AND-with-complemented-input}, explicit inverters) is
/// synthesized with the CDCL solver and cached.

#pragma once

#include "logic/network.hpp"
#include "logic/truth_table.hpp"

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace bestagon::logic
{

/// Per-run accounting for exact_synthesize. Distinguishes gate counts the
/// solver *proved* infeasible from ones it merely gave up on — a decline is
/// a minimality certificate only when no step exhausted its budget.
struct SynthesisStats
{
    unsigned unsat_steps{0};    ///< r values refuted by the solver
    unsigned unknown_steps{0};  ///< r values that hit the conflict budget
    unsigned proofs_checked{0};   ///< refutations certified by the DRAT checker
    unsigned proof_failures{0};   ///< refutations whose proof did NOT check

    /// True iff every attempted gate count was genuinely refuted, so a
    /// std::nullopt result proves no implementation with <= max_gates exists.
    [[nodiscard]] bool decline_is_certified() const noexcept
    {
        return unknown_steps == 0 && proof_failures == 0;
    }
};

/// Synthesizes a minimal network computing \p f over its variables.
/// Returns std::nullopt if no implementation with at most \p max_gates
/// two-input gates was found within the conflict budget per SAT call.
/// The returned network has f.num_vars() PIs and one PO.
/// With \p certify_unsat, every refuted gate count is DRAT-certified by the
/// independent proof checker (outcomes in \p stats).
[[nodiscard]] std::optional<LogicNetwork> exact_synthesize(const TruthTable& f, unsigned max_gates = 7,
                                                           std::int64_t conflict_budget = 50000,
                                                           SynthesisStats* stats = nullptr,
                                                           bool certify_unsat = false);

/// A cache of exact implementations keyed by canonical NPN representative.
class NpnDatabase
{
  public:
    explicit NpnDatabase(unsigned max_gates = 7, std::int64_t conflict_budget = 50000)
        : max_gates_{max_gates}, conflict_budget_{conflict_budget}
    {
    }

    /// Returns the cached or freshly synthesized implementation of the
    /// canonical function \p canonical, or nullptr if synthesis failed.
    const LogicNetwork* lookup(const TruthTable& canonical);

    [[nodiscard]] std::size_t num_entries() const noexcept { return cache_.size(); }
    [[nodiscard]] std::size_t num_synthesis_failures() const noexcept { return failures_; }

  private:
    unsigned max_gates_;
    std::int64_t conflict_budget_;
    std::unordered_map<TruthTable, std::optional<LogicNetwork>, TruthTableHash> cache_;
    std::size_t failures_{0};
};

/// Number of two-input gates in a network (inverters/buffers not counted).
[[nodiscard]] std::size_t count_two_input_gates(const LogicNetwork& network);

}  // namespace bestagon::logic
