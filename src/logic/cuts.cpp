#include "logic/cuts.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace bestagon::logic
{

namespace
{

using NodeId = LogicNetwork::NodeId;

/// True if cut \p a dominates \p b (a's leaves are a subset of b's).
[[nodiscard]] bool dominates(const std::vector<NodeId>& a, const std::vector<NodeId>& b)
{
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Merges two sorted leaf sets; returns empty optional-like flag via size > k.
[[nodiscard]] std::vector<NodeId> merge_leaves(const std::vector<NodeId>& a, const std::vector<NodeId>& b)
{
    std::vector<NodeId> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

}  // namespace

TruthTable compute_cut_function(const LogicNetwork& network, NodeId root,
                                const std::vector<NodeId>& leaves)
{
    const auto n = static_cast<unsigned>(leaves.size());
    std::unordered_map<NodeId, TruthTable> memo;
    for (unsigned i = 0; i < n; ++i)
    {
        memo.emplace(leaves[i], TruthTable::nth_var(n, i));
    }

    // iterative post-order evaluation
    std::vector<NodeId> stack{root};
    while (!stack.empty())
    {
        const NodeId id = stack.back();
        if (memo.count(id) != 0)
        {
            stack.pop_back();
            continue;
        }
        const auto& node = network.node(id);
        const unsigned arity = gate_arity(node.type);
        if (arity == 0)
        {
            // constant leaves are allowed; PIs must be cut leaves
            if (node.type == GateType::const0)
            {
                memo.emplace(id, TruthTable::constant(n, false));
            }
            else if (node.type == GateType::const1)
            {
                memo.emplace(id, TruthTable::constant(n, true));
            }
            else
            {
                throw std::logic_error{"compute_cut_function: cone not covered by leaves"};
            }
            stack.pop_back();
            continue;
        }
        bool ready = true;
        for (unsigned i = 0; i < arity; ++i)
        {
            if (memo.count(node.fanin[i]) == 0)
            {
                stack.push_back(node.fanin[i]);
                ready = false;
            }
        }
        if (!ready)
        {
            continue;
        }
        stack.pop_back();
        const auto& a = memo.at(node.fanin[0]);
        switch (node.type)
        {
            case GateType::buf:
            case GateType::fanout:
            case GateType::po: memo.emplace(id, a); break;
            case GateType::inv: memo.emplace(id, ~a); break;
            case GateType::and2: memo.emplace(id, a & memo.at(node.fanin[1])); break;
            case GateType::or2: memo.emplace(id, a | memo.at(node.fanin[1])); break;
            case GateType::nand2: memo.emplace(id, ~(a & memo.at(node.fanin[1]))); break;
            case GateType::nor2: memo.emplace(id, ~(a | memo.at(node.fanin[1]))); break;
            case GateType::xor2: memo.emplace(id, a ^ memo.at(node.fanin[1])); break;
            case GateType::xnor2: memo.emplace(id, ~(a ^ memo.at(node.fanin[1]))); break;
            case GateType::maj3:
                memo.emplace(id, (a & memo.at(node.fanin[1])) | (a & memo.at(node.fanin[2])) |
                                     (memo.at(node.fanin[1]) & memo.at(node.fanin[2])));
                break;
            default: throw std::logic_error{"compute_cut_function: unexpected node type"};
        }
    }
    return memo.at(root);
}

CutEnumeration::CutEnumeration(const LogicNetwork& network, unsigned k, unsigned cut_limit)
{
    cuts_.resize(network.size());
    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        auto& node_cuts = cuts_[id];

        const auto add_cut = [&](std::vector<NodeId> leaves) {
            if (leaves.size() > k)
            {
                return;
            }
            for (const auto& existing : node_cuts)
            {
                if (dominates(existing.leaves, leaves))
                {
                    return;  // dominated by an existing (smaller) cut
                }
            }
            if (node_cuts.size() >= cut_limit)
            {
                return;
            }
            Cut cut;
            cut.function = compute_cut_function(network, id, leaves);
            cut.leaves = std::move(leaves);
            node_cuts.push_back(std::move(cut));
        };

        switch (node.type)
        {
            case GateType::none: continue;
            case GateType::pi:
            case GateType::const0:
            case GateType::const1: add_cut({id}); continue;
            default: break;
        }

        const unsigned arity = gate_arity(node.type);
        if (arity == 1)
        {
            for (const auto& c : cuts_[node.fanin[0]])
            {
                add_cut(c.leaves);
            }
        }
        else if (arity == 2)
        {
            for (const auto& ca : cuts_[node.fanin[0]])
            {
                for (const auto& cb : cuts_[node.fanin[1]])
                {
                    add_cut(merge_leaves(ca.leaves, cb.leaves));
                }
            }
        }
        else if (arity == 3)
        {
            for (const auto& ca : cuts_[node.fanin[0]])
            {
                for (const auto& cb : cuts_[node.fanin[1]])
                {
                    const auto ab = merge_leaves(ca.leaves, cb.leaves);
                    if (ab.size() > k)
                    {
                        continue;
                    }
                    for (const auto& cc : cuts_[node.fanin[2]])
                    {
                        add_cut(merge_leaves(ab, cc.leaves));
                    }
                }
            }
        }
        // the trivial cut {node} is always available
        add_cut({id});
    }
}

}  // namespace bestagon::logic
