#include "logic/truth_table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace bestagon::logic
{

namespace
{

constexpr std::uint64_t projections_6[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL};

}  // namespace

TruthTable::TruthTable(unsigned num_vars) : num_vars_{num_vars}
{
    if (num_vars > 16)
    {
        throw std::invalid_argument{"TruthTable: too many variables"};
    }
    const std::size_t words = num_vars <= 6 ? 1 : (1ULL << (num_vars - 6));
    words_.assign(words, 0ULL);
}

void TruthTable::mask_off_excess()
{
    if (num_vars_ < 6)
    {
        words_[0] &= (1ULL << (1ULL << num_vars_)) - 1;
    }
}

TruthTable TruthTable::from_binary(const std::string& bits)
{
    unsigned nv = 0;
    while ((1ULL << nv) < bits.size())
    {
        ++nv;
    }
    if ((1ULL << nv) != bits.size())
    {
        throw std::invalid_argument{"TruthTable::from_binary: length must be a power of two"};
    }
    TruthTable tt{nv};
    for (std::size_t i = 0; i < bits.size(); ++i)
    {
        const char c = bits[bits.size() - 1 - i];
        if (c != '0' && c != '1')
        {
            throw std::invalid_argument{"TruthTable::from_binary: invalid character"};
        }
        tt.set_bit(i, c == '1');
    }
    return tt;
}

TruthTable TruthTable::from_hex(unsigned num_vars, const std::string& hex)
{
    TruthTable tt{num_vars};
    const std::uint64_t nibbles = std::max<std::uint64_t>(1, tt.num_bits() / 4);
    if (hex.size() != nibbles)
    {
        throw std::invalid_argument{"TruthTable::from_hex: wrong number of nibbles"};
    }
    for (std::uint64_t i = 0; i < nibbles; ++i)
    {
        const char c = hex[hex.size() - 1 - i];
        unsigned v = 0;
        if (c >= '0' && c <= '9')
        {
            v = static_cast<unsigned>(c - '0');
        }
        else if (c >= 'a' && c <= 'f')
        {
            v = static_cast<unsigned>(c - 'a') + 10;
        }
        else if (c >= 'A' && c <= 'F')
        {
            v = static_cast<unsigned>(c - 'A') + 10;
        }
        else
        {
            throw std::invalid_argument{"TruthTable::from_hex: invalid character"};
        }
        for (unsigned b = 0; b < 4; ++b)
        {
            const std::uint64_t idx = i * 4 + b;
            if (idx < tt.num_bits())
            {
                tt.set_bit(idx, ((v >> b) & 1) != 0);
            }
        }
    }
    return tt;
}

TruthTable TruthTable::nth_var(unsigned num_vars, unsigned var, bool complemented)
{
    assert(var < num_vars);
    TruthTable tt{num_vars};
    if (var < 6)
    {
        for (auto& w : tt.words_)
        {
            w = complemented ? ~projections_6[var] : projections_6[var];
        }
    }
    else
    {
        const std::uint64_t block = 1ULL << (var - 6);
        for (std::size_t i = 0; i < tt.words_.size(); ++i)
        {
            const bool hi = ((i / block) & 1) != 0;
            tt.words_[i] = (hi != complemented) ? ~0ULL : 0ULL;
        }
    }
    tt.mask_off_excess();
    return tt;
}

TruthTable TruthTable::constant(unsigned num_vars, bool value)
{
    TruthTable tt{num_vars};
    if (value)
    {
        for (auto& w : tt.words_)
        {
            w = ~0ULL;
        }
        tt.mask_off_excess();
    }
    return tt;
}

bool TruthTable::get_bit(std::uint64_t index) const
{
    assert(index < num_bits());
    return ((words_[index >> 6] >> (index & 63)) & 1ULL) != 0;
}

void TruthTable::set_bit(std::uint64_t index, bool value)
{
    assert(index < num_bits());
    if (value)
    {
        words_[index >> 6] |= 1ULL << (index & 63);
    }
    else
    {
        words_[index >> 6] &= ~(1ULL << (index & 63));
    }
}

std::uint64_t TruthTable::count_ones() const
{
    std::uint64_t total = 0;
    for (const auto w : words_)
    {
        total += static_cast<std::uint64_t>(std::popcount(w));
    }
    return total;
}

bool TruthTable::is_const0() const
{
    return std::all_of(words_.begin(), words_.end(), [](std::uint64_t w) { return w == 0; });
}

bool TruthTable::is_const1() const
{
    return count_ones() == num_bits();
}

bool TruthTable::is_projection(unsigned& var, bool& complemented) const
{
    for (unsigned v = 0; v < num_vars_; ++v)
    {
        const auto proj = nth_var(num_vars_, v);
        if (*this == proj)
        {
            var = v;
            complemented = false;
            return true;
        }
        if (*this == ~proj)
        {
            var = v;
            complemented = true;
            return true;
        }
    }
    return false;
}

bool TruthTable::depends_on(unsigned var) const
{
    return !(flip_var(var) == *this);
}

TruthTable TruthTable::operator~() const
{
    TruthTable result{*this};
    for (auto& w : result.words_)
    {
        w = ~w;
    }
    result.mask_off_excess();
    return result;
}

TruthTable TruthTable::operator&(const TruthTable& other) const
{
    assert(num_vars_ == other.num_vars_);
    TruthTable result{*this};
    for (std::size_t i = 0; i < words_.size(); ++i)
    {
        result.words_[i] &= other.words_[i];
    }
    return result;
}

TruthTable TruthTable::operator|(const TruthTable& other) const
{
    assert(num_vars_ == other.num_vars_);
    TruthTable result{*this};
    for (std::size_t i = 0; i < words_.size(); ++i)
    {
        result.words_[i] |= other.words_[i];
    }
    return result;
}

TruthTable TruthTable::operator^(const TruthTable& other) const
{
    assert(num_vars_ == other.num_vars_);
    TruthTable result{*this};
    for (std::size_t i = 0; i < words_.size(); ++i)
    {
        result.words_[i] ^= other.words_[i];
    }
    return result;
}

bool TruthTable::operator==(const TruthTable& other) const
{
    return num_vars_ == other.num_vars_ && words_ == other.words_;
}

TruthTable TruthTable::flip_var(unsigned var) const
{
    assert(var < num_vars_);
    TruthTable result{num_vars_};
    for (std::uint64_t t = 0; t < num_bits(); ++t)
    {
        result.set_bit(t, get_bit(t ^ (1ULL << var)));
    }
    return result;
}

TruthTable TruthTable::permute_vars(const std::vector<unsigned>& perm) const
{
    assert(perm.size() == num_vars_);
    TruthTable result{num_vars_};
    for (std::uint64_t t = 0; t < num_bits(); ++t)
    {
        // variable i of the result reads original variable perm[i]
        std::uint64_t src = 0;
        for (unsigned i = 0; i < num_vars_; ++i)
        {
            if ((t >> i) & 1ULL)
            {
                src |= 1ULL << perm[i];
            }
        }
        result.set_bit(t, get_bit(src));
    }
    return result;
}

TruthTable TruthTable::extend_to(unsigned new_num_vars) const
{
    assert(new_num_vars >= num_vars_);
    TruthTable result{new_num_vars};
    for (std::uint64_t t = 0; t < result.num_bits(); ++t)
    {
        result.set_bit(t, get_bit(t & (num_bits() - 1)));
    }
    return result;
}

std::string TruthTable::to_binary() const
{
    std::string s;
    s.reserve(num_bits());
    for (std::uint64_t i = 0; i < num_bits(); ++i)
    {
        s.push_back(get_bit(num_bits() - 1 - i) ? '1' : '0');
    }
    return s;
}

std::string TruthTable::to_hex() const
{
    static constexpr char digits[] = "0123456789abcdef";
    const std::uint64_t nibbles = std::max<std::uint64_t>(1, num_bits() / 4);
    std::string s;
    s.reserve(nibbles);
    for (std::uint64_t i = 0; i < nibbles; ++i)
    {
        const std::uint64_t n = nibbles - 1 - i;
        unsigned v = 0;
        for (unsigned b = 0; b < 4; ++b)
        {
            const std::uint64_t idx = n * 4 + b;
            if (idx < num_bits() && get_bit(idx))
            {
                v |= 1U << b;
            }
        }
        s.push_back(digits[v]);
    }
    return s;
}

int TruthTable::compare(const TruthTable& other) const
{
    assert(num_vars_ == other.num_vars_);
    for (std::size_t i = words_.size(); i > 0; --i)
    {
        if (words_[i - 1] < other.words_[i - 1])
        {
            return -1;
        }
        if (words_[i - 1] > other.words_[i - 1])
        {
            return 1;
        }
    }
    return 0;
}

std::size_t TruthTable::hash() const
{
    std::size_t h = std::hash<unsigned>{}(num_vars_);
    for (const auto w : words_)
    {
        h ^= std::hash<std::uint64_t>{}(w) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
}

}  // namespace bestagon::logic
