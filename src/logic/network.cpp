#include "logic/network.hpp"

#include <cassert>
#include <stdexcept>

namespace bestagon::logic
{

const char* gate_type_name(GateType t) noexcept
{
    switch (t)
    {
        case GateType::none: return "none";
        case GateType::const0: return "const0";
        case GateType::const1: return "const1";
        case GateType::pi: return "pi";
        case GateType::po: return "po";
        case GateType::buf: return "buf";
        case GateType::inv: return "inv";
        case GateType::and2: return "and";
        case GateType::or2: return "or";
        case GateType::nand2: return "nand";
        case GateType::nor2: return "nor";
        case GateType::xor2: return "xor";
        case GateType::xnor2: return "xnor";
        case GateType::maj3: return "maj";
        case GateType::fanout: return "fanout";
    }
    return "?";
}

bool evaluate_gate(GateType t, const std::array<bool, 3>& ins) noexcept
{
    switch (t)
    {
        case GateType::const0: return false;
        case GateType::const1: return true;
        case GateType::po:
        case GateType::buf:
        case GateType::fanout: return ins[0];
        case GateType::inv: return !ins[0];
        case GateType::and2: return ins[0] && ins[1];
        case GateType::or2: return ins[0] || ins[1];
        case GateType::nand2: return !(ins[0] && ins[1]);
        case GateType::nor2: return !(ins[0] || ins[1]);
        case GateType::xor2: return ins[0] != ins[1];
        case GateType::xnor2: return ins[0] == ins[1];
        case GateType::maj3: return (ins[0] && ins[1]) || (ins[0] && ins[2]) || (ins[1] && ins[2]);
        case GateType::none:
        case GateType::pi: break;
    }
    return false;
}

LogicNetwork::NodeId LogicNetwork::add_node(Node n)
{
    const auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(n));
    return id;
}

LogicNetwork::NodeId LogicNetwork::create_pi(std::string name)
{
    Node n;
    n.type = GateType::pi;
    n.name = std::move(name);
    const auto id = add_node(std::move(n));
    pis_.push_back(id);
    return id;
}

LogicNetwork::NodeId LogicNetwork::create_po(NodeId driver, std::string name)
{
    assert(driver < nodes_.size());
    Node n;
    n.type = GateType::po;
    n.fanin[0] = driver;
    n.name = std::move(name);
    const auto id = add_node(std::move(n));
    pos_.push_back(id);
    return id;
}

LogicNetwork::NodeId LogicNetwork::create_const(bool value)
{
    auto& cache = value ? const1_ : const0_;
    if (!cache)
    {
        Node n;
        n.type = value ? GateType::const1 : GateType::const0;
        cache = add_node(std::move(n));
    }
    return *cache;
}

LogicNetwork::NodeId LogicNetwork::create_gate(GateType type, const std::vector<NodeId>& fanins)
{
    if (fanins.size() != gate_arity(type))
    {
        throw std::invalid_argument{"create_gate: wrong number of fanins"};
    }
    Node n;
    n.type = type;
    for (std::size_t i = 0; i < fanins.size(); ++i)
    {
        assert(fanins[i] < nodes_.size());
        n.fanin[i] = fanins[i];
    }
    return add_node(std::move(n));
}

LogicNetwork::NodeId LogicNetwork::create_buf(NodeId a) { return create_gate(GateType::buf, {a}); }
LogicNetwork::NodeId LogicNetwork::create_not(NodeId a) { return create_gate(GateType::inv, {a}); }
LogicNetwork::NodeId LogicNetwork::create_and(NodeId a, NodeId b) { return create_gate(GateType::and2, {a, b}); }
LogicNetwork::NodeId LogicNetwork::create_or(NodeId a, NodeId b) { return create_gate(GateType::or2, {a, b}); }
LogicNetwork::NodeId LogicNetwork::create_nand(NodeId a, NodeId b) { return create_gate(GateType::nand2, {a, b}); }
LogicNetwork::NodeId LogicNetwork::create_nor(NodeId a, NodeId b) { return create_gate(GateType::nor2, {a, b}); }
LogicNetwork::NodeId LogicNetwork::create_xor(NodeId a, NodeId b) { return create_gate(GateType::xor2, {a, b}); }
LogicNetwork::NodeId LogicNetwork::create_xnor(NodeId a, NodeId b) { return create_gate(GateType::xnor2, {a, b}); }
LogicNetwork::NodeId LogicNetwork::create_maj(NodeId a, NodeId b, NodeId c)
{
    return create_gate(GateType::maj3, {a, b, c});
}
LogicNetwork::NodeId LogicNetwork::create_fanout(NodeId a) { return create_gate(GateType::fanout, {a}); }

std::size_t LogicNetwork::num_gates() const
{
    std::size_t count = 0;
    for (const auto& n : nodes_)
    {
        switch (n.type)
        {
            case GateType::none:
            case GateType::const0:
            case GateType::const1:
            case GateType::pi:
            case GateType::po: break;
            default: ++count;
        }
    }
    return count;
}

std::size_t LogicNetwork::num_gates_of(GateType t) const
{
    std::size_t count = 0;
    for (const auto& n : nodes_)
    {
        if (n.type == t)
        {
            ++count;
        }
    }
    return count;
}

std::vector<unsigned> LogicNetwork::fanout_counts() const
{
    std::vector<unsigned> counts(nodes_.size(), 0);
    for (const auto& n : nodes_)
    {
        const unsigned arity = gate_arity(n.type);
        for (unsigned i = 0; i < arity; ++i)
        {
            ++counts[n.fanin[i]];
        }
    }
    return counts;
}

std::vector<LogicNetwork::NodeId> LogicNetwork::topological_order() const
{
    // nodes are created in topological order by construction; filter deleted
    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    for (NodeId id = 0; id < nodes_.size(); ++id)
    {
        if (nodes_[id].type != GateType::none)
        {
            order.push_back(id);
        }
    }
    return order;
}

unsigned LogicNetwork::depth() const
{
    std::vector<unsigned> level(nodes_.size(), 0);
    unsigned max_level = 0;
    for (const auto id : topological_order())
    {
        const auto& n = nodes_[id];
        const unsigned arity = gate_arity(n.type);
        unsigned in_level = 0;
        for (unsigned i = 0; i < arity; ++i)
        {
            in_level = std::max(in_level, level[n.fanin[i]]);
        }
        switch (n.type)
        {
            case GateType::pi:
            case GateType::const0:
            case GateType::const1: level[id] = 0; break;
            case GateType::po: level[id] = in_level; break;
            default: level[id] = in_level + 1;
        }
        max_level = std::max(max_level, level[id]);
    }
    return max_level;
}

std::vector<TruthTable> LogicNetwork::simulate() const
{
    if (num_pis() > 16)
    {
        throw std::invalid_argument{"simulate: too many primary inputs"};
    }
    std::vector<TruthTable> values(nodes_.size(), TruthTable{num_pis()});
    unsigned pi_index = 0;
    for (const auto id : topological_order())
    {
        const auto& n = nodes_[id];
        switch (n.type)
        {
            case GateType::pi: values[id] = TruthTable::nth_var(num_pis(), pi_index++); break;
            case GateType::const0: values[id] = TruthTable::constant(num_pis(), false); break;
            case GateType::const1: values[id] = TruthTable::constant(num_pis(), true); break;
            case GateType::po:
            case GateType::buf:
            case GateType::fanout: values[id] = values[n.fanin[0]]; break;
            case GateType::inv: values[id] = ~values[n.fanin[0]]; break;
            case GateType::and2: values[id] = values[n.fanin[0]] & values[n.fanin[1]]; break;
            case GateType::or2: values[id] = values[n.fanin[0]] | values[n.fanin[1]]; break;
            case GateType::nand2: values[id] = ~(values[n.fanin[0]] & values[n.fanin[1]]); break;
            case GateType::nor2: values[id] = ~(values[n.fanin[0]] | values[n.fanin[1]]); break;
            case GateType::xor2: values[id] = values[n.fanin[0]] ^ values[n.fanin[1]]; break;
            case GateType::xnor2: values[id] = ~(values[n.fanin[0]] ^ values[n.fanin[1]]); break;
            case GateType::maj3:
                values[id] = (values[n.fanin[0]] & values[n.fanin[1]]) |
                             (values[n.fanin[0]] & values[n.fanin[2]]) |
                             (values[n.fanin[1]] & values[n.fanin[2]]);
                break;
            case GateType::none: break;
        }
    }
    std::vector<TruthTable> result;
    result.reserve(pos_.size());
    for (const auto po : pos_)
    {
        result.push_back(values[po]);
    }
    return result;
}

std::vector<bool> LogicNetwork::simulate_pattern(std::uint64_t pattern) const
{
    std::vector<bool> values(nodes_.size(), false);
    unsigned pi_index = 0;
    for (const auto id : topological_order())
    {
        const auto& n = nodes_[id];
        if (n.type == GateType::pi)
        {
            values[id] = ((pattern >> pi_index++) & 1ULL) != 0;
            continue;
        }
        const std::array<bool, 3> ins{values[n.fanin[0]], values[n.fanin[1]], values[n.fanin[2]]};
        values[id] = evaluate_gate(n.type, ins);
    }
    std::vector<bool> result;
    result.reserve(pos_.size());
    for (const auto po : pos_)
    {
        result.push_back(values[po]);
    }
    return result;
}

bool LogicNetwork::is_xag() const
{
    for (const auto& n : nodes_)
    {
        switch (n.type)
        {
            case GateType::none:
            case GateType::const0:
            case GateType::const1:
            case GateType::pi:
            case GateType::po:
            case GateType::buf:
            case GateType::inv:
            case GateType::and2:
            case GateType::xor2: break;
            default: return false;
        }
    }
    return true;
}

bool LogicNetwork::is_bestagon_compliant(std::string* why) const
{
    const auto fanouts = fanout_counts();
    for (NodeId id = 0; id < nodes_.size(); ++id)
    {
        const auto& n = nodes_[id];
        switch (n.type)
        {
            case GateType::maj3:
                if (why != nullptr)
                {
                    *why = "majority gates are not part of the Bestagon library";
                }
                return false;
            case GateType::none: continue;
            default: break;
        }
        const unsigned allowed = (n.type == GateType::fanout) ? 2U : 1U;
        if (fanouts[id] > allowed)
        {
            if (why != nullptr)
            {
                *why = std::string{"node of type "} + gate_type_name(n.type) + " has fan-out " +
                       std::to_string(fanouts[id]) + " > " + std::to_string(allowed);
            }
            return false;
        }
    }
    return true;
}

bool functionally_equivalent(const LogicNetwork& a, const LogicNetwork& b)
{
    if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos())
    {
        return false;
    }
    const auto fa = a.simulate();
    const auto fb = b.simulate();
    return fa == fb;
}

}  // namespace bestagon::logic
