#include "logic/benchmarks.hpp"

namespace bestagon::logic
{

namespace
{

using N = LogicNetwork;

N build_xor2()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b");
    n.create_po(n.create_xor(a, b), "f");
    return n;
}

N build_xnor2()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b");
    n.create_po(n.create_xnor(a, b), "f");
    return n;
}

N build_par_gen()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), c = n.create_pi("c");
    n.create_po(n.create_xor(n.create_xor(a, b), c), "par");
    return n;
}

N build_mux21()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), s = n.create_pi("s");
    const auto l = n.create_and(a, n.create_not(s));
    const auto r = n.create_and(b, s);
    n.create_po(n.create_or(l, r), "f");
    return n;
}

N build_par_check()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), c = n.create_pi("c"), d = n.create_pi("d");
    const auto ab = n.create_xor(a, b);
    const auto cd = n.create_xor(c, d);
    n.create_po(n.create_xnor(ab, cd), "ok");
    return n;
}

N build_xor5_r1()
{
    N n;
    std::vector<N::NodeId> in;
    for (const char* name : {"a", "b", "c", "d", "e"})
    {
        in.push_back(n.create_pi(name));
    }
    const auto x1 = n.create_xor(in[0], in[1]);
    const auto x2 = n.create_xor(in[2], in[3]);
    const auto x3 = n.create_xor(x1, x2);
    n.create_po(n.create_xor(x3, in[4]), "par");
    return n;
}

/// XOR expressed through majority gates (the "xor5_majority" variant of [13]):
/// XOR(a,b) = MAJ(~MAJ(a,b,0), MAJ(a,b,1), 0) = (a|b) & ~(a&b).
N::NodeId xor_from_maj(N& n, N::NodeId a, N::NodeId b)
{
    const auto c0 = n.create_const(false);
    const auto c1 = n.create_const(true);
    const auto lo = n.create_maj(a, b, c0);  // a & b
    const auto hi = n.create_maj(a, b, c1);  // a | b
    return n.create_maj(n.create_not(lo), hi, c0);
}

N build_xor5_majority()
{
    N n;
    std::vector<N::NodeId> in;
    for (const char* name : {"a", "b", "c", "d", "e"})
    {
        in.push_back(n.create_pi(name));
    }
    auto acc = xor_from_maj(n, in[0], in[1]);
    for (std::size_t i = 2; i < in.size(); ++i)
    {
        acc = xor_from_maj(n, acc, in[i]);
    }
    n.create_po(acc, "par");
    return n;
}

/// Reconstruction of the `t` benchmark from [13] (5 PI / 2 PO, c17-scale).
N build_t()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), c = n.create_pi("c"), d = n.create_pi("d"),
               e = n.create_pi("e");
    const auto ab = n.create_and(a, b);
    const auto cd = n.create_and(c, d);
    const auto o1 = n.create_or(ab, cd);
    const auto x = n.create_xor(c, d);
    const auto o2 = n.create_and(x, e);
    n.create_po(o1, "o1");
    n.create_po(o2, "o2");
    return n;
}

/// Reconstruction of the `t_5` benchmark from [13] (5 PI / 2 PO).
N build_t_5()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), c = n.create_pi("c"), d = n.create_pi("d"),
               e = n.create_pi("e");
    const auto m = n.create_maj(a, b, c);
    const auto de = n.create_and(d, e);
    const auto o1 = n.create_xor(m, de);
    const auto ad = n.create_or(a, d);
    const auto be = n.create_and(b, e);
    const auto o2 = n.create_xor(ad, be);
    n.create_po(o1, "o1");
    n.create_po(o2, "o2");
    return n;
}

/// ISCAS-85 c17 [7]: six NAND gates, 5 PIs, 2 POs.
N build_c17()
{
    N n;
    const auto i1 = n.create_pi("1"), i2 = n.create_pi("2"), i3 = n.create_pi("3"), i6 = n.create_pi("6"),
               i7 = n.create_pi("7");
    const auto n10 = n.create_nand(i1, i3);
    const auto n11 = n.create_nand(i3, i6);
    const auto n16 = n.create_nand(i2, n11);
    const auto n19 = n.create_nand(n11, i7);
    const auto n22 = n.create_nand(n10, n16);
    const auto n23 = n.create_nand(n16, n19);
    n.create_po(n22, "22");
    n.create_po(n23, "23");
    return n;
}

N build_majority()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), c = n.create_pi("c");
    n.create_po(n.create_maj(a, b, c), "maj");
    return n;
}

/// 5-input majority via two full-adder stages:
/// c1 = MAJ(a,b,c), s1 = a^b^c; c2 = MAJ(s1,d,e), s2 = s1^d^e;
/// MAJ5 = (c1 & c2) | ((c1 | c2) & s2).
N build_majority_5_r1()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), c = n.create_pi("c"), d = n.create_pi("d"),
               e = n.create_pi("e");
    const auto c1 = n.create_maj(a, b, c);
    const auto s1 = n.create_xor(n.create_xor(a, b), c);
    const auto c2 = n.create_maj(s1, d, e);
    const auto s2 = n.create_xor(n.create_xor(s1, d), e);
    const auto both = n.create_and(c1, c2);
    const auto any = n.create_or(c1, c2);
    n.create_po(n.create_or(both, n.create_and(any, s2)), "maj5");
    return n;
}

/// cm82a (MCNC): a two-stage adder slice; 5 PIs, 3 POs.
N build_cm82a_5()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), c = n.create_pi("c"), d = n.create_pi("d"),
               e = n.create_pi("e");
    const auto s1 = n.create_xor(n.create_xor(a, b), c);
    const auto c1 = n.create_maj(a, b, c);
    const auto s2 = n.create_xor(n.create_xor(c1, d), e);
    const auto c2 = n.create_maj(c1, d, e);
    n.create_po(s1, "s1");
    n.create_po(s2, "s2");
    n.create_po(c2, "c2");
    return n;
}

/// Reconstruction of the `newtag` benchmark (MCNC; 8 PI / 1 PO).
N build_newtag()
{
    N n;
    const auto a = n.create_pi("a"), b = n.create_pi("b"), c = n.create_pi("c"), d = n.create_pi("d"),
               e = n.create_pi("e"), f = n.create_pi("f"), g = n.create_pi("g"), h = n.create_pi("h");
    const auto t1 = n.create_and(n.create_and(a, b), n.create_not(c));
    const auto t2 = n.create_and(n.create_not(a), n.create_and(d, e));
    const auto t3 = n.create_and(n.create_and(f, n.create_not(g)), h);
    n.create_po(n.create_or(n.create_or(t1, t2), t3), "out");
    return n;
}

}  // namespace

const std::vector<Benchmark>& table1_benchmarks()
{
    static const std::vector<Benchmark> benchmarks = {
        {"xor2", "[43]", build_xor2, {2, 3, 6, 58, 2403.98}},
        {"xnor2", "[43]", build_xnor2, {2, 3, 6, 58, 2403.98}},
        {"par_gen", "[43]", build_par_gen, {3, 4, 12, 103, 4830.22}},
        {"mux21", "[43]", build_mux21, {3, 6, 18, 196, 7258.52}},
        {"par_check", "[43]", build_par_check, {4, 7, 28, 284, 11312.68}},
        {"xor5_r1", "[13]", build_xor5_r1, {5, 6, 30, 232, 12124.57}},
        {"xor5_majority", "[13]", build_xor5_majority, {5, 6, 30, 244, 12124.57}},
        {"t", "[13]", build_t, {5, 8, 40, 426, 16180.79}},
        {"t_5", "[13]", build_t_5, {5, 8, 40, 448, 16180.79}},
        {"c17", "[13]", build_c17, {5, 8, 40, 396, 16180.79}},
        {"majority", "[13]", build_majority, {5, 11, 55, 651, 22265.12}},
        {"majority_5_r1", "[13]", build_majority_5_r1, {5, 12, 60, 737, 24293.23}},
        {"cm82a_5", "[13]", build_cm82a_5, {5, 15, 75, 1211, 30377.56}},
        {"newtag", "[13]", build_newtag, {8, 10, 80, 651, 32419.82}},
    };
    return benchmarks;
}

const Benchmark* find_benchmark(const std::string& name)
{
    for (const auto& b : table1_benchmarks())
    {
        if (b.name == name)
        {
            return &b;
        }
    }
    return nullptr;
}

}  // namespace bestagon::logic
