/// \file network.hpp
/// \brief Gate-level logic networks: XOR-AND-inverter graphs (XAGs) and
///        technology-mapped networks over the Bestagon gate set.
///
/// A network is a DAG of typed nodes. Primary inputs and outputs are explicit
/// nodes; inverters are explicit (no complemented edges), which keeps the
/// physical-design encodings straightforward — every node eventually occupies
/// a hexagonal tile.

#pragma once

#include "logic/truth_table.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bestagon::logic
{

/// Node/gate types. The Bestagon library supports all two-input gates below
/// plus inverters, buffers (wire tiles) and fan-outs.
enum class GateType : std::uint8_t
{
    none,    ///< unused / deleted node
    const0,  ///< constant 0
    const1,  ///< constant 1
    pi,      ///< primary input
    po,      ///< primary output (single fanin)
    buf,     ///< buffer / wire
    inv,     ///< inverter
    and2,
    or2,
    nand2,
    nor2,
    xor2,
    xnor2,
    maj3,    ///< majority-of-three (not in the Bestagon library; logic-level only)
    fanout,  ///< explicit 1-to-2 fan-out (a Bestagon tile)
};

/// Number of fanins a gate of the given type takes.
[[nodiscard]] constexpr unsigned gate_arity(GateType t) noexcept
{
    switch (t)
    {
        case GateType::none:
        case GateType::const0:
        case GateType::const1:
        case GateType::pi: return 0;
        case GateType::po:
        case GateType::buf:
        case GateType::inv:
        case GateType::fanout: return 1;
        case GateType::and2:
        case GateType::or2:
        case GateType::nand2:
        case GateType::nor2:
        case GateType::xor2:
        case GateType::xnor2: return 2;
        case GateType::maj3: return 3;
    }
    return 0;
}

/// Human-readable gate-type name.
[[nodiscard]] const char* gate_type_name(GateType t) noexcept;

/// Evaluates a gate over Boolean fanin values.
[[nodiscard]] bool evaluate_gate(GateType t, const std::array<bool, 3>& ins) noexcept;

/// A logic network node.
struct Node
{
    GateType type{GateType::none};
    std::array<std::uint32_t, 3> fanin{{0, 0, 0}};
    std::string name;  ///< optional PI/PO name
};

/// A DAG of typed logic nodes with explicit PI/PO nodes.
class LogicNetwork
{
  public:
    using NodeId = std::uint32_t;
    static constexpr NodeId invalid_node = 0xffffffffU;

    LogicNetwork() = default;

    // construction -----------------------------------------------------------
    NodeId create_pi(std::string name = {});
    NodeId create_po(NodeId driver, std::string name = {});
    NodeId create_const(bool value);
    NodeId create_buf(NodeId a);
    NodeId create_not(NodeId a);
    NodeId create_and(NodeId a, NodeId b);
    NodeId create_or(NodeId a, NodeId b);
    NodeId create_nand(NodeId a, NodeId b);
    NodeId create_nor(NodeId a, NodeId b);
    NodeId create_xor(NodeId a, NodeId b);
    NodeId create_xnor(NodeId a, NodeId b);
    NodeId create_maj(NodeId a, NodeId b, NodeId c);
    NodeId create_fanout(NodeId a);
    NodeId create_gate(GateType type, const std::vector<NodeId>& fanins);

    // access ------------------------------------------------------------------
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
    [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }
    [[nodiscard]] GateType type_of(NodeId id) const { return nodes_[id].type; }
    [[nodiscard]] const std::vector<NodeId>& pis() const noexcept { return pis_; }
    [[nodiscard]] const std::vector<NodeId>& pos() const noexcept { return pos_; }
    [[nodiscard]] unsigned num_pis() const noexcept { return static_cast<unsigned>(pis_.size()); }
    [[nodiscard]] unsigned num_pos() const noexcept { return static_cast<unsigned>(pos_.size()); }

    /// Number of logic gates (excludes PI, PO, const and deleted nodes;
    /// includes buf/inv/fanout).
    [[nodiscard]] std::size_t num_gates() const;

    /// Number of two-input logic gates (the XAG "size" metric counts
    /// AND/XOR-class nodes).
    [[nodiscard]] std::size_t num_gates_of(GateType t) const;

    /// Fan-out count per node.
    [[nodiscard]] std::vector<unsigned> fanout_counts() const;

    /// Nodes in topological order (PIs/constants first, POs last).
    [[nodiscard]] std::vector<NodeId> topological_order() const;

    /// Logic depth: longest PI->PO path counted in logic gates
    /// (buf and fanout count as 1 level; PO does not).
    [[nodiscard]] unsigned depth() const;

    // simulation --------------------------------------------------------------
    /// Simulates all POs as truth tables over the PIs (num_pis() <= 16).
    [[nodiscard]] std::vector<TruthTable> simulate() const;

    /// Simulates all POs for one input pattern; bit i of \p pattern is PI i.
    [[nodiscard]] std::vector<bool> simulate_pattern(std::uint64_t pattern) const;

    // predicates ---------------------------------------------------------------
    /// True if every logic node is in {buf, inv, and2, xor2} (an XAG).
    [[nodiscard]] bool is_xag() const;

    /// True if the network obeys the structural rules needed for Bestagon
    /// physical design: gate types restricted to the library, every node's
    /// fan-out is <= 1 except fanout nodes (<= 2).
    [[nodiscard]] bool is_bestagon_compliant(std::string* why = nullptr) const;

  private:
    NodeId add_node(Node n);

    std::vector<Node> nodes_;
    std::vector<NodeId> pis_;
    std::vector<NodeId> pos_;
    std::optional<NodeId> const0_;
    std::optional<NodeId> const1_;
};

/// Functional equivalence of two networks via exhaustive simulation
/// (requires the same number of PIs <= 16 and POs).
[[nodiscard]] bool functionally_equivalent(const LogicNetwork& a, const LogicNetwork& b);

}  // namespace bestagon::logic
