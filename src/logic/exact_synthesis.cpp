#include "logic/exact_synthesis.hpp"

#include "sat/dimacs.hpp"
#include "sat/encodings.hpp"
#include "sat/proof.hpp"
#include "sat/proof_check.hpp"
#include "sat/backend.hpp"

#include <cassert>
#include <memory>
#include <vector>

namespace bestagon::logic
{

namespace
{

using sat::Lit;
using sat::Result;
using sat::SatBackend;
using sat::neg;
using sat::pos;

/// One synthesis attempt with exactly \p r two-input steps. \p verdict
/// reports the solver outcome so callers can tell a refuted gate count
/// (minimality evidence) from a budget-exhausted one.
std::optional<LogicNetwork> synthesize_with_r_steps(const TruthTable& f, unsigned r,
                                                    std::int64_t conflict_budget, Result& verdict,
                                                    SynthesisStats* stats, bool certify_unsat)
{
    const unsigned n = f.num_vars();
    const unsigned num_patterns = 1U << n;
    const unsigned total = n + r;

    // exact synthesis defaults to the plain internal solver (the per-r
    // instances are small); BESTAGON_SAT_BACKEND can re-route it
    const auto backend = sat::make_sat_backend({}, sat::BackendKind::internal);
    auto& solver = *backend;
    sat::MemoryProofTracer tracer;
    const bool can_certify = certify_unsat && solver.supports_proof_tracing();
    if (can_certify)
    {
        solver.set_proof_tracer(&tracer);
    }
    solver.set_conflict_budget(conflict_budget);

    // selection variables s[i][(j,k)] for steps i in [n, total)
    struct Selection
    {
        unsigned j, k;
        Lit lit;
    };
    std::vector<std::vector<Selection>> selections(r);
    for (unsigned i = n; i < total; ++i)
    {
        auto& sel = selections[i - n];
        for (unsigned j = 0; j < i; ++j)
        {
            for (unsigned k = j + 1; k < i; ++k)
            {
                sel.push_back({j, k, pos(solver.new_var())});
            }
        }
        std::vector<Lit> lits;
        lits.reserve(sel.size());
        for (const auto& s : sel)
        {
            lits.push_back(s.lit);
        }
        sat::add_exactly_one(solver, lits);
    }

    // operator bits: o1 = f(0,1), o2 = f(1,0), o3 = f(1,1); f(0,0) = 0
    std::vector<Lit> o1(r), o2(r), o3(r);
    for (unsigned i = 0; i < r; ++i)
    {
        o1[i] = pos(solver.new_var());
        o2[i] = pos(solver.new_var());
        o3[i] = pos(solver.new_var());
        solver.add_clause(o1[i], o2[i], o3[i]);        // not const 0
        solver.add_clause(o1[i], ~o2[i], ~o3[i]);      // not projection on first operand
        solver.add_clause(~o1[i], o2[i], ~o3[i]);      // not projection on second operand
    }

    // simulation variables x[i][t] for steps; operand helpers a[i][t], b[i][t]
    std::vector<std::vector<Lit>> x(r), av(r), bv(r);
    for (unsigned i = 0; i < r; ++i)
    {
        x[i].resize(num_patterns);
        av[i].resize(num_patterns);
        bv[i].resize(num_patterns);
        for (unsigned t = 0; t < num_patterns; ++t)
        {
            x[i][t] = pos(solver.new_var());
            av[i][t] = pos(solver.new_var());
            bv[i][t] = pos(solver.new_var());
        }
    }

    const auto input_value = [&](unsigned idx, unsigned t) -> bool { return ((t >> idx) & 1U) != 0; };

    for (unsigned i = 0; i < r; ++i)
    {
        for (const auto& s : selections[i])
        {
            for (unsigned t = 0; t < num_patterns; ++t)
            {
                // link operand a to operand j's value under selection s
                if (s.j < n)
                {
                    solver.add_clause(~s.lit, input_value(s.j, t) ? av[i][t] : ~av[i][t]);
                }
                else
                {
                    solver.add_clause(~s.lit, ~av[i][t], x[s.j - n][t]);
                    solver.add_clause(~s.lit, av[i][t], ~x[s.j - n][t]);
                }
                if (s.k < n)
                {
                    solver.add_clause(~s.lit, input_value(s.k, t) ? bv[i][t] : ~bv[i][t]);
                }
                else
                {
                    solver.add_clause(~s.lit, ~bv[i][t], x[s.k - n][t]);
                    solver.add_clause(~s.lit, bv[i][t], ~x[s.k - n][t]);
                }
            }
        }
        for (unsigned t = 0; t < num_patterns; ++t)
        {
            const Lit a = av[i][t], b = bv[i][t], xi = x[i][t];
            solver.add_clause(a, b, ~xi);                       // f(0,0) = 0
            solver.add_clause(std::vector<Lit>{a, ~b, ~xi, o1[i]});
            solver.add_clause(std::vector<Lit>{a, ~b, xi, ~o1[i]});
            solver.add_clause(std::vector<Lit>{~a, b, ~xi, o2[i]});
            solver.add_clause(std::vector<Lit>{~a, b, xi, ~o2[i]});
            solver.add_clause(std::vector<Lit>{~a, ~b, ~xi, o3[i]});
            solver.add_clause(std::vector<Lit>{~a, ~b, xi, ~o3[i]});
        }
    }

    // output: x[r-1][t] == f(t) ^ out_complement
    const Lit c = pos(solver.new_var());
    for (unsigned t = 0; t < num_patterns; ++t)
    {
        const Lit xo = x[r - 1][t];
        if (f.get_bit(t))
        {
            solver.add_clause(xo, c);
            solver.add_clause(~xo, ~c);
        }
        else
        {
            solver.add_clause(xo, ~c);
            solver.add_clause(~xo, c);
        }
    }

    verdict = solver.solve();
    if (verdict != Result::satisfiable)
    {
        if (verdict == Result::unsatisfiable && can_certify && stats != nullptr)
        {
            const auto check =
                sat::check_drat_proof(sat::to_cnf(solver.root_clauses()), tracer.proof());
            if (check.valid)
            {
                ++stats->proofs_checked;
            }
            else
            {
                ++stats->proof_failures;
            }
        }
        return std::nullopt;
    }

    // decode the model into a network
    LogicNetwork net;
    std::vector<LogicNetwork::NodeId> signal(total);
    for (unsigned i = 0; i < n; ++i)
    {
        signal[i] = net.create_pi("x" + std::to_string(i));
    }
    for (unsigned i = 0; i < r; ++i)
    {
        unsigned j = 0, k = 0;
        for (const auto& s : selections[i])
        {
            if (solver.model_value(s.lit))
            {
                j = s.j;
                k = s.k;
                break;
            }
        }
        const bool b1 = solver.model_value(o1[i]);
        const bool b2 = solver.model_value(o2[i]);
        const bool b3 = solver.model_value(o3[i]);
        const auto sa = signal[j];
        const auto sb = signal[k];
        LogicNetwork::NodeId out;
        if (!b1 && !b2 && b3)
        {
            out = net.create_and(sa, sb);
        }
        else if (b1 && b2 && !b3)
        {
            out = net.create_xor(sa, sb);
        }
        else if (b1 && b2 && b3)
        {
            out = net.create_or(sa, sb);
        }
        else if (!b1 && b2 && !b3)
        {
            out = net.create_and(sa, net.create_not(sb));  // a & ~b
        }
        else if (b1 && !b2 && !b3)
        {
            out = net.create_and(net.create_not(sa), sb);  // ~a & b
        }
        else
        {
            return std::nullopt;  // excluded by constraints; defensive
        }
        signal[n + i] = out;
    }
    auto root = signal[total - 1];
    if (solver.model_value(c))
    {
        root = net.create_not(root);
    }
    net.create_po(root, "f");
    return net;
}

}  // namespace

std::optional<LogicNetwork> exact_synthesize(const TruthTable& f, unsigned max_gates,
                                             std::int64_t conflict_budget, SynthesisStats* stats,
                                             bool certify_unsat)
{
    const unsigned n = f.num_vars();

    // trivial cases first
    if (f.is_const0() || f.is_const1())
    {
        LogicNetwork net;
        for (unsigned i = 0; i < n; ++i)
        {
            net.create_pi("x" + std::to_string(i));
        }
        net.create_po(net.create_const(f.is_const1()), "f");
        return net;
    }
    unsigned var = 0;
    bool complemented = false;
    if (f.is_projection(var, complemented))
    {
        LogicNetwork net;
        std::vector<LogicNetwork::NodeId> inputs;
        for (unsigned i = 0; i < n; ++i)
        {
            inputs.push_back(net.create_pi("x" + std::to_string(i)));
        }
        const auto sig = complemented ? net.create_not(inputs[var]) : net.create_buf(inputs[var]);
        net.create_po(sig, "f");
        return net;
    }

    for (unsigned r = 1; r <= max_gates; ++r)
    {
        auto verdict = Result::unknown;
        if (auto net = synthesize_with_r_steps(f, r, conflict_budget, verdict, stats, certify_unsat))
        {
            return net;
        }
        if (stats != nullptr)
        {
            if (verdict == Result::unsatisfiable)
            {
                ++stats->unsat_steps;
            }
            else
            {
                ++stats->unknown_steps;
            }
        }
    }
    return std::nullopt;
}

const LogicNetwork* NpnDatabase::lookup(const TruthTable& canonical)
{
    auto it = cache_.find(canonical);
    if (it == cache_.end())
    {
        auto impl = exact_synthesize(canonical, max_gates_, conflict_budget_);
        if (!impl)
        {
            ++failures_;
        }
        it = cache_.emplace(canonical, std::move(impl)).first;
    }
    return it->second ? &*it->second : nullptr;
}

std::size_t count_two_input_gates(const LogicNetwork& network)
{
    std::size_t count = 0;
    for (const auto id : network.topological_order())
    {
        if (gate_arity(network.type_of(id)) == 2)
        {
            ++count;
        }
    }
    return count;
}

}  // namespace bestagon::logic
