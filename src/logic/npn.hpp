/// \file npn.hpp
/// \brief Exhaustive NPN canonization for functions of up to 4 variables.
///
/// Two functions are NPN-equivalent if one can be obtained from the other by
/// Negating inputs, Permuting inputs, and/or Negating the output. The exact
/// NPN database used by the cut-rewriting engine stores one optimal
/// implementation per canonical representative.

#pragma once

#include "logic/truth_table.hpp"

#include <vector>

namespace bestagon::logic
{

/// An NPN transform. Applied to a function g of n variables it yields
///   f(x_0,...,x_{n-1}) = g(y_0,...,y_{n-1}) ^ output_negated,
/// where y_i = x_{perm[i]} ^ ((input_flips >> i) & 1).
struct NpnTransform
{
    std::vector<unsigned> perm;
    unsigned input_flips{0};
    bool output_negated{false};
};

/// Result of canonization: `canonical` plus the transform such that
/// applying `transform` to `canonical` reproduces the original function.
struct NpnCanonization
{
    TruthTable canonical;
    NpnTransform transform;
};

/// Applies an NPN transform to \p g (see NpnTransform for the semantics).
[[nodiscard]] TruthTable apply_npn_transform(const TruthTable& g, const NpnTransform& t);

/// Computes the canonical NPN representative of \p f (lexicographically
/// smallest truth table over all transforms) together with the transform
/// mapping the representative back to \p f. Supports up to 4 variables.
[[nodiscard]] NpnCanonization canonize_npn(const TruthTable& f);

}  // namespace bestagon::logic
