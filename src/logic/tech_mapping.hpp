/// \file tech_mapping.hpp
/// \brief Technology mapping onto the Bestagon gate set (flow step 3) plus
///        network conversions (XAG, AIG) and fan-out substitution.
///
/// The Bestagon library offers all two-input standard gates (OR, AND, NOR,
/// NAND, XOR, XNOR), inverters, buffers/wires and 1-to-2 fan-out tiles. The
/// mapper folds free-standing inverters into compound gates and afterwards
/// makes every fan-out explicit, as required by tile-based physical design.

#pragma once

#include "logic/network.hpp"

namespace bestagon::logic
{

/// Converts any network into an XAG (gates restricted to AND2/XOR2/INV/BUF).
[[nodiscard]] LogicNetwork to_xag(const LogicNetwork& network);

/// Converts any network into an AIG (gates restricted to AND2/INV/BUF).
/// Used by the XAG-vs-AIG ablation that motivates the paper's choice of XAGs.
[[nodiscard]] LogicNetwork to_aig(const LogicNetwork& network);

struct MappingStats
{
    std::size_t inverters_folded{0};
    std::size_t fanouts_inserted{0};
};

/// Folds inverters into neighboring gates where the Bestagon library offers a
/// complementary gate: AND(~a,~b) -> NOR(a,b), OR(~a,~b) -> NAND(a,b),
/// INV(AND(a,b)) -> NAND(a,b), XOR with one complemented input -> XNOR, etc.
[[nodiscard]] LogicNetwork fold_inverters(const LogicNetwork& network, MappingStats* stats = nullptr);

/// Inserts explicit fan-out nodes so that every node's fan-out is <= 1
/// (fanout nodes: <= 2), as required by Bestagon physical design.
[[nodiscard]] LogicNetwork fanout_substitution(const LogicNetwork& network, MappingStats* stats = nullptr);

/// Complete mapping onto the Bestagon gate set: inverter folding followed by
/// fan-out substitution. The result satisfies is_bestagon_compliant().
[[nodiscard]] LogicNetwork map_to_bestagon(const LogicNetwork& network, MappingStats* stats = nullptr);

}  // namespace bestagon::logic
