/// \file cuts.hpp
/// \brief K-feasible cut enumeration with cut functions.
///
/// Cuts drive the NPN rewriting engine: each cut of a node induces a local
/// function over its leaves that can be replaced by an optimal implementation
/// from the exact NPN database.

#pragma once

#include "logic/network.hpp"
#include "logic/truth_table.hpp"

#include <vector>

namespace bestagon::logic
{

/// A cut: set of leaves (sorted by node id) and the root function over them
/// (variable i of the function corresponds to leaves[i]).
struct Cut
{
    std::vector<LogicNetwork::NodeId> leaves;
    TruthTable function;
};

/// Enumerates up to \p cut_limit k-feasible cuts per node.
class CutEnumeration
{
  public:
    CutEnumeration(const LogicNetwork& network, unsigned k = 4, unsigned cut_limit = 12);

    [[nodiscard]] const std::vector<Cut>& cuts_of(LogicNetwork::NodeId node) const
    {
        return cuts_[node];
    }

  private:
    std::vector<std::vector<Cut>> cuts_;
};

/// Computes the function of \p root over the given \p leaves by simulating
/// the cone in between. All cone paths from \p root must terminate in leaves.
[[nodiscard]] TruthTable compute_cut_function(const LogicNetwork& network, LogicNetwork::NodeId root,
                                              const std::vector<LogicNetwork::NodeId>& leaves);

}  // namespace bestagon::logic
