#include "logic/rewriting.hpp"

#include "logic/cuts.hpp"
#include "logic/npn.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

namespace bestagon::logic
{

namespace
{

using NodeId = LogicNetwork::NodeId;

/// Copies \p impl (a single-PO network) into \p target, substituting
/// \p leaf_signals for the PIs. Returns the signal of the implementation root.
NodeId instantiate(LogicNetwork& target, const LogicNetwork& impl, const std::vector<NodeId>& leaf_signals)
{
    std::unordered_map<NodeId, NodeId> map;
    unsigned pi_index = 0;
    NodeId root = LogicNetwork::invalid_node;
    for (const auto id : impl.topological_order())
    {
        const auto& node = impl.node(id);
        switch (node.type)
        {
            case GateType::pi:
                assert(pi_index < leaf_signals.size());
                map[id] = leaf_signals[pi_index++];
                break;
            case GateType::const0: map[id] = target.create_const(false); break;
            case GateType::const1: map[id] = target.create_const(true); break;
            case GateType::po: root = map.at(node.fanin[0]); break;
            default:
            {
                std::vector<NodeId> fanins;
                for (unsigned i = 0; i < gate_arity(node.type); ++i)
                {
                    fanins.push_back(map.at(node.fanin[i]));
                }
                map[id] = target.create_gate(node.type, fanins);
            }
        }
    }
    assert(root != LogicNetwork::invalid_node);
    return root;
}

/// Rebuilds \p network, replacing the cone of \p root (over \p cut_leaves)
/// by \p impl. Other nodes are recreated as-is; dead cone nodes are swept.
LogicNetwork rebuild_with_replacement(const LogicNetwork& network, NodeId root,
                                      const std::vector<NodeId>& cut_leaves, const LogicNetwork& impl)
{
    LogicNetwork out;
    std::unordered_map<NodeId, NodeId> map;
    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        if (id == root)
        {
            std::vector<NodeId> leaf_signals;
            leaf_signals.reserve(cut_leaves.size());
            for (const auto l : cut_leaves)
            {
                leaf_signals.push_back(map.at(l));
            }
            map[id] = instantiate(out, impl, leaf_signals);
            continue;
        }
        switch (node.type)
        {
            case GateType::pi: map[id] = out.create_pi(node.name); break;
            case GateType::po: out.create_po(map.at(node.fanin[0]), node.name); break;
            case GateType::const0: map[id] = out.create_const(false); break;
            case GateType::const1: map[id] = out.create_const(true); break;
            case GateType::none: break;
            default:
            {
                std::vector<NodeId> fanins;
                for (unsigned i = 0; i < gate_arity(node.type); ++i)
                {
                    fanins.push_back(map.at(node.fanin[i]));
                }
                map[id] = out.create_gate(node.type, fanins);
            }
        }
    }
    return sweep(out);
}

}  // namespace

LogicNetwork sweep(const LogicNetwork& network)
{
    // mark reachable nodes from POs
    std::vector<bool> live(network.size(), false);
    std::vector<NodeId> stack(network.pos().begin(), network.pos().end());
    while (!stack.empty())
    {
        const auto id = stack.back();
        stack.pop_back();
        if (live[id])
        {
            continue;
        }
        live[id] = true;
        const auto& node = network.node(id);
        for (unsigned i = 0; i < gate_arity(node.type); ++i)
        {
            stack.push_back(node.fanin[i]);
        }
    }
    // PIs are always preserved to keep the interface stable
    LogicNetwork out;
    std::unordered_map<NodeId, NodeId> map;
    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        if (node.type == GateType::pi)
        {
            map[id] = out.create_pi(node.name);
            continue;
        }
        if (!live[id])
        {
            continue;
        }
        switch (node.type)
        {
            case GateType::po: out.create_po(map.at(node.fanin[0]), node.name); break;
            case GateType::const0: map[id] = out.create_const(false); break;
            case GateType::const1: map[id] = out.create_const(true); break;
            case GateType::none: break;
            default:
            {
                std::vector<NodeId> fanins;
                for (unsigned i = 0; i < gate_arity(node.type); ++i)
                {
                    fanins.push_back(map.at(node.fanin[i]));
                }
                map[id] = out.create_gate(node.type, fanins);
            }
        }
    }
    return out;
}

LogicNetwork strash(const LogicNetwork& network)
{
    LogicNetwork out;
    std::unordered_map<NodeId, NodeId> map;
    // key: (type, fanin0, fanin1, fanin2) -> node in `out`
    std::map<std::tuple<GateType, NodeId, NodeId, NodeId>, NodeId> hash;

    const auto is_const = [&](NodeId id, bool& value) {
        const auto t = out.type_of(id);
        if (t == GateType::const0)
        {
            value = false;
            return true;
        }
        if (t == GateType::const1)
        {
            value = true;
            return true;
        }
        return false;
    };

    std::function<NodeId(GateType, std::vector<NodeId>)> create = [&](GateType type,
                                                                      std::vector<NodeId> fanins) -> NodeId {
        // normalize commutative fanin order
        if (gate_arity(type) >= 2)
        {
            std::sort(fanins.begin(), fanins.end());
        }
        // constant folding & local simplifications
        bool v0 = false, v1 = false;
        const bool c0 = !fanins.empty() && is_const(fanins[0], v0);
        const bool c1 = fanins.size() > 1 && is_const(fanins[1], v1);
        switch (type)
        {
            case GateType::buf:
                return fanins[0];
            case GateType::inv:
                if (c0)
                {
                    return out.create_const(!v0);
                }
                if (out.type_of(fanins[0]) == GateType::inv)
                {
                    return out.node(fanins[0]).fanin[0];  // double inversion
                }
                break;
            case GateType::and2:
                if (c0)
                {
                    return v0 ? fanins[1] : out.create_const(false);
                }
                if (c1)
                {
                    return v1 ? fanins[0] : out.create_const(false);
                }
                if (fanins[0] == fanins[1])
                {
                    return fanins[0];
                }
                break;
            case GateType::or2:
                if (c0)
                {
                    return v0 ? out.create_const(true) : fanins[1];
                }
                if (c1)
                {
                    return v1 ? out.create_const(true) : fanins[0];
                }
                if (fanins[0] == fanins[1])
                {
                    return fanins[0];
                }
                break;
            case GateType::xor2:
                if (c0)
                {
                    return v0 ? create(GateType::inv, {fanins[1]}) : fanins[1];
                }
                if (c1)
                {
                    return v1 ? create(GateType::inv, {fanins[0]}) : fanins[0];
                }
                if (fanins[0] == fanins[1])
                {
                    return out.create_const(false);
                }
                break;
            default: break;
        }
        const auto key = std::make_tuple(type, !fanins.empty() ? fanins[0] : 0,
                                         fanins.size() > 1 ? fanins[1] : 0,
                                         fanins.size() > 2 ? fanins[2] : 0);
        if (const auto it = hash.find(key); it != hash.end())
        {
            return it->second;
        }
        const auto id = out.create_gate(type, fanins);
        hash.emplace(key, id);
        return id;
    };

    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        switch (node.type)
        {
            case GateType::pi: map[id] = out.create_pi(node.name); break;
            case GateType::po: out.create_po(map.at(node.fanin[0]), node.name); break;
            case GateType::const0: map[id] = out.create_const(false); break;
            case GateType::const1: map[id] = out.create_const(true); break;
            case GateType::none: break;
            default:
            {
                std::vector<NodeId> fanins;
                for (unsigned i = 0; i < gate_arity(node.type); ++i)
                {
                    fanins.push_back(map.at(node.fanin[i]));
                }
                map[id] = create(node.type, std::move(fanins));
            }
        }
    }
    return sweep(out);
}

LogicNetwork rewrite(const LogicNetwork& network, NpnDatabase& database, RewriteStats* stats)
{
    LogicNetwork current = strash(network);
    if (stats != nullptr)
    {
        stats->gates_before = network.num_gates();
        stats->replacements = 0;
        stats->passes = 0;
    }

    for (bool improved = true; improved;)
    {
        improved = false;
        if (stats != nullptr)
        {
            ++stats->passes;
        }
        const CutEnumeration cuts{current, 4, 12};
        const std::size_t base_size = current.num_gates();

        LogicNetwork best;
        std::size_t best_size = base_size;

        for (const auto id : current.topological_order())
        {
            if (gate_arity(current.type_of(id)) != 2)
            {
                continue;  // rewrite roots are two-input gates
            }
            for (const auto& cut : cuts.cuts_of(id))
            {
                if (cut.leaves.size() < 2 || (cut.leaves.size() == 1 && cut.leaves[0] == id))
                {
                    continue;
                }
                const auto canon = canonize_npn(cut.function);
                const auto* impl_canonical = database.lookup(canon.canonical);
                if (impl_canonical == nullptr)
                {
                    continue;
                }
                // adapt the canonical implementation to the actual function:
                // f = T(canonical): permute/complement leaves, complement output
                LogicNetwork adapted;
                std::vector<NodeId> pi_ids;
                for (unsigned i = 0; i < cut.function.num_vars(); ++i)
                {
                    pi_ids.push_back(adapted.create_pi());
                }
                // y_i = x_{perm[i]} ^ flip_i feeds canonical input i
                std::vector<NodeId> canon_inputs(cut.function.num_vars());
                for (unsigned i = 0; i < cut.function.num_vars(); ++i)
                {
                    NodeId sig = pi_ids[canon.transform.perm[i]];
                    if ((canon.transform.input_flips >> i) & 1U)
                    {
                        sig = adapted.create_not(sig);
                    }
                    canon_inputs[i] = sig;
                }
                NodeId root_sig = instantiate(adapted, *impl_canonical, canon_inputs);
                if (canon.transform.output_negated)
                {
                    root_sig = adapted.create_not(root_sig);
                }
                adapted.create_po(root_sig);

                auto candidate = strash(rebuild_with_replacement(current, id, cut.leaves, adapted));
                if (candidate.num_gates() < best_size)
                {
                    best_size = candidate.num_gates();
                    best = std::move(candidate);
                }
            }
        }

        if (best_size < base_size)
        {
            current = std::move(best);
            improved = true;
            if (stats != nullptr)
            {
                ++stats->replacements;
            }
        }
    }

    if (stats != nullptr)
    {
        stats->gates_after = current.num_gates();
    }
    return current;
}

}  // namespace bestagon::logic
