/// \file rewriting.hpp
/// \brief Cut-based logic rewriting with an exact NPN database (flow step 2),
///        plus structural hashing and dead-node sweeping.

#pragma once

#include "logic/exact_synthesis.hpp"
#include "logic/network.hpp"

namespace bestagon::logic
{

/// Removes nodes unreachable from the POs; preserves PI/PO order and names.
[[nodiscard]] LogicNetwork sweep(const LogicNetwork& network);

/// Structural hashing: deduplicates identical gates, folds constants,
/// collapses inverter pairs and buffers. Functionally equivalent rebuild.
[[nodiscard]] LogicNetwork strash(const LogicNetwork& network);

struct RewriteStats
{
    std::size_t gates_before{0};
    std::size_t gates_after{0};
    std::size_t replacements{0};
    std::size_t passes{0};
};

/// Cut-based rewriting: repeatedly replaces the cone of some node by an
/// optimal implementation from the exact NPN database while the total gate
/// count shrinks. Returns a functionally equivalent network.
[[nodiscard]] LogicNetwork rewrite(const LogicNetwork& network, NpnDatabase& database,
                                   RewriteStats* stats = nullptr);

}  // namespace bestagon::logic
