/// \file truth_table.hpp
/// \brief Dynamic truth tables for Boolean functions of up to 16 variables.
///
/// The bit at position t (minterm index) stores f(t) where bit i of t is the
/// value of variable i. This is the workhorse for cut functions, NPN
/// canonization, exact synthesis and functional verification.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bestagon::logic
{

/// A truth table over a fixed number of variables (0..16).
class TruthTable
{
  public:
    /// Constructs the constant-0 function over \p num_vars variables.
    explicit TruthTable(unsigned num_vars = 0);

    /// Constructs from a binary string, MSB first (bit for the highest
    /// minterm index comes first), e.g. "1000" is AND of 2 variables.
    static TruthTable from_binary(const std::string& bits);

    /// Constructs from a hex string, MSB first, for num_vars >= 2.
    static TruthTable from_hex(unsigned num_vars, const std::string& hex);

    /// Projection onto variable \p var.
    static TruthTable nth_var(unsigned num_vars, unsigned var, bool complemented = false);

    /// Constant function.
    static TruthTable constant(unsigned num_vars, bool value);

    [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
    [[nodiscard]] std::uint64_t num_bits() const noexcept { return 1ULL << num_vars_; }

    [[nodiscard]] bool get_bit(std::uint64_t index) const;
    void set_bit(std::uint64_t index, bool value);

    [[nodiscard]] std::uint64_t count_ones() const;
    [[nodiscard]] bool is_const0() const;
    [[nodiscard]] bool is_const1() const;

    /// True if the function equals projection onto some variable (possibly
    /// complemented); the variable index is written to \p var.
    [[nodiscard]] bool is_projection(unsigned& var, bool& complemented) const;

    /// True if the function functionally depends on variable \p var.
    [[nodiscard]] bool depends_on(unsigned var) const;

    // bitwise operations (operands must have equal num_vars)
    [[nodiscard]] TruthTable operator~() const;
    [[nodiscard]] TruthTable operator&(const TruthTable& other) const;
    [[nodiscard]] TruthTable operator|(const TruthTable& other) const;
    [[nodiscard]] TruthTable operator^(const TruthTable& other) const;
    bool operator==(const TruthTable& other) const;

    /// f with input variable \p var complemented.
    [[nodiscard]] TruthTable flip_var(unsigned var) const;

    /// f with variables permuted: result(x_0, ..) = f(x_{perm[0]}, ..).
    /// I.e. input i of the result reads original input perm[i].
    [[nodiscard]] TruthTable permute_vars(const std::vector<unsigned>& perm) const;

    /// Extends to a function of \p new_num_vars >= num_vars() variables that
    /// ignores the added (most significant) variables.
    [[nodiscard]] TruthTable extend_to(unsigned new_num_vars) const;

    /// Hexadecimal string representation, MSB first.
    [[nodiscard]] std::string to_hex() const;
    /// Binary string representation, MSB first.
    [[nodiscard]] std::string to_binary() const;

    /// Lexicographic comparison on the bit content (for canonization).
    [[nodiscard]] int compare(const TruthTable& other) const;

    [[nodiscard]] std::size_t hash() const;

    [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  private:
    void mask_off_excess();

    unsigned num_vars_;
    std::vector<std::uint64_t> words_;
};

struct TruthTableHash
{
    std::size_t operator()(const TruthTable& tt) const { return tt.hash(); }
};

}  // namespace bestagon::logic
