#include "logic/npn.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace bestagon::logic
{

TruthTable apply_npn_transform(const TruthTable& g, const NpnTransform& t)
{
    const unsigned n = g.num_vars();
    assert(t.perm.size() == n);
    TruthTable f{n};
    for (std::uint64_t x = 0; x < f.num_bits(); ++x)
    {
        // y_i = x_{perm[i]} ^ flip_i
        std::uint64_t y = 0;
        for (unsigned i = 0; i < n; ++i)
        {
            const bool xi = ((x >> t.perm[i]) & 1ULL) != 0;
            const bool flip = ((t.input_flips >> i) & 1U) != 0;
            if (xi != flip)
            {
                y |= 1ULL << i;
            }
        }
        f.set_bit(x, g.get_bit(y) != t.output_negated);
    }
    return f;
}

NpnCanonization canonize_npn(const TruthTable& f)
{
    const unsigned n = f.num_vars();
    if (n > 4)
    {
        throw std::invalid_argument{"canonize_npn: supports at most 4 variables"};
    }

    std::vector<unsigned> perm(n);
    std::iota(perm.begin(), perm.end(), 0U);

    bool first = true;
    TruthTable best{n};
    NpnTransform best_inverse{};  // transform applied to f to obtain best

    // enumerate candidate = transform(f) over all (perm, flips, out); keep min
    std::vector<unsigned> p = perm;
    do
    {
        for (unsigned flips = 0; flips < (1U << n); ++flips)
        {
            for (unsigned out = 0; out < 2; ++out)
            {
                NpnTransform t;
                t.perm = p;
                t.input_flips = flips;
                t.output_negated = out != 0;
                const auto candidate = apply_npn_transform(f, t);
                if (first || candidate.compare(best) < 0)
                {
                    first = false;
                    best = candidate;
                    best_inverse = t;
                }
            }
        }
    } while (std::next_permutation(p.begin(), p.end()));

    // We found T with best = T(f); we must return T' with f = T'(best).
    // For candidate(x) = f(y) ^ o with y_i = x_{perm[i]} ^ flip_i, the inverse
    // transform T' has perm'[perm[i]] = i, flip'_{perm[i]} = flip_i, out' = o.
    NpnTransform inverse;
    inverse.perm.resize(n);
    inverse.input_flips = 0;
    for (unsigned i = 0; i < n; ++i)
    {
        inverse.perm[best_inverse.perm[i]] = i;
        if ((best_inverse.input_flips >> i) & 1U)
        {
            inverse.input_flips |= 1U << best_inverse.perm[i];
        }
    }
    inverse.output_negated = best_inverse.output_negated;

    return NpnCanonization{best, inverse};
}

}  // namespace bestagon::logic
