#include "logic/tech_mapping.hpp"

#include "logic/rewriting.hpp"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace bestagon::logic
{

namespace
{

using NodeId = LogicNetwork::NodeId;

/// Generic rebuild where each gate is re-created through a callback.
template <typename CreateGate>
LogicNetwork rebuild(const LogicNetwork& network, CreateGate&& create_gate)
{
    LogicNetwork out;
    std::unordered_map<NodeId, NodeId> map;
    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        switch (node.type)
        {
            case GateType::pi: map[id] = out.create_pi(node.name); break;
            case GateType::po: out.create_po(map.at(node.fanin[0]), node.name); break;
            case GateType::const0: map[id] = out.create_const(false); break;
            case GateType::const1: map[id] = out.create_const(true); break;
            case GateType::none: break;
            default:
            {
                std::vector<NodeId> fanins;
                for (unsigned i = 0; i < gate_arity(node.type); ++i)
                {
                    fanins.push_back(map.at(node.fanin[i]));
                }
                map[id] = create_gate(out, node.type, fanins);
            }
        }
    }
    return out;
}

}  // namespace

LogicNetwork to_xag(const LogicNetwork& network)
{
    auto result = rebuild(network, [](LogicNetwork& out, GateType type, const std::vector<NodeId>& in) -> NodeId {
        switch (type)
        {
            case GateType::buf:
            case GateType::inv:
            case GateType::and2:
            case GateType::xor2:
            case GateType::fanout: return out.create_gate(type == GateType::fanout ? GateType::buf : type, in);
            case GateType::or2:
                return out.create_not(out.create_and(out.create_not(in[0]), out.create_not(in[1])));
            case GateType::nand2: return out.create_not(out.create_and(in[0], in[1]));
            case GateType::nor2:
                return out.create_and(out.create_not(in[0]), out.create_not(in[1]));
            case GateType::xnor2: return out.create_not(out.create_xor(in[0], in[1]));
            case GateType::maj3:
            {
                // maj(a,b,c) = ((a ^ b) & (a ^ c)) ^ a
                const auto ab = out.create_xor(in[0], in[1]);
                const auto ac = out.create_xor(in[0], in[2]);
                return out.create_xor(out.create_and(ab, ac), in[0]);
            }
            default: return out.create_gate(type, in);
        }
    });
    return strash(result);
}

LogicNetwork to_aig(const LogicNetwork& network)
{
    const auto xag = to_xag(network);
    auto result = rebuild(xag, [](LogicNetwork& out, GateType type, const std::vector<NodeId>& in) -> NodeId {
        if (type == GateType::xor2)
        {
            // a ^ b = ~(~(a & ~b) & ~(~a & b))
            const auto l = out.create_not(out.create_and(in[0], out.create_not(in[1])));
            const auto r = out.create_not(out.create_and(out.create_not(in[0]), in[1]));
            return out.create_not(out.create_and(l, r));
        }
        return out.create_gate(type, in);
    });
    return strash(result);
}

LogicNetwork fold_inverters(const LogicNetwork& network, MappingStats* stats)
{
    const auto fanouts = network.fanout_counts();

    // complementary gate of a two-input gate
    const auto complement_of = [](GateType t) -> GateType {
        switch (t)
        {
            case GateType::and2: return GateType::nand2;
            case GateType::nand2: return GateType::and2;
            case GateType::or2: return GateType::nor2;
            case GateType::nor2: return GateType::or2;
            case GateType::xor2: return GateType::xnor2;
            case GateType::xnor2: return GateType::xor2;
            default: return GateType::none;
        }
    };

    LogicNetwork out;
    std::unordered_map<NodeId, NodeId> map;
    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        switch (node.type)
        {
            case GateType::pi: map[id] = out.create_pi(node.name); break;
            case GateType::po: out.create_po(map.at(node.fanin[0]), node.name); break;
            case GateType::const0: map[id] = out.create_const(false); break;
            case GateType::const1: map[id] = out.create_const(true); break;
            case GateType::none: break;
            case GateType::inv:
            {
                // INV(g(a,b)) -> complementary gate if g has no other consumer
                const auto fi = node.fanin[0];
                const auto comp = complement_of(network.type_of(fi));
                if (comp != GateType::none && fanouts[fi] == 1)
                {
                    const auto& g = network.node(fi);
                    map[id] = out.create_gate(comp, {map.at(g.fanin[0]), map.at(g.fanin[1])});
                    // also register a mapping for the (now unused) inner gate
                    if (stats != nullptr)
                    {
                        ++stats->inverters_folded;
                    }
                }
                else
                {
                    map[id] = out.create_not(map.at(fi));
                }
                break;
            }
            case GateType::and2:
            case GateType::or2:
            case GateType::xor2:
            case GateType::xnor2:
            case GateType::nand2:
            case GateType::nor2:
            {
                const auto a = node.fanin[0];
                const auto b = node.fanin[1];
                const bool a_inv = network.type_of(a) == GateType::inv && fanouts[a] == 1;
                const bool b_inv = network.type_of(b) == GateType::inv && fanouts[b] == 1;
                GateType type = node.type;
                NodeId na = a, nb = b;
                if ((node.type == GateType::and2 || node.type == GateType::nand2) && a_inv && b_inv)
                {
                    // AND(~a,~b) = NOR(a,b); NAND(~a,~b) = OR(a,b)
                    type = node.type == GateType::and2 ? GateType::nor2 : GateType::or2;
                    na = network.node(a).fanin[0];
                    nb = network.node(b).fanin[0];
                    if (stats != nullptr)
                    {
                        stats->inverters_folded += 2;
                    }
                }
                else if ((node.type == GateType::or2 || node.type == GateType::nor2) && a_inv && b_inv)
                {
                    // OR(~a,~b) = NAND(a,b); NOR(~a,~b) = AND(a,b)
                    type = node.type == GateType::or2 ? GateType::nand2 : GateType::and2;
                    na = network.node(a).fanin[0];
                    nb = network.node(b).fanin[0];
                    if (stats != nullptr)
                    {
                        stats->inverters_folded += 2;
                    }
                }
                else if (node.type == GateType::xor2 || node.type == GateType::xnor2)
                {
                    // each complemented input toggles XOR <-> XNOR
                    if (a_inv)
                    {
                        type = complement_of(type);
                        na = network.node(a).fanin[0];
                        if (stats != nullptr)
                        {
                            ++stats->inverters_folded;
                        }
                    }
                    if (b_inv)
                    {
                        type = complement_of(type);
                        nb = network.node(b).fanin[0];
                        if (stats != nullptr)
                        {
                            ++stats->inverters_folded;
                        }
                    }
                }
                map[id] = out.create_gate(type, {map.at(na), map.at(nb)});
                break;
            }
            default:
            {
                std::vector<NodeId> fanins;
                for (unsigned i = 0; i < gate_arity(node.type); ++i)
                {
                    fanins.push_back(map.at(node.fanin[i]));
                }
                map[id] = out.create_gate(node.type, fanins);
            }
        }
    }
    return sweep(out);
}

namespace
{

/// Expands one signal into \p count usable references via a balanced tree of
/// explicit fan-out nodes; appends the resulting signals to \p result.
void expand_fanout(LogicNetwork& out, NodeId signal, unsigned count, std::vector<NodeId>& result,
                   MappingStats* stats)
{
    if (count == 1)
    {
        result.push_back(signal);
        return;
    }
    const auto fo = out.create_fanout(signal);
    if (stats != nullptr)
    {
        ++stats->fanouts_inserted;
    }
    const unsigned left = (count + 1) / 2;
    const unsigned right = count - left;
    expand_fanout(out, fo, left, result, stats);
    expand_fanout(out, fo, right, result, stats);
}

}  // namespace

LogicNetwork fanout_substitution(const LogicNetwork& network, MappingStats* stats)
{
    const auto fanouts = network.fanout_counts();

    LogicNetwork out;
    // per old node: queue of replacement signals, consumed one per use
    std::unordered_map<NodeId, std::vector<NodeId>> available;

    const auto take = [&](NodeId old) -> NodeId {
        auto& sigs = available.at(old);
        assert(!sigs.empty());
        const auto s = sigs.back();
        sigs.pop_back();
        return s;
    };

    for (const auto id : network.topological_order())
    {
        const auto& node = network.node(id);
        NodeId created = LogicNetwork::invalid_node;
        switch (node.type)
        {
            case GateType::pi: created = out.create_pi(node.name); break;
            case GateType::po: out.create_po(take(node.fanin[0]), node.name); continue;
            case GateType::const0: created = out.create_const(false); break;
            case GateType::const1: created = out.create_const(true); break;
            case GateType::none: continue;
            default:
            {
                std::vector<NodeId> fanins;
                for (unsigned i = 0; i < gate_arity(node.type); ++i)
                {
                    fanins.push_back(take(node.fanin[i]));
                }
                created = out.create_gate(node.type, fanins);
            }
        }
        const unsigned uses = std::max(1U, fanouts[id]);
        std::vector<NodeId> sigs;
        if (node.type == GateType::fanout)
        {
            // existing fanout nodes already provide two slots
            sigs.assign(std::min(uses, 2U), created);
            if (uses > 2)
            {
                sigs.clear();
                expand_fanout(out, created, uses, sigs, stats);
            }
        }
        else
        {
            expand_fanout(out, created, uses, sigs, stats);
        }
        available[id] = std::move(sigs);
    }
    return out;
}

LogicNetwork map_to_bestagon(const LogicNetwork& network, MappingStats* stats)
{
    const auto folded = fold_inverters(strash(network), stats);
    return fanout_substitution(folded, stats);
}

}  // namespace bestagon::logic
