#include "core/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace bestagon::core
{

namespace
{

thread_local bool tls_inside_worker = false;

/// Shared state of one `run` call: an atomic work counter plus completion
/// bookkeeping for the helper tasks enqueued on the pool.
struct ParallelJob
{
    std::atomic<std::size_t> next{0};
    std::size_t count{0};
    const std::function<void(std::size_t)>* body{nullptr};

    Mutex mutex;
    std::condition_variable done;
    std::size_t pending GUARDED_BY(mutex){0};  ///< helper tasks still running
    std::exception_ptr error GUARDED_BY(mutex);

    void work() noexcept
    {
        for (;;)
        {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
            {
                return;
            }
            try
            {
                (*body)(i);
            }
            catch (...)
            {
                const MutexLock lock{mutex};
                if (!error)
                {
                    error = std::current_exception();
                }
            }
        }
    }
};

}  // namespace

unsigned resolve_thread_count(unsigned requested) noexcept
{
    if (requested == 0)
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1U : hw;
    }
    return std::min(requested, 256U);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept
{
    // splitmix64 finalizer over base + (index+1) * golden gamma
    std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

ThreadPool::ThreadPool(unsigned num_threads)
{
    const unsigned n = resolve_thread_count(num_threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
    {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        const MutexLock lock{mutex_};
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_)
    {
        w.join();
    }
}

void ThreadPool::worker_loop()
{
    tls_inside_worker = true;
    for (;;)
    {
        std::function<void()> task;
        {
            MutexLock lock{mutex_};
            // explicit wait loop (not the predicate overload) so the
            // thread-safety analysis sees stop_/queue_ accessed with the
            // capability held; the wait releases and reacquires the mutex
            while (!stop_ && queue_.empty())
            {
                wake_.wait(lock.native());
            }
            if (queue_.empty())
            {
                return;  // stop requested and queue drained
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void ThreadPool::enqueue(std::function<void()> task)
{
    {
        const MutexLock lock{mutex_};
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void ThreadPool::run(std::size_t count, const std::function<void(std::size_t)>& body,
                     unsigned max_workers)
{
    const std::size_t workers =
        std::min({static_cast<std::size_t>(std::max(1U, max_workers)), count, size() + 1});

    auto job = std::make_shared<ParallelJob>();
    job->count = count;
    job->body = &body;

    const std::size_t helpers = workers - 1;
    {
        // no helper exists yet, but the analysis (rightly) has no way to
        // know that — take the uncontended lock for the initial store
        const MutexLock lock{job->mutex};
        job->pending = helpers;
    }
    for (std::size_t h = 0; h < helpers; ++h)
    {
        enqueue([job] {
            job->work();
            {
                const MutexLock lock{job->mutex};
                --job->pending;
            }
            job->done.notify_one();
        });
    }

    job->work();  // the calling thread participates

    MutexLock lock{job->mutex};
    while (job->pending != 0)
    {
        job->done.wait(lock.native());
    }
    if (job->error)
    {
        std::rethrow_exception(job->error);
    }
}

ThreadPool& ThreadPool::shared()
{
    static ThreadPool pool{std::max(4U, resolve_thread_count(0))};
    return pool;
}

bool ThreadPool::inside_worker() noexcept
{
    return tls_inside_worker;
}

void parallel_for(unsigned num_threads, std::size_t count,
                  const std::function<void(std::size_t)>& body)
{
    if (count == 0)
    {
        return;
    }
    const unsigned resolved = resolve_thread_count(num_threads);
    if (resolved <= 1 || count == 1 || ThreadPool::inside_worker())
    {
        for (std::size_t i = 0; i < count; ++i)
        {
            body(i);
        }
        return;
    }
    ThreadPool::shared().run(count, body, resolved);
}

void parallel_for(unsigned num_threads, std::size_t count, const RunBudget& run,
                  const std::function<void(std::size_t)>& body)
{
    if (!run.limited())
    {
        // unlimited budgets take the exact same code path as the plain
        // overload — no per-item polling, bit-identical scheduling
        parallel_for(num_threads, count, body);
        return;
    }
    const std::function<void(std::size_t)> guarded = [&run, &body](std::size_t i) {
        if (run.stopped())
        {
            return;  // drain remaining indices without running their bodies
        }
        body(i);
    };
    parallel_for(num_threads, count, guarded);
}

}  // namespace bestagon::core
