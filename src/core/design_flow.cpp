#include "core/design_flow.hpp"

#include "core/thread_pool.hpp"
#include "io/bench_reader.hpp"
#include "io/verilog.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <numeric>
#include <utility>

namespace bestagon::core
{

namespace
{

[[nodiscard]] std::int64_t now_ms()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
}

/// Status of a stage that was cut by the run budget: the token takes
/// precedence (an explicit cancellation is more specific than a deadline).
[[nodiscard]] StageStatus cut_status(const RunBudget& run)
{
    return run.token.stop_requested() ? StageStatus::cancelled : StageStatus::timed_out;
}

/// Appends one stage report; wall_ms is measured from \p start.
void report(FlowDiagnostics& diag, std::string stage, StageStatus status, std::int64_t start,
            std::string detail = {}, unsigned retries = 0)
{
    StageReport r;
    r.stage = std::move(stage);
    r.status = status;
    r.wall_ms = now_ms() - start;
    r.retries = retries;
    r.detail = std::move(detail);
    diag.stages.push_back(std::move(r));
}

/// The staged flow body. Each stage is individually guarded: an exception
/// marks the stage `failed` and ends the run; a tripped run budget marks it
/// `cancelled`/`timed_out` and lets the cheap artifact stages still run, so
/// a cut run keeps every partial result produced so far.
void run_flow_stages(const logic::LogicNetwork& specification, const FlowOptions& options,
                     const RunBudget& run, FlowResult& result)
{
    auto& diag = result.diagnostics;

    // (1) specification as XAG — bounded, structural
    {
        const auto start = now_ms();
        try
        {
            result.xag = logic::to_xag(specification);
            report(diag, "to_xag", StageStatus::completed, start);
        }
        catch (const std::exception& e)
        {
            report(diag, "to_xag", StageStatus::failed, start, e.what());
            return;
        }
    }

    // (2) cut rewriting with the exact NPN database
    {
        const auto start = now_ms();
        try
        {
            if (options.rewrite)
            {
                logic::NpnDatabase database;
                result.rewritten = logic::rewrite(result.xag, database);
                report(diag, "rewrite", StageStatus::completed, start);
            }
            else
            {
                result.rewritten = result.xag;
                report(diag, "rewrite", StageStatus::skipped, start, "disabled");
            }
        }
        catch (const std::exception& e)
        {
            report(diag, "rewrite", StageStatus::failed, start, e.what());
            return;
        }
    }

    // (3) technology mapping onto the Bestagon gate set
    {
        const auto start = now_ms();
        try
        {
            result.mapped = logic::map_to_bestagon(result.rewritten);
            report(diag, "tech_mapping", StageStatus::completed, start);
        }
        catch (const std::exception& e)
        {
            report(diag, "tech_mapping", StageStatus::failed, start, e.what());
            return;
        }
    }

    // (4) physical design, with the degradation ladder:
    //     exact engine cut by budget/deadline -> scalable fallback (degraded);
    //     cut by cancellation -> stop (no fallback: the user wants out)
    {
        const auto start = now_ms();
        try
        {
            const auto run_scalable = [&]() {
                return layout::scalable_physical_design(result.mapped, RunBudget{run.token, {}},
                                                        &result.scalable_stats);
            };
            switch (options.engine)
            {
                case PhysicalDesignEngine::exact:
                case PhysicalDesignEngine::exact_with_fallback:
                {
                    auto exact_opts = options.exact_options;
                    exact_opts.run.token = run.token;
                    exact_opts.run.deadline =
                        Deadline::sooner(exact_opts.run.deadline, run.deadline);
                    result.layout =
                        layout::exact_physical_design(result.mapped, exact_opts, &result.pd_stats);
                    result.engine_used = "exact";
                    if (result.layout.has_value())
                    {
                        report(diag, "physical_design", StageStatus::completed, start, "exact");
                        break;
                    }
                    if (result.pd_stats.cancelled)
                    {
                        report(diag, "physical_design", StageStatus::cancelled, start,
                               "exact engine cancelled");
                        break;
                    }
                    if (options.engine == PhysicalDesignEngine::exact)
                    {
                        report(diag, "physical_design",
                               result.pd_stats.budget_exhausted ? StageStatus::timed_out
                                                                : StageStatus::completed,
                               start,
                               result.pd_stats.message.empty() ? "exact engine found no layout"
                                                               : result.pd_stats.message);
                        break;
                    }
                    // fallback: the deadline that cut the exact engine must
                    // not also cut the (fast, constructive) fallback — only
                    // the cancellation token still applies
                    result.layout = run_scalable();
                    result.engine_used = "scalable";
                    if (result.layout.has_value())
                    {
                        report(diag, "physical_design", StageStatus::degraded, start,
                               result.pd_stats.budget_exhausted
                                   ? "exact budget exhausted; scalable fallback"
                                   : "exact engine declined; scalable fallback");
                    }
                    else if (result.scalable_stats.cancelled)
                    {
                        report(diag, "physical_design", StageStatus::cancelled, start,
                               "scalable fallback cancelled");
                    }
                    else
                    {
                        report(diag, "physical_design", StageStatus::failed, start,
                               result.scalable_stats.message.empty()
                                   ? "both engines found no layout"
                                   : result.scalable_stats.message);
                    }
                    break;
                }
                case PhysicalDesignEngine::scalable:
                {
                    result.layout = run_scalable();
                    result.engine_used = "scalable";
                    if (result.layout.has_value())
                    {
                        report(diag, "physical_design", StageStatus::completed, start, "scalable");
                    }
                    else if (result.scalable_stats.cancelled)
                    {
                        report(diag, "physical_design", StageStatus::cancelled, start,
                               "scalable engine cancelled");
                    }
                    else
                    {
                        report(diag, "physical_design", StageStatus::failed, start,
                               result.scalable_stats.message);
                    }
                    break;
                }
            }
        }
        catch (const std::exception& e)
        {
            report(diag, "physical_design", StageStatus::failed, start, e.what());
            return;
        }
    }
    if (!result.layout.has_value())
    {
        return;
    }

    // (5) formal equivalence checking specification <-> layout; a cut check
    // degrades to `unknown` and the flow still emits the remaining artifacts
    {
        const auto start = now_ms();
        const auto eq_run = run.clipped_ms(options.equivalence_budget_ms);
        try
        {
            result.equivalence =
                layout::check_layout_equivalence(result.mapped, *result.layout, nullptr, eq_run);
            if (result.equivalence == layout::EquivalenceResult::unknown && eq_run.stopped())
            {
                report(diag, "equivalence", cut_status(eq_run), start,
                       "check cut short; result is unknown");
            }
            else
            {
                report(diag, "equivalence", StageStatus::completed, start,
                       result.equivalence == layout::EquivalenceResult::equivalent
                           ? "equivalent"
                           : (result.equivalence == layout::EquivalenceResult::not_equivalent
                                  ? "NOT equivalent"
                                  : "unknown"));
            }
        }
        catch (const std::exception& e)
        {
            report(diag, "equivalence", StageStatus::failed, start, e.what());
            return;
        }
    }

    // (6) super-tile merging, design rules, (7) library application: cheap,
    // bounded artifact stages — they run even after a deadline cut so that a
    // degraded run still yields usable outputs
    {
        const auto start = now_ms();
        try
        {
            result.supertiles = layout::make_supertiles(*result.layout, options.supertile_expansion);
            report(diag, "supertiles", StageStatus::completed, start);
        }
        catch (const std::exception& e)
        {
            report(diag, "supertiles", StageStatus::failed, start, e.what());
            return;
        }
    }
    {
        const auto start = now_ms();
        try
        {
            result.drc = layout::check_design_rules(*result.supertiles);
            report(diag, "drc", StageStatus::completed, start,
                   result.drc.clean() ? "clean" : "violations found");
        }
        catch (const std::exception& e)
        {
            report(diag, "drc", StageStatus::failed, start, e.what());
            return;
        }
    }
    {
        const auto start = now_ms();
        try
        {
            result.sidb = layout::apply_gate_library(*result.layout, &result.apply_stats);
            report(diag, "apply_library", StageStatus::completed, start);
        }
        catch (const std::exception& e)
        {
            report(diag, "apply_library", StageStatus::failed, start, e.what());
            return;
        }
    }

    // (7b) ground-state re-validation of the distinct tiles in use; the
    // checks are independent physical simulations and fan out in parallel.
    // Skipped-with-record when the run is already out of budget.
    if (options.validate_gates)
    {
        const auto start = now_ms();
        if (run.stopped())
        {
            report(diag, "gate_validation", StageStatus::skipped, start,
                   run.token.stop_requested() ? "skipped: run cancelled"
                                              : "skipped: deadline exhausted");
            return;
        }
        const auto val_run = run.clipped_ms(options.validation_budget_ms);
        try
        {
            const auto& used = result.apply_stats.implementations_used;
            result.gate_validation.resize(used.size());
            parallel_for(options.sim_params.num_threads, used.size(), val_run, [&](std::size_t i) {
                GateValidation& v = result.gate_validation[i];
                v.name = used[i]->design.name;
                auto params = options.sim_params;
                auto check = phys::check_operational(used[i]->design, params,
                                                     options.validation_engine, val_run);
                // stochastic engine: bounded retries with a deterministically
                // rotated seed before declaring the tile non-operational
                while (!check.operational && !check.cancelled &&
                       phys::stochastic_engine(phys::resolve_engine(options.validation_engine,
                                                                    options.sim_params)) &&
                       v.retries < options.validation_retries && !val_run.stopped())
                {
                    ++v.retries;
                    params.anneal_seed =
                        derive_seed(options.sim_params.anneal_seed, v.retries);
                    check = phys::check_operational(used[i]->design, params,
                                                    options.validation_engine, val_run);
                }
                v.operational = check.operational;
                v.patterns_correct = check.patterns_correct;
                v.patterns_total = check.patterns_total;
                v.evaluated = !check.cancelled;
            });
            unsigned retries = 0;
            bool all_evaluated = true;
            for (const auto& v : result.gate_validation)
            {
                retries += v.retries;
                all_evaluated = all_evaluated && v.evaluated;
            }
            if (val_run.stopped() || !all_evaluated)
            {
                report(diag, "gate_validation", cut_status(val_run), start,
                       "validation cut short; unevaluated tiles are recorded", retries);
            }
            else
            {
                report(diag, "gate_validation", StageStatus::completed, start, {}, retries);
            }
        }
        catch (const std::exception& e)
        {
            report(diag, "gate_validation", StageStatus::failed, start, e.what());
            return;
        }
    }
}

}  // namespace

FlowResult run_design_flow(const logic::LogicNetwork& specification, const FlowOptions& options)
{
    FlowResult result;
    const RunBudget run{options.stop, Deadline::in_ms(options.deadline_ms)};
    run_flow_stages(specification, options, run, result);
    return result;
}

FlowResult run_design_flow_verilog(const std::string& verilog, const FlowOptions& options)
{
    const auto start = now_ms();
    logic::LogicNetwork network;
    try
    {
        network = io::read_verilog_string(verilog);
    }
    catch (const std::exception& e)
    {
        FlowResult result;
        report(result.diagnostics, "parse", StageStatus::failed, start,
               std::string{"verilog: "} + e.what());
        return result;
    }
    const auto parse_ms = now_ms() - start;
    auto result = run_design_flow(network, options);
    StageReport parse;
    parse.stage = "parse";
    parse.status = StageStatus::completed;
    parse.wall_ms = parse_ms;
    result.diagnostics.stages.insert(result.diagnostics.stages.begin(), std::move(parse));
    return result;
}

FlowResult run_design_flow_bench(const std::string& bench, const FlowOptions& options)
{
    const auto start = now_ms();
    logic::LogicNetwork network;
    try
    {
        network = io::read_bench_string(bench);
    }
    catch (const std::exception& e)
    {
        FlowResult result;
        report(result.diagnostics, "parse", StageStatus::failed, start,
               std::string{"bench: "} + e.what());
        return result;
    }
    const auto parse_ms = now_ms() - start;
    auto result = run_design_flow(network, options);
    StageReport parse;
    parse.stage = "parse";
    parse.status = StageStatus::completed;
    parse.wall_ms = parse_ms;
    result.diagnostics.stages.insert(result.diagnostics.stages.begin(), std::move(parse));
    return result;
}

}  // namespace bestagon::core
