#include "core/design_flow.hpp"

#include "core/thread_pool.hpp"
#include "io/verilog.hpp"
#include "layout/scalable_physical_design.hpp"
#include "logic/rewriting.hpp"
#include "logic/tech_mapping.hpp"
#include "phys/operational.hpp"

namespace bestagon::core
{

FlowResult run_design_flow(const logic::LogicNetwork& specification, const FlowOptions& options)
{
    FlowResult result;

    // (1) specification as XAG
    result.xag = logic::to_xag(specification);

    // (2) cut rewriting with the exact NPN database
    if (options.rewrite)
    {
        logic::NpnDatabase database;
        result.rewritten = logic::rewrite(result.xag, database);
    }
    else
    {
        result.rewritten = result.xag;
    }

    // (3) technology mapping onto the Bestagon gate set
    result.mapped = logic::map_to_bestagon(result.rewritten);

    // (4) physical design
    switch (options.engine)
    {
        case PhysicalDesignEngine::exact:
            result.layout = layout::exact_physical_design(result.mapped, options.exact_options,
                                                          &result.pd_stats);
            result.engine_used = "exact";
            break;
        case PhysicalDesignEngine::scalable:
            result.layout = layout::scalable_physical_design(result.mapped);
            result.engine_used = "scalable";
            break;
        case PhysicalDesignEngine::exact_with_fallback:
            result.layout = layout::exact_physical_design(result.mapped, options.exact_options,
                                                          &result.pd_stats);
            result.engine_used = "exact";
            if (!result.layout.has_value())
            {
                result.layout = layout::scalable_physical_design(result.mapped);
                result.engine_used = "scalable";
            }
            break;
    }
    if (!result.layout.has_value())
    {
        return result;
    }

    // (5) formal equivalence checking specification <-> layout
    result.equivalence = layout::check_layout_equivalence(result.mapped, *result.layout);

    // (6) super-tile merging by clock-zone expansion
    result.supertiles = layout::make_supertiles(*result.layout, options.supertile_expansion);

    // design rules on the final clocked layout
    result.drc = layout::check_design_rules(*result.supertiles);

    // (7) Bestagon library application -> dot-accurate SiDB layout
    result.sidb = layout::apply_gate_library(*result.layout, &result.apply_stats);

    // (7b) ground-state re-validation of the distinct tiles in use; the
    // checks are independent physical simulations and fan out in parallel
    if (options.validate_gates)
    {
        const auto& used = result.apply_stats.implementations_used;
        result.gate_validation.resize(used.size());
        parallel_for(options.sim_params.num_threads, used.size(), [&](std::size_t i) {
            const auto check =
                phys::check_operational(used[i]->design, options.sim_params, phys::Engine::exhaustive);
            GateValidation& v = result.gate_validation[i];
            v.name = used[i]->design.name;
            v.operational = check.operational;
            v.patterns_correct = check.patterns_correct;
            v.patterns_total = check.patterns_total;
        });
    }

    return result;
}

FlowResult run_design_flow_verilog(const std::string& verilog, const FlowOptions& options)
{
    return run_design_flow(io::read_verilog_string(verilog), options);
}

}  // namespace bestagon::core
