#include "core/run_control.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace bestagon::core
{

const char* to_string(StageStatus status) noexcept
{
    switch (status)
    {
        case StageStatus::completed: return "completed";
        case StageStatus::degraded: return "degraded";
        case StageStatus::timed_out: return "timed_out";
        case StageStatus::cancelled: return "cancelled";
        case StageStatus::failed: return "failed";
        case StageStatus::skipped: return "skipped";
    }
    return "unknown";
}

const StageReport* FlowDiagnostics::find(std::string_view name) const noexcept
{
    for (const auto& s : stages)
    {
        if (s.stage == name)
        {
            return &s;
        }
    }
    return nullptr;
}

bool FlowDiagnostics::all_completed() const noexcept
{
    for (const auto& s : stages)
    {
        if (s.status != StageStatus::completed)
        {
            return false;
        }
    }
    return true;
}

const StageReport* FlowDiagnostics::first_cut() const noexcept
{
    for (const auto& s : stages)
    {
        if (s.status == StageStatus::timed_out || s.status == StageStatus::cancelled ||
            s.status == StageStatus::failed)
        {
            return &s;
        }
    }
    return nullptr;
}

bool FlowDiagnostics::interrupted() const noexcept
{
    for (const auto& s : stages)
    {
        if (s.status == StageStatus::timed_out || s.status == StageStatus::cancelled)
        {
            return true;
        }
    }
    return false;
}

std::string FlowDiagnostics::table() const
{
    // fixed-width columns: stage | status | wall ms | retries | detail
    std::size_t name_w = 5;  // "stage"
    for (const auto& s : stages)
    {
        name_w = std::max(name_w, s.stage.size());
    }
    std::ostringstream out;
    char line[64];
    out << "stage";
    out << std::string(name_w - 5, ' ') << "  status     wall_ms  retries  detail\n";
    for (const auto& s : stages)
    {
        out << s.stage << std::string(name_w - s.stage.size(), ' ');
        std::snprintf(line, sizeof line, "  %-9s %8lld  %7u  ", to_string(s.status),
                      static_cast<long long>(s.wall_ms), s.retries);
        out << line << s.detail << '\n';
    }
    return out.str();
}

// ---------------------------------------------------------------------------
// SIGINT handling
// ---------------------------------------------------------------------------

namespace
{

// The handler may only touch lock-free atomics; the flag is the raw state
// behind the process-wide StopSource (kept alive for the process lifetime).
std::atomic<bool>* sigint_flag{nullptr};
std::atomic<int> sigint_count{0};

extern "C" void sigint_handler(int)
{
    const int n = sigint_count.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n >= 2)
    {
        // second Ctrl-C: the user wants out *now*
        std::_Exit(130);
    }
    if (sigint_flag != nullptr)
    {
        sigint_flag->store(true, std::memory_order_relaxed);
    }
}

StopSource& sigint_source()
{
    static StopSource source;  // intentionally leaked into process lifetime
    return source;
}

}  // namespace

StopToken install_sigint_stop()
{
    auto& source = sigint_source();
    if (sigint_flag == nullptr)
    {
        // hand the handler the raw atomic behind the process-wide source
        // (static storage, alive forever) so it never touches a shared_ptr
        sigint_flag = source.state_.get();
        // installed once from the CLI driver before any worker starts; the
        // handler itself only touches a lock-free atomic (async-signal-safe
        // by construction)
        // NOLINTNEXTLINE(concurrency-mt-unsafe)
        std::signal(SIGINT, sigint_handler);
    }
    return source.token();
}

bool sigint_received() noexcept
{
    return sigint_count.load(std::memory_order_relaxed) > 0;
}

}  // namespace bestagon::core
