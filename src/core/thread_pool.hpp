/// \file thread_pool.hpp
/// \brief Reusable thread pool and deterministic parallel-for for the
///        physical-simulation layer.
///
/// The simulation stack fans out over *independent* ground-state searches at
/// four points (input patterns, operational-domain grid points, candidate
/// canvases, annealing instances). All of them funnel through
/// `parallel_for`, which dispatches index-addressed work onto a shared
/// lazily-created pool. Determinism rules:
///
///  - Work items are addressed by index; callers write results into
///    preallocated slots, so scheduling order never reorders outputs.
///  - Randomized work derives its RNG stream from `derive_seed(base, index)`
///    rather than sharing a sequential generator, so results are
///    bit-identical regardless of thread count.
///  - `num_threads == 1` executes inline on the calling thread (no pool
///    involvement at all), and `num_threads == 0` resolves to the hardware
///    concurrency.
///  - Nested `parallel_for` calls issued from inside a pool worker run
///    inline, which both avoids deadlock (workers never block on the queue
///    they drain) and caps the total worker count at the pool size.

#pragma once

#include "core/run_control.hpp"
#include "core/thread_annotations.hpp"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

namespace bestagon::core
{

/// Resolves a user-facing thread-count knob: 0 = hardware concurrency
/// (at least 1); explicit requests are honored up to a sanity cap of 256 so
/// tests may oversubscribe a small machine.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

/// Deterministically derives an independent 64-bit seed for work item
/// \p index from \p base (splitmix64 finalizer). Streams for distinct
/// indices are statistically independent, and the mapping depends only on
/// (base, index) — never on thread count or scheduling.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

/// A fixed-size pool of worker threads draining a shared task queue.
/// Tasks are plain `void()` closures; `parallel_for` (below) is the
/// intended entry point for simulation code.
class ThreadPool
{
  public:
    /// Spawns \p num_threads workers (resolved via resolve_thread_count).
    explicit ThreadPool(unsigned num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads owned by the pool.
    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Runs `body(0) ... body(count-1)` cooperatively: up to
    /// \p max_workers - 1 pool workers plus the calling thread pull indices
    /// from a shared atomic counter (dynamic load balancing). Blocks until
    /// every index has been processed; the first exception thrown by any
    /// \p body invocation is rethrown on the calling thread.
    void run(std::size_t count, const std::function<void(std::size_t)>& body, unsigned max_workers);

    /// The process-wide pool used by `parallel_for`; created on first use,
    /// sized for the hardware (minimum 4 workers so determinism and race
    /// tests exercise real concurrency even on small machines).
    static ThreadPool& shared();

    /// True iff the calling thread is a pool worker (used to run nested
    /// parallel sections inline).
    [[nodiscard]] static bool inside_worker() noexcept;

  private:
    void worker_loop();
    void enqueue(std::function<void()> task) EXCLUDES(mutex_);

    std::vector<std::thread> workers_;  ///< written by ctor/dtor only
    Mutex mutex_;
    std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
    std::condition_variable wake_;
    bool stop_ GUARDED_BY(mutex_){false};
};

/// Executes `body(i)` for all `i` in `[0, count)` using at most
/// `resolve_thread_count(num_threads)` concurrent workers. Runs inline when
/// the resolved count is 1, when there is at most one work item, or when
/// called from inside a pool worker (nested parallelism). The 1-thread path
/// is byte-for-byte the plain serial loop.
void parallel_for(unsigned num_threads, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Run-controlled variant: every participating thread polls \p run between
/// work items and stops pulling new indices once the budget is stopped
/// (items already started still finish — bodies are never interrupted
/// mid-update). Callers must therefore tolerate unprocessed slots after a
/// stop. With an unlimited budget this forwards to the plain overload and
/// is bit-identical to it.
void parallel_for(unsigned num_threads, std::size_t count, const RunBudget& run,
                  const std::function<void(std::size_t)>& body);

}  // namespace bestagon::core
