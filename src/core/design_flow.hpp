/// \file design_flow.hpp
/// \brief The complete Bestagon design flow (paper Section 4.2):
///
///   (1) parse a specification (Verilog or in-memory network) as XAG,
///   (2) cut-based rewriting with an exact NPN database,
///   (3) technology mapping onto the Bestagon gate set,
///   (4) SAT-based exact physical design on the hexagonal floor plan
///       (with the scalable heuristic as optional engine),
///   (5) SAT-based equivalence checking of specification vs. layout,
///   (6) super-tile merging via clock-zone expansion,
///   (7) application of the Bestagon library -> dot-accurate SiDB layout,
///   (7b) optional ground-state re-validation of every distinct tile the
///        layout instantiates (parallel physical simulation),
///   (8) design-file generation (.sqd / SVG).
///
/// This is the library's primary public entry point.

#pragma once

#include "core/run_control.hpp"
#include "layout/apply_gate_library.hpp"
#include "layout/design_rules.hpp"
#include "layout/equivalence_checking.hpp"
#include "layout/exact_physical_design.hpp"
#include "layout/gate_level_layout.hpp"
#include "layout/scalable_physical_design.hpp"
#include "layout/sidb_layout.hpp"
#include "layout/supertile.hpp"
#include "logic/network.hpp"
#include "phys/model.hpp"
#include "phys/operational.hpp"

#include <optional>
#include <string>
#include <vector>

namespace bestagon::core
{

/// Which placement & routing engine to use in step (4).
enum class PhysicalDesignEngine : std::uint8_t
{
    exact,                      ///< SAT-based, area-minimal [46]
    scalable,                   ///< constructive heuristic [49]
    exact_with_fallback         ///< exact first, heuristic if budget exhausted
};

struct FlowOptions
{
    bool rewrite{true};                         ///< enable step (2)
    PhysicalDesignEngine engine{PhysicalDesignEngine::exact_with_fallback};
    layout::ExactPDOptions exact_options{};
    unsigned supertile_expansion{0};            ///< 0 = minimum feasible factor

    /// Step (7b): re-run the ground-state operational check on every
    /// distinct library tile the layout uses (off by default — the library
    /// ships pre-validated designs; turn on for parameter studies).
    bool validate_gates{false};

    /// Physical model and thread count for step (7b). sim_params.num_threads
    /// fans the independent tile checks out across workers (0 = hardware
    /// concurrency, 1 = serial); results are thread-count invariant.
    phys::SimulationParameters sim_params{};

    /// Ground-state engine for step (7b). `automatic` defers to
    /// sim_params.engine (Engine::exact by default). With a stochastic
    /// engine (simanneal, quicksim) a tile that fails its check is retried
    /// up to validation_retries times with a deterministically rotated
    /// anneal seed (retries are recorded in the stage diagnostics); exact
    /// engines never retry.
    phys::Engine validation_engine{phys::Engine::automatic};
    unsigned validation_retries{0};

    // ------------------------------------------------------------------
    // run control: with all fields at their defaults the flow behaves
    // bit-identically to an uncontrolled run
    // ------------------------------------------------------------------

    /// Cooperative cancellation for the whole flow (e.g. from
    /// install_sigint_stop()). Engines wind down at the next poll point; the
    /// flow still returns a well-formed FlowResult with diagnostics.
    StopToken stop{};

    /// Global wall-clock deadline for the whole flow in ms (< 0 = unlimited).
    /// On expiry the flow degrades instead of dying: exact P&R falls back to
    /// the scalable engine, equivalence reports `unknown`, step (7b) is
    /// skipped-with-record.
    std::int64_t deadline_ms{-1};

    /// Per-stage wall-clock budgets in ms (< 0 = unlimited); each clips the
    /// global deadline for its stage. The exact P&R stage budget lives in
    /// exact_options.time_budget_ms.
    std::int64_t equivalence_budget_ms{-1};
    std::int64_t validation_budget_ms{-1};
};

/// Outcome of re-validating one library tile in step (7b).
struct GateValidation
{
    std::string name;                  ///< library design name
    bool operational{false};
    std::uint64_t patterns_correct{0};
    std::uint64_t patterns_total{0};
    unsigned retries{0};               ///< seed-rotation retries spent on this tile
    bool evaluated{false};             ///< false when the check was skipped/cut by a stop
};

/// All artifacts and statistics produced by one flow run.
struct FlowResult
{
    logic::LogicNetwork xag;                    ///< after step (1)
    logic::LogicNetwork rewritten;              ///< after step (2)
    logic::LogicNetwork mapped;                 ///< after step (3)
    std::optional<layout::GateLevelLayout> layout;  ///< after step (4)
    layout::EquivalenceResult equivalence{layout::EquivalenceResult::unknown};  ///< step (5)
    std::optional<layout::SuperTileLayout> supertiles;  ///< step (6)
    std::optional<layout::SiDBLayout> sidb;     ///< after step (7)
    layout::DrcReport drc;                      ///< design-rule report
    layout::ApplyStats apply_stats;
    layout::ExactPDStats pd_stats;
    layout::ScalablePDStats scalable_stats;     ///< when the scalable engine ran
    std::string engine_used;                    ///< "exact" or "scalable"
    std::vector<GateValidation> gate_validation;  ///< step (7b), if enabled

    /// Per-stage account of the run: what completed, degraded, retried or
    /// was cut (see run_control.hpp). Stages appear in execution order.
    FlowDiagnostics diagnostics;

    [[nodiscard]] bool success() const noexcept
    {
        return layout.has_value() && equivalence == layout::EquivalenceResult::equivalent;
    }
};

/// Runs the full flow on an in-memory specification network. Never throws on
/// run-control events: a cancelled or timed-out run returns a well-formed
/// (partial) FlowResult whose diagnostics name the cut stage.
[[nodiscard]] FlowResult run_design_flow(const logic::LogicNetwork& specification,
                                         const FlowOptions& options = {});

/// Runs the full flow on a gate-level Verilog string. Malformed input does
/// not throw; it yields a FlowResult whose diagnostics carry a failed
/// "parse" stage.
[[nodiscard]] FlowResult run_design_flow_verilog(const std::string& verilog,
                                                 const FlowOptions& options = {});

/// Runs the full flow on an ISCAS-style BENCH string. Malformed input does
/// not throw; it yields a FlowResult whose diagnostics carry a failed
/// "parse" stage.
[[nodiscard]] FlowResult run_design_flow_bench(const std::string& bench,
                                               const FlowOptions& options = {});

}  // namespace bestagon::core
