/// \file design_flow.hpp
/// \brief The complete Bestagon design flow (paper Section 4.2):
///
///   (1) parse a specification (Verilog or in-memory network) as XAG,
///   (2) cut-based rewriting with an exact NPN database,
///   (3) technology mapping onto the Bestagon gate set,
///   (4) SAT-based exact physical design on the hexagonal floor plan
///       (with the scalable heuristic as optional engine),
///   (5) SAT-based equivalence checking of specification vs. layout,
///   (6) super-tile merging via clock-zone expansion,
///   (7) application of the Bestagon library -> dot-accurate SiDB layout,
///   (7b) optional ground-state re-validation of every distinct tile the
///        layout instantiates (parallel physical simulation),
///   (8) design-file generation (.sqd / SVG).
///
/// This is the library's primary public entry point.

#pragma once

#include "layout/apply_gate_library.hpp"
#include "layout/design_rules.hpp"
#include "layout/equivalence_checking.hpp"
#include "layout/exact_physical_design.hpp"
#include "layout/gate_level_layout.hpp"
#include "layout/sidb_layout.hpp"
#include "layout/supertile.hpp"
#include "logic/network.hpp"
#include "phys/model.hpp"

#include <optional>
#include <string>
#include <vector>

namespace bestagon::core
{

/// Which placement & routing engine to use in step (4).
enum class PhysicalDesignEngine : std::uint8_t
{
    exact,                      ///< SAT-based, area-minimal [46]
    scalable,                   ///< constructive heuristic [49]
    exact_with_fallback         ///< exact first, heuristic if budget exhausted
};

struct FlowOptions
{
    bool rewrite{true};                         ///< enable step (2)
    PhysicalDesignEngine engine{PhysicalDesignEngine::exact_with_fallback};
    layout::ExactPDOptions exact_options{};
    unsigned supertile_expansion{0};            ///< 0 = minimum feasible factor

    /// Step (7b): re-run the ground-state operational check on every
    /// distinct library tile the layout uses (off by default — the library
    /// ships pre-validated designs; turn on for parameter studies).
    bool validate_gates{false};

    /// Physical model and thread count for step (7b). sim_params.num_threads
    /// fans the independent tile checks out across workers (0 = hardware
    /// concurrency, 1 = serial); results are thread-count invariant.
    phys::SimulationParameters sim_params{};
};

/// Outcome of re-validating one library tile in step (7b).
struct GateValidation
{
    std::string name;                  ///< library design name
    bool operational{false};
    std::uint64_t patterns_correct{0};
    std::uint64_t patterns_total{0};
};

/// All artifacts and statistics produced by one flow run.
struct FlowResult
{
    logic::LogicNetwork xag;                    ///< after step (1)
    logic::LogicNetwork rewritten;              ///< after step (2)
    logic::LogicNetwork mapped;                 ///< after step (3)
    std::optional<layout::GateLevelLayout> layout;  ///< after step (4)
    layout::EquivalenceResult equivalence{layout::EquivalenceResult::unknown};  ///< step (5)
    std::optional<layout::SuperTileLayout> supertiles;  ///< step (6)
    std::optional<layout::SiDBLayout> sidb;     ///< after step (7)
    layout::DrcReport drc;                      ///< design-rule report
    layout::ApplyStats apply_stats;
    layout::ExactPDStats pd_stats;
    std::string engine_used;                    ///< "exact" or "scalable"
    std::vector<GateValidation> gate_validation;  ///< step (7b), if enabled

    [[nodiscard]] bool success() const noexcept
    {
        return layout.has_value() && equivalence == layout::EquivalenceResult::equivalent;
    }
};

/// Runs the full flow on an in-memory specification network.
[[nodiscard]] FlowResult run_design_flow(const logic::LogicNetwork& specification,
                                         const FlowOptions& options = {});

/// Runs the full flow on a gate-level Verilog string.
[[nodiscard]] FlowResult run_design_flow_verilog(const std::string& verilog,
                                                 const FlowOptions& options = {});

}  // namespace bestagon::core
