/// \file run_control.hpp
/// \brief Run control for the design flow: cooperative cancellation,
///        steady-clock deadlines and per-stage diagnostics.
///
/// The flow chains open-ended search procedures (SAT-based exact physical
/// design, simulated annealing, stochastic gate design, operational-domain
/// sweeps) whose runtimes are unbounded in practice. Run control makes every
/// one of them interruptible without sacrificing determinism:
///
///  - `StopSource` / `StopToken` form a thread-safe cancellation channel.
///    Engines poll the token at their loop heads and between independent
///    work items; they never abandon state mid-update, so a cancelled run
///    always returns a well-formed (possibly partial) result.
///  - `Deadline` is an absolute steady-clock time point. Deadlines compose
///    with `Deadline::sooner`, so a stage budget simply clips the caller's
///    global deadline.
///  - `RunBudget` bundles both; it is the unit every engine accepts. A
///    default-constructed budget is unlimited and makes every check a cheap
///    no-op, keeping the no-stop fast path bit-identical to the uncontrolled
///    code.
///  - `StageReport` / `FlowDiagnostics` record, per flow stage, what ran,
///    what degraded, what retried and what was cut — the account a caller
///    needs to interpret a partial result.
///
/// CLI drivers use `install_sigint_stop()`: the first Ctrl-C trips a
/// process-wide StopSource (engines wind down and partial artifacts are
/// still emitted), the second hard-exits.
///
/// Thread-safety contract (checked by the Clang `-Werror=thread-safety` CI
/// build via core/thread_annotations.hpp): StopSource/StopToken and the
/// SIGINT channel are deliberately capability-free — all shared state is a
/// single lock-free `std::atomic<bool>`, safe from any thread and from
/// signal handlers, so there is no mutex for `GUARDED_BY` to name. Deadline
/// and RunBudget are immutable values (copied, never shared mutable).
/// FlowDiagnostics/StageReport are single-writer: they belong to the flow
/// thread that builds them and must not be mutated concurrently; publish a
/// completed FlowDiagnostics to other threads only after the flow returns.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bestagon::core
{

class StopSource;

/// Observer end of a cancellation channel. Copyable, thread-safe; a
/// default-constructed token can never be stopped (and says so via
/// stop_possible()), so APIs may take tokens by value with no cost on the
/// uncancellable path.
class StopToken
{
  public:
    StopToken() = default;

    /// True once the associated StopSource requested a stop.
    [[nodiscard]] bool stop_requested() const noexcept
    {
        return state_ != nullptr && state_->load(std::memory_order_relaxed);
    }

    /// True if a StopSource is attached (i.e. a stop can ever happen).
    [[nodiscard]] bool stop_possible() const noexcept { return state_ != nullptr; }

  private:
    friend class StopSource;
    explicit StopToken(std::shared_ptr<const std::atomic<bool>> state) : state_{std::move(state)} {}

    std::shared_ptr<const std::atomic<bool>> state_;
};

StopToken install_sigint_stop();

/// Owner end of a cancellation channel. request_stop() is idempotent,
/// thread-safe and async-signal-safe (a lock-free atomic store).
class StopSource
{
  public:
    StopSource() : state_{std::make_shared<std::atomic<bool>>(false)} {}

    void request_stop() noexcept { state_->store(true, std::memory_order_relaxed); }

    [[nodiscard]] bool stop_requested() const noexcept
    {
        return state_->load(std::memory_order_relaxed);
    }

    [[nodiscard]] StopToken token() const noexcept { return StopToken{state_}; }

  private:
    // the SIGINT installer needs the raw atomic so the signal handler stays
    // free of shared_ptr operations (async-signal-safety)
    friend StopToken install_sigint_stop();

    std::shared_ptr<std::atomic<bool>> state_;
};

/// An absolute wall-clock limit on the steady clock. Default-constructed
/// deadlines are unlimited. Deadlines are values: copy freely, compose with
/// sooner(), derive stage deadlines with in_ms().
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    /// Unlimited (never expires).
    Deadline() = default;

    /// Expires \p ms milliseconds from now; ms < 0 means unlimited (the
    /// conventional "no budget" encoding used across the code base).
    [[nodiscard]] static Deadline in_ms(std::int64_t ms)
    {
        if (ms < 0)
        {
            return Deadline{};
        }
        return Deadline{Clock::now() + std::chrono::milliseconds{ms}};
    }

    /// Expires at the given steady-clock time point.
    [[nodiscard]] static Deadline at(Clock::time_point when) { return Deadline{when}; }

    [[nodiscard]] bool unlimited() const noexcept { return !limited_; }

    [[nodiscard]] bool expired() const noexcept { return limited_ && Clock::now() >= when_; }

    /// Milliseconds until expiry (0 when already expired). Unlimited
    /// deadlines report a large positive sentinel so callers can take
    /// min(remaining_ms(), own_budget) without special-casing.
    [[nodiscard]] std::int64_t remaining_ms() const noexcept
    {
        if (!limited_)
        {
            return unlimited_ms;
        }
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(when_ - Clock::now()).count();
        return left > 0 ? left : 0;
    }

    /// The earlier of the two deadlines (unlimited is the identity).
    [[nodiscard]] static Deadline sooner(Deadline a, Deadline b) noexcept
    {
        if (a.unlimited())
        {
            return b;
        }
        if (b.unlimited())
        {
            return a;
        }
        return a.when_ <= b.when_ ? a : b;
    }

    /// remaining_ms() of an unlimited deadline — far larger than any real
    /// budget yet safely addable to small offsets without overflow.
    static constexpr std::int64_t unlimited_ms = std::int64_t{1} << 50;

  private:
    explicit Deadline(Clock::time_point when) : limited_{true}, when_{when} {}

    bool limited_{false};
    Clock::time_point when_{};
};

/// The composable budget every long-running engine accepts: a cancellation
/// token plus a deadline. Default-constructed budgets are unlimited; engines
/// must behave bit-identically under an unlimited budget.
struct RunBudget
{
    StopToken token{};
    Deadline deadline{};

    /// True once the run must wind down (cancelled or out of time).
    [[nodiscard]] bool stopped() const noexcept
    {
        return token.stop_requested() || deadline.expired();
    }

    /// True if any limit is attached at all; engines may skip polling
    /// entirely for unlimited budgets.
    [[nodiscard]] bool limited() const noexcept
    {
        return token.stop_possible() || !deadline.unlimited();
    }

    /// This budget further clipped to expire \p ms milliseconds from now
    /// (ms < 0 leaves the deadline untouched). The token is shared.
    [[nodiscard]] RunBudget clipped_ms(std::int64_t ms) const
    {
        return RunBudget{token, Deadline::sooner(deadline, Deadline::in_ms(ms))};
    }
};

// ---------------------------------------------------------------------------
// per-stage diagnostics
// ---------------------------------------------------------------------------

/// Outcome of one flow stage.
enum class StageStatus : std::uint8_t
{
    completed,  ///< ran to completion, result is authoritative
    degraded,   ///< produced a usable result via a fallback / partial path
    timed_out,  ///< cut by a deadline; partial or no result
    cancelled,  ///< cut by a StopToken; partial or no result
    failed,     ///< an error occurred (recorded in detail); no result
    skipped     ///< never attempted (disabled, or an earlier stage was cut)
};

/// Stable lower-case name of a stage status ("completed", "timed_out", ...).
[[nodiscard]] const char* to_string(StageStatus status) noexcept;

/// One flow stage's account: what ran, for how long, how often it retried
/// and why it ended the way it did.
struct StageReport
{
    std::string stage;                        ///< stable stage name, e.g. "physical_design"
    StageStatus status{StageStatus::skipped};
    std::int64_t wall_ms{0};                  ///< wall-clock time spent in the stage
    unsigned retries{0};                      ///< extra attempts beyond the first
    std::string detail;                       ///< human-readable explanation
};

/// Per-stage reports for one flow run, in execution order.
struct FlowDiagnostics
{
    std::vector<StageReport> stages;

    /// The report of stage \p name, or nullptr if the stage never reported.
    [[nodiscard]] const StageReport* find(std::string_view name) const noexcept;

    /// True iff every reported stage completed (degraded counts as not).
    [[nodiscard]] bool all_completed() const noexcept;

    /// The first stage that was cut short (timed_out / cancelled / failed),
    /// or nullptr when nothing was cut. Degraded stages produced a usable
    /// result and therefore do not count as cut.
    [[nodiscard]] const StageReport* first_cut() const noexcept;

    /// True iff any stage reports timed_out or cancelled.
    [[nodiscard]] bool interrupted() const noexcept;

    /// Renders a fixed-width diagnostics table (one line per stage) for CLI
    /// output and logs.
    [[nodiscard]] std::string table() const;
};

// ---------------------------------------------------------------------------
// SIGINT integration for CLI drivers
// ---------------------------------------------------------------------------

/// Installs a process-wide SIGINT handler backed by a shared StopSource and
/// returns its token. The first Ctrl-C requests a cooperative stop (drivers
/// finish winding down, emit partial artifacts and the diagnostics table);
/// the second hard-exits with status 130. Idempotent: repeated calls return
/// the same channel.
StopToken install_sigint_stop();

/// True once the installed SIGINT handler has fired at least once. Drivers
/// use this to annotate their output ("interrupted — partial results").
[[nodiscard]] bool sigint_received() noexcept;

}  // namespace bestagon::core
