/// \file thread_annotations.hpp
/// \brief Clang thread-safety capability annotations + an annotated mutex.
///
/// Wraps Clang's `-Wthread-safety` attribute set in macros that compile away
/// on every other compiler, so annotated code builds everywhere while Clang
/// CI builds (which add `-Werror=thread-safety`) statically verify the
/// locking discipline: every `GUARDED_BY` member is only touched with its
/// mutex held, every `REQUIRES` function is only called under the right
/// lock, and every `ACQUIRE`/`RELEASE` pairs up.
///
/// libstdc++'s `std::mutex` carries no capability attributes, so locking it
/// directly is invisible to the analysis. `core::Mutex` / `core::MutexLock`
/// below wrap `std::mutex` / `std::unique_lock` with the attributes attached
/// and zero behavioral difference; `MutexLock::native()` exposes the
/// underlying `std::unique_lock` for `std::condition_variable::wait`.

#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define BESTAGON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BESTAGON_THREAD_ANNOTATION
#define BESTAGON_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPABILITY(x) BESTAGON_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY BESTAGON_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) BESTAGON_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) BESTAGON_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) BESTAGON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) BESTAGON_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) BESTAGON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) BESTAGON_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) BESTAGON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) BESTAGON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) BESTAGON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) BESTAGON_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) BESTAGON_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS BESTAGON_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bestagon::core
{

/// `std::mutex` with the capability attribute attached so `-Wthread-safety`
/// tracks what it guards. Same size/behavior as the wrapped mutex.
class CAPABILITY("mutex") Mutex
{
  public:
    void lock() ACQUIRE() { m_.lock(); }
    void unlock() RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

    /// The wrapped mutex, for APIs that need the std type (condition
    /// variables). Callers must hold the capability.
    [[nodiscard]] std::mutex& native() noexcept { return m_; }

  private:
    std::mutex m_;
};

/// RAII lock over `core::Mutex`, visible to the analysis as a scoped
/// capability. Wraps `std::unique_lock` so condition variables can wait on
/// it via `native()` (waits release and reacquire the mutex, which the
/// analysis models as the capability being held across the wait).
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_{mutex.native()} {}
    ~MutexLock() RELEASE() = default;

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /// The underlying unique_lock, for std::condition_variable::wait.
    [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

}  // namespace bestagon::core
