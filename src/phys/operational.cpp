#include "phys/operational.hpp"

#include "core/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bestagon::phys
{

std::vector<SiDBSite> GateDesign::instance_sites(std::uint64_t pattern) const
{
    std::vector<SiDBSite> all;
    instance_sites(pattern, all);
    return all;
}

void GateDesign::instance_sites(std::uint64_t pattern, std::vector<SiDBSite>& out) const
{
    out.clear();
    out.reserve(sites.size() + drivers.size() + output_perturbers.size());
    out.insert(out.end(), sites.begin(), sites.end());
    for (std::size_t i = 0; i < drivers.size(); ++i)
    {
        const bool one = ((pattern >> i) & 1ULL) != 0;
        out.push_back(one ? drivers[i].near_site : drivers[i].far_site);
    }
    out.insert(out.end(), output_perturbers.begin(), output_perturbers.end());
}

namespace
{

std::string describe_missing_site(const SiDBSite& s, const char* role)
{
    std::ostringstream out;
    out << "BDL pair's " << role << " site (" << s.n << ", " << s.m << ", " << s.l
        << ") is not among the instance sites";
    return out.str();
}

}  // namespace

PairState read_pair(const BDLPair& pair, const std::vector<SiDBSite>& sites,
                    const ChargeConfig& config, std::string* error)
{
    const auto find_site = [&](const SiDBSite& s) -> int {
        const auto it = std::find(sites.begin(), sites.end(), s);
        return it == sites.end() ? -1 : static_cast<int>(it - sites.begin());
    };
    const int zi = find_site(pair.zero_site);
    const int oi = find_site(pair.one_site);
    if (zi < 0 || oi < 0)
    {
        if (error != nullptr)
        {
            *error = describe_missing_site(zi < 0 ? pair.zero_site : pair.one_site,
                                           zi < 0 ? "zero" : "one");
        }
        return PairState::undefined;
    }
    return read_pair_indexed(static_cast<std::size_t>(zi), static_cast<std::size_t>(oi), config);
}

PairState read_pair_indexed(std::size_t zero_index, std::size_t one_index,
                            const ChargeConfig& config)
{
    const bool z = config[zero_index] != 0;
    const bool o = config[one_index] != 0;
    if (o && !z)
    {
        return PairState::one;
    }
    if (z && !o)
    {
        return PairState::zero;
    }
    return PairState::undefined;
}

const SiDBSite& GateInstanceCache::driver_site(std::size_t d, bool one) const
{
    return one ? design_->drivers[d].near_site : design_->drivers[d].far_site;
}

GateInstanceCache::GateInstanceCache(const GateDesign& design, const SimulationParameters& params,
                                     const DefectSurface* defects)
    : design_{&design}, params_{params}
{
    validate_parameters(params_);
    const std::size_t k = design.drivers.size();
    num_fixed_ = design.sites.size();
    design.instance_sites(0, base_sites_);  // driver slots hold the far (pattern-0) sites
    const std::size_t n = base_sites_.size();

    const auto is_driver = [&](std::size_t t) { return t >= num_fixed_ && t < num_fixed_ + k; };

    if (defects != nullptr && !defects->empty())
    {
        // blocked-site scan over every site any pattern can instantiate:
        // the fixed sites (far drivers included via pattern 0) plus every
        // near driver position
        const auto record_blocked = [&](const SiDBSite& s) {
            if (blocked_)
            {
                return;
            }
            if (const auto* d = defects->blocking_defect(s); d != nullptr)
            {
                std::ostringstream out;
                out << "site (" << s.n << ", " << s.m << ", " << s.l
                    << ") is blocked by the defect at (" << d->site.n << ", " << d->site.m << ", "
                    << d->site.l << ")";
                blocked_ = true;
                blocked_reason_ = out.str();
            }
        };
        for (const auto& s : base_sites_)
        {
            record_blocked(s);
        }
        for (const auto& drv : design.drivers)
        {
            record_blocked(drv.near_site);
        }
        // external rows: one W per site (driver slots carry the far W) plus
        // the near/far pair per driver — evaluated once per (design, params,
        // surface), not once per pattern. Skipped entirely on a blocked
        // design (a coincident defect would make W singular).
        if (!blocked_ && defects->has_charged())
        {
            external_fixed_ = defects->external_potentials(base_sites_, params_);
            external_driver_.assign(2 * k, 0.0);
            for (std::size_t d = 0; d < k; ++d)
            {
                external_driver_[2 * d] = defects->external_potential(driver_site(d, false), params_);
                external_driver_[2 * d + 1] =
                    defects->external_potential(driver_site(d, true), params_);
            }
        }
    }

    // pattern-invariant block: every pair not involving a driver slot
    fixed_block_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
    {
        if (is_driver(i))
        {
            continue;
        }
        for (std::size_t j = i + 1; j < n; ++j)
        {
            if (is_driver(j))
            {
                continue;
            }
            const double v = screened_coulomb(distance_nm(base_sites_[i], base_sites_[j]), params_);
            fixed_block_[i * n + j] = v;
            fixed_block_[j * n + i] = v;
        }
    }

    // both potential rows of every driver (index 0 = far/logic-0, 1 = near)
    driver_rows_.assign(2 * k * n, 0.0);
    for (std::size_t d = 0; d < k; ++d)
    {
        for (int s = 0; s < 2; ++s)
        {
            double* row = driver_rows_.data() + (2 * d + s) * n;
            const SiDBSite& site = driver_site(d, s != 0);
            for (std::size_t t = 0; t < n; ++t)
            {
                if (!is_driver(t))
                {
                    row[t] = screened_coulomb(distance_nm(site, base_sites_[t]), params_);
                }
            }
        }
    }

    // all 4 state combinations of every ordered driver pair (d < e)
    driver_pairs_.assign(4 * k * k, 0.0);
    for (std::size_t d = 0; d < k; ++d)
    {
        for (std::size_t e = d + 1; e < k; ++e)
        {
            for (int sd = 0; sd < 2; ++sd)
            {
                for (int se = 0; se < 2; ++se)
                {
                    driver_pairs_[((d * k + e) * 2 + sd) * 2 + se] = screened_coulomb(
                        distance_nm(driver_site(d, sd != 0), driver_site(e, se != 0)), params_);
                }
            }
        }
    }

    // resolve output pairs to fixed-site indices once per design
    const std::size_t outputs = design.output_pairs.size();
    output_zero_index_.assign(outputs, 0);
    output_one_index_.assign(outputs, 0);
    output_pair_errors_.assign(outputs, std::string{});
    const auto find_fixed = [&](const SiDBSite& s) -> std::size_t {
        for (std::size_t t = 0; t < n; ++t)
        {
            if (!is_driver(t) && base_sites_[t] == s)
            {
                return t;
            }
        }
        return n;
    };
    for (std::size_t o = 0; o < outputs; ++o)
    {
        const auto zi = find_fixed(design.output_pairs[o].zero_site);
        const auto oi = find_fixed(design.output_pairs[o].one_site);
        if (zi == n || oi == n)
        {
            output_pair_errors_[o] =
                describe_missing_site(zi == n ? design.output_pairs[o].zero_site
                                              : design.output_pairs[o].one_site,
                                      zi == n ? "zero" : "one");
            continue;
        }
        output_zero_index_[o] = zi;
        output_one_index_[o] = oi;
    }
}

SiDBSystem GateInstanceCache::instantiate(std::uint64_t pattern) const
{
    const std::size_t n = base_sites_.size();
    const std::size_t k = design_->drivers.size();

    std::vector<SiDBSite> sites = base_sites_;
    std::vector<double> potentials = fixed_block_;

    for (std::size_t d = 0; d < k; ++d)
    {
        const bool one = ((pattern >> d) & 1ULL) != 0;
        const std::size_t row_index = num_fixed_ + d;
        sites[row_index] = driver_site(d, one);
        const double* row = driver_rows_.data() + (2 * d + (one ? 1 : 0)) * n;
        double* dst = potentials.data() + row_index * n;
        for (std::size_t t = 0; t < n; ++t)
        {
            dst[t] = row[t];                     // driver row
            potentials[t * n + row_index] = row[t];  // symmetric column
        }
    }
    for (std::size_t d = 0; d < k; ++d)
    {
        const std::size_t sd = (pattern >> d) & 1ULL;
        for (std::size_t e = d + 1; e < k; ++e)
        {
            const std::size_t se = (pattern >> e) & 1ULL;
            const double v = driver_pairs_[((d * k + e) * 2 + sd) * 2 + se];
            potentials[(num_fixed_ + d) * n + (num_fixed_ + e)] = v;
            potentials[(num_fixed_ + e) * n + (num_fixed_ + d)] = v;
        }
    }
    if (external_fixed_.empty())
    {
        return SiDBSystem::from_potentials(std::move(sites), params_, std::move(potentials));
    }
    // charged-defect background: copy the precomputed W rows and overwrite
    // each driver slot with the W of the position this pattern selects
    std::vector<double> external = external_fixed_;
    for (std::size_t d = 0; d < k; ++d)
    {
        const bool one = ((pattern >> d) & 1ULL) != 0;
        external[num_fixed_ + d] = external_driver_[2 * d + (one ? 1 : 0)];
    }
    return SiDBSystem::from_potentials(std::move(sites), params_, std::move(potentials),
                                       std::move(external));
}

PairState GateInstanceCache::read_output(std::size_t o, const ChargeConfig& config) const
{
    if (!output_pair_errors_[o].empty())
    {
        return PairState::undefined;
    }
    return read_pair_indexed(output_zero_index_[o], output_one_index_[o], config);
}

PatternResult simulate_gate_pattern(const GateDesign& design, std::uint64_t pattern,
                                    const SimulationParameters& params, Engine engine,
                                    const core::RunBudget& run)
{
    const GateInstanceCache cache{design, params};
    return simulate_gate_pattern(cache, pattern, engine, run);
}

PatternResult simulate_gate_pattern(const GateInstanceCache& cache, std::uint64_t pattern,
                                    Engine engine, const core::RunBudget& run)
{
    const GateDesign& design = cache.design();

    PatternResult result;
    result.pattern = pattern;

    const SiDBSystem system = cache.instantiate(pattern);
    result.sites = system.sites();
    // engine dispatch (incl. the stochastic engines' seed/thread wiring)
    // lives in one place: find_ground_state resolves Engine::automatic
    // against params.engine — Engine::exact by default
    result.ground_state = find_ground_state(system, engine, run);
    result.evaluated = true;

    result.correct = true;
    // bestagon-lint: no-poll-ok(O(outputs) readout of an already-computed ground state via O(1) pre-resolved indices; no engine work left to cut)
    for (std::size_t o = 0; o < design.output_pairs.size(); ++o)
    {
        const auto state = cache.read_output(o, result.ground_state.config);
        result.output_states.push_back(state);
        const bool expected = design.functions[o].get_bit(pattern);
        const auto expected_state = expected ? PairState::one : PairState::zero;
        if (state != expected_state)
        {
            result.correct = false;
        }
    }
    return result;
}

namespace
{

void require_pattern_arity(const GateDesign& design)
{
    if (design.num_inputs() > max_gate_inputs)
    {
        throw std::invalid_argument{"check_operational: gate '" + design.name + "' has " +
                                    std::to_string(design.num_inputs()) +
                                    " inputs; the pattern enumeration supports at most " +
                                    std::to_string(max_gate_inputs)};
    }
}

/// Shared pattern fan-out of both check_operational overloads: the prebuilt
/// cache (defect-free or defect-aware) is shared read-only by the whole run.
OperationalResult check_operational_cached(const GateInstanceCache& cache, Engine engine,
                                           const core::RunBudget& run)
{
    OperationalResult result;
    result.patterns_total = 1ULL << cache.design().num_inputs();

    // the per-pattern simulations are independent; fan them out and write
    // each result into its pattern-indexed slot (patterns skipped after a
    // stop keep their default slot with evaluated == false)
    result.details.resize(result.patterns_total);
    for (std::uint64_t p = 0; p < result.patterns_total; ++p)
    {
        result.details[p].pattern = p;  // keep indices on skipped slots, too
    }
    core::parallel_for(cache.parameters().num_threads, result.patterns_total, run,
                       [&](std::size_t pattern) {
                           result.details[pattern] = simulate_gate_pattern(cache, pattern, engine, run);
                       });
    result.cancelled = run.stopped();

    for (const auto& pr : result.details)
    {
        if (pr.correct)
        {
            ++result.patterns_correct;
        }
    }
    result.operational = result.patterns_correct == result.patterns_total;
    return result;
}

}  // namespace

OperationalResult check_operational(const GateDesign& design, const SimulationParameters& params,
                                    Engine engine, const core::RunBudget& run)
{
    require_pattern_arity(design);
    // one pattern-invariant potential cache shared (read-only) by the whole
    // fan-out: the fixed n x n block is evaluated once, not 2^k times
    const GateInstanceCache cache{design, params};
    return check_operational_cached(cache, engine, run);
}

OperationalResult check_operational(const GateDesign& design, const SimulationParameters& params,
                                    const DefectSurface& defects, Engine engine,
                                    const core::RunBudget& run)
{
    require_pattern_arity(design);
    const GateInstanceCache cache{design, params, &defects};
    if (cache.blocked())
    {
        // nothing is simulated: the blocked site's Coulomb terms may be
        // singular, and the design cannot be fabricated as laid out anyway
        OperationalResult result;
        result.patterns_total = 1ULL << design.num_inputs();
        result.blocked = true;
        result.blocked_reason = cache.blocked_reason();
        return result;
    }
    return check_operational_cached(cache, engine, run);
}

}  // namespace bestagon::phys
