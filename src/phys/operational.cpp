#include "phys/operational.hpp"

#include "core/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace bestagon::phys
{

std::vector<SiDBSite> GateDesign::instance_sites(std::uint64_t pattern) const
{
    std::vector<SiDBSite> all = sites;
    for (std::size_t i = 0; i < drivers.size(); ++i)
    {
        const bool one = ((pattern >> i) & 1ULL) != 0;
        all.push_back(one ? drivers[i].near_site : drivers[i].far_site);
    }
    all.insert(all.end(), output_perturbers.begin(), output_perturbers.end());
    return all;
}

PairState read_pair(const BDLPair& pair, const std::vector<SiDBSite>& sites, const ChargeConfig& config)
{
    const auto find_site = [&](const SiDBSite& s) -> int {
        const auto it = std::find(sites.begin(), sites.end(), s);
        return it == sites.end() ? -1 : static_cast<int>(it - sites.begin());
    };
    const int zi = find_site(pair.zero_site);
    const int oi = find_site(pair.one_site);
    assert(zi >= 0 && oi >= 0);
    const bool z = config[static_cast<std::size_t>(zi)] != 0;
    const bool o = config[static_cast<std::size_t>(oi)] != 0;
    if (o && !z)
    {
        return PairState::one;
    }
    if (z && !o)
    {
        return PairState::zero;
    }
    return PairState::undefined;
}

PatternResult simulate_gate_pattern(const GateDesign& design, std::uint64_t pattern,
                                    const SimulationParameters& params, Engine engine,
                                    const core::RunBudget& run)
{
    PatternResult result;
    result.pattern = pattern;
    result.sites = design.instance_sites(pattern);

    const SiDBSystem system{result.sites, params};
    if (engine == Engine::exhaustive)
    {
        result.ground_state = exhaustive_ground_state(system, 1e-6, run);
    }
    else
    {
        SimAnnealParameters annealing;
        annealing.num_threads = params.num_threads;  // 1 stays fully serial
        annealing.seed = params.anneal_seed;
        result.ground_state = simulated_annealing(system, annealing, run);
    }
    result.evaluated = true;

    result.correct = true;
    for (std::size_t o = 0; o < design.output_pairs.size(); ++o)
    {
        const auto state = read_pair(design.output_pairs[o], result.sites, result.ground_state.config);
        result.output_states.push_back(state);
        const bool expected = design.functions[o].get_bit(pattern);
        const auto expected_state = expected ? PairState::one : PairState::zero;
        if (state != expected_state)
        {
            result.correct = false;
        }
    }
    return result;
}

OperationalResult check_operational(const GateDesign& design, const SimulationParameters& params,
                                    Engine engine, const core::RunBudget& run)
{
    if (design.num_inputs() > max_gate_inputs)
    {
        throw std::invalid_argument{"check_operational: gate '" + design.name + "' has " +
                                    std::to_string(design.num_inputs()) +
                                    " inputs; the pattern enumeration supports at most " +
                                    std::to_string(max_gate_inputs)};
    }
    OperationalResult result;
    result.patterns_total = 1ULL << design.num_inputs();

    // the per-pattern simulations are independent; fan them out and write
    // each result into its pattern-indexed slot (patterns skipped after a
    // stop keep their default slot with evaluated == false)
    result.details.resize(result.patterns_total);
    for (std::uint64_t p = 0; p < result.patterns_total; ++p)
    {
        result.details[p].pattern = p;  // keep indices on skipped slots, too
    }
    core::parallel_for(params.num_threads, result.patterns_total, run, [&](std::size_t pattern) {
        result.details[pattern] = simulate_gate_pattern(design, pattern, params, engine, run);
    });
    result.cancelled = run.stopped();

    for (const auto& pr : result.details)
    {
        if (pr.correct)
        {
            ++result.patterns_correct;
        }
    }
    result.operational = result.patterns_correct == result.patterns_total;
    return result;
}

}  // namespace bestagon::phys
