#include "phys/ground_state.hpp"

#include "phys/exhaustive.hpp"
#include "phys/ground_state_exact.hpp"
#include "phys/quicksim.hpp"
#include "phys/simanneal.hpp"

namespace bestagon::phys
{

Engine resolve_engine(Engine engine, const SimulationParameters& params)
{
    if (engine != Engine::automatic)
    {
        return engine;
    }
    return params.engine == Engine::automatic ? Engine::exact : params.engine;
}

bool stochastic_engine(Engine engine)
{
    return engine == Engine::simanneal || engine == Engine::quicksim;
}

GroundStateResult find_ground_state(const SiDBSystem& system, Engine engine,
                                    const core::RunBudget& run)
{
    const SimulationParameters& params = system.parameters();
    switch (resolve_engine(engine, params))
    {
        case Engine::exhaustive:
        {
            return exhaustive_ground_state(system, run);
        }
        case Engine::simanneal:
        {
            SimAnnealParameters annealing;
            annealing.num_threads = params.num_threads;  // 1 stays fully serial
            annealing.seed = params.anneal_seed;
            return simulated_annealing(system, annealing, run);
        }
        case Engine::quicksim:
        {
            QuickSimParameters quicksim;
            quicksim.num_threads = params.num_threads;
            quicksim.seed = params.anneal_seed;
            return quicksim_ground_state(system, quicksim, run);
        }
        case Engine::automatic:  // resolve_engine never returns automatic
        case Engine::exact:
        default:
        {
            return exact_ground_state(system, run);
        }
    }
}

}  // namespace bestagon::phys
