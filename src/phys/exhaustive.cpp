#include "phys/exhaustive.hpp"

#include "phys/charge_state.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bestagon::phys
{

namespace
{

struct SearchState
{
    const SiDBSystem* system;
    double mu;
    std::size_t n;
    ChargeState kernel;               // shared incremental charge-state kernel:
                                      // prefix assignment + local-potential cache
    double partial_f;                 // F of assigned prefix
    double best_f;
    ChargeConfig best_config;
    std::uint64_t degeneracy;
    double tolerance;
    const core::RunBudget* run;
    std::uint64_t nodes;
    bool stopped;

    explicit SearchState(const SiDBSystem& sys) : kernel{sys} {}
};

void recurse(SearchState& s, std::size_t index)
{
    // sparse budget poll: unwinding early keeps the best-so-far (always a
    // physically valid configuration) intact
    if (s.stopped)
    {
        return;
    }
    if (s.run->limited() && (++s.nodes & 4095U) == 0 && s.run->stopped())
    {
        s.stopped = true;
        return;
    }
    if (index == s.n)
    {
        if (s.partial_f <= s.best_f + s.tolerance)
        {
            // leaf validity over the kernel's cached potentials: O(n^2)
            // instead of the naive evaluator's O(n^3)
            if (s.kernel.physically_valid())
            {
                if (s.partial_f < s.best_f - s.tolerance)
                {
                    s.best_f = s.partial_f;
                    s.best_config = s.kernel.config();
                    s.degeneracy = 1;
                }
                else
                {
                    ++s.degeneracy;
                }
            }
        }
        return;
    }

    // optimistic completion bound over unassigned sites (monotone: cached
    // v_i only counts assigned negative charges, and v_i can only grow)
    double bound = s.partial_f;
    for (std::size_t i = index; i < s.n; ++i)
    {
        bound += std::min(0.0, s.mu + s.kernel.local_potential(i));
    }
    if (bound > s.best_f + s.tolerance)
    {
        return;
    }

    // branch: negative first (mu < 0 favors charging)
    {
        // prune: an already-negative site that violates mu + v <= 0 against the
        // *partial* potential can never recover (v only grows)
        const double delta = s.mu + s.kernel.local_potential(index);
        s.kernel.commit_flip(index);  // neutral -> negative, O(n) row update
        s.partial_f += delta;
        // check partial population stability of assigned negative sites
        bool viable = true;
        for (std::size_t j = 0; j <= index; ++j)
        {
            if (s.kernel.charge(j) != 0 && s.mu + s.kernel.local_potential(j) > 1e-12)
            {
                viable = false;
                break;
            }
        }
        if (viable)
        {
            recurse(s, index + 1);
        }
        s.kernel.commit_flip(index);  // unwind: replays the exact subtractions
        s.partial_f -= delta;
    }

    // branch: neutral
    recurse(s, index + 1);
}

}  // namespace

GroundStateResult exhaustive_ground_state(const SiDBSystem& system, double degeneracy_tolerance,
                                          const core::RunBudget& run)
{
    const std::size_t n = system.size();
    SearchState s{system};
    s.system = &system;
    s.mu = system.parameters().mu_minus;
    s.n = n;
    s.partial_f = 0.0;
    s.best_f = std::numeric_limits<double>::infinity();
    s.degeneracy = 0;
    s.tolerance = degeneracy_tolerance;
    s.run = &run;
    s.nodes = 0;
    s.stopped = false;

    // seed with a quenched all-negative start for a good initial bound
    ChargeConfig seed(n, 1);
    system.quench(seed);
    if (system.physically_valid(seed))
    {
        // bound only; the recursion re-encounters this config and counts it
        s.best_f = system.grand_potential(seed);
        s.best_config = seed;
    }

    recurse(s, 0);

    GroundStateResult result;
    result.config = s.best_config;
    // fresh evaluation, not the accumulated partial sum: branch/unwind pairs
    // can leave ulp-level drift in the running best_f, and the kernel
    // doctrine is that reported energies come from a fresh evaluation
    result.grand_potential =
        s.best_config.empty() ? s.best_f : system.grand_potential(s.best_config);
    result.electrostatic = s.best_config.empty() ? 0.0 : system.electrostatic_energy(s.best_config);
    result.degeneracy = std::max<std::uint64_t>(1, s.degeneracy);
    result.complete = !s.stopped;
    result.cancelled = s.stopped;
    return result;
}

GroundStateResult exhaustive_ground_state(const SiDBSystem& system, const core::RunBudget& run)
{
    return exhaustive_ground_state(system, system.parameters().energy_tolerance, run);
}

}  // namespace bestagon::phys
