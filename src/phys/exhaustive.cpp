#include "phys/exhaustive.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bestagon::phys
{

namespace
{

struct SearchState
{
    const SiDBSystem* system;
    double mu;
    std::size_t n;
    ChargeConfig config;              // current partial assignment (prefix assigned)
    std::vector<double> local_v;      // v_i from assigned negative charges
    double partial_f;                 // F of assigned prefix
    double best_f;
    ChargeConfig best_config;
    std::uint64_t degeneracy;
    double tolerance;
    const core::RunBudget* run;
    std::uint64_t nodes;
    bool stopped;
};

void recurse(SearchState& s, std::size_t index)
{
    // sparse budget poll: unwinding early keeps the best-so-far (always a
    // physically valid configuration) intact
    if (s.stopped)
    {
        return;
    }
    if (s.run->limited() && (++s.nodes & 4095U) == 0 && s.run->stopped())
    {
        s.stopped = true;
        return;
    }
    if (index == s.n)
    {
        if (s.partial_f <= s.best_f + s.tolerance)
        {
            if (s.system->physically_valid(s.config))
            {
                if (s.partial_f < s.best_f - s.tolerance)
                {
                    s.best_f = s.partial_f;
                    s.best_config = s.config;
                    s.degeneracy = 1;
                }
                else
                {
                    ++s.degeneracy;
                }
            }
        }
        return;
    }

    // optimistic completion bound over unassigned sites
    double bound = s.partial_f;
    for (std::size_t i = index; i < s.n; ++i)
    {
        bound += std::min(0.0, s.mu + s.local_v[i]);
    }
    if (bound > s.best_f + s.tolerance)
    {
        return;
    }

    // branch: negative first (mu < 0 favors charging)
    {
        // prune: an already-negative site that violates mu + v <= 0 against the
        // *partial* potential can never recover (v only grows)
        const double delta = s.mu + s.local_v[index];
        s.config[index] = 1;
        s.partial_f += delta;
        for (std::size_t j = 0; j < s.n; ++j)
        {
            if (j != index)
            {
                s.local_v[j] += s.system->potential(index, j);
            }
        }
        // check partial population stability of assigned negative sites
        bool viable = true;
        for (std::size_t j = 0; j <= index; ++j)
        {
            if (s.config[j] != 0 && s.mu + s.local_v[j] > 1e-12)
            {
                viable = false;
                break;
            }
        }
        if (viable)
        {
            recurse(s, index + 1);
        }
        for (std::size_t j = 0; j < s.n; ++j)
        {
            if (j != index)
            {
                s.local_v[j] -= s.system->potential(index, j);
            }
        }
        s.partial_f -= delta;
        s.config[index] = 0;
    }

    // branch: neutral
    recurse(s, index + 1);
}

}  // namespace

GroundStateResult exhaustive_ground_state(const SiDBSystem& system, double degeneracy_tolerance,
                                          const core::RunBudget& run)
{
    const std::size_t n = system.size();
    SearchState s{};
    s.system = &system;
    s.mu = system.parameters().mu_minus;
    s.n = n;
    s.config.assign(n, 0);
    s.local_v.assign(n, 0.0);
    s.partial_f = 0.0;
    s.best_f = std::numeric_limits<double>::infinity();
    s.degeneracy = 0;
    s.tolerance = degeneracy_tolerance;
    s.run = &run;
    s.nodes = 0;
    s.stopped = false;

    // seed with a quenched all-negative start for a good initial bound
    ChargeConfig seed(n, 1);
    system.quench(seed);
    if (system.physically_valid(seed))
    {
        // bound only; the recursion re-encounters this config and counts it
        s.best_f = system.grand_potential(seed);
        s.best_config = seed;
    }

    recurse(s, 0);

    GroundStateResult result;
    result.config = s.best_config;
    result.grand_potential = s.best_f;
    result.electrostatic = s.best_config.empty() ? 0.0 : system.electrostatic_energy(s.best_config);
    result.degeneracy = std::max<std::uint64_t>(1, s.degeneracy);
    result.complete = !s.stopped;
    result.cancelled = s.stopped;
    return result;
}

}  // namespace bestagon::phys
