#include "phys/charge_state.hpp"

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

namespace bestagon::phys
{

namespace
{

/// A configuration/system size mismatch used to be a debug-only assert, so a
/// release build silently indexed out of bounds on every row update. Promote
/// it to a thrown contract error (the read_pair precedent: a recorded error
/// instead of silent garbage).
void require_matching_size(std::size_t config_size, std::size_t system_size)
{
    if (config_size != system_size)
    {
        throw std::invalid_argument{"ChargeState: configuration has " +
                                    std::to_string(config_size) + " sites but the system has " +
                                    std::to_string(system_size)};
    }
}

}  // namespace

ChargeState::ChargeState(const SiDBSystem& system)
    : system_{&system}, config_(system.size(), 0), v_(system.size(), 0.0)
{
    // all-neutral local potentials are the defect background (exact)
    if (system.has_external_potentials())
    {
        v_ = system.external_potentials();
    }
}

ChargeState::ChargeState(const SiDBSystem& system, ChargeConfig config)
    : system_{&system}, config_{std::move(config)}
{
    require_matching_size(config_.size(), system.size());
    rebuild();
}

void ChargeState::assign(ChargeConfig config)
{
    require_matching_size(config.size(), system_->size());
    config_ = std::move(config);
    rebuild();
}

void ChargeState::rebuild()
{
    const std::size_t n = config_.size();
    v_.assign(n, 0.0);
    num_charges_ = 0;
    // Per-site fresh summation in ascending j order — the exact operation
    // sequence of SiDBSystem::local_potential, so rebuilt values are
    // bit-identical to the naive evaluator's. The defect background W_i is
    // the summation's starting value (0.0 on a defect-free system); every
    // incremental commit then carries it along for free, which is how all
    // four ground-state engines see charged defects without any change.
    for (std::size_t i = 0; i < n; ++i)
    {
        double v = system_->external_potential(i);
        for (std::size_t j = 0; j < n; ++j)
        {
            if (j != i && config_[j] != 0)
            {
                v += system_->potential(i, j);
            }
        }
        v_[i] = v;
    }
    for (const auto c : config_)
    {
        num_charges_ += c;
    }
}

void ChargeState::commit_flip(std::size_t i)
{
    const std::size_t n = config_.size();
    // Ascending-j row application with the flipped site skipped: the same
    // update order the pre-kernel exhaustive engine used, so its
    // branch/unwind float trajectories are preserved bit-for-bit.
    if (config_[i] == 0)
    {
        for (std::size_t j = 0; j < n; ++j)
        {
            if (j != i)
            {
                v_[j] += system_->potential(i, j);
            }
        }
        config_[i] = 1;
        ++num_charges_;
    }
    else
    {
        for (std::size_t j = 0; j < n; ++j)
        {
            if (j != i)
            {
                v_[j] -= system_->potential(i, j);
            }
        }
        config_[i] = 0;
        --num_charges_;
    }
}

void ChargeState::commit_hop(std::size_t from, std::size_t to)
{
    assert(config_[from] != 0 && config_[to] == 0 && from != to);
    const std::size_t n = config_.size();
    // Fused single pass: v_t += V_to,t - V_from,t. The zero diagonal of the
    // potential matrix makes the endpoints come out right without branches
    // (v_from gains +V_ft from the arriving charge, v_to loses -V_ft from
    // the departing one).
    for (std::size_t t = 0; t < n; ++t)
    {
        v_[t] += system_->potential(to, t) - system_->potential(from, t);
    }
    config_[from] = 0;
    config_[to] = 1;
}

bool ChargeState::population_stable() const
{
    const double mu = system_->parameters().mu_minus;
    const double tol = system_->parameters().stability_tolerance;
    for (std::size_t i = 0; i < config_.size(); ++i)
    {
        const double level = mu + v_[i];
        if (config_[i] != 0 && level > tol)
        {
            return false;  // negative site whose transition level is above E_F
        }
        if (config_[i] == 0 && level < -tol)
        {
            return false;  // neutral site that would rather hold an electron
        }
    }
    return true;
}

bool ChargeState::configuration_stable() const
{
    const double tol = system_->parameters().stability_tolerance;
    for (std::size_t i = 0; i < config_.size(); ++i)
    {
        if (config_[i] == 0)
        {
            continue;
        }
        for (std::size_t j = 0; j < config_.size(); ++j)
        {
            if (config_[j] != 0 || j == i)
            {
                continue;
            }
            if (delta_hop(i, j) < -tol)
            {
                return false;
            }
        }
    }
    return true;
}

void ChargeState::quench()
{
    const std::size_t n = config_.size();
    const double tol = system_->parameters().stability_tolerance;
    bool changed = true;
    while (changed)
    {
        changed = false;
        // single flips along the steepest descent of F
        for (std::size_t i = 0; i < n; ++i)
        {
            if (delta_flip(i) < -tol)
            {
                commit_flip(i);
                changed = true;
            }
        }
        // single hops
        for (std::size_t i = 0; i < n; ++i)
        {
            if (config_[i] == 0)
            {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j)
            {
                if (config_[j] != 0 || j == i)
                {
                    continue;
                }
                if (delta_hop(i, j) < -tol)
                {
                    commit_hop(i, j);
                    changed = true;
                    break;
                }
            }
        }
    }
}

double ChargeState::electrostatic_energy() const
{
    // Each pair V_ij n_i n_j appears in both v_i and v_j: E = 1/2 sum v_i n_i.
    // The external term W_i n_i appears ONCE in v_i, so it must be counted
    // again before halving (adds exactly 0.0 on a defect-free system).
    double twice = 0.0;
    for (std::size_t i = 0; i < config_.size(); ++i)
    {
        if (config_[i] != 0)
        {
            twice += v_[i] + system_->external_potential(i);
        }
    }
    return 0.5 * twice;
}

double ChargeState::grand_potential() const
{
    return electrostatic_energy() +
           system_->parameters().mu_minus * static_cast<double>(num_charges_);
}

void ChargeState::testkit_adopt_config_skip_cache_update(ChargeConfig config)
{
    require_matching_size(config.size(), system_->size());
    config_ = std::move(config);
    num_charges_ = 0;
    for (const auto c : config_)
    {
        num_charges_ += c;
    }
    // deliberately NO rebuild(): this models the skipped cache update
}

void ChargeState::testkit_rebuild_ignore_external()
{
    const std::size_t n = config_.size();
    // rebuild() minus the external starting value: the pre-defect kernel
    // verbatim, i.e. an engine that forgot the defect background
    for (std::size_t i = 0; i < n; ++i)
    {
        double v = 0.0;
        for (std::size_t j = 0; j < n; ++j)
        {
            if (j != i && config_[j] != 0)
            {
                v += system_->potential(i, j);
            }
        }
        v_[i] = v;
    }
}

}  // namespace bestagon::phys
