/// \file ground_state.hpp
/// \brief The common engine-selection surface of the ground-state engines.
///
/// Four engines share one entry point: `find_ground_state(system, engine)`.
/// Engine::automatic (the default everywhere) defers to
/// `SimulationParameters::engine`, so the whole simulation stack —
/// check_operational, the operational-domain sweep, the gate designer,
/// flow validation — switches engines through a single parameter knob.
/// Stochastic engines derive their seed and thread count from the system's
/// parameters (anneal_seed, num_threads).

#pragma once

#include "core/run_control.hpp"
#include "phys/model.hpp"

namespace bestagon::phys
{

/// Resolves Engine::automatic against \p params.engine. A params.engine that
/// is itself `automatic` (a caller never set it) falls back to the stack
/// default, Engine::exact; any other value passes through unchanged.
[[nodiscard]] Engine resolve_engine(Engine engine, const SimulationParameters& params);

/// True for the heuristic, seed-dependent engines (simanneal, quicksim) —
/// the ones a validation loop may retry with a rotated seed. Resolve
/// `automatic` first.
[[nodiscard]] bool stochastic_engine(Engine engine);

/// Runs the selected ground-state engine on \p system. Stochastic engines
/// take their seed from params.anneal_seed and their thread count from
/// params.num_threads; exact engines are parameter-free beyond the
/// degeneracy window (params.energy_tolerance).
[[nodiscard]] GroundStateResult find_ground_state(const SiDBSystem& system,
                                                  Engine engine = Engine::automatic,
                                                  const core::RunBudget& run = {});

}  // namespace bestagon::phys
