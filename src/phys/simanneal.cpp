#include "phys/simanneal.hpp"

#include "core/thread_pool.hpp"
#include "phys/charge_state.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

namespace bestagon::phys
{

namespace
{

/// One independent annealing run with its own RNG stream. Returns the
/// quenched (hence physically valid) configuration and its grand potential.
std::pair<ChargeConfig, double> anneal_instance(const SiDBSystem& system,
                                                const SimAnnealParameters& params,
                                                std::uint64_t seed, const core::RunBudget& run)
{
    const std::size_t n = system.size();
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> uni{0.0, 1.0};

    // random initial population
    ChargeConfig config(n, 0);
    for (auto& c : config)
    {
        c = (rng() & 1) != 0 ? 1 : 0;
    }
    // Kernel with an O(n^2) one-time rebuild; every proposed move is then an
    // O(1) cached delta and every accepted move an O(n) commit (the naive
    // path paid O(n) local-potential sums per *proposal*).
    ChargeState state{system, std::move(config)};
    double temperature = params.initial_temperature;

    for (unsigned step = 0; step < params.steps_per_instance; ++step)
    {
        // poll the budget sparsely; bailing out early only shortens the
        // schedule — the quench below still guarantees a valid configuration
        if (run.limited() && (step & 63U) == 0 && run.stopped())
        {
            break;
        }
        // move: flip a random site, or hop a random electron
        const bool do_hop = (rng() & 3U) == 0;  // 25% hops
        double delta = 0.0;
        std::size_t i = rng() % n;
        std::size_t j = n;
        if (do_hop && state.charge(i) != 0)
        {
            j = rng() % n;
            if (state.charge(j) == 0 && j != i)
            {
                delta = state.delta_hop(i, j);
            }
            else
            {
                j = n;  // invalid hop; fall through to flip
            }
        }
        if (j == n)
        {
            delta = state.delta_flip(i);
        }

        if (delta <= 0.0 || uni(rng) < std::exp(-delta / temperature))
        {
            if (j != n)
            {
                state.commit_hop(i, j);
            }
            else
            {
                state.commit_flip(i);
            }
        }
        temperature *= params.cooling_rate;
    }

    // exact-resync before the descent: the quench decisions run on freshly
    // summed potentials, exactly as the pre-kernel SiDBSystem::quench did
    state.rebuild();
    state.quench();  // guarantees physical validity
    ChargeConfig quenched = state.config();
    const double f_final = system.grand_potential(quenched);
    return {std::move(quenched), f_final};
}

}  // namespace

GroundStateResult simulated_annealing(const SiDBSystem& system, const SimAnnealParameters& params,
                                      const core::RunBudget& run)
{
    const std::size_t n = system.size();
    GroundStateResult best;
    best.grand_potential = std::numeric_limits<double>::infinity();
    best.complete = false;
    best.degeneracy = 1;

    if (n == 0)
    {
        best.grand_potential = 0.0;
        return best;
    }

    // Every instance is seeded from (params.seed, instance) and runs on its
    // own stream, so the fan-out is embarrassingly parallel and the outcome
    // does not depend on the thread count. Slots are pre-filled with +inf so
    // instances skipped after a stop can never win the reduction below.
    std::vector<std::pair<ChargeConfig, double>> instances(
        params.num_instances, {ChargeConfig{}, std::numeric_limits<double>::infinity()});
    core::parallel_for(params.num_threads, params.num_instances, run, [&](std::size_t i) {
        instances[i] = anneal_instance(system, params, core::derive_seed(params.seed, i), run);
    });
    best.cancelled = run.stopped();

    // serial reduction in instance order (strict '<' keeps the lowest index
    // among ties, matching the legacy serial loop)
    for (auto& [config, f] : instances)
    {
        if (f < best.grand_potential)
        {
            best.grand_potential = f;
            best.config = std::move(config);
        }
    }

    // num_instances == 0 (or no instance recorded) leaves best.config empty;
    // guard the energy evaluation the same way exhaustive_ground_state does.
    best.electrostatic = best.config.empty() ? 0.0 : system.electrostatic_energy(best.config);
    return best;
}

}  // namespace bestagon::phys
