#include "phys/simanneal.hpp"

#include "core/thread_pool.hpp"
#include "phys/charge_state.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace bestagon::phys
{

namespace
{

/// One independent annealing run with its own RNG stream. Returns the
/// quenched (hence physically valid) configuration and its grand potential.
std::pair<ChargeConfig, double> anneal_instance(const SiDBSystem& system,
                                                const SimAnnealParameters& params,
                                                std::uint64_t seed, const core::RunBudget& run)
{
    const std::size_t n = system.size();
    std::mt19937_64 rng{seed};
    std::uniform_real_distribution<double> uni{0.0, 1.0};

    // random initial population
    ChargeConfig config(n, 0);
    for (auto& c : config)
    {
        c = (rng() & 1) != 0 ? 1 : 0;
    }
    // Kernel with an O(n^2) one-time rebuild; every proposed move is then an
    // O(1) cached delta and every accepted move an O(n) commit (the naive
    // path paid O(n) local-potential sums per *proposal*).
    ChargeState state{system, std::move(config)};
    double temperature = params.initial_temperature;

    for (unsigned step = 0; step < params.steps_per_instance; ++step)
    {
        // poll the budget sparsely; bailing out early only shortens the
        // schedule — the quench below still guarantees a valid configuration
        if (run.limited() && (step & 63U) == 0 && run.stopped())
        {
            break;
        }
        // move: flip a random site (75%) or hop a random electron (25%). An
        // invalid hop — neutral source, or an occupied/equal target — is a
        // REJECTED proposal: the schedule advances and nothing moves. (It
        // used to fall through to delta_flip(i), which silently re-weighted
        // the move mix toward flips whose index happened to be drawn in a
        // hop attempt, a state-dependent bias.)
        const bool do_hop = (rng() & 3U) == 0;  // 25% hops
        const std::size_t i = rng() % n;
        std::size_t hop_to = n;  // n = the proposal is a flip
        bool rejected = false;
        double delta = 0.0;
        if (do_hop)
        {
            if (state.charge(i) == 0)
            {
                rejected = true;  // no electron on the source site
            }
            else
            {
                const std::size_t j = rng() % n;
                if (state.charge(j) == 0 && j != i)
                {
                    hop_to = j;
                    delta = state.delta_hop(i, j);
                }
                else
                {
                    rejected = true;  // occupied or equal target
                }
            }
        }
        else
        {
            delta = state.delta_flip(i);
        }

        if (!rejected && (delta <= 0.0 || uni(rng) < std::exp(-delta / temperature)))
        {
            if (hop_to != n)
            {
                state.commit_hop(i, hop_to);
            }
            else
            {
                state.commit_flip(i);
            }
        }
        temperature *= params.cooling_rate;
    }

    // exact-resync before the descent: the quench decisions run on freshly
    // summed potentials, exactly as the pre-kernel SiDBSystem::quench did
    state.rebuild();
    state.quench();  // guarantees physical validity
    ChargeConfig quenched = state.config();
    const double f_final = system.grand_potential(quenched);
    return {std::move(quenched), f_final};
}

}  // namespace

GroundStateResult simulated_annealing(const SiDBSystem& system, const SimAnnealParameters& params,
                                      const core::RunBudget& run)
{
    if (!(params.initial_temperature > 0.0) || !std::isfinite(params.initial_temperature))
    {
        throw std::invalid_argument{"SimAnnealParameters: non-positive initial_temperature " +
                                    std::to_string(params.initial_temperature)};
    }
    const std::size_t n = system.size();
    GroundStateResult best;
    best.grand_potential = std::numeric_limits<double>::infinity();
    best.complete = false;
    best.degeneracy = 1;

    if (n == 0)
    {
        best.grand_potential = 0.0;
        return best;
    }

    // Every instance is seeded from (params.seed, instance) and runs on its
    // own stream, so the fan-out is embarrassingly parallel and the outcome
    // does not depend on the thread count. Slots are pre-filled with +inf so
    // instances skipped after a stop can never win the reduction below.
    std::vector<std::pair<ChargeConfig, double>> instances(
        params.num_instances, {ChargeConfig{}, std::numeric_limits<double>::infinity()});
    core::parallel_for(params.num_threads, params.num_instances, run, [&](std::size_t i) {
        instances[i] = anneal_instance(system, params, core::derive_seed(params.seed, i), run);
    });
    best.cancelled = run.stopped();

    // serial reduction in instance order (strict '<' keeps the lowest index
    // among ties, matching the legacy serial loop)
    std::size_t best_index = instances.size();
    for (std::size_t i = 0; i < instances.size(); ++i)
    {
        if (instances[i].second < best.grand_potential)
        {
            best.grand_potential = instances[i].second;
            best_index = i;
        }
    }

    if (best_index < instances.size())
    {
        // Degeneracy: the number of *distinct* configurations among the
        // instances that tie the best energy within energy_tolerance —
        // duplicates of one minimum count once, so this is a genuine lower
        // bound on the true degeneracy (it used to be hardcoded to 1).
        const double tol = system.parameters().energy_tolerance;
        std::vector<const ChargeConfig*> tied;
        // bestagon-lint: no-poll-ok(post-run degeneracy count over the already-collected instance results; all engine work is done)
        for (const auto& [config, f] : instances)
        {
            if (f <= best.grand_potential + tol)
            {
                const bool seen = std::any_of(tied.begin(), tied.end(),
                                              [&](const ChargeConfig* c) { return *c == config; });
                if (!seen)
                {
                    tied.push_back(&config);
                }
            }
        }
        best.degeneracy = static_cast<std::uint64_t>(tied.size());
        best.config = std::move(instances[best_index].first);
    }

    // num_instances == 0 (or no instance recorded) leaves best.config empty;
    // guard the energy evaluation the same way exhaustive_ground_state does.
    best.electrostatic = best.config.empty() ? 0.0 : system.electrostatic_energy(best.config);
    return best;
}

}  // namespace bestagon::phys
