/// \file charge_state.hpp
/// \brief The incremental charge-state kernel shared by every ground-state
///        engine in the physical-simulation layer.
///
/// Every decision the flow makes about a gate — operational checks,
/// operational-domain sweeps, gate-designer scoring — bottoms out in
/// ground-state search over the SiDB charge model, and every such search is
/// a sequence of *local moves*: single charge flips and single electron
/// hops. The cost of a move depends only on the local potentials
///
///     v_i = W_i + sum_{j != i} V_ij n_j          [eV]
///
/// (W_i is the configuration-independent external potential of charged
/// fabrication defects, 0 on a pristine surface — see defect.hpp; it is the
/// summation's starting value in every rebuild and rides along through all
/// incremental commits at zero extra cost)
///
/// of the sites it touches:
///
///     flip i (0 -> -):   dF = mu + v_i
///     flip i (- -> 0):   dF = -(mu + v_i)
///     hop i -> j:        dF = v_j - v_i - V_ij
///
/// `ChargeState` owns a charge configuration together with an incrementally
/// maintained cache of all v_i, so move deltas are O(1) lookups
/// (`delta_flip`, `delta_hop`) and committing a move is a single O(n) row
/// update (`commit_flip`, `commit_hop`) instead of the O(n) *per evaluation*
/// the naive `SiDBSystem::local_potential` costs. Stability checks and the
/// greedy quench reuse the cache, dropping from O(n^3) to O(n^2).
///
/// **Invariants.**
///  - After construction, `assign` or `rebuild`, `local_potential(i)` is
///    bit-identical to `SiDBSystem::local_potential(config(), i)`: the cache
///    is rebuilt with the exact summation order of the naive evaluator.
///  - `commit_flip(i)` applies `v_j += s * V_ij` for all j != i in ascending
///    j order (s = +1 when i becomes negative, -1 when it becomes neutral) —
///    the same floating-point operation sequence the pre-kernel exhaustive
///    engine performed, so branch-and-bound trajectories are unchanged.
///    Committing the same flip twice replays the identical add/subtract
///    pair, which makes the exhaustive engine's branch/unwind discipline
///    expressible directly on the kernel.
///  - Incremental updates accumulate at most ulp-level drift relative to a
///    fresh summation; `rebuild()` is the exact-resync hook for callers that
///    need naive-path fidelity at a decision boundary (e.g. the quench that
///    follows an annealing schedule). The `charge_state_differential`
///    testkit oracle pins the drift below 1e-12 under long random move
///    sequences.
///
/// The kernel deliberately does NOT track the grand potential across
/// commits: engines that need exact energy bookkeeping across a
/// branch/unwind pair (the exhaustive search) save and restore their own
/// partial sums, and reported energies always come from a fresh
/// `SiDBSystem::grand_potential` evaluation. `grand_potential()` here is an
/// O(n) identity over the cache (F = 1/2 sum_i v_i n_i + mu N) intended for
/// diagnostics and tests.

#pragma once

#include "phys/model.hpp"

#include <cstdint>
#include <vector>

namespace bestagon::phys
{

/// Charge configuration plus an incrementally maintained local-potential
/// cache over a fixed `SiDBSystem`. Copyable; the referenced system must
/// outlive the kernel.
class ChargeState
{
  public:
    /// All-neutral configuration (every v_i = 0 — exact).
    explicit ChargeState(const SiDBSystem& system);

    /// Adopts \p config and rebuilds the cache (O(n^2), exact). Throws
    /// std::invalid_argument when the configuration size does not match the
    /// system (a debug-only assert before — silent OOB in release builds).
    ChargeState(const SiDBSystem& system, ChargeConfig config);

    /// Replaces the configuration and rebuilds the cache (O(n^2), exact).
    /// Throws std::invalid_argument on a size mismatch, like the adopting
    /// constructor.
    void assign(ChargeConfig config);

    /// Exact-resync hook: recomputes every v_i from scratch with the naive
    /// evaluator's summation order, discarding any incremental drift.
    void rebuild();

    [[nodiscard]] std::size_t size() const noexcept { return config_.size(); }
    [[nodiscard]] const SiDBSystem& system() const noexcept { return *system_; }
    [[nodiscard]] const ChargeConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::uint8_t charge(std::size_t i) const { return config_[i]; }
    [[nodiscard]] std::size_t num_charges() const noexcept { return num_charges_; }

    /// Cached local potential v_i in eV — O(1).
    [[nodiscard]] double local_potential(std::size_t i) const { return v_[i]; }

    /// Grand-potential change of flipping site \p i — O(1).
    [[nodiscard]] double delta_flip(std::size_t i) const
    {
        const double level = system_->parameters().mu_minus + v_[i];
        return config_[i] == 0 ? level : -level;
    }

    /// Grand-potential change of hopping the electron on \p from to the
    /// neutral site \p to — O(1). Pre: charge(from) != 0, charge(to) == 0.
    [[nodiscard]] double delta_hop(std::size_t from, std::size_t to) const
    {
        return v_[to] - v_[from] - system_->potential(from, to);
    }

    /// Commits a single charge flip of site \p i: updates the configuration
    /// and applies the site's potential row to the cache — O(n).
    void commit_flip(std::size_t i);

    /// Commits an electron hop \p from -> \p to in one fused row pass —
    /// O(n). Pre: charge(from) != 0, charge(to) == 0.
    void commit_hop(std::size_t from, std::size_t to);

    /// SiQAD population stability over the cached potentials — O(n).
    [[nodiscard]] bool population_stable() const;

    /// No single electron hop lowers F, over the cached potentials — O(n^2).
    [[nodiscard]] bool configuration_stable() const;

    [[nodiscard]] bool physically_valid() const
    {
        return population_stable() && configuration_stable();
    }

    /// Greedy descent to the nearest local minimum of F under single flips
    /// and hops — O(n^2) per sweep (the naive quench was O(n^3)). Visits
    /// moves in the exact order of the pre-kernel `SiDBSystem::quench`.
    /// Guarantees `physically_valid()` on return.
    void quench();

    /// Electrostatic part of F from the cache: 1/2 sum_i v_i n_i — O(n).
    [[nodiscard]] double electrostatic_energy() const;

    /// Grand potential from the cache: electrostatic + mu N — O(n).
    [[nodiscard]] double grand_potential() const;

    /// **Testkit-only fault hook** (`skip_cache_update` mutants): adopts
    /// \p config WITHOUT rebuilding the cache, modelling a kernel that
    /// forgot its update step. Production code must never call this; the
    /// `charge_state_differential` oracle proves the fault is detected.
    void testkit_adopt_config_skip_cache_update(ChargeConfig config);

    /// **Testkit-only fault hook** (`ignore_defect_potentials` mutants):
    /// rebuilds the cache WITHOUT the external-potential starting values,
    /// modelling an engine that forgot the defect background. Production
    /// code must never call this; the `defect_differential` oracle proves
    /// the fault is detected.
    void testkit_rebuild_ignore_external();

  private:
    const SiDBSystem* system_;
    ChargeConfig config_;
    std::vector<double> v_;
    std::size_t num_charges_{0};
};

}  // namespace bestagon::phys
