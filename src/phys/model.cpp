#include "phys/model.hpp"

#include "phys/charge_state.hpp"
#include "phys/defect.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace bestagon::phys
{

void validate_parameters(const SimulationParameters& params)
{
    if (!(params.epsilon_r > 0.0) || !std::isfinite(params.epsilon_r))
    {
        throw std::invalid_argument{"SimulationParameters: non-positive epsilon_r " +
                                    std::to_string(params.epsilon_r)};
    }
    if (!(params.lambda_tf > 0.0) || !std::isfinite(params.lambda_tf))
    {
        throw std::invalid_argument{"SimulationParameters: non-positive lambda_tf " +
                                    std::to_string(params.lambda_tf)};
    }
}

double screened_coulomb(double r_nm, const SimulationParameters& params)
{
    assert(r_nm > 0.0);
    return coulomb_k / (params.epsilon_r * r_nm) * std::exp(-r_nm / params.lambda_tf);
}

SiDBSystem::SiDBSystem(std::vector<SiDBSite> sites, const SimulationParameters& params)
    : sites_{std::move(sites)}, params_{params}
{
    validate_parameters(params_);
    const std::size_t n = sites_.size();
    potentials_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
    {
        for (std::size_t j = i + 1; j < n; ++j)
        {
            const double v = screened_coulomb(distance_nm(sites_[i], sites_[j]), params_);
            potentials_[i * n + j] = v;
            potentials_[j * n + i] = v;
        }
    }
}

SiDBSystem::SiDBSystem(std::vector<SiDBSite> sites, const SimulationParameters& params,
                       const DefectSurface& defects)
    : SiDBSystem{std::move(sites), params}
{
    for (const auto& s : sites_)
    {
        if (const auto* d = defects.blocking_defect(s); d != nullptr)
        {
            std::ostringstream out;
            out << "SiDBSystem: site (" << s.n << ", " << s.m << ", " << s.l
                << ") is blocked by the defect at (" << d->site.n << ", " << d->site.m << ", "
                << d->site.l << ")";
            throw std::invalid_argument{out.str()};
        }
    }
    external_ = defects.external_potentials(sites_, params_);
}

SiDBSystem SiDBSystem::from_potentials(std::vector<SiDBSite> sites,
                                       const SimulationParameters& params,
                                       std::vector<double> potentials,
                                       std::vector<double> external)
{
    if (!external.empty() && external.size() != sites.size())
    {
        throw std::invalid_argument{"SiDBSystem: external potential row has " +
                                    std::to_string(external.size()) + " entries but there are " +
                                    std::to_string(sites.size()) + " sites"};
    }
    auto system = from_potentials(std::move(sites), params, std::move(potentials));
    system.external_ = std::move(external);
    return system;
}

SiDBSystem SiDBSystem::from_potentials(std::vector<SiDBSite> sites,
                                       const SimulationParameters& params,
                                       std::vector<double> potentials)
{
    validate_parameters(params);
    assert(potentials.size() == sites.size() * sites.size());
    SiDBSystem system;
    system.sites_ = std::move(sites);
    system.params_ = params;
    system.potentials_ = std::move(potentials);
#ifndef NDEBUG
    // spot-check the caller's assembly against the evaluating constructor
    const std::size_t n = system.sites_.size();
    for (std::size_t i = 0; i < n; ++i)
    {
        assert(system.potentials_[i * n + i] == 0.0);
        const std::size_t j = (i + 1) % n;
        if (j != i)
        {
            assert(system.potentials_[i * n + j] ==
                   screened_coulomb(distance_nm(system.sites_[i], system.sites_[j]),
                                    system.params_));
        }
    }
#endif
    return system;
}

double SiDBSystem::electrostatic_energy(const ChargeConfig& config) const
{
    assert(config.size() == sites_.size());
    double energy = 0.0;
    for (std::size_t i = 0; i < sites_.size(); ++i)
    {
        if (config[i] == 0)
        {
            continue;
        }
        for (std::size_t j = i + 1; j < sites_.size(); ++j)
        {
            if (config[j] != 0)
            {
                energy += potential(i, j);
            }
        }
    }
    // defect background: each charge pays its site's external potential once
    if (!external_.empty())
    {
        for (std::size_t i = 0; i < sites_.size(); ++i)
        {
            if (config[i] != 0)
            {
                energy += external_[i];
            }
        }
    }
    return energy;
}

double SiDBSystem::grand_potential(const ChargeConfig& config) const
{
    double charges = 0.0;
    for (const auto c : config)
    {
        charges += c;
    }
    return electrostatic_energy(config) + params_.mu_minus * charges;
}

double SiDBSystem::local_potential(const ChargeConfig& config, std::size_t i) const
{
    // starts from the defect background W_i (0.0 for a defect-free system,
    // preserving the pre-defect floating-point sequence bit-for-bit)
    double v = external_potential(i);
    for (std::size_t j = 0; j < sites_.size(); ++j)
    {
        if (j != i && config[j] != 0)
        {
            v += potential(i, j);
        }
    }
    return v;
}

bool SiDBSystem::population_stable(const ChargeConfig& config) const
{
    return ChargeState{*this, config}.population_stable();
}

bool SiDBSystem::configuration_stable(const ChargeConfig& config) const
{
    return ChargeState{*this, config}.configuration_stable();
}

bool SiDBSystem::physically_valid(const ChargeConfig& config) const
{
    const ChargeState state{*this, config};
    return state.population_stable() && state.configuration_stable();
}

void SiDBSystem::quench(ChargeConfig& config) const
{
    ChargeState state{*this, std::move(config)};
    state.quench();
    config = state.config();
}

}  // namespace bestagon::phys
