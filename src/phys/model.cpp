#include "phys/model.hpp"

#include "phys/charge_state.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace bestagon::phys
{

double screened_coulomb(double r_nm, const SimulationParameters& params)
{
    assert(r_nm > 0.0);
    return coulomb_k / (params.epsilon_r * r_nm) * std::exp(-r_nm / params.lambda_tf);
}

SiDBSystem::SiDBSystem(std::vector<SiDBSite> sites, const SimulationParameters& params)
    : sites_{std::move(sites)}, params_{params}
{
    const std::size_t n = sites_.size();
    potentials_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
    {
        for (std::size_t j = i + 1; j < n; ++j)
        {
            const double v = screened_coulomb(distance_nm(sites_[i], sites_[j]), params_);
            potentials_[i * n + j] = v;
            potentials_[j * n + i] = v;
        }
    }
}

SiDBSystem SiDBSystem::from_potentials(std::vector<SiDBSite> sites,
                                       const SimulationParameters& params,
                                       std::vector<double> potentials)
{
    assert(potentials.size() == sites.size() * sites.size());
    SiDBSystem system;
    system.sites_ = std::move(sites);
    system.params_ = params;
    system.potentials_ = std::move(potentials);
#ifndef NDEBUG
    // spot-check the caller's assembly against the evaluating constructor
    const std::size_t n = system.sites_.size();
    for (std::size_t i = 0; i < n; ++i)
    {
        assert(system.potentials_[i * n + i] == 0.0);
        const std::size_t j = (i + 1) % n;
        if (j != i)
        {
            assert(system.potentials_[i * n + j] ==
                   screened_coulomb(distance_nm(system.sites_[i], system.sites_[j]),
                                    system.params_));
        }
    }
#endif
    return system;
}

double SiDBSystem::electrostatic_energy(const ChargeConfig& config) const
{
    assert(config.size() == sites_.size());
    double energy = 0.0;
    for (std::size_t i = 0; i < sites_.size(); ++i)
    {
        if (config[i] == 0)
        {
            continue;
        }
        for (std::size_t j = i + 1; j < sites_.size(); ++j)
        {
            if (config[j] != 0)
            {
                energy += potential(i, j);
            }
        }
    }
    return energy;
}

double SiDBSystem::grand_potential(const ChargeConfig& config) const
{
    double charges = 0.0;
    for (const auto c : config)
    {
        charges += c;
    }
    return electrostatic_energy(config) + params_.mu_minus * charges;
}

double SiDBSystem::local_potential(const ChargeConfig& config, std::size_t i) const
{
    double v = 0.0;
    for (std::size_t j = 0; j < sites_.size(); ++j)
    {
        if (j != i && config[j] != 0)
        {
            v += potential(i, j);
        }
    }
    return v;
}

bool SiDBSystem::population_stable(const ChargeConfig& config) const
{
    return ChargeState{*this, config}.population_stable();
}

bool SiDBSystem::configuration_stable(const ChargeConfig& config) const
{
    return ChargeState{*this, config}.configuration_stable();
}

bool SiDBSystem::physically_valid(const ChargeConfig& config) const
{
    const ChargeState state{*this, config};
    return state.population_stable() && state.configuration_stable();
}

void SiDBSystem::quench(ChargeConfig& config) const
{
    ChargeState state{*this, std::move(config)};
    state.quench();
    config = state.config();
}

}  // namespace bestagon::phys
