#include "phys/model.hpp"

#include <cassert>
#include <cmath>

namespace bestagon::phys
{

namespace
{
/// Numerical tolerance shared by stability checks and quenching so that a
/// quenched configuration is always physically valid.
constexpr double stability_tolerance = 1e-9;
}  // namespace

double screened_coulomb(double r_nm, const SimulationParameters& params)
{
    assert(r_nm > 0.0);
    return coulomb_k / (params.epsilon_r * r_nm) * std::exp(-r_nm / params.lambda_tf);
}

SiDBSystem::SiDBSystem(std::vector<SiDBSite> sites, const SimulationParameters& params)
    : sites_{std::move(sites)}, params_{params}
{
    const std::size_t n = sites_.size();
    potentials_.assign(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
    {
        for (std::size_t j = i + 1; j < n; ++j)
        {
            const double v = screened_coulomb(distance_nm(sites_[i], sites_[j]), params_);
            potentials_[i * n + j] = v;
            potentials_[j * n + i] = v;
        }
    }
}

double SiDBSystem::electrostatic_energy(const ChargeConfig& config) const
{
    assert(config.size() == sites_.size());
    double energy = 0.0;
    for (std::size_t i = 0; i < sites_.size(); ++i)
    {
        if (config[i] == 0)
        {
            continue;
        }
        for (std::size_t j = i + 1; j < sites_.size(); ++j)
        {
            if (config[j] != 0)
            {
                energy += potential(i, j);
            }
        }
    }
    return energy;
}

double SiDBSystem::grand_potential(const ChargeConfig& config) const
{
    double charges = 0.0;
    for (const auto c : config)
    {
        charges += c;
    }
    return electrostatic_energy(config) + params_.mu_minus * charges;
}

double SiDBSystem::local_potential(const ChargeConfig& config, std::size_t i) const
{
    double v = 0.0;
    for (std::size_t j = 0; j < sites_.size(); ++j)
    {
        if (j != i && config[j] != 0)
        {
            v += potential(i, j);
        }
    }
    return v;
}

bool SiDBSystem::population_stable(const ChargeConfig& config) const
{
    for (std::size_t i = 0; i < sites_.size(); ++i)
    {
        const double level = params_.mu_minus + local_potential(config, i);
        if (config[i] != 0 && level > stability_tolerance)
        {
            return false;  // negative site whose transition level is above E_F
        }
        if (config[i] == 0 && level < -stability_tolerance)
        {
            return false;  // neutral site that would rather hold an electron
        }
    }
    return true;
}

bool SiDBSystem::configuration_stable(const ChargeConfig& config) const
{
    for (std::size_t i = 0; i < sites_.size(); ++i)
    {
        if (config[i] == 0)
        {
            continue;
        }
        const double vi = local_potential(config, i);
        for (std::size_t j = 0; j < sites_.size(); ++j)
        {
            if (config[j] != 0 || j == i)
            {
                continue;
            }
            // hop i -> j: delta E = v_j - v_i - V_ij
            const double delta = local_potential(config, j) - vi - potential(i, j);
            if (delta < -stability_tolerance)
            {
                return false;
            }
        }
    }
    return true;
}

void SiDBSystem::quench(ChargeConfig& config) const
{
    const std::size_t n = sites_.size();
    bool changed = true;
    while (changed)
    {
        changed = false;
        // single flips along the steepest descent of F
        for (std::size_t i = 0; i < n; ++i)
        {
            const double v = local_potential(config, i);
            const double delta = config[i] == 0 ? (params_.mu_minus + v) : -(params_.mu_minus + v);
            if (delta < -stability_tolerance)
            {
                config[i] ^= 1;
                changed = true;
            }
        }
        // single hops
        for (std::size_t i = 0; i < n; ++i)
        {
            if (config[i] == 0)
            {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j)
            {
                if (config[j] != 0 || j == i)
                {
                    continue;
                }
                const double delta =
                    local_potential(config, j) - local_potential(config, i) - potential(i, j);
                if (delta < -stability_tolerance)
                {
                    config[i] = 0;
                    config[j] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }
}

}  // namespace bestagon::phys
