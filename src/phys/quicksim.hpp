/// \file quicksim.hpp
/// \brief QuickSim-style heuristic ground-state finder — physically informed
///        initial charge distributions plus adaptive electron hopping
///        (arXiv 2303.03422), built directly on the charge-state kernel.
///
/// Where SimAnneal starts every instance from a uniform coin-flip and needs
/// thousands of cooling steps to forget it, QuickSim starts from the charge
/// distribution the *physics* suggests: a max-population quench that greedily
/// charges the site with the lowest transition level mu + v_i until no site
/// wants another electron. Instances then differ only by how many electrons
/// are randomly removed from that base fill, and a short adaptive-hopping
/// phase redistributes the population — hop targets are sampled with
/// Boltzmann weights over the kernel's cached hop deltas, so moves that
/// lower F are exponentially preferred. Two orders of magnitude fewer moves
/// per instance than the annealing schedule at comparable accuracy.

#pragma once

#include "core/run_control.hpp"
#include "phys/model.hpp"

#include <cstdint>

namespace bestagon::phys
{

/// Effort and adaptive-hopping parameters of the QuickSim engine.
struct QuickSimParameters
{
    unsigned num_instances{16};       ///< independent hopping runs
    unsigned hops_per_instance{384};  ///< adaptive hops per instance

    /// Initial temperature (in eV) of the Boltzmann hop-target weights
    /// exp(-delta_hop / T); cooled geometrically per hop.
    double hop_temperature{0.1};
    double hop_cooling{0.98};  ///< geometric cooling factor per hop

    std::uint64_t seed{0x5eed};

    /// Worker threads across the independent instances: 0 = hardware
    /// concurrency, 1 = serial. Every instance draws from its own RNG stream
    /// seeded by core::derive_seed(seed, instance), so the result is
    /// bit-identical for any thread count.
    unsigned num_threads{0};
};

/// Runs the QuickSim search: one shared deterministic max-population quench,
/// then `num_instances` instances that each remove a varying number of
/// random electrons from the base fill and redistribute the population by
/// adaptive hopping, followed by a greedy quench. Returns the best
/// physically valid configuration found (complete = false, like every
/// heuristic engine); `degeneracy` is the number of *distinct* tying
/// configurations across the instances — a lower bound on the true
/// degeneracy. With num_instances == 0 the result is well-defined and
/// empty: no config, grand_potential = +inf, electrostatic = 0.
///
/// A limited \p run budget is polled between instances and every 64 hops
/// within an instance; on stop, running instances are quenched (every
/// contributed configuration stays physically valid), remaining instances
/// are skipped, and the result carries cancelled = true. An unlimited budget
/// leaves the result bit-identical to the unbudgeted call.
[[nodiscard]] GroundStateResult quicksim_ground_state(const SiDBSystem& system,
                                                      const QuickSimParameters& params = {},
                                                      const core::RunBudget& run = {});

}  // namespace bestagon::phys
