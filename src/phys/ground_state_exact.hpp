/// \file ground_state_exact.hpp
/// \brief Population-bounded exact ground-state search (arXiv 2308.04487,
///        "The Need for Speed") — the default exact engine.
///
/// The legacy exhaustive engine prunes only on energy: its optimistic
/// completion bound is weak on dense canvases where many unassigned sites
/// still *look* chargeable, so past ~30 sites whole exponential subtrees
/// survive the bound. This engine adds *physically informed* pruning derived
/// purely from population stability, computed once up front:
///
///  - **Forced charge states.** With every pair potential V_ij >= 0, the
///    local potential of a site is bracketed by the charges that are already
///    certain: v_min_i counts only forced-negative sites, v_max_i adds every
///    still-undecided site. If mu + v_max_i < -tol the site is negative in
///    *every* population-stable configuration (forced_neg); if
///    mu + v_min_i > tol it is neutral in every one (forced_neut). Each
///    newly forced site tightens the brackets of the others, so the
///    classification runs to a fixpoint.
///  - **Population window.** For the sites still undecided, prefix sums of
///    the sorted interaction rows bound how many of them can / must be
///    charged simultaneously; infeasible total populations are excluded,
///    yielding a window [min_charges, max_charges] on the number of
///    electrons of any population-stable configuration.
///
/// The search itself is the exhaustive engine's branch-and-bound verbatim —
/// same site order, same seeding, same floating-point operation sequence on
/// every surviving branch, same leaf discipline — with three additional
/// gates that only ever remove population-UNSTABLE subtrees: the negative
/// branch is skipped on forced_neut sites and when max_charges is reached,
/// the neutral branch is skipped on forced_neg sites, and a subtree is
/// abandoned when even charging every remaining site cannot reach
/// min_charges. Configurations in pruned subtrees always fail the leaf
/// validity check, so the results (ground state, energy, degeneracy) are
/// bit-identical to `exhaustive_ground_state` — just reached exponentially
/// faster.

#pragma once

#include "core/run_control.hpp"
#include "phys/model.hpp"

#include <cstdint>
#include <vector>

namespace bestagon::phys
{

/// Per-site population-stability classification plus global population
/// bounds, precomputed once per system (see file comment).
struct PopulationWindow
{
    /// Per-site status: 0 = undecided, 1 = forced negative (DB- in every
    /// population-stable configuration), 2 = forced neutral.
    std::vector<std::uint8_t> status;

    /// Inclusive bounds on the total electron count of any population-stable
    /// configuration (forced-negative sites included).
    std::size_t min_charges{0};
    std::size_t max_charges{0};
};

/// Per-site status values of PopulationWindow::status.
inline constexpr std::uint8_t site_undecided = 0;
inline constexpr std::uint8_t site_forced_negative = 1;
inline constexpr std::uint8_t site_forced_neutral = 2;

/// Computes the forced-site fixpoint and the population window — O(n^2 log n)
/// once per system, independent of the search.
[[nodiscard]] PopulationWindow compute_population_window(const SiDBSystem& system);

/// Population-bounded exact ground-state search. Bit-identical results to
/// `exhaustive_ground_state` (same best configuration, grand potential and
/// degeneracy count within \p degeneracy_tolerance), proven by the
/// `ground_state_differential` testkit oracle; completes dense canvases of
/// 40+ sites that the exhaustive engine cannot finish in the same budget.
///
/// A limited \p run budget is polled sparsely; on stop the best
/// configuration found so far is returned with complete = false and
/// cancelled = true. An unlimited budget leaves the search bit-identical.
[[nodiscard]] GroundStateResult exact_ground_state(const SiDBSystem& system,
                                                   double degeneracy_tolerance,
                                                   const core::RunBudget& run = {});

/// Overload reading the degeneracy window from the system's parameters
/// (SimulationParameters::energy_tolerance), like the exhaustive engine.
[[nodiscard]] GroundStateResult exact_ground_state(const SiDBSystem& system,
                                                   const core::RunBudget& run = {});

/// **Testkit-only fault hook**: runs the search under an externally supplied
/// (possibly WRONG) population window instead of the computed one, and
/// without the quenched-seed bound (the seed could silently hand the search
/// the very configuration the mutant window prunes). The
/// `shrink_exact_population_window` mutant narrows the window so the search
/// prunes valid configurations; the differential oracle proves the fault is
/// detected. Production code must never call this.
[[nodiscard]] GroundStateResult
testkit_exact_ground_state_with_window(const SiDBSystem& system, double degeneracy_tolerance,
                                       const PopulationWindow& window,
                                       const core::RunBudget& run = {});

}  // namespace bestagon::phys
