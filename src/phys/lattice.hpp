/// \file lattice.hpp
/// \brief The H-Si(100)-2x1 surface lattice hosting silicon dangling bonds.
///
/// SiDBs occupy hydrogen sites of the hydrogen-passivated silicon (100)
/// surface with 2x1 dimer reconstruction. Following SiQAD, a site is
/// addressed by (n, m, l): column n, dimer row m, and sublattice index
/// l in {0, 1} selecting the upper/lower atom of the dimer pair.
///
/// Physical pitches: columns are 3.84 Å apart, dimer rows 7.68 Å, and the
/// two atoms of a dimer pair are 2.25 Å apart. All positions in nanometers.

#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace bestagon::phys
{

/// Lattice pitch along x (between columns), in nm.
inline constexpr double lattice_pitch_x = 0.384;
/// Lattice pitch along y (between dimer rows), in nm.
inline constexpr double lattice_pitch_y = 0.768;
/// Intra-dimer distance along y, in nm.
inline constexpr double dimer_pitch = 0.225;

/// A dangling-bond site in SiQAD lattice coordinates.
struct SiDBSite
{
    std::int32_t n{0};  ///< column index
    std::int32_t m{0};  ///< dimer row index
    std::int32_t l{0};  ///< sublattice index (0 or 1)

    constexpr auto operator<=>(const SiDBSite&) const = default;

    /// Physical x position in nm.
    [[nodiscard]] constexpr double x() const noexcept { return n * lattice_pitch_x; }
    /// Physical y position in nm.
    [[nodiscard]] constexpr double y() const noexcept { return m * lattice_pitch_y + l * dimer_pitch; }

    /// Translates the site by whole lattice vectors.
    [[nodiscard]] constexpr SiDBSite translated(std::int32_t dn, std::int32_t dm) const noexcept
    {
        return SiDBSite{n + dn, m + dm, l};
    }
};

/// Euclidean distance between two sites in nm.
[[nodiscard]] inline double distance_nm(const SiDBSite& a, const SiDBSite& b)
{
    const double dx = a.x() - b.x();
    const double dy = a.y() - b.y();
    return std::sqrt(dx * dx + dy * dy);
}

}  // namespace bestagon::phys
