/// \file operational_domain.hpp
/// \brief Operational-domain evaluation: sweep physical parameters and record
///        where a gate design remains operational. This implements the
///        "streamlined operational domain evaluation framework" listed as
///        future work in the paper's conclusion.

#pragma once

#include "phys/operational.hpp"

#include <vector>

namespace bestagon::phys
{

/// Which two parameters span the domain grid.
enum class DomainAxes : std::uint8_t
{
    epsilon_r_vs_lambda_tf,
    mu_vs_epsilon_r
};

struct DomainSweep
{
    DomainAxes axes{DomainAxes::epsilon_r_vs_lambda_tf};
    double x_min{1.0}, x_max{10.0};
    unsigned x_steps{10};
    double y_min{1.0}, y_max{10.0};
    unsigned y_steps{10};
};

struct DomainPoint
{
    double x{0.0};
    double y{0.0};
    bool operational{false};
    std::uint64_t patterns_correct{0};
    bool evaluated{false};  ///< false when the point was skipped by a stop
};

struct OperationalDomain
{
    DomainSweep sweep;
    std::vector<DomainPoint> points;  ///< row-major, y outer
    bool cancelled{false};            ///< the sweep was cut by a run budget

    /// Fraction of grid points that are operational.
    [[nodiscard]] double coverage() const;
};

/// Evaluates the operational domain of \p design on a grid. Parameters not
/// spanned by the grid are taken from \p base, including base.num_threads,
/// which fans the independent grid-point simulations out across workers
/// (0 = hardware concurrency, 1 = serial; the point order and every result
/// are identical for any thread count).
[[nodiscard]] OperationalDomain compute_operational_domain(const GateDesign& design,
                                                           const SimulationParameters& base,
                                                           const DomainSweep& sweep,
                                                           Engine engine = Engine::automatic,
                                                           const core::RunBudget& run = {});

/// Defect-aware operational domain: every grid point is checked against the
/// same \p defects surface (the sweep varies physical parameters, not the
/// surface). If a defect blocks an instance site, every point is
/// non-operational regardless of parameters. An empty surface reproduces
/// the defect-free overload bit-for-bit.
[[nodiscard]] OperationalDomain compute_operational_domain(const GateDesign& design,
                                                           const SimulationParameters& base,
                                                           const DomainSweep& sweep,
                                                           const DefectSurface& defects,
                                                           Engine engine = Engine::automatic,
                                                           const core::RunBudget& run = {});

}  // namespace bestagon::phys
