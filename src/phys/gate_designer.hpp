/// \file gate_designer.hpp
/// \brief Automatic gate design by stochastic canvas search.
///
/// The paper's Bestagon tiles were designed "with the assistance of a
/// reinforcement learning agent [28] which is allowed to place SiDBs within
/// the logic design canvas and toggle through input combinations to check
/// for logic correctness", followed by manual review. This module provides
/// the equivalent automation: it searches subsets of candidate canvas
/// positions until the resulting design passes the operational check.

#pragma once

#include "phys/operational.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace bestagon::phys
{

struct DesignerOptions
{
    unsigned min_canvas_dots{1};
    unsigned max_canvas_dots{6};
    unsigned max_iterations{20000};  ///< random subsets / local moves tried (per restart)
    std::uint64_t seed{0xbe57a60};

    /// Independent search restarts. Restart 0 runs with `seed` verbatim
    /// (bit-identical to the single-restart search); restart r > 0 runs with
    /// core::derive_seed(seed, r). The restart with the lowest index that
    /// finds an operational design wins, so the outcome is deterministic.
    unsigned num_restarts{1};

    /// Worker threads across restarts: 0 = hardware concurrency, 1 = serial.
    /// (Candidate scoring inside each restart parallelizes over input
    /// patterns according to SimulationParameters::num_threads.)
    unsigned num_threads{0};

    /// Extra full search attempts when all restarts of an attempt fail.
    /// Every retry rotates the base seed deterministically (derive_seed over
    /// a salted stream that cannot collide with the restart streams), so a
    /// bounded amount of fresh randomness is spent before giving up. The
    /// winning attempt index is recorded in DesignerResult::retries_used.
    unsigned max_retries{0};

    /// Cooperative cancellation / deadline: polled between search iterations
    /// and between pattern simulations. A stopped run returns std::nullopt.
    core::RunBudget run{};

    /// Optional fabrication-defect surface (not owned; must outlive the
    /// search). Candidates on blocked sites are excluded up front, every
    /// candidate design is scored with the charged defects' external
    /// potentials, and a skeleton that is itself blocked returns
    /// std::nullopt immediately. nullptr = defect-free search.
    const DefectSurface* defects{nullptr};
};

struct DesignerResult
{
    GateDesign design;             ///< skeleton + chosen canvas dots
    std::vector<SiDBSite> canvas;  ///< the chosen canvas dots
    unsigned iterations_used{0};   ///< iterations within the winning restart
    unsigned restart_used{0};      ///< index of the winning restart
    unsigned retries_used{0};      ///< full-search retries before the winner
};

/// Searches for canvas dots (chosen from \p candidates) that make
/// \p skeleton operational under \p params. The skeleton must already
/// contain wires, pairs, drivers, perturbers and expected functions.
/// Throws std::invalid_argument if the skeleton has more than
/// max_gate_inputs inputs.
[[nodiscard]] std::optional<DesignerResult> design_gate(const GateDesign& skeleton,
                                                        const std::vector<SiDBSite>& candidates,
                                                        const DesignerOptions& options,
                                                        const SimulationParameters& params);

}  // namespace bestagon::phys
