#include "phys/operational_domain.hpp"

#include "core/thread_pool.hpp"

namespace bestagon::phys
{

double OperationalDomain::coverage() const
{
    if (points.empty())
    {
        return 0.0;
    }
    std::size_t ok = 0;
    for (const auto& p : points)
    {
        if (p.operational)
        {
            ++ok;
        }
    }
    return static_cast<double>(ok) / static_cast<double>(points.size());
}

namespace
{

OperationalDomain compute_operational_domain_impl(const GateDesign& design,
                                                  const SimulationParameters& base,
                                                  const DomainSweep& sweep,
                                                  const DefectSurface* defects, Engine engine,
                                                  const core::RunBudget& run)
{
    OperationalDomain domain;
    domain.sweep = sweep;

    const auto x_at = [&](unsigned i) {
        return sweep.x_steps <= 1
                   ? sweep.x_min
                   : sweep.x_min + (sweep.x_max - sweep.x_min) * i / (sweep.x_steps - 1);
    };
    const auto y_at = [&](unsigned j) {
        return sweep.y_steps <= 1
                   ? sweep.y_min
                   : sweep.y_min + (sweep.y_max - sweep.y_min) * j / (sweep.y_steps - 1);
    };

    // grid points are mutually independent simulations; evaluate them
    // concurrently, each writing its own row-major slot
    const std::size_t total = static_cast<std::size_t>(sweep.x_steps) * sweep.y_steps;
    domain.points.resize(total);
    // bestagon-lint: no-poll-ok(coordinate pre-fill so points skipped after a stop still plot; the simulation fan-out below polls via the run-aware parallel_for)
    for (std::size_t index = 0; index < total; ++index)
    {
        // pre-fill coordinates so points skipped after a stop still plot
        domain.points[index].x = x_at(static_cast<unsigned>(index % sweep.x_steps));
        domain.points[index].y = y_at(static_cast<unsigned>(index / sweep.x_steps));
    }
    core::parallel_for(base.num_threads, total, run, [&](std::size_t index) {
        const unsigned i = static_cast<unsigned>(index % sweep.x_steps);
        const unsigned j = static_cast<unsigned>(index / sweep.x_steps);
        SimulationParameters params = base;
        DomainPoint point;
        point.x = x_at(i);
        point.y = y_at(j);
        if (sweep.axes == DomainAxes::epsilon_r_vs_lambda_tf)
        {
            params.epsilon_r = point.x;
            params.lambda_tf = point.y;
        }
        else
        {
            params.mu_minus = point.x;
            params.epsilon_r = point.y;
        }
        // check_operational builds one GateInstanceCache per call, i.e. one
        // pattern-invariant potential matrix per grid point — the potentials
        // depend on (epsilon_r, lambda_tf, mu) and cannot be shared across
        // points, but within a point the 2^k patterns share the fixed block
        const auto result = defects != nullptr
                                ? check_operational(design, params, *defects, engine, run)
                                : check_operational(design, params, engine, run);
        point.operational = result.operational && !result.cancelled;
        point.patterns_correct = result.patterns_correct;
        // a blocked point counts as evaluated: the verdict (non-operational,
        // unfabricable) is final even though nothing was simulated
        point.evaluated = !result.cancelled;
        domain.points[index] = point;
    });
    domain.cancelled = run.stopped();
    return domain;
}

}  // namespace

OperationalDomain compute_operational_domain(const GateDesign& design, const SimulationParameters& base,
                                             const DomainSweep& sweep, Engine engine,
                                             const core::RunBudget& run)
{
    return compute_operational_domain_impl(design, base, sweep, nullptr, engine, run);
}

OperationalDomain compute_operational_domain(const GateDesign& design, const SimulationParameters& base,
                                             const DomainSweep& sweep, const DefectSurface& defects,
                                             Engine engine, const core::RunBudget& run)
{
    return compute_operational_domain_impl(design, base, sweep, &defects, engine, run);
}

}  // namespace bestagon::phys
