#include "phys/defect.hpp"

#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

namespace bestagon::phys
{

namespace
{

/// splitmix64 — the project-wide deterministic stream (core::derive_seed and
/// testkit::Rng use the same finalizer), replicated here so the phys layer
/// does not depend on the concurrency library for sampling.
struct SplitMix
{
    std::uint64_t state;

    std::uint64_t next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform draw in [0, 1) with 53 random bits.
    double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Uniform draw in [0, bound) (bound > 0; modulo bias is irrelevant at
    /// lattice-region scales against 2^64).
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

/// Salt separating the count draw from the position/kind stream, so adding
/// a density axis never perturbs the defect positions.
constexpr std::uint64_t count_salt = 0xc0'07'de'fe'c7'5a'17ULL;

}  // namespace

void DefectSurface::add(const SurfaceDefect& defect)
{
    if (defect.exclusion_radius_nm < 0.0)
    {
        throw std::invalid_argument{"DefectSurface: negative exclusion radius " +
                                    std::to_string(defect.exclusion_radius_nm) + " nm"};
    }
    if (defect.kind == DefectKind::charged && !std::isfinite(defect.charge))
    {
        throw std::invalid_argument{"DefectSurface: charged defect with non-finite charge"};
    }
    defects_.push_back(defect);
    if (defect.kind == DefectKind::charged)
    {
        ++num_charged_;
    }
}

DefectSurface DefectSurface::prefix(std::size_t count) const
{
    DefectSurface out;
    const std::size_t take = count < defects_.size() ? count : defects_.size();
    for (std::size_t i = 0; i < take; ++i)
    {
        out.add(defects_[i]);
    }
    return out;
}

bool DefectSurface::blocks(const SiDBSite& site) const
{
    return blocking_defect(site) != nullptr;
}

const SurfaceDefect* DefectSurface::blocking_defect(const SiDBSite& site) const
{
    for (const auto& d : defects_)
    {
        if (site == d.site || distance_nm(site, d.site) <= d.exclusion_radius_nm)
        {
            return &d;
        }
    }
    return nullptr;
}

bool DefectSurface::blocks_any(const std::vector<SiDBSite>& sites) const
{
    for (const auto& s : sites)
    {
        if (blocks(s))
        {
            return true;
        }
    }
    return false;
}

double DefectSurface::external_potential(const SiDBSite& site,
                                         const SimulationParameters& params) const
{
    // W = sum_d (-q_d) * V(r): a q = -1 defect contributes exactly the
    // screened-Coulomb repulsion another DB- at the same spot would.
    // Insertion-order summation — external_potentials and the kernel
    // rebuild must see the identical floating-point sequence.
    double w = 0.0;
    for (const auto& d : defects_)
    {
        if (d.kind == DefectKind::charged)
        {
            w += -d.charge * screened_coulomb(distance_nm(site, d.site), params);
        }
    }
    return w;
}

std::vector<double> DefectSurface::external_potentials(const std::vector<SiDBSite>& sites,
                                                       const SimulationParameters& params) const
{
    if (!has_charged())
    {
        return {};
    }
    std::vector<double> w;
    w.reserve(sites.size());
    for (const auto& s : sites)
    {
        w.push_back(external_potential(s, params));
    }
    return w;
}

double DefectRegion::area_nm2() const
{
    const double cols = static_cast<double>(n_max - n_min + 1);
    const double rows = static_cast<double>(m_max - m_min + 1);
    return cols * lattice_pitch_x * rows * lattice_pitch_y;
}

std::size_t DefectRegion::num_sites() const
{
    if (n_max < n_min || m_max < m_min)
    {
        return 0;
    }
    const auto cols = static_cast<std::size_t>(n_max - n_min + 1);
    const auto rows = static_cast<std::size_t>(m_max - m_min + 1);
    return 2 * cols * rows;
}

void DefectSampleParams::validate() const
{
    if (density_per_nm2 < 0.0 || !std::isfinite(density_per_nm2))
    {
        throw std::invalid_argument{"DefectSampleParams: negative defect density " +
                                    std::to_string(density_per_nm2) + " /nm^2"};
    }
    if (charged_fraction < 0.0 || charged_fraction > 1.0)
    {
        throw std::invalid_argument{"DefectSampleParams: charged_fraction " +
                                    std::to_string(charged_fraction) + " outside [0, 1]"};
    }
    if (!std::isfinite(charge))
    {
        throw std::invalid_argument{"DefectSampleParams: non-finite defect charge"};
    }
    if (exclusion_radius_nm < 0.0)
    {
        throw std::invalid_argument{"DefectSampleParams: negative exclusion radius " +
                                    std::to_string(exclusion_radius_nm) + " nm"};
    }
}

std::size_t defect_count_for_density(const DefectRegion& region, double density_per_nm2,
                                     std::uint64_t seed)
{
    if (density_per_nm2 < 0.0 || !std::isfinite(density_per_nm2))
    {
        throw std::invalid_argument{"defect_count_for_density: negative defect density " +
                                    std::to_string(density_per_nm2) + " /nm^2"};
    }
    const double lambda = density_per_nm2 * region.area_nm2();
    // Unbiased deterministic rounding: count = ceil(lambda - u) with one
    // uniform u per seed. E[count] = lambda, and for a FIXED seed the count
    // is monotone in the density — the property the nested yield sweep
    // needs (a higher density can never draw fewer defects).
    SplitMix mix{seed ^ count_salt};
    const double u = mix.unit();
    const double raw = std::ceil(lambda - u);
    const std::size_t cap = region.num_sites();
    if (raw <= 0.0)
    {
        return 0;
    }
    const auto count = static_cast<std::size_t>(raw);
    return count < cap ? count : cap;
}

DefectSurface sample_defect_surface(const DefectRegion& region, const DefectSampleParams& params,
                                    std::uint64_t seed, std::size_t count)
{
    params.validate();
    DefectSurface surface;
    const std::size_t cap = region.num_sites();
    const std::size_t want = count < cap ? count : cap;
    if (want == 0)
    {
        return surface;
    }

    const auto cols = static_cast<std::uint64_t>(region.n_max - region.n_min + 1);
    const auto rows = static_cast<std::uint64_t>(region.m_max - region.m_min + 1);
    SplitMix mix{seed};
    std::set<SiDBSite> used;
    while (used.size() < want)
    {
        SiDBSite site{region.n_min + static_cast<std::int32_t>(mix.below(cols)),
                      region.m_min + static_cast<std::int32_t>(mix.below(rows)),
                      static_cast<std::int32_t>(mix.below(2))};
        // duplicate positions are redrawn; at fab-realistic densities
        // (a few % of sites) rejections are rare, and the count cap above
        // guarantees termination even for a fully saturated region
        if (!used.insert(site).second)
        {
            continue;
        }
        SurfaceDefect d;
        d.site = site;
        if (mix.unit() < params.charged_fraction)
        {
            d.kind = DefectKind::charged;
            d.charge = params.charge;
            d.exclusion_radius_nm = 0.0;  // blocks its own site only
        }
        else
        {
            d.kind = DefectKind::structural;
            d.charge = 0.0;
            d.exclusion_radius_nm = params.exclusion_radius_nm;
        }
        surface.add(d);
    }
    return surface;
}

DefectSurface sample_defect_surface(const DefectRegion& region, const DefectSampleParams& params,
                                    std::uint64_t seed)
{
    return sample_defect_surface(region, params, seed,
                                 defect_count_for_density(region, params.density_per_nm2, seed));
}

}  // namespace bestagon::phys
