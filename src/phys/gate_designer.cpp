#include "phys/gate_designer.hpp"

#include "core/thread_pool.hpp"

#include <algorithm>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>

namespace bestagon::phys
{

namespace
{

/// Score of a candidate design: number of correct patterns, with partial
/// credit for defined-but-wrong outputs over undefined ones. The patterns
/// are independent simulations and are scored concurrently against one
/// shared pattern-invariant potential cache (the fixed block of V_ij is
/// evaluated once per candidate, not once per pattern).
unsigned score_design(const GateDesign& design, const SimulationParameters& params,
                      const DefectSurface* defects, const core::RunBudget& run)
{
    const std::uint64_t patterns = 1ULL << design.num_inputs();
    const GateInstanceCache cache{design, params, defects};
    if (cache.blocked())
    {
        return 0;  // unfabricable candidate (canvas filtering should prevent this)
    }
    std::vector<unsigned> pattern_scores(patterns, 0);
    core::parallel_for(params.num_threads, patterns, run, [&](std::size_t p) {
        const auto r = simulate_gate_pattern(cache, p, Engine::automatic, run);
        if (r.correct)
        {
            pattern_scores[p] = 2;
        }
        else if (std::none_of(r.output_states.begin(), r.output_states.end(),
                              [](PairState s) { return s == PairState::undefined; }))
        {
            pattern_scores[p] = 1;  // defined but wrong: closer than undefined
        }
    });
    unsigned score = 0;
    for (const unsigned s : pattern_scores)
    {
        score += s;
    }
    return score;
}

/// One full stochastic search from a given seed — the legacy serial loop.
std::optional<DesignerResult> run_search(const GateDesign& skeleton,
                                         const std::vector<SiDBSite>& usable,
                                         const DesignerOptions& options,
                                         const SimulationParameters& params, std::uint64_t seed)
{
    std::mt19937_64 rng{seed};
    const std::uint64_t patterns = 1ULL << skeleton.num_inputs();
    const unsigned perfect = static_cast<unsigned>(2 * patterns);

    const auto make_design = [&](const std::vector<SiDBSite>& canvas) {
        GateDesign d = skeleton;
        d.sites.insert(d.sites.end(), canvas.begin(), canvas.end());
        return d;
    };

    std::vector<SiDBSite> best_canvas;
    unsigned best_score = 0;

    for (unsigned iter = 0; iter < options.max_iterations; ++iter)
    {
        if (options.run.stopped())
        {
            return std::nullopt;
        }
        std::vector<SiDBSite> canvas;
        if (iter % 4 != 0 && !best_canvas.empty())
        {
            // local move: mutate the best canvas found so far
            canvas = best_canvas;
            const unsigned move = rng() % 3;
            if (move == 0 && canvas.size() > options.min_canvas_dots)
            {
                canvas.erase(canvas.begin() + static_cast<long>(rng() % canvas.size()));
            }
            else if (move == 1 && canvas.size() < options.max_canvas_dots)
            {
                canvas.push_back(usable[rng() % usable.size()]);
            }
            else if (!canvas.empty())
            {
                canvas[rng() % canvas.size()] = usable[rng() % usable.size()];
            }
        }
        else
        {
            // fresh random subset
            const unsigned k =
                options.min_canvas_dots +
                (options.max_canvas_dots > options.min_canvas_dots
                     ? static_cast<unsigned>(rng() % (options.max_canvas_dots - options.min_canvas_dots + 1))
                     : 0U);
            for (unsigned i = 0; i < k; ++i)
            {
                canvas.push_back(usable[rng() % usable.size()]);
            }
        }
        // drop duplicates
        std::sort(canvas.begin(), canvas.end());
        canvas.erase(std::unique(canvas.begin(), canvas.end()), canvas.end());
        if (canvas.size() < options.min_canvas_dots)
        {
            continue;
        }

        const auto design = make_design(canvas);
        const unsigned score = score_design(design, params, options.defects, options.run);
        if (options.run.stopped())
        {
            // a score cut short by a stop is not comparable; discard it
            return std::nullopt;
        }
        if (score > best_score)
        {
            best_score = score;
            best_canvas = canvas;
        }
        if (score == perfect)
        {
            DesignerResult result;
            result.design = design;
            result.canvas = canvas;
            result.iterations_used = iter + 1;
            return result;
        }
    }
    return std::nullopt;
}

}  // namespace

std::optional<DesignerResult> design_gate(const GateDesign& skeleton,
                                          const std::vector<SiDBSite>& candidates,
                                          const DesignerOptions& options,
                                          const SimulationParameters& params)
{
    if (skeleton.num_inputs() > max_gate_inputs)
    {
        throw std::invalid_argument{"design_gate: skeleton '" + skeleton.name + "' has " +
                                    std::to_string(skeleton.num_inputs()) +
                                    " inputs; the pattern enumeration supports at most " +
                                    std::to_string(max_gate_inputs)};
    }

    // a skeleton on a blocked site cannot be rescued by any canvas choice
    const DefectSurface* defects =
        options.defects != nullptr && !options.defects->empty() ? options.defects : nullptr;
    if (defects != nullptr)
    {
        const GateInstanceCache probe{skeleton, params, defects};
        if (probe.blocked())
        {
            return std::nullopt;
        }
    }

    // exclude candidates that collide with skeleton sites, drivers or
    // perturbers — or that sit on a defect-blocked site
    std::vector<SiDBSite> forbidden = skeleton.sites;
    for (const auto& drv : skeleton.drivers)
    {
        forbidden.push_back(drv.far_site);
        forbidden.push_back(drv.near_site);
    }
    forbidden.insert(forbidden.end(), skeleton.output_perturbers.begin(), skeleton.output_perturbers.end());
    std::vector<SiDBSite> usable;
    usable.reserve(candidates.size());
    for (const auto& c : candidates)
    {
        if (std::find(forbidden.begin(), forbidden.end(), c) != forbidden.end())
        {
            continue;
        }
        if (defects != nullptr && defects->blocks(c))
        {
            continue;
        }
        usable.push_back(c);
    }
    if (usable.empty())
    {
        return std::nullopt;
    }

    // independent restarts: restart 0 keeps the attempt's base seed verbatim
    // (the exact legacy trajectory on attempt 0); the winner is the lowest
    // restart index that succeeds, so the result is thread-count invariant.
    // No cross-restart cancellation — aborting a low-index restart because a
    // high-index one succeeded first would make the outcome
    // scheduling-dependent. Failed attempts retry (bounded by max_retries)
    // with a deterministically rotated base seed; the salt keeps the retry
    // streams disjoint from the derive_seed(seed, r) restart streams.
    constexpr std::uint64_t retry_salt = 0x52e7'52e7'52e7'52e7ULL;
    const unsigned restarts = std::max(1U, options.num_restarts);
    for (unsigned attempt = 0; attempt <= options.max_retries; ++attempt)
    {
        if (options.run.stopped())
        {
            return std::nullopt;
        }
        const std::uint64_t base_seed =
            attempt == 0 ? options.seed : core::derive_seed(options.seed ^ retry_salt, attempt);
        std::vector<std::optional<DesignerResult>> outcomes(restarts);
        core::parallel_for(options.num_threads, restarts, options.run, [&](std::size_t r) {
            const std::uint64_t seed = r == 0 ? base_seed : core::derive_seed(base_seed, r);
            outcomes[r] = run_search(skeleton, usable, options, params, seed);
        });

        for (unsigned r = 0; r < restarts; ++r)
        {
            if (outcomes[r].has_value())
            {
                outcomes[r]->restart_used = r;
                outcomes[r]->retries_used = attempt;
                return outcomes[r];
            }
        }
    }
    return std::nullopt;
}

}  // namespace bestagon::phys
