#include "phys/gate_designer.hpp"

#include <algorithm>
#include <random>

namespace bestagon::phys
{

namespace
{

/// Score of a candidate design: number of correct patterns, with partial
/// credit for defined-but-wrong outputs over undefined ones.
unsigned score_design(const GateDesign& design, const SimulationParameters& params)
{
    unsigned score = 0;
    const unsigned patterns = 1U << design.num_inputs();
    for (std::uint64_t p = 0; p < patterns; ++p)
    {
        const auto r = simulate_gate_pattern(design, p, params, Engine::exhaustive);
        if (r.correct)
        {
            score += 2;
        }
        else if (std::none_of(r.output_states.begin(), r.output_states.end(),
                              [](PairState s) { return s == PairState::undefined; }))
        {
            score += 1;  // defined but wrong: closer than undefined
        }
    }
    return score;
}

}  // namespace

std::optional<DesignerResult> design_gate(const GateDesign& skeleton,
                                          const std::vector<SiDBSite>& candidates,
                                          const DesignerOptions& options,
                                          const SimulationParameters& params)
{
    std::mt19937_64 rng{options.seed};
    const unsigned patterns = 1U << skeleton.num_inputs();
    const unsigned perfect = 2 * patterns;

    // exclude candidates that collide with skeleton sites, drivers or perturbers
    std::vector<SiDBSite> forbidden = skeleton.sites;
    for (const auto& drv : skeleton.drivers)
    {
        forbidden.push_back(drv.far_site);
        forbidden.push_back(drv.near_site);
    }
    forbidden.insert(forbidden.end(), skeleton.output_perturbers.begin(), skeleton.output_perturbers.end());
    std::vector<SiDBSite> usable;
    usable.reserve(candidates.size());
    for (const auto& c : candidates)
    {
        if (std::find(forbidden.begin(), forbidden.end(), c) == forbidden.end())
        {
            usable.push_back(c);
        }
    }
    if (usable.empty())
    {
        return std::nullopt;
    }

    const auto make_design = [&](const std::vector<SiDBSite>& canvas) {
        GateDesign d = skeleton;
        d.sites.insert(d.sites.end(), canvas.begin(), canvas.end());
        return d;
    };

    std::vector<SiDBSite> best_canvas;
    unsigned best_score = 0;

    for (unsigned iter = 0; iter < options.max_iterations; ++iter)
    {
        std::vector<SiDBSite> canvas;
        if (iter % 4 != 0 && !best_canvas.empty())
        {
            // local move: mutate the best canvas found so far
            canvas = best_canvas;
            const unsigned move = rng() % 3;
            if (move == 0 && canvas.size() > options.min_canvas_dots)
            {
                canvas.erase(canvas.begin() + static_cast<long>(rng() % canvas.size()));
            }
            else if (move == 1 && canvas.size() < options.max_canvas_dots)
            {
                canvas.push_back(usable[rng() % usable.size()]);
            }
            else if (!canvas.empty())
            {
                canvas[rng() % canvas.size()] = usable[rng() % usable.size()];
            }
        }
        else
        {
            // fresh random subset
            const unsigned k =
                options.min_canvas_dots +
                (options.max_canvas_dots > options.min_canvas_dots
                     ? static_cast<unsigned>(rng() % (options.max_canvas_dots - options.min_canvas_dots + 1))
                     : 0U);
            for (unsigned i = 0; i < k; ++i)
            {
                canvas.push_back(usable[rng() % usable.size()]);
            }
        }
        // drop duplicates
        std::sort(canvas.begin(), canvas.end());
        canvas.erase(std::unique(canvas.begin(), canvas.end()), canvas.end());
        if (canvas.size() < options.min_canvas_dots)
        {
            continue;
        }

        const auto design = make_design(canvas);
        const unsigned score = score_design(design, params);
        if (score > best_score)
        {
            best_score = score;
            best_canvas = canvas;
        }
        if (score == perfect)
        {
            DesignerResult result;
            result.design = design;
            result.canvas = canvas;
            result.iterations_used = iter + 1;
            return result;
        }
    }
    return std::nullopt;
}

}  // namespace bestagon::phys
