/// \file defect_sweep.hpp
/// \brief Monte-Carlo robustness sweep: gate yield under randomly sampled
///        fabrication defects.
///
/// For each defect density, N seeded defect surfaces are sampled around the
/// gate's footprint and the gate is checked operational on each. Samples
/// are COUPLED across densities: sample s draws one deterministic defect
/// stream and density k uses its first count_k defects (see
/// sample_defect_surface), so a defect present at a low density is still
/// present at every higher one. A sample therefore counts as operational at
/// density k only if it is operational at every density <= k — the yield
/// curve is a survival curve and monotonically non-increasing in density by
/// construction, and each sample stops simulating at its first failure.
///
/// Samples fan out on the thread pool with per-sample derived seeds, so the
/// curve is bit-identical for any thread count.

#pragma once

#include "core/run_control.hpp"
#include "phys/defect.hpp"
#include "phys/ground_state.hpp"
#include "phys/operational.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace bestagon::phys
{

/// Parameters of a Monte-Carlo defect yield sweep.
struct DefectSweepParams
{
    /// Defect densities to evaluate, in defects/nm^2, strictly ascending.
    /// Experimental H-Si(100) surfaces show roughly 0.001-0.1 defects/nm^2
    /// depending on preparation quality.
    std::vector<double> densities_per_nm2{0.001, 0.002, 0.005, 0.01, 0.02};

    unsigned samples{100};          ///< Monte-Carlo samples per density
    std::uint64_t seed{0xbe57a60d}; ///< base seed; sample s uses derive_seed(seed, s)

    double charged_fraction{0.5};   ///< fraction of charged (vs structural) defects
    double charge{-1.0};            ///< charge of charged defects, units of e
    double exclusion_radius_nm{0.8}; ///< exclusion radius of structural defects

    /// Sampling region margin around the gate's site bounding box, in nm.
    /// Defects farther out are screened to irrelevance (lambda_TF ~ 5 nm).
    double margin_nm{5.0};

    /// Worker threads across samples: 0 = hardware concurrency, 1 = serial.
    /// The per-sample operational checks always run serially (the
    /// parallelism budget is spent on samples), so results are identical
    /// for any value.
    unsigned num_threads{0};

    Engine engine{Engine::automatic}; ///< ground-state engine per pattern

    /// Throws std::invalid_argument on negative/non-finite densities, a
    /// non-ascending density list, charged_fraction outside [0, 1],
    /// non-finite charge, or a negative exclusion radius / margin.
    void validate() const;
};

/// Yield at one defect density.
struct YieldPoint
{
    double density_per_nm2{0.0};
    unsigned samples_evaluated{0};  ///< samples with a verdict at this density
    unsigned operational{0};        ///< samples operational at ALL densities <= this
    unsigned blocked{0};            ///< failed samples whose first failure was a blocked site

    /// Fraction of evaluated samples that survived (0 when none evaluated).
    [[nodiscard]] double yield() const
    {
        return samples_evaluated == 0
                   ? 0.0
                   : static_cast<double>(operational) / static_cast<double>(samples_evaluated);
    }
};

/// Result of a defect yield sweep over one gate design.
struct DefectSweepResult
{
    std::string gate_name;
    DefectRegion region;            ///< the sampled surface region
    std::vector<YieldPoint> points; ///< one per density, in input order
    bool cancelled{false};          ///< the sweep was cut by the run budget;
                                    ///< unevaluated samples are excluded from
                                    ///< every point's samples_evaluated
};

/// The defect sampling region of \p design: the bounding box of every site
/// any input pattern can instantiate, expanded by \p margin_nm.
[[nodiscard]] DefectRegion sweep_region(const GateDesign& design, double margin_nm);

/// Runs the Monte-Carlo yield sweep of \p design under \p params physics.
/// Bit-identical for any sweep.num_threads. Throws std::invalid_argument on
/// invalid sweep parameters (see DefectSweepParams::validate) and on designs
/// exceeding max_gate_inputs.
[[nodiscard]] DefectSweepResult defect_yield_sweep(const GateDesign& design,
                                                   const SimulationParameters& params,
                                                   const DefectSweepParams& sweep,
                                                   const core::RunBudget& run = {});

/// Serializes \p result as a pretty-printed JSON object (the yield-curve
/// artifact published by tools/defect_sweep and the CI bench smoke step).
[[nodiscard]] std::string to_json(const DefectSweepResult& result);

}  // namespace bestagon::phys
