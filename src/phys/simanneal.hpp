/// \file simanneal.hpp
/// \brief Simulated-annealing ground-state finder — the reproduction of
///        SiQAD's *SimAnneal* engine [30] used throughout the paper's
///        gate validations (Figs. 1c and 5).

#pragma once

#include "core/run_control.hpp"
#include "phys/model.hpp"

#include <cstdint>

namespace bestagon::phys
{

/// Annealing schedule and effort parameters.
struct SimAnnealParameters
{
    unsigned num_instances{16};      ///< independent annealing runs
    unsigned steps_per_instance{4000};
    double initial_temperature{0.5};  ///< in eV (kT units of the acceptance rule)
    double cooling_rate{0.997};       ///< geometric cooling factor per step
    std::uint64_t seed{0x5eed};

    /// Worker threads across the independent annealing instances:
    /// 0 = hardware concurrency, 1 = serial. Every instance draws from its
    /// own RNG stream seeded by core::derive_seed(seed, instance), so the
    /// result is bit-identical for any thread count.
    unsigned num_threads{0};
};

/// Runs simulated annealing on the grand potential F with single-flip and
/// electron-hop moves, followed by a greedy quench of each instance. An
/// invalid hop proposal (neutral source, occupied or equal target) counts as
/// a rejected move — it does NOT fall through to a flip, which would bias
/// the move mix. Returns the best physically valid configuration found
/// (complete = false); `degeneracy` is the number of *distinct* tying
/// configurations across the instances — a lower bound on the true
/// degeneracy, never an exact count. With num_instances == 0 the result is
/// well-defined and empty: no config, grand_potential = +inf,
/// electrostatic = 0.
///
/// A limited \p run budget is polled between instances and every 64 steps
/// within an instance; on stop, running instances are quenched (so every
/// contributed configuration stays physically valid), remaining instances
/// are skipped, and the result carries cancelled = true. With an unlimited
/// budget the result is bit-identical to the unbudgeted call.
[[nodiscard]] GroundStateResult simulated_annealing(const SiDBSystem& system,
                                                    const SimAnnealParameters& params = {},
                                                    const core::RunBudget& run = {});

}  // namespace bestagon::phys
