/// \file simanneal.hpp
/// \brief Simulated-annealing ground-state finder — the reproduction of
///        SiQAD's *SimAnneal* engine [30] used throughout the paper's
///        gate validations (Figs. 1c and 5).

#pragma once

#include "phys/model.hpp"

#include <cstdint>

namespace bestagon::phys
{

/// Annealing schedule and effort parameters.
struct SimAnnealParameters
{
    unsigned num_instances{16};      ///< independent annealing runs
    unsigned steps_per_instance{4000};
    double initial_temperature{0.5};  ///< in eV (kT units of the acceptance rule)
    double cooling_rate{0.997};       ///< geometric cooling factor per step
    std::uint64_t seed{0x5eed};
};

/// Runs simulated annealing on the grand potential F with single-flip and
/// electron-hop moves, followed by a greedy quench of each instance. Returns
/// the best physically valid configuration found (complete = false).
[[nodiscard]] GroundStateResult simulated_annealing(const SiDBSystem& system,
                                                    const SimAnnealParameters& params = {});

}  // namespace bestagon::phys
