/// \file exhaustive.hpp
/// \brief Exhaustive (branch-and-bound) ground-state finder for SiDB charge
///        systems — the reproduction of SiQAD's exact ground-state engine.

#pragma once

#include "core/run_control.hpp"
#include "phys/model.hpp"

namespace bestagon::phys
{

/// Finds the configuration minimizing the grand potential F by a
/// branch-and-bound search over all 2^N two-state configurations.
///
/// Pruning exploits the monotonicity of local potentials: (1) a partial
/// configuration in which an already-negative site violates mu + v_i <= 0
/// can never become population stable, and (2) the optimistic completion
/// bound F_partial + sum_unassigned min(0, mu + v_i) never overestimates.
///
/// Practical up to roughly 40 sites for gate-sized structures.
/// The returned result also counts degenerate near-ground configurations
/// (within \p degeneracy_tolerance of the minimum).
///
/// The search runs on the shared incremental charge-state kernel
/// (charge_state.hpp): branching commits O(n) row updates to the cached
/// local potentials, prune/bound tests are O(1) cache reads, and leaf
/// validity checks cost O(n^2) instead of the naive O(n^3).
///
/// A limited \p run budget is polled sparsely during the search; on stop the
/// best configuration found so far is returned with complete = false and
/// cancelled = true. An unlimited budget leaves the search bit-identical.
[[nodiscard]] GroundStateResult exhaustive_ground_state(const SiDBSystem& system,
                                                        double degeneracy_tolerance,
                                                        const core::RunBudget& run = {});

/// Overload reading the degeneracy window from the system's parameters
/// (SimulationParameters::energy_tolerance) — the default everywhere since
/// the tolerance was hoisted out of the call sites.
[[nodiscard]] GroundStateResult exhaustive_ground_state(const SiDBSystem& system,
                                                        const core::RunBudget& run = {});

}  // namespace bestagon::phys
