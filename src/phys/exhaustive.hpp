/// \file exhaustive.hpp
/// \brief Exhaustive (branch-and-bound) ground-state finder for SiDB charge
///        systems — the reproduction of SiQAD's exact ground-state engine.

#pragma once

#include "core/run_control.hpp"
#include "phys/model.hpp"

namespace bestagon::phys
{

/// Finds the configuration minimizing the grand potential F by a
/// branch-and-bound search over all 2^N two-state configurations.
///
/// Pruning exploits the monotonicity of local potentials: (1) a partial
/// configuration in which an already-negative site violates mu + v_i <= 0
/// can never become population stable, and (2) the optimistic completion
/// bound F_partial + sum_unassigned min(0, mu + v_i) never overestimates.
///
/// Practical up to roughly 40 sites for gate-sized structures.
/// The returned result also counts degenerate near-ground configurations
/// (within \p degeneracy_tolerance of the minimum).
///
/// A limited \p run budget is polled sparsely during the search; on stop the
/// best configuration found so far is returned with complete = false and
/// cancelled = true. An unlimited budget leaves the search bit-identical.
[[nodiscard]] GroundStateResult exhaustive_ground_state(const SiDBSystem& system,
                                                        double degeneracy_tolerance = 1e-6,
                                                        const core::RunBudget& run = {});

}  // namespace bestagon::phys
