#include "phys/ground_state_exact.hpp"

#include "phys/charge_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace bestagon::phys
{

PopulationWindow compute_population_window(const SiDBSystem& system)
{
    const std::size_t n = system.size();
    const double mu = system.parameters().mu_minus;
    const double tol = system.parameters().stability_tolerance;

    PopulationWindow w;
    w.status.assign(n, site_undecided);

    // Forced-site fixpoint: each pass brackets every undecided site's local
    // potential by the charges that are already certain and forces the sites
    // whose bracket leaves only one stable charge state. Each newly forced
    // site tightens the brackets of the others; monotone, so at most n
    // passes flip anything.
    bool changed = true;
    while (changed)
    {
        changed = false;
        for (std::size_t i = 0; i < n; ++i)
        {
            if (w.status[i] != site_undecided)
            {
                continue;
            }
            // both brackets start from the defect background W_i (0 on a
            // pristine surface): it shifts every reachable v_i uniformly
            double v_min = system.external_potential(i);  // forced-negative neighbours only
            double v_undecided = 0.0;
            for (std::size_t j = 0; j < n; ++j)
            {
                if (j == i)
                {
                    continue;
                }
                if (w.status[j] == site_forced_negative)
                {
                    v_min += system.potential(i, j);
                }
                else if (w.status[j] == site_undecided)
                {
                    v_undecided += system.potential(i, j);
                }
            }
            const double v_max = v_min + v_undecided;
            if (mu + v_max < -tol)
            {
                // below E_F even with every possible neighbour charged:
                // a neutral i would violate population stability everywhere
                w.status[i] = site_forced_negative;
                changed = true;
            }
            else if (mu + v_min > tol)
            {
                // above E_F even with only the certain neighbours charged
                w.status[i] = site_forced_neutral;
                changed = true;
            }
        }
    }

    std::vector<std::size_t> undecided;
    std::size_t base = 0;
    for (std::size_t i = 0; i < n; ++i)
    {
        if (w.status[i] == site_forced_negative)
        {
            ++base;
        }
        else if (w.status[i] == site_undecided)
        {
            undecided.push_back(i);
        }
    }
    const std::size_t u = undecided.size();
    // defensive default: every undecided population allowed
    w.min_charges = base;
    w.max_charges = base + u;
    if (u == 0)
    {
        return w;
    }

    // Per undecided site: its forced-negative contribution plus prefix sums
    // of its sorted interaction row over the other undecided sites, so the
    // weakest/strongest possible v_i at a given population is an O(1) read.
    std::vector<double> v_forced(u, 0.0);
    std::vector<std::vector<double>> small(u), large(u);
    for (std::size_t a = 0; a < u; ++a)
    {
        const std::size_t i = undecided[a];
        v_forced[a] = system.external_potential(i);  // defect background
        for (std::size_t j = 0; j < n; ++j)
        {
            if (w.status[j] == site_forced_negative)
            {
                v_forced[a] += system.potential(i, j);
            }
        }
        std::vector<double> row;
        row.reserve(u - 1);
        for (std::size_t b = 0; b < u; ++b)
        {
            if (b != a)
            {
                row.push_back(system.potential(i, undecided[b]));
            }
        }
        std::sort(row.begin(), row.end());
        // small[a][k] = sum of the k smallest entries, large[a][k] of the
        // k largest (k = 0 .. u-1)
        small[a].assign(u, 0.0);
        large[a].assign(u, 0.0);
        for (std::size_t k = 1; k < u; ++k)
        {
            small[a][k] = small[a][k - 1] + row[k - 1];
            large[a][k] = large[a][k - 1] + row[row.size() - k];
        }
    }

    // Feasibility of charging exactly K undecided sites: every charged site
    // needs mu + v_i <= tol even in the *best* case (its K-1 weakest
    // neighbours charged), so at least K sites must satisfy that; and a site
    // that has mu + v_i < -tol even in the *worst* case (its K strongest
    // neighbours charged) cannot stay neutral, so at most K sites may.
    bool any_feasible = false;
    std::size_t k_min = 0;
    std::size_t k_max = u;
    for (std::size_t K = 0; K <= u; ++K)
    {
        std::size_t can_charge = 0;
        std::size_t must_charge = 0;
        const std::size_t others = std::min(K, u - 1);
        for (std::size_t a = 0; a < u; ++a)
        {
            if (K >= 1 && mu + v_forced[a] + small[a][K - 1] <= tol)
            {
                ++can_charge;
            }
            if (mu + v_forced[a] + large[a][others] < -tol)
            {
                ++must_charge;
            }
        }
        if ((K == 0 || can_charge >= K) && must_charge <= K)
        {
            if (!any_feasible)
            {
                k_min = K;
                any_feasible = true;
            }
            k_max = K;
        }
    }
    if (any_feasible)
    {
        w.min_charges = base + k_min;
        w.max_charges = base + k_max;
    }
    return w;
}

namespace
{

// The search state is the exhaustive engine's verbatim, plus the
// precomputed population window its three extra gates read.
struct SearchState
{
    const SiDBSystem* system;
    double mu;
    std::size_t n;
    ChargeState kernel;
    double partial_f;
    double best_f;
    ChargeConfig best_config;
    std::uint64_t degeneracy;
    double tolerance;
    const PopulationWindow* window;
    const core::RunBudget* run;
    std::uint64_t nodes;
    bool stopped;

    explicit SearchState(const SiDBSystem& sys) : kernel{sys} {}
};

void recurse(SearchState& s, std::size_t index)
{
    if (s.stopped)
    {
        return;
    }
    if (s.run->limited() && (++s.nodes & 4095U) == 0 && s.run->stopped())
    {
        s.stopped = true;
        return;
    }
    if (index == s.n)
    {
        if (s.partial_f <= s.best_f + s.tolerance)
        {
            if (s.kernel.physically_valid())
            {
                if (s.partial_f < s.best_f - s.tolerance)
                {
                    s.best_f = s.partial_f;
                    s.best_config = s.kernel.config();
                    s.degeneracy = 1;
                }
                else
                {
                    ++s.degeneracy;
                }
            }
        }
        return;
    }

    // population-reachability gate (integer-only, no float effect): even
    // charging every remaining site cannot reach the window's minimum, so
    // every leaf below is population unstable
    if (s.kernel.num_charges() + (s.n - index) < s.window->min_charges)
    {
        return;
    }

    // optimistic completion bound — identical to the exhaustive engine
    double bound = s.partial_f;
    for (std::size_t i = index; i < s.n; ++i)
    {
        bound += std::min(0.0, s.mu + s.kernel.local_potential(i));
    }
    if (bound > s.best_f + s.tolerance)
    {
        return;
    }

    // branch: negative first, gated on the window — a forced-neutral site is
    // never charged, and the population never exceeds the window's maximum.
    // On surviving branches the commit/viability/unwind sequence replays the
    // exhaustive engine's floating-point operations exactly.
    if (s.window->status[index] != site_forced_neutral &&
        s.kernel.num_charges() < s.window->max_charges)
    {
        const double delta = s.mu + s.kernel.local_potential(index);
        s.kernel.commit_flip(index);
        s.partial_f += delta;
        bool viable = true;
        for (std::size_t j = 0; j <= index; ++j)
        {
            if (s.kernel.charge(j) != 0 && s.mu + s.kernel.local_potential(j) > 1e-12)
            {
                viable = false;
                break;
            }
        }
        if (viable)
        {
            recurse(s, index + 1);
        }
        s.kernel.commit_flip(index);
        s.partial_f -= delta;
    }

    // branch: neutral, unless the site is charged in every stable config
    if (s.window->status[index] != site_forced_negative)
    {
        recurse(s, index + 1);
    }
}

GroundStateResult search_with_window(const SiDBSystem& system, double degeneracy_tolerance,
                                     const PopulationWindow& window, bool seed_from_quench,
                                     const core::RunBudget& run)
{
    const std::size_t n = system.size();
    SearchState s{system};
    s.system = &system;
    s.mu = system.parameters().mu_minus;
    s.n = n;
    s.partial_f = 0.0;
    s.best_f = std::numeric_limits<double>::infinity();
    s.degeneracy = 0;
    s.tolerance = degeneracy_tolerance;
    s.window = &window;
    s.run = &run;
    s.nodes = 0;
    s.stopped = false;

    // seed with a quenched all-negative start — the exhaustive engine's
    // seeding verbatim (the quenched seed is population stable, so the
    // window gates never exclude it and the recursion re-encounters it).
    // The testkit's wrong-window runs skip the seeding: it could silently
    // hand the search the very ground state the mutant window prunes.
    if (seed_from_quench)
    {
        ChargeConfig seed(n, 1);
        system.quench(seed);
        if (system.physically_valid(seed))
        {
            s.best_f = system.grand_potential(seed);
            s.best_config = seed;
        }
    }

    recurse(s, 0);

    GroundStateResult result;
    result.config = s.best_config;
    // fresh evaluation, not the accumulated partial sum — identical configs
    // therefore report bit-identical energies across the exact engines
    result.grand_potential =
        s.best_config.empty() ? s.best_f : system.grand_potential(s.best_config);
    result.electrostatic = s.best_config.empty() ? 0.0 : system.electrostatic_energy(s.best_config);
    result.degeneracy = std::max<std::uint64_t>(1, s.degeneracy);
    result.complete = !s.stopped;
    result.cancelled = s.stopped;
    return result;
}

}  // namespace

GroundStateResult exact_ground_state(const SiDBSystem& system, double degeneracy_tolerance,
                                     const core::RunBudget& run)
{
    return search_with_window(system, degeneracy_tolerance, compute_population_window(system), true,
                              run);
}

GroundStateResult exact_ground_state(const SiDBSystem& system, const core::RunBudget& run)
{
    return exact_ground_state(system, system.parameters().energy_tolerance, run);
}

GroundStateResult testkit_exact_ground_state_with_window(const SiDBSystem& system,
                                                         double degeneracy_tolerance,
                                                         const PopulationWindow& window,
                                                         const core::RunBudget& run)
{
    return search_with_window(system, degeneracy_tolerance, window, false, run);
}

}  // namespace bestagon::phys
