#include "phys/defect_sweep.hpp"

#include "core/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace bestagon::phys
{

void DefectSweepParams::validate() const
{
    if (densities_per_nm2.empty())
    {
        throw std::invalid_argument{"DefectSweepParams: empty density list"};
    }
    if (samples == 0)
    {
        throw std::invalid_argument{"DefectSweepParams: samples must be positive"};
    }
    double prev = -std::numeric_limits<double>::infinity();
    for (const double d : densities_per_nm2)
    {
        if (!(d >= 0.0) || !std::isfinite(d))
        {
            throw std::invalid_argument{"DefectSweepParams: negative or non-finite density " +
                                        std::to_string(d)};
        }
        if (d <= prev)
        {
            throw std::invalid_argument{
                "DefectSweepParams: densities must be strictly ascending (the survival-curve "
                "coupling walks them in order)"};
        }
        prev = d;
    }
    if (!(margin_nm >= 0.0) || !std::isfinite(margin_nm))
    {
        throw std::invalid_argument{"DefectSweepParams: negative or non-finite margin_nm " +
                                    std::to_string(margin_nm)};
    }
    // the per-defect knobs share the sampler's validation
    DefectSampleParams sample;
    sample.density_per_nm2 = densities_per_nm2.back();
    sample.charged_fraction = charged_fraction;
    sample.charge = charge;
    sample.exclusion_radius_nm = exclusion_radius_nm;
    sample.validate();
}

DefectRegion sweep_region(const GateDesign& design, double margin_nm)
{
    DefectRegion region;
    bool first = true;
    const auto extend = [&](const SiDBSite& s) {
        if (first)
        {
            region.n_min = region.n_max = s.n;
            region.m_min = region.m_max = s.m;
            first = false;
            return;
        }
        region.n_min = std::min(region.n_min, s.n);
        region.n_max = std::max(region.n_max, s.n);
        region.m_min = std::min(region.m_min, s.m);
        region.m_max = std::max(region.m_max, s.m);
    };
    for (const auto& s : design.sites)
    {
        extend(s);
    }
    for (const auto& drv : design.drivers)
    {
        extend(drv.far_site);
        extend(drv.near_site);
    }
    for (const auto& s : design.output_perturbers)
    {
        extend(s);
    }
    const auto dn = static_cast<std::int32_t>(std::ceil(margin_nm / lattice_pitch_x));
    const auto dm = static_cast<std::int32_t>(std::ceil(margin_nm / lattice_pitch_y));
    region.n_min -= dn;
    region.n_max += dn;
    region.m_min -= dm;
    region.m_max += dm;
    return region;
}

namespace
{

/// Verdict of one Monte-Carlo sample across the ascending density walk.
struct SampleOutcome
{
    bool evaluated{false};         ///< false when the run stopped mid-sample
    std::size_t first_failure{0};  ///< density index of the first failure; ==
                                   ///< densities.size() when it never failed
    bool failure_was_blocked{false};
};

/// One sample: walk the densities ascending over nested defect prefixes and
/// stop at the first failure (every higher density contains the defect
/// configuration that already failed, so the verdict is decided).
SampleOutcome evaluate_sample(const GateDesign& design, const SimulationParameters& params,
                              const DefectSweepParams& sweep, const DefectRegion& region,
                              std::uint64_t sample_seed, const core::RunBudget& run)
{
    DefectSampleParams sample_params;
    sample_params.charged_fraction = sweep.charged_fraction;
    sample_params.charge = sweep.charge;
    sample_params.exclusion_radius_nm = sweep.exclusion_radius_nm;

    // one deterministic stream per sample: the surface at density k is the
    // prefix of the full surface at the highest density
    std::vector<std::size_t> counts;
    counts.reserve(sweep.densities_per_nm2.size());
    for (const double density : sweep.densities_per_nm2)
    {
        counts.push_back(defect_count_for_density(region, density, sample_seed));
    }
    const DefectSurface full =
        sample_defect_surface(region, sample_params, sample_seed, counts.back());

    SampleOutcome outcome;
    outcome.first_failure = sweep.densities_per_nm2.size();
    for (std::size_t k = 0; k < sweep.densities_per_nm2.size(); ++k)
    {
        if (run.stopped())
        {
            return outcome;  // evaluated stays false: no verdict for this sample
        }
        // skip re-simulation when this density adds no defect over the last
        if (k > 0 && counts[k] == counts[k - 1])
        {
            continue;
        }
        const DefectSurface surface = full.prefix(counts[k]);
        const auto result = check_operational(design, params, surface, sweep.engine, run);
        if (result.cancelled)
        {
            return outcome;
        }
        if (!result.operational)
        {
            outcome.first_failure = k;
            outcome.failure_was_blocked = result.blocked;
            break;
        }
    }
    outcome.evaluated = true;
    return outcome;
}

}  // namespace

DefectSweepResult defect_yield_sweep(const GateDesign& design, const SimulationParameters& params,
                                     const DefectSweepParams& sweep, const core::RunBudget& run)
{
    sweep.validate();
    validate_parameters(params);
    if (design.num_inputs() > max_gate_inputs)
    {
        throw std::invalid_argument{"defect_yield_sweep: gate '" + design.name + "' has " +
                                    std::to_string(design.num_inputs()) +
                                    " inputs; the pattern enumeration supports at most " +
                                    std::to_string(max_gate_inputs)};
    }

    DefectSweepResult result;
    result.gate_name = design.name;
    result.region = sweep_region(design, sweep.margin_nm);
    result.points.resize(sweep.densities_per_nm2.size());
    for (std::size_t k = 0; k < result.points.size(); ++k)
    {
        result.points[k].density_per_nm2 = sweep.densities_per_nm2[k];
    }

    // the parallelism budget is spent across samples; each sample's
    // operational checks run serially so the fan-out is index-addressed and
    // bit-identical for any thread count
    SimulationParameters serial = params;
    serial.num_threads = 1;

    std::vector<SampleOutcome> outcomes(sweep.samples);
    core::parallel_for(sweep.num_threads, sweep.samples, run, [&](std::size_t s) {
        outcomes[s] =
            evaluate_sample(design, serial, sweep, result.region,
                            core::derive_seed(sweep.seed, s), run);
    });
    result.cancelled = run.stopped();

    // serial reduction in sample order: survival accounting per density
    for (const auto& outcome : outcomes)
    {
        if (!outcome.evaluated)
        {
            continue;
        }
        for (std::size_t k = 0; k < result.points.size(); ++k)
        {
            auto& point = result.points[k];
            ++point.samples_evaluated;
            if (outcome.first_failure > k)
            {
                ++point.operational;
            }
            else if (outcome.failure_was_blocked)
            {
                ++point.blocked;
            }
        }
    }
    return result;
}

std::string to_json(const DefectSweepResult& result)
{
    std::ostringstream out;
    out.precision(12);
    out << "{\n";
    out << "  \"gate\": \"" << result.gate_name << "\",\n";
    out << "  \"cancelled\": " << (result.cancelled ? "true" : "false") << ",\n";
    out << "  \"region\": {\"n_min\": " << result.region.n_min
        << ", \"n_max\": " << result.region.n_max << ", \"m_min\": " << result.region.m_min
        << ", \"m_max\": " << result.region.m_max
        << ", \"area_nm2\": " << result.region.area_nm2() << "},\n";
    out << "  \"points\": [\n";
    for (std::size_t k = 0; k < result.points.size(); ++k)
    {
        const auto& p = result.points[k];
        out << "    {\"density_per_nm2\": " << p.density_per_nm2
            << ", \"samples\": " << p.samples_evaluated << ", \"operational\": " << p.operational
            << ", \"blocked\": " << p.blocked << ", \"yield\": " << p.yield() << "}"
            << (k + 1 < result.points.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

}  // namespace bestagon::phys
