/// \file model.hpp
/// \brief Electrostatic model of SiDB charge systems (SiQAD-calibrated).
///
/// SiDBs are treated as two-state quantum dots (neutral DB0 or negative
/// DB-). Pairwise interaction is a Thomas-Fermi screened Coulomb potential
///   V(r) = k / (eps_r * r) * exp(-r / lambda_tf)   [eV, r in nm]
/// with k = e / (4 pi eps_0) = 1.43996 eV nm.
///
/// The grand potential of a charge configuration n (n_i in {0,1}) is
///   F(n) = sum_{i<j} V_ij n_i n_j + mu_minus * sum_i n_i,
/// where mu_minus = E(0/-) - E_F < 0 is the charge transition level of an
/// isolated DB relative to the Fermi energy. A configuration is *physically
/// valid* (metastable) if no single charge flip and no single electron hop
/// lowers F; the *ground state* minimizes F. Stationarity of F under flips
/// reproduces SiQAD's population-stability criterion (mu + v_i <=/>= 0).

#pragma once

#include "phys/lattice.hpp"

#include <cstdint>
#include <vector>

namespace bestagon::phys
{

/// Coulomb constant e / (4 pi eps_0) in eV nm.
inline constexpr double coulomb_k = 1.43996448;

/// Ground-state engine selection — the common surface every simulation entry
/// point (check_operational, operational-domain sweeps, gate-designer
/// scoring, flow validation) accepts. `automatic` defers to
/// SimulationParameters::engine, so a single knob switches the whole stack.
///
/// Exact engines (guaranteed global minimum + exact degeneracy):
///  - `exhaustive`: the legacy pair-pruned branch-and-bound (exhaustive.hpp),
///    kept as the differential-oracle reference.
///  - `exact`: the population-bounded search (ground_state_exact.hpp) — the
///    default. Bit-identical results to `exhaustive` (same seeding, same
///    float-op sequence on every surviving branch), but physically informed
///    pruning lets it complete canvases far past the exhaustive ceiling.
///
/// Heuristic engines (physically valid result, no optimality certificate):
///  - `simanneal`: SiQAD-style simulated annealing (simanneal.hpp).
///  - `quicksim`: max-population seeding + adaptive hopping (quicksim.hpp),
///    drastically fewer moves per instance than simanneal at equal accuracy.
enum class Engine : std::uint8_t
{
    automatic,   ///< use SimulationParameters::engine
    exhaustive,  ///< legacy pair-pruned branch-and-bound (exact)
    simanneal,   ///< simulated annealing (heuristic)
    quicksim,    ///< physically-informed seeding + adaptive hops (heuristic)
    exact        ///< population-bounded exact search (the default)
};

/// Physical simulation parameters (defaults per the paper's Fig. 5).
struct SimulationParameters
{
    double mu_minus{-0.32};   ///< (0/-) transition level relative to E_F, in eV
    double epsilon_r{5.6};    ///< relative permittivity
    double lambda_tf{5.0};    ///< Thomas-Fermi screening length, in nm

    /// Worker threads for the independent fan-out points of the simulation
    /// stack (input patterns in check_operational, grid points in
    /// compute_operational_domain, candidate scoring in design_gate).
    /// 0 = hardware concurrency, 1 = plain serial execution. Results are
    /// identical for every value — parallel work is index-addressed and
    /// seeds are derived deterministically per work item.
    unsigned num_threads{0};

    /// Ground-state engine used wherever a caller selects Engine::automatic
    /// (the default of check_operational, simulate_gate_pattern, the
    /// operational-domain sweep and the gate designer's scoring loop).
    Engine engine{Engine::exact};

    /// Base seed of the stochastic engines (simanneal, quicksim) when one is
    /// selected for ground-state searches. The default matches
    /// SimAnnealParameters::seed, so results are unchanged unless a caller
    /// rotates it (e.g. a bounded validation retry with a derive_seed-rotated
    /// stream).
    std::uint64_t anneal_seed{0x5eed};

    /// Numerical tolerance of the stability checks and the greedy quench:
    /// a move only counts as downhill when it lowers F by more than this, so
    /// a quenched configuration is always physically valid under the same
    /// tolerance. Shared by SiDBSystem, ChargeState and every engine.
    double stability_tolerance{1e-9};

    /// Energy window (in eV) within which two configurations count as
    /// degenerate — the exhaustive engine's degeneracy_tolerance and the
    /// accuracy bar the differential oracles hold the heuristic engines to.
    double energy_tolerance{1e-6};
};

/// Validates the physical knobs of \p params: epsilon_r and lambda_tf must
/// be positive and finite (a non-positive permittivity or screening length
/// makes every screened-Coulomb term meaningless or singular). Throws
/// std::invalid_argument — the PR-6 ChargeState convention of promoting
/// silent contract violations to thrown errors. Called by every SiDBSystem
/// constructor, so no simulation can run on nonsense parameters.
void validate_parameters(const SimulationParameters& params);

/// Screened Coulomb interaction energy of two negative charges at distance
/// \p r_nm (in nm), in eV.
[[nodiscard]] double screened_coulomb(double r_nm, const SimulationParameters& params);

/// A charge configuration: one charge state per site (0 = DB0, 1 = DB-).
using ChargeConfig = std::vector<std::uint8_t>;

class DefectSurface;  // defect.hpp

/// A fixed set of SiDB sites with precomputed pair potentials, supporting
/// energy evaluation and stability checks of charge configurations.
///
/// A system may additionally carry a per-site *external potential* W_i
/// (charged fabrication defects, see defect.hpp): every local potential
/// becomes v_i = W_i + sum_{j != i} V_ij n_j and the grand potential gains
/// sum_i W_i n_i. A system without external potentials (the default) keeps
/// the exact pre-defect floating-point behavior — W storage is empty and
/// never touched on hot paths.
class SiDBSystem
{
  public:
    SiDBSystem(std::vector<SiDBSite> sites, const SimulationParameters& params);

    /// Evaluating constructor with a defect surface: charged defects
    /// contribute the external potential row, evaluated once per site.
    /// Throws std::invalid_argument when a site is blocked by a defect
    /// (including a defect on top of a site, whose Coulomb term would be
    /// singular) — callers must place SiDBs on usable sites only.
    SiDBSystem(std::vector<SiDBSite> sites, const SimulationParameters& params,
               const DefectSurface& defects);

    /// Assembles a system from an externally precomputed potential matrix
    /// (row-major n x n, symmetric, zero diagonal) without re-evaluating any
    /// screened-Coulomb term. This is the fast path of GateInstanceCache,
    /// which reuses the pattern-invariant block of the matrix across the 2^k
    /// input patterns of a gate. Entries must equal what the evaluating
    /// constructor would compute for \p sites — asserted via spot checks in
    /// debug builds.
    [[nodiscard]] static SiDBSystem from_potentials(std::vector<SiDBSite> sites,
                                                    const SimulationParameters& params,
                                                    std::vector<double> potentials);

    /// from_potentials with a precomputed external-potential row (one W_i
    /// per site, or empty for none) — the defect-aware fast path of
    /// GateInstanceCache.
    [[nodiscard]] static SiDBSystem from_potentials(std::vector<SiDBSite> sites,
                                                    const SimulationParameters& params,
                                                    std::vector<double> potentials,
                                                    std::vector<double> external);

    [[nodiscard]] std::size_t size() const noexcept { return sites_.size(); }
    [[nodiscard]] const std::vector<SiDBSite>& sites() const noexcept { return sites_; }
    [[nodiscard]] const SimulationParameters& parameters() const noexcept { return params_; }

    /// Pairwise interaction V_ij in eV.
    [[nodiscard]] double potential(std::size_t i, std::size_t j) const
    {
        return potentials_[i * sites_.size() + j];
    }

    /// True when the system carries defect-induced external potentials.
    [[nodiscard]] bool has_external_potentials() const noexcept { return !external_.empty(); }

    /// External potential W_i in eV (0 for a defect-free system).
    [[nodiscard]] double external_potential(std::size_t i) const
    {
        return external_.empty() ? 0.0 : external_[i];
    }

    /// The full external row (empty for a defect-free system).
    [[nodiscard]] const std::vector<double>& external_potentials() const noexcept
    {
        return external_;
    }

    /// Electrostatic energy sum_{i<j} V_ij n_i n_j + sum_i W_i n_i, in eV.
    [[nodiscard]] double electrostatic_energy(const ChargeConfig& config) const;

    /// Grand potential F(n) = electrostatic energy + mu * (number of charges).
    [[nodiscard]] double grand_potential(const ChargeConfig& config) const;

    /// Local potential v_i = W_i + sum_{j != i} V_ij n_j, in eV. This is the naive
    /// O(n) reference evaluator; hot loops should hold a ChargeState and
    /// read its O(1) cache instead (see charge_state.hpp).
    [[nodiscard]] double local_potential(const ChargeConfig& config, std::size_t i) const;

    /// SiQAD population stability: mu + v_i <= 0 for DB-, >= 0 for DB0.
    /// O(n^2): one kernel rebuild plus an O(n) scan.
    [[nodiscard]] bool population_stable(const ChargeConfig& config) const;

    /// No single electron hop from a DB- to a DB0 site lowers the energy.
    /// O(n^2): one kernel rebuild plus O(1) cached hop deltas (was O(n^3)).
    [[nodiscard]] bool configuration_stable(const ChargeConfig& config) const;

    /// Physically valid = population stable and configuration stable.
    /// Shares a single kernel rebuild across both checks.
    [[nodiscard]] bool physically_valid(const ChargeConfig& config) const;

    /// Greedy descent to the nearest local minimum of F under single flips
    /// and hops (mutates \p config). Guarantees physical validity on return.
    /// O(n^2) per sweep via the charge-state kernel (was O(n^3)).
    void quench(ChargeConfig& config) const;

  private:
    SiDBSystem() = default;  // for from_potentials

    std::vector<SiDBSite> sites_;
    SimulationParameters params_;
    std::vector<double> potentials_;  // row-major size() x size()
    std::vector<double> external_;    // per-site W_i; empty = defect-free
};

/// Result of a ground-state search.
struct GroundStateResult
{
    ChargeConfig config;           ///< best configuration found
    double grand_potential{0.0};   ///< F of that configuration
    double electrostatic{0.0};     ///< electrostatic part, in eV
    /// Number of physically valid configurations within energy_tolerance of
    /// the minimum. Exact engines (exhaustive, exact) report the true count;
    /// stochastic engines (simanneal, quicksim) report the number of
    /// *distinct* tying configurations their instances visited — a lower
    /// bound on the true degeneracy, never an exact count.
    std::uint64_t degeneracy{1};
    bool complete{false};          ///< true if the search space was covered exhaustively
    bool cancelled{false};         ///< the search was cut by a run budget (result is partial)
};

}  // namespace bestagon::phys
