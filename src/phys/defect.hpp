/// \file defect.hpp
/// \brief Fabrication defects on the H-Si(100)-2x1 surface.
///
/// Real surfaces are not pristine: STM studies and the defect-aware physical
/// design literature (arXiv 2311.12042) catalogue charged vacancies, siloxane
/// dimers, missing dimers and contaminants at densities that make it likely
/// for any non-trivial layout to overlap at least one defect. SiQAD models
/// such defects as first-class simulation inputs; this module does the same
/// for the whole flow.
///
/// Two defect behaviors are modelled (a single defect can exhibit both):
///  - **charged**: a fixed point charge at a lattice site. It enters the
///    electrostatic model as an *external potential* — a per-site offset
///      W_i = sum_d (-q_d) * screened_coulomb(dist(d, i))      [eV]
///    added to every local potential v_i (q_d in units of the elementary
///    charge, negative for an electron-like defect, so q = -1 repels DB-
///    electrons exactly like another charged DB would). The offset is
///    configuration-independent, so it folds into the cached v_i of the
///    charge-state kernel at zero per-move cost and the defect-free path
///    (empty surface) stays bit-identical to the legacy code.
///  - **blocking**: every lattice site within `exclusion_radius_nm` of the
///    defect is unusable (structural perturbations locally destroy the
///    H-Si lattice; a charged defect always blocks at least its own site,
///    since a DB placed on top of it is not a two-state system anymore).
///
/// `sample_defect_surface` draws deterministic seeded surfaces at a given
/// areal density. Samples are *nested*: for a fixed seed, the surface at a
/// higher density is a superset of the surface at any lower density (the
/// stream-prefix coupling the Monte-Carlo yield sweep relies on for
/// monotone survival curves — see defect_sweep.hpp).

#pragma once

#include "phys/lattice.hpp"
#include "phys/model.hpp"

#include <cstdint>
#include <vector>

namespace bestagon::phys
{

/// Physical defect classes, per the SiQAD taxonomy.
enum class DefectKind : std::uint8_t
{
    charged,    ///< fixed point charge; contributes an external potential
    structural  ///< lattice perturbation; purely blocking, no charge
};

/// A single surface defect, positioned on the SiDB lattice.
struct SurfaceDefect
{
    SiDBSite site{};
    DefectKind kind{DefectKind::charged};

    /// Charge in units of the elementary charge; only meaningful for
    /// DefectKind::charged. -1 models an electron-like defect (repels DB-
    /// electrons), +1 a hole-like one (attracts them).
    double charge{-1.0};

    /// Sites within this distance (in nm) of the defect are unusable for
    /// SiDB placement. 0 still blocks the defect's own lattice site.
    double exclusion_radius_nm{0.0};
};

/// An immutable-after-filling set of surface defects with the two queries
/// the flow needs: "is this site usable?" and "what external potential does
/// the defect charge background exert here?".
class DefectSurface
{
  public:
    DefectSurface() = default;

    /// Appends \p defect. Throws std::invalid_argument on a negative
    /// exclusion radius or a non-finite charge (the PR-6 ChargeState
    /// convention: contract violations throw instead of asserting).
    void add(const SurfaceDefect& defect);

    [[nodiscard]] bool empty() const noexcept { return defects_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return defects_.size(); }
    [[nodiscard]] const std::vector<SurfaceDefect>& defects() const noexcept { return defects_; }

    /// True when at least one defect carries a charge — only then do
    /// external potentials exist.
    [[nodiscard]] bool has_charged() const noexcept { return num_charged_ > 0; }

    /// The defect set of the first \p count defects, in insertion order —
    /// the nesting primitive of the yield sweep (count is clamped to size()).
    [[nodiscard]] DefectSurface prefix(std::size_t count) const;

    /// True when \p site lies within some defect's exclusion radius (a
    /// coincident site is always blocked, even at radius 0).
    [[nodiscard]] bool blocks(const SiDBSite& site) const;

    /// First defect blocking \p site, or nullptr.
    [[nodiscard]] const SurfaceDefect* blocking_defect(const SiDBSite& site) const;

    /// True when any of \p sites is blocked.
    [[nodiscard]] bool blocks_any(const std::vector<SiDBSite>& sites) const;

    /// External potential W (in eV) the charged defects exert on a DB- at
    /// \p site: sum over charged defects of -q * screened_coulomb(r).
    [[nodiscard]] double external_potential(const SiDBSite& site,
                                            const SimulationParameters& params) const;

    /// W for every site, in order. Returns an EMPTY vector when the surface
    /// has no charged defect, so the defect-free fast path of SiDBSystem /
    /// GateInstanceCache stays allocation-free and bit-identical.
    [[nodiscard]] std::vector<double> external_potentials(
        const std::vector<SiDBSite>& sites, const SimulationParameters& params) const;

  private:
    std::vector<SurfaceDefect> defects_;
    std::size_t num_charged_{0};
};

/// Inclusive lattice-coordinate rectangle (both sublattice atoms of every
/// dimer within it are candidate defect positions).
struct DefectRegion
{
    std::int32_t n_min{0};
    std::int32_t n_max{0};
    std::int32_t m_min{0};
    std::int32_t m_max{0};

    /// Physical area in nm^2 (column span x dimer-row span).
    [[nodiscard]] double area_nm2() const;
    /// Number of candidate lattice sites (2 per (n, m) dimer position).
    [[nodiscard]] std::size_t num_sites() const;
};

/// Knobs of the seeded defect sampler. Fab-realistic areal densities are on
/// the order of 0.01–0.1 defects/nm^2 (a fraction of a percent up to a few
/// percent of the ~6.8 lattice sites per nm^2).
struct DefectSampleParams
{
    double density_per_nm2{0.02};     ///< expected defects per nm^2
    double charged_fraction{0.5};     ///< probability a drawn defect is charged
    double charge{-1.0};              ///< charge of charged defects, in e
    double exclusion_radius_nm{0.8};  ///< blocking radius of structural defects

    /// Throws std::invalid_argument on a negative density, a charged
    /// fraction outside [0, 1], a non-finite charge or a negative radius.
    void validate() const;
};

/// Deterministic expected-count draw for \p density over \p region: an
/// unbiased rounding of density * area that is monotone in the density for
/// a fixed seed (the same splitmix64 fraction is reused for every density),
/// clamped to the region's site count.
[[nodiscard]] std::size_t defect_count_for_density(const DefectRegion& region,
                                                   double density_per_nm2, std::uint64_t seed);

/// Draws the first \p count defects of the seed-determined defect stream
/// over \p region: positions uniform without replacement, kind/charge per
/// \p params. For a fixed (region, params, seed), the surface at count a
/// is a prefix of the surface at count b >= a.
[[nodiscard]] DefectSurface sample_defect_surface(const DefectRegion& region,
                                                  const DefectSampleParams& params,
                                                  std::uint64_t seed, std::size_t count);

/// Convenience: count from defect_count_for_density(params.density_per_nm2).
[[nodiscard]] DefectSurface sample_defect_surface(const DefectRegion& region,
                                                  const DefectSampleParams& params,
                                                  std::uint64_t seed);

}  // namespace bestagon::phys
